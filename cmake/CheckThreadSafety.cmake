# Configure-time regression gate for clang's thread-safety analysis.
#
# Two try_compile probes against src/util/thread_annotations.h:
#   - thread_safety_good.cpp: takes the lock before touching a GUARDED_BY
#     field. MUST compile — otherwise the annotation macros themselves are
#     broken (or the flags are wrong) and every annotated TU would fail.
#   - thread_safety_bad.cpp: touches the same field without the lock.
#     MUST FAIL to compile under -Werror=thread-safety — this is the
#     negative case that proves the analysis is actually live. If the
#     macros ever degrade to no-ops under clang (e.g. a guard-condition
#     typo in thread_annotations.h), this probe starts compiling and the
#     configure aborts.
#
# Only included for Clang/AppleClang; GCC ignores the attributes by design.

set(_abe_ts_probe_dir "${CMAKE_CURRENT_LIST_DIR}/probes")
set(_abe_ts_flags "-Wthread-safety;-Werror=thread-safety")

try_compile(ABE_TS_GOOD_COMPILES
  ${CMAKE_BINARY_DIR}/check_thread_safety_good
  ${_abe_ts_probe_dir}/thread_safety_good.cpp
  COMPILE_DEFINITIONS "${_abe_ts_flags}"
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
    "-DCMAKE_CXX_STANDARD=17"
  OUTPUT_VARIABLE _abe_ts_good_output)

if(NOT ABE_TS_GOOD_COMPILES)
  message(FATAL_ERROR
    "Thread-safety probe failure: the LOCKED access probe "
    "(cmake/probes/thread_safety_good.cpp) does not compile under "
    "-Werror=thread-safety. The annotation macros in "
    "src/util/thread_annotations.h are likely broken for this compiler.\n"
    "Compiler output:\n${_abe_ts_good_output}")
endif()

try_compile(ABE_TS_BAD_COMPILES
  ${CMAKE_BINARY_DIR}/check_thread_safety_bad
  ${_abe_ts_probe_dir}/thread_safety_bad.cpp
  COMPILE_DEFINITIONS "${_abe_ts_flags}"
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
    "-DCMAKE_CXX_STANDARD=17"
  OUTPUT_VARIABLE _abe_ts_bad_output)

if(ABE_TS_BAD_COMPILES)
  message(FATAL_ERROR
    "Thread-safety probe failure: the UNLOCKED access probe "
    "(cmake/probes/thread_safety_bad.cpp) compiled cleanly, meaning "
    "-Wthread-safety is not rejecting GUARDED_BY violations. Check that "
    "src/util/thread_annotations.h still expands to real "
    "__attribute__((...)) annotations under clang.")
endif()

message(STATUS
  "Thread-safety analysis verified: locked probe compiles, "
  "unlocked probe rejected")
