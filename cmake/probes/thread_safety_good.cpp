// Positive thread-safety probe: a correctly locked access to a GUARDED_BY
// field. This must compile under -Werror=thread-safety; see
// cmake/CheckThreadSafety.cmake. Mirrors the locking idiom used by
// runtime/mailbox.cpp (MutexLock scoped guard).
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() EXCLUDES(mutex_) {
    abe::MutexLock lock(mutex_);
    ++value_;
  }

  int value() EXCLUDES(mutex_) {
    abe::MutexLock lock(mutex_);
    return value_;
  }

 private:
  abe::AnnotatedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.value();
}
