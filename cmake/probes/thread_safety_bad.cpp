// Negative thread-safety probe: an UNLOCKED access to a GUARDED_BY field.
// This must FAIL to compile under -Werror=thread-safety — if it ever
// compiles, the analysis has gone dead (see cmake/CheckThreadSafety.cmake,
// which aborts the configure in that case).
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // Deliberate violation: no lock held while writing value_.
  void bump() { ++value_; }

 private:
  abe::AnnotatedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return 0;
}
