// Sensor-network scenario — the paper's motivating deployment.
//
//   ./sensor_network --n 32 --p 0.6 --drift 1.5 --seed 7
//
// Radio links lose packets (per-attempt success probability p), so the
// MAC layer retransmits: the message delay is unbounded, but its mean is
// slot/p — exactly the ABE situation of paper Section 1, case (iii).
// Node oscillators drift within known bounds and the tiny CPUs take real
// time to process events (Definition 1(2) and 1(3)).
//
// The example derives the ABE parameters the deployment would advertise,
// verifies the 1/p law with the explicit ARQ protocol, and then runs the
// anonymous election over the lossy ring.
//
// Registered as the "sensor-network" scenario: the defaults below (ring
// size, drift band, processing γ, the slot/p delay law) mirror that spec,
// and `abe_scenarios run sensor-network` executes the same cell through
// the sweep driver. The explicit geometric_retransmission_delay keeps the
// per-slot MAC semantics the registry's factory-named model abstracts.
#include <cstdio>

#include "core/abe.h"
#include "core/analysis.h"
#include "core/harness.h"
#include "net/arq.h"
#include "scenario/scenario.h"
#include "stats/table.h"
#include "util/check.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const abe::ScenarioSpec* spec = abe::find_scenario("sensor-network");
  ABE_CHECK(spec != nullptr);

  abe::CliFlags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(
      flags.get_int("n", static_cast<std::int64_t>(spec->topology.n)));
  const double p = flags.get_double("p", 0.6);
  const double drift =
      flags.get_double("drift", spec->clock_bounds.s_high);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));

  std::printf("=== sensor network: %zu nodes, radio success p=%.2f, "
              "clock bound ratio %.2f ===\n\n",
              n, p, drift);

  // --- the 1/p law, measured with a real stop-and-wait ARQ -------------
  std::printf("[1] MAC-layer retransmission (paper case iii)\n");
  abe::Table arq_table({"p", "k_avg=1/p", "measured_attempts",
                        "measured_latency"});
  for (double probe : {0.9, p, 0.3}) {
    const abe::ArqResult r = abe::run_arq_experiment(probe, 2000, 1.0, seed);
    arq_table.add_row({abe::Table::fmt(probe, 2),
                       abe::Table::fmt(abe::expected_transmissions(probe), 2),
                       abe::Table::fmt(r.mean_attempts, 2),
                       abe::Table::fmt(r.mean_latency, 2)});
  }
  std::printf("%s\n", arq_table.render().c_str());

  // --- the ABE deployment ----------------------------------------------
  const double slot = 1.0;
  abe::ElectionExperiment e;
  e.n = n;
  e.delay = abe::geometric_retransmission_delay(p, slot);
  e.clock_bounds = abe::ClockBounds{1.0 / drift, drift};
  e.drift = spec->drift;
  e.processing = spec->processing;
  e.election.a0 = abe::linear_regime_a0(n);
  e.seed = seed;
  e.settle_time = spec->settle_time;

  std::printf("[2] advertised ABE parameters: delta=%.3f (slot/p), "
              "s in [%.3f, %.3f], gamma=0.05\n",
              abe::expected_retransmission_delay(p, slot), 1.0 / drift,
              drift);
  std::printf("    worst-case delay: unbounded — an ABD deployment is "
              "impossible here.\n\n");

  std::printf("[3] anonymous leader election over the lossy ring\n");
  const abe::ElectionRunResult result = abe::run_election(e);
  if (!result.elected) {
    std::printf("    no leader before deadline\n");
    return 1;
  }
  std::printf("    leader: node %zu after %.1f time units, %llu messages "
              "(%.2f per node)\n",
              result.leader_index, result.election_time,
              static_cast<unsigned long long>(result.messages),
              static_cast<double>(result.messages) / n);
  std::printf("    safety: %s\n",
              result.safety_ok ? "ok" : result.safety_detail.c_str());
  return result.safety_ok ? 0 : 2;
}
