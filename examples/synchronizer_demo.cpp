// Synchronizer demo — Theorem 1 in action.
//
//   ./synchronizer_demo --rows 4 --cols 4 --rounds 20 --mult 1.5
//
// Runs the same synchronous broadcast app three ways on a grid:
//   1. the ideal lock-step executor (ground truth),
//   2. Awerbuch's α-synchronizer over an ABE network (correct, but pays
//      ≥ n messages per round — Theorem 1's floor),
//   3. the Tel–Korach–Zaks ABD synchronizer over the same ABE network
//      (zero overhead, but late messages silently corrupt the run).
#include <cstdio>

#include "net/topology.h"
#include "stats/table.h"
#include "syncr/abd_sync.h"
#include "syncr/alpha.h"
#include "syncr/apps.h"
#include "syncr/sync_runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  abe::CliFlags flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.get_int("rows", 4));
  const std::size_t cols = static_cast<std::size_t>(flags.get_int("cols", 4));
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(flags.get_int("rounds", 20));
  const double mult = flags.get_double("mult", 1.5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5));

  const abe::Topology topology = abe::grid(rows, cols);
  const auto factory = abe::broadcast_app_factory(0);
  const auto delay = abe::exponential_delay(1.0);

  std::printf("broadcast from node 0 on a %zux%zu grid (n=%zu, |E|=%zu), "
              "%llu rounds, exponential delays (mean 1)\n\n",
              rows, cols, topology.n, topology.edge_count(),
              static_cast<unsigned long long>(rounds));

  const auto reference = abe::run_synchronous(topology, factory, rounds);
  const auto alpha =
      abe::run_alpha_synchronizer(topology, factory, rounds, delay, seed);
  const auto abd = abe::run_abd_synchronizer(topology, factory, rounds,
                                             delay, mult, seed);

  abe::Table table({"executor", "msgs/round", "late_msgs", "outputs_ok"});
  table.add_row({"lock-step reference",
                 abe::Table::fmt(static_cast<double>(reference.messages_sent) /
                                     static_cast<double>(rounds), 2),
                 "-", "yes (definition)"});
  table.add_row({"alpha synchronizer",
                 abe::Table::fmt(alpha.messages_per_round, 2), "0",
                 alpha.outputs == reference.outputs ? "yes" : "NO"});
  table.add_row({"ABD synchronizer (P=" + abe::Table::fmt(mult, 2) +
                     "*delta)",
                 abe::Table::fmt(abd.messages_per_round, 2),
                 abe::Table::fmt_int(
                     static_cast<std::int64_t>(abd.late_messages)),
                 abd.outputs_match_reference ? "yes (got lucky)" : "NO"});
  std::printf("%s\n", table.render().c_str());

  std::printf("Theorem 1: synchronising an ABE network needs >= n = %zu "
              "messages/round. The alpha row pays |E| = %zu; the ABD row "
              "pays only the app's own messages — and corrupts the run "
              "whenever a delay overshoots its round window.\n",
              topology.n, topology.edge_count());

  std::printf("\nper-node BFS depth (reference vs ABD):\n");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      std::printf("%3lld/%-3lld",
                  static_cast<long long>(reference.outputs[i]),
                  static_cast<long long>(abd.outputs[i]));
    }
    std::printf("\n");
  }
  std::printf("(a '/x' mismatch or a -1 on the right marks silent "
              "corruption by the ABD synchronizer)\n");
  return 0;
}
