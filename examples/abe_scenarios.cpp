// abe_scenarios: the scenario-engine CLI.
//
//   abe_scenarios list                      # registered scenarios + sweeps
//   abe_scenarios describe <scenario>       # full spec of one scenario
//   abe_scenarios run <scenario> [flags]    # run one scenario's cell
//   abe_scenarios sweep [<sweep>] [flags]   # expand + run a scenario matrix
//   abe_scenarios replay <scenario> --seed N [flags]
//                                           # re-run ONE simulator trial with
//                                           # tracing on and print the full
//                                           # event trace — the tool for the
//                                           # violation_seeds a sweep captures
//   abe_scenarios report [<sweep-or-scenario>] [flags]
//                                           # run cells and print each cell's
//                                           # merged metrics snapshot + wall
//                                           # phase times (obs/metrics.h)
//   abe_scenarios trace <scenario> --seed N [--chrome PATH] [--jsonl PATH]
//                                           # replay ONE simulator trial and
//                                           # export the flight recorder as
//                                           # Chrome trace JSON (load in
//                                           # chrome://tracing / Perfetto;
//                                           # causal links become flow
//                                           # arrows) or JSONL; no export
//                                           # flag prints the text transcript
//   abe_scenarios critical-path [<sweep-or-scenario>] [flags]
//                                           # run cells with causal history
//                                           # on and print each cell's
//                                           # critical-path profile
//                                           # (obs/causal.h) — chain length,
//                                           # delay/processing/queueing/
//                                           # waiting attribution, heaviest
//                                           # channels — plus the worst
//                                           # trial's full hop-by-hop chain;
//                                           # --timeseries I additionally
//                                           # samples queue gauges every I
//                                           # sim-time units into the JSON
//
// Common flags:
//   --trials N    trials per cell (default: the spec's default_trials)
//   --seed N      seed base (default 1; trials use seed, seed+1, …)
//   --threads N   trial-pool width (default: ABE_TRIAL_THREADS or serial)
//   --equeue B    scheduler event-queue backend (auto|heap|calendar|ladder)
//                 for cells that do not pin one; recorded in the JSON
//                 provenance block. Results are bit-identical per backend.
//   --runtime R   execution substrate (sim|thread|udp) for cells that do
//                 not pin one. `thread` runs one OS thread per node with
//                 wall-clock delays — a fidelity check on the simulator;
//                 `udp` additionally makes every message a real loopback
//                 datagram (one socket per node) and measures transit
//                 delay instead of simulating it. Cells a wall-clock
//                 runtime cannot realise (piecewise drift, pinned equeue,
//                 n > 256 threads / n > 128 sockets) are rejected up
//                 front, and wall-clock results are nondeterministic by
//                 design.
//   --arq         udp cells only (run/replay): layer the net/arq.h
//                 retransmission protocol per channel (ACKs, seq dedup,
//                 bounded retries) so lossy cells still deliver exactly
//                 once; adds "/arq" to the cell id
//   --json PATH   also write the structured sweep JSON ("-" for stdout)
//   --n N         override the topology size (run/replay only)
//   --delay NAME --mean M   override the delay model (run/replay only)
//   --failure F   failure profile (none | loss-<p> | degrade-<q>x<f>),
//                 round-trips with each cell's `failure` JSON field
//   --behavior B  node behavior profile (honest | crash-<c>@<T> |
//                 crash-rand-<c> | equivocate-<c> | reorder-<c>x<k>):
//                 wraps the top <c> node indices in the named fault
//                 (run/replay only; sweeps carry their own behavior axis)
//   --adversary A bounded-expected-delay adversary (none | targeted |
//                 burst-stall): maximises damage while keeping every
//                 channel's empirical mean delay within the model bound
//                 (run/replay only)
//
// Results are bit-identical for every --threads value (see
// src/scenario/sweep.h); the JSON carries the same provenance metadata as
// the BENCH_*.json perf trajectory.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "adversary/delay_policy.h"
#include "core/trial_pool.h"
#include "scenario/drivers.h"
#include "scenario/scenario.h"
#include "sim/equeue/backend.h"
#include "scenario/sweep.h"
#include "stats/table.h"
#include "trace/trace_export.h"
#include "util/cli.h"

// Provenance injected by abe_add_buildinfo (top-level CMakeLists); the
// fallbacks keep stray compilations working.
#ifdef ABE_BENCH_HAVE_SHA_HEADER
#include "abe_bench_git_sha.h"
#endif
#ifndef ABE_BENCH_GIT_SHA
#define ABE_BENCH_GIT_SHA "unknown"
#endif
#ifndef ABE_BENCH_COMPILER
#define ABE_BENCH_COMPILER "unknown"
#endif
#ifndef ABE_BENCH_BUILD_TYPE
#define ABE_BENCH_BUILD_TYPE "unknown"
#endif

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s describe <scenario>\n"
               "       %s run <scenario> [--trials N] [--seed N] "
               "[--threads N] [--n N] [--delay NAME] [--mean M] "
               "[--failure F] [--behavior B] [--adversary A] "
               "[--equeue B] [--runtime R] [--arq] [--json PATH]\n"
               "       %s sweep [<sweep>] [--trials N] [--seed N] "
               "[--threads N] [--equeue B] [--runtime R] [--json PATH]\n"
               "       %s replay <scenario> --seed N [--n N] [--delay NAME] "
               "[--mean M] [--failure F] [--behavior B] [--adversary A]\n"
               "       %s report [<sweep-or-scenario>] [--trials N] "
               "[--seed N] [--threads N] [--equeue B] [--runtime R] "
               "[--json PATH]\n"
               "       %s trace <scenario> --seed N [--chrome PATH] "
               "[--jsonl PATH] [run overrides]\n"
               "       %s critical-path [<sweep-or-scenario>] [--trials N] "
               "[--seed N] [--threads N] [--equeue B] [--timeseries I] "
               "[--json PATH]\n",
               program, program, program, program, program, program,
               program, program);
  return 2;
}

int cmd_list() {
  abe::Table scenarios({"scenario", "cell", "about"});
  for (const abe::ScenarioSpec& s : abe::scenario_registry()) {
    scenarios.add_row({s.name, s.cell_id(), s.description});
  }
  std::printf("%s\n", scenarios.render("registered scenarios").c_str());

  abe::Table sweeps({"sweep", "cells", "about"});
  for (const abe::ScenarioMatrix& m : abe::sweep_registry()) {
    sweeps.add_row({m.name, abe::Table::fmt_int(static_cast<std::int64_t>(
                                m.expand().size())),
                    m.description});
  }
  std::printf("%s\n", sweeps.render("registered sweeps").c_str());
  return 0;
}

int cmd_describe(const std::string& name) {
  const abe::ScenarioSpec* spec = abe::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }
  std::printf("%s", spec->describe().c_str());
  return 0;
}

abe::SweepRunMetadata make_metadata(std::uint64_t trials,
                                    std::uint64_t seed_base,
                                    unsigned threads,
                                    abe::EqueueBackend equeue,
                                    abe::RuntimeKind runtime) {
  abe::SweepRunMetadata meta;
  meta.git_sha = ABE_BENCH_GIT_SHA;
  meta.compiler = ABE_BENCH_COMPILER;
  meta.build_type = ABE_BENCH_BUILD_TYPE;
  meta.equeue = abe::equeue_backend_name(equeue);
  meta.runtime = abe::runtime_kind_name(runtime);
  meta.threads = abe::resolve_trial_threads(threads);
  meta.trials = trials;
  meta.seed_base = seed_base;
  return meta;
}

// Writes the sweep JSON to `path` ("-" = stdout). Returns false on I/O
// failure.
bool emit_json(const std::string& path, const abe::SweepRunMetadata& meta,
               const std::vector<abe::SweepCellOutcome>& outcomes) {
  if (path == "-") {
    abe::write_sweep_json(std::cout, meta, outcomes);
    return static_cast<bool>(std::cout);
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  abe::write_sweep_json(out, meta, outcomes);
  out.flush();
  return static_cast<bool>(out);
}

// Aligned per-cell critical-path profile (the `critical-path` command):
// how many decided trials produced a chain, how many chains truncated at
// the flight ring, and the mean attribution of the chain's extent to the
// four components of obs/causal.h.
std::string render_critical_path_report(
    const std::vector<abe::SweepCellOutcome>& outcomes) {
  abe::Table table({"cell", "paths", "trunc", "hops", "span", "delay",
                    "proc", "queue", "wait", "worst-seed"});
  for (const abe::SweepCellOutcome& outcome : outcomes) {
    const abe::CriticalPathAggregate& cp = outcome.aggregate.critical_path;
    table.add_row(
        {outcome.spec.cell_id(),
         std::to_string(cp.found) + "/" + std::to_string(cp.considered),
         abe::Table::fmt_int(static_cast<std::int64_t>(cp.truncated)),
         abe::Table::fmt(cp.hops.mean(), 1),
         abe::Table::fmt(cp.span.mean(), 2),
         abe::Table::fmt(cp.channel_delay.mean(), 2),
         abe::Table::fmt(cp.processing.mean(), 2),
         abe::Table::fmt(cp.queueing.mean(), 2),
         abe::Table::fmt(cp.waiting.mean(), 2),
         cp.has_worst ? std::to_string(cp.worst_seed) : "-"});
  }
  return table.render("critical paths");
}

// Replays the single worst trial across all cells (largest critical-path
// span; replay is simulator-only, so thread cells are skipped) with full
// tracing and prints its hop-by-hop causal chain.
void dump_worst_chain(const std::vector<abe::SweepCellOutcome>& outcomes,
                      std::FILE* out) {
  const abe::SweepCellOutcome* worst = nullptr;
  for (const abe::SweepCellOutcome& outcome : outcomes) {
    if (outcome.spec.runtime != abe::RuntimeKind::kSim) continue;
    const abe::CriticalPathAggregate& cp = outcome.aggregate.critical_path;
    if (!cp.has_worst) continue;
    if (worst == nullptr ||
        cp.worst_span > worst->aggregate.critical_path.worst_span) {
      worst = &outcome;
    }
  }
  if (worst == nullptr) return;
  const abe::CriticalPathAggregate& cp = worst->aggregate.critical_path;

  abe::ScenarioSpec spec = worst->spec;
  spec.causal_history = true;
  abe::Trace recorder;
  const abe::TrialOutcome outcome =
      abe::replay_scenario_trial(spec, cp.worst_seed, &recorder);
  std::fprintf(out, "\nworst trial: %s seed %llu (span %.6g)\n",
               spec.cell_id().c_str(),
               static_cast<unsigned long long>(cp.worst_seed),
               cp.worst_span);
  if (!outcome.completed || outcome.decision_node < 0) {
    std::fprintf(out, "(replay did not reach a decision)\n");
    return;
  }
  const abe::CriticalPath path = abe::extract_critical_path(
      recorder.events(), abe::NodeId{outcome.decision_node}, outcome.time);
  std::fprintf(out, "%s", path.render().c_str());
}

// Shared tail of `run` and `sweep`: execute cells, print the table, emit
// JSON, and fail the process when any cell violated safety.
// `runtime_overridable` is false for sweeps whose matrix declares its own
// runtimes axis: those cells pinned a substrate on purpose, and a blanket
// --runtime would rewrite the sim-pinned half into duplicates of the
// thread-pinned half (cell ids must stay unique).
// `metrics_report` additionally prints each cell's merged metrics snapshot
// and wall-phase times (the `report` command); `critical_path_report`
// prints the per-cell critical-path profile and the worst trial's chain
// (the `critical-path` command).
int run_cells(std::vector<abe::ScenarioSpec> cells,
              const abe::CliFlags& flags, bool runtime_overridable = true,
              bool metrics_report = false,
              bool critical_path_report = false) {
  const std::int64_t trials_flag = flags.get_int("trials", 0);
  const std::int64_t seed_flag = flags.get_int("seed", 1);
  const std::int64_t threads_flag = flags.get_int("threads", 0);
  if (trials_flag < 0 || seed_flag < 0 || threads_flag < 0 ||
      threads_flag > 4096) {
    std::fprintf(stderr,
                 "--trials/--seed must be >= 0 and --threads in [0, 4096]\n");
    return 2;
  }
  const auto trials = static_cast<std::uint64_t>(trials_flag);
  const auto seed_base = static_cast<std::uint64_t>(seed_flag);
  const auto threads = static_cast<unsigned>(threads_flag);

  // --equeue applies to every cell that has not pinned a backend itself
  // (matrix axes like the scale sweep keep their pins so their cell ids
  // stay truthful). Unknown names are rejected before any trial runs.
  abe::EqueueBackend equeue = abe::EqueueBackend::kAuto;
  if (flags.has("equeue")) {
    const std::string name = flags.get_string("equeue", "auto");
    if (!abe::equeue_backend_from_name(name, &equeue)) {
      std::fprintf(stderr,
                   "unknown equeue backend '%s'; known: auto heap calendar "
                   "ladder\n",
                   name.c_str());
      return 2;
    }
    for (abe::ScenarioSpec& cell : cells) {
      if (cell.equeue == abe::EqueueBackend::kAuto) cell.equeue = equeue;
    }
  }

  // --runtime applies to every cell that has not pinned a substrate itself
  // (a matrix runtimes axis keeps its pins so cell ids stay truthful).
  // Cells the selected runtime cannot realise are rejected before any
  // trial runs — each with its structural reason, mirroring `describe` —
  // and the sweep proceeds with the realisable remainder (an empty
  // remainder is an error).
  abe::RuntimeKind runtime = abe::RuntimeKind::kSim;
  if (flags.has("runtime")) {
    const std::string name = flags.get_string("runtime", "sim");
    if (!abe::runtime_kind_from_name(name, &runtime)) {
      std::fprintf(stderr, "unknown runtime '%s'; known: sim thread udp\n",
                   name.c_str());
      return 2;
    }
    if (!runtime_overridable) {
      std::fprintf(stderr,
                   "this sweep pins its own runtime axis; --runtime does "
                   "not apply\n");
      return 2;
    }
    for (abe::ScenarioSpec& cell : cells) {
      if (cell.runtime == abe::RuntimeKind::kSim) cell.runtime = runtime;
    }
  }
  {
    std::vector<abe::ScenarioSpec> realisable;
    realisable.reserve(cells.size());
    for (abe::ScenarioSpec& cell : cells) {
      const std::string problem = abe::runtime_cell_problem(cell);
      if (problem.empty()) {
        realisable.push_back(std::move(cell));
      } else {
        std::fprintf(stderr, "rejected %s: %s\n", cell.cell_id().c_str(),
                     problem.c_str());
      }
    }
    if (realisable.empty()) {
      std::fprintf(stderr,
                   "no cell can run on the requested runtime (see reasons "
                   "above; `describe` shows per-scenario compatibility)\n");
      return 2;
    }
    cells = std::move(realisable);
  }

  const auto outcomes = abe::run_sweep(
      cells, trials, seed_base, threads,
      [](std::size_t i, std::size_t total,
         const abe::SweepCellOutcome& outcome) {
        const auto& agg = outcome.aggregate;
        std::fprintf(stderr, "[%zu/%zu] %s: %llu/%llu ok\n", i + 1, total,
                     outcome.spec.cell_id().c_str(),
                     static_cast<unsigned long long>(
                         agg.messages.count() - agg.safety_violations),
                     static_cast<unsigned long long>(agg.trials));
      });

  // With `--json -` stdout must stay a single parseable JSON document, so
  // the human-readable table moves to stderr next to the progress lines.
  const std::string json_path = flags.get_string("json", "");
  std::fprintf(json_path == "-" ? stderr : stdout, "%s\n",
               abe::render_sweep_table(outcomes).c_str());
  if (metrics_report) {
    std::fprintf(json_path == "-" ? stderr : stdout, "%s\n",
                 abe::render_metrics_report(outcomes).c_str());
  }
  if (critical_path_report) {
    std::FILE* out = json_path == "-" ? stderr : stdout;
    std::fprintf(out, "%s\n", render_critical_path_report(outcomes).c_str());
    dump_worst_chain(outcomes, out);
  }
  if (!json_path.empty() &&
      !emit_json(json_path,
                 make_metadata(trials, seed_base, threads, equeue, runtime),
                 outcomes)) {
    return 2;
  }

  std::uint64_t unsafe = 0;
  for (const auto& outcome : outcomes) {
    unsafe += outcome.aggregate.safety_violations;
  }
  if (unsafe > 0) {
    std::fprintf(stderr, "%llu trial(s) violated safety\n",
                 static_cast<unsigned long long>(unsafe));
    return 1;
  }
  return 0;
}

// Applies the run/replay-only overrides (--n/--delay/--mean/--failure/
// --behavior/--adversary) to `spec`, validating every piece of user input
// before it can reach a library aborting check. Returns 0, or 2 with a
// message on stderr.
int apply_cell_overrides(abe::ScenarioSpec& spec, const std::string& name,
                         const abe::CliFlags& flags) {
  if (flags.has("n")) {
    const std::int64_t n =
        flags.get_int("n", static_cast<std::int64_t>(spec.topology.n));
    if (n < 1) {
      std::fprintf(stderr, "--n must be >= 1\n");
      return 2;
    }
    spec.topology.n = static_cast<std::size_t>(n);
  }
  // User input must not reach the library's aborting size checks.
  const std::string problem = spec.topology.problem();
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid topology for '%s': %s\n", name.c_str(),
                 problem.c_str());
    return 2;
  }
  if (flags.has("delay")) {
    const std::string delay = flags.get_string("delay", spec.delay_name);
    const auto& known = abe::standard_delay_model_names();
    if (std::find(known.begin(), known.end(), delay) == known.end()) {
      std::fprintf(stderr, "unknown delay model '%s'; known:", delay.c_str());
      for (const auto& name : known) std::fprintf(stderr, " %s", name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
    spec.delay_name = delay;
  }
  if (flags.has("mean")) {
    const double mean = flags.get_double("mean", spec.mean_delay);
    if (mean <= 0.0) {
      std::fprintf(stderr, "--mean must be > 0\n");
      return 2;
    }
    spec.mean_delay = mean;
  }
  if (flags.has("failure")) {
    const std::string failure = flags.get_string("failure", "none");
    if (!abe::FailureProfile::parse(failure, &spec.failure)) {
      std::fprintf(stderr,
                   "unknown failure profile '%s'; grammar: none | "
                   "loss-<p> | degrade-<q>x<f> (p, q in [0, 1]; f >= 1)\n",
                   failure.c_str());
      return 2;
    }
  }
  if (flags.has("behavior")) {
    const std::string behavior = flags.get_string("behavior", "honest");
    if (!abe::behavior_spec_from_name(behavior, &spec.behavior)) {
      std::fprintf(stderr,
                   "unknown behavior profile '%s'; grammar: honest | "
                   "crash-<c>@<T> | crash-rand-<c> | equivocate-<c> | "
                   "reorder-<c>x<k>\n",
                   behavior.c_str());
      return 2;
    }
  }
  if (flags.has("adversary")) {
    spec.adversary = flags.get_string("adversary", "");
    if (spec.adversary == "none") spec.adversary.clear();
  }
  // ARQ reliable mode is a udp-runtime realisation knob; it is harmless on
  // other substrates (ignored) but only meaningful with --runtime udp.
  if (flags.has("arq")) {
    spec.udp_reliable = flags.get_bool("arq", false);
  }
  // One structural gate for the whole adversarial axis: afflicted count vs
  // n, profile-vs-algorithm support, and the adversary policy name.
  const std::string adversarial_problem = abe::behavior_cell_problem(spec);
  if (!adversarial_problem.empty()) {
    std::fprintf(stderr, "invalid adversarial cell for '%s': %s\n",
                 name.c_str(), adversarial_problem.c_str());
    return 2;
  }
  return 0;
}

int cmd_run(const std::string& name, const abe::CliFlags& flags) {
  const abe::ScenarioSpec* registered = abe::find_scenario(name);
  if (registered == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }
  abe::ScenarioSpec spec = *registered;
  const int rc = apply_cell_overrides(spec, name, flags);
  if (rc != 0) return rc;
  return run_cells({std::move(spec)}, flags);
}

// Shared preamble of `replay` and `trace`: resolve the scenario, apply
// overrides, and pin the deterministic simulator (wall-clock runs cannot
// reproduce a trial). Returns 0 with *spec_out/*seed_out set, or 2.
int resolve_replay_cell(const std::string& name, const abe::CliFlags& flags,
                        abe::ScenarioSpec* spec_out,
                        std::uint64_t* seed_out) {
  const abe::ScenarioSpec* registered = abe::find_scenario(name);
  if (registered == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }
  abe::ScenarioSpec spec = *registered;
  const int rc = apply_cell_overrides(spec, name, flags);
  if (rc != 0) return rc;
  if (flags.has("runtime") &&
      flags.get_string("runtime", "sim") != "sim") {
    std::fprintf(stderr, "replay is simulator-only (--runtime sim)\n");
    return 2;
  }
  spec.runtime = abe::RuntimeKind::kSim;
  const std::int64_t seed_flag = flags.get_int("seed", 1);
  if (seed_flag < 0) {
    std::fprintf(stderr, "--seed must be >= 0\n");
    return 2;
  }
  *spec_out = std::move(spec);
  *seed_out = static_cast<std::uint64_t>(seed_flag);
  return 0;
}

// Replays ONE simulator trial with tracing enabled and prints the event
// trace: the consumer of the violation_seeds list a sweep's JSON captures.
// Deterministic — the same seed reproduces the violating run bit for bit.
int cmd_replay(const std::string& name, const abe::CliFlags& flags) {
  abe::ScenarioSpec spec;
  std::uint64_t seed = 1;
  const int rc = resolve_replay_cell(name, flags, &spec, &seed);
  if (rc != 0) return rc;
  const std::int64_t seed_flag = static_cast<std::int64_t>(seed);

  abe::Trace recorder;
  const abe::TrialOutcome outcome =
      abe::replay_scenario_trial(spec, seed, &recorder);
  const std::string trace = recorder.to_string();
  std::printf("cell:      %s\n", spec.cell_id().c_str());
  std::printf("seed:      %lld\n", static_cast<long long>(seed_flag));
  std::printf("completed: %s\n", outcome.completed ? "yes" : "no");
  std::printf("stalled:   %s\n", outcome.stalled ? "yes" : "no");
  // Safety is a property of completed trials (a sweep counts violations the
  // same way); an incomplete trial has nothing to probe yet.
  std::printf("safety:    %s\n",
              !outcome.completed ? "not evaluated (trial did not complete)"
              : outcome.safety_ok ? "ok"
                                  : "VIOLATION");
  if (!outcome.safety_detail.empty()) {
    std::printf("detail:    %s\n", outcome.safety_detail.c_str());
  }
  std::printf("messages:  %llu\n",
              static_cast<unsigned long long>(outcome.messages));
  std::printf("time:      %.6g\n", outcome.time);

  // A stalled run at a large deadline can tick for millions of events after
  // the interesting part is over; elide the middle rather than flood the
  // terminal. Violating runs complete early and print in full.
  constexpr std::size_t kHeadLines = 2000;
  constexpr std::size_t kTailLines = 200;
  std::size_t lines = 0;
  for (char c : trace) lines += (c == '\n');
  std::printf("--- trace (%zu events) ---\n", lines);
  if (lines <= kHeadLines + kTailLines) {
    std::fwrite(trace.data(), 1, trace.size(), stdout);
  } else {
    std::size_t head_end = 0, seen = 0;
    while (seen < kHeadLines) {
      head_end = trace.find('\n', head_end) + 1;
      ++seen;
    }
    std::size_t tail_begin = trace.size();
    for (seen = 0; seen <= kTailLines; ++seen) {
      tail_begin = trace.rfind('\n', tail_begin - 1);
    }
    std::fwrite(trace.data(), 1, head_end, stdout);
    std::printf("... [%zu events elided] ...\n",
                lines - kHeadLines - kTailLines);
    std::fwrite(trace.data() + tail_begin + 1,
                1, trace.size() - tail_begin - 1, stdout);
  }
  return outcome.completed && !outcome.safety_ok ? 1 : 0;
}

int cmd_sweep(const std::string& name, const abe::CliFlags& flags) {
  const abe::ScenarioMatrix* matrix = abe::find_sweep(name);
  if (matrix == nullptr) {
    std::fprintf(stderr, "unknown sweep '%s' (try `list`)\n", name.c_str());
    return 2;
  }
  return run_cells(matrix->expand(), flags,
                   /*runtime_overridable=*/matrix->runtimes.empty());
}

// Runs a sweep (or a single scenario's cell) and prints the per-cell
// merged metrics snapshots next to the outcome table.
int cmd_report(const std::string& name, const abe::CliFlags& flags) {
  if (const abe::ScenarioMatrix* matrix = abe::find_sweep(name)) {
    return run_cells(matrix->expand(), flags,
                     /*runtime_overridable=*/matrix->runtimes.empty(),
                     /*metrics_report=*/true);
  }
  const abe::ScenarioSpec* registered = abe::find_scenario(name);
  if (registered == nullptr) {
    std::fprintf(stderr, "unknown sweep or scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }
  abe::ScenarioSpec spec = *registered;
  const int rc = apply_cell_overrides(spec, name, flags);
  if (rc != 0) return rc;
  return run_cells({std::move(spec)}, flags, /*runtime_overridable=*/true,
                   /*metrics_report=*/true);
}

// Runs a sweep (or a single scenario's cell) with causal history switched
// on — an observation-only knob: cell ids and seeded aggregates are
// unchanged — and prints the per-cell critical-path profile plus the worst
// trial's chain. `--timeseries I` additionally samples the queue gauges
// every I sim-time units (simulator cells; surfaces in the JSON).
int cmd_critical_path(const std::string& name, const abe::CliFlags& flags) {
  double interval = 0.0;
  if (flags.has("timeseries")) {
    interval = flags.get_double("timeseries", 0.0);
    if (interval <= 0.0) {
      std::fprintf(stderr, "--timeseries must be > 0 (sim-time units)\n");
      return 2;
    }
  }
  std::vector<abe::ScenarioSpec> cells;
  bool runtime_overridable = true;
  if (const abe::ScenarioMatrix* matrix = abe::find_sweep(name)) {
    cells = matrix->expand();
    runtime_overridable = matrix->runtimes.empty();
  } else if (const abe::ScenarioSpec* registered = abe::find_scenario(name)) {
    abe::ScenarioSpec spec = *registered;
    const int rc = apply_cell_overrides(spec, name, flags);
    if (rc != 0) return rc;
    cells.push_back(std::move(spec));
  } else {
    std::fprintf(stderr, "unknown sweep or scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }
  for (abe::ScenarioSpec& cell : cells) {
    cell.causal_history = true;
    cell.timeseries_interval = interval;
  }
  return run_cells(std::move(cells), flags, runtime_overridable,
                   /*metrics_report=*/false, /*critical_path_report=*/true);
}

// Writes `events` to `path` ("-" = stdout) in the selected export format.
bool export_events(const std::string& path, bool chrome,
                   const std::vector<abe::TraceEvent>& events) {
  if (path == "-") {
    chrome ? abe::write_chrome_trace(std::cout, events)
           : abe::write_trace_jsonl(std::cout, events);
    return static_cast<bool>(std::cout);
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  chrome ? abe::write_chrome_trace(out, events)
         : abe::write_trace_jsonl(out, events);
  out.flush();
  return static_cast<bool>(out);
}

// Replays ONE simulator trial and exports the flight recorder — Chrome
// trace JSON for chrome://tracing / Perfetto, JSONL for scripting, or the
// plain text transcript when no export flag is given.
int cmd_trace(const std::string& name, const abe::CliFlags& flags) {
  abe::ScenarioSpec spec;
  std::uint64_t seed = 1;
  const int rc = resolve_replay_cell(name, flags, &spec, &seed);
  if (rc != 0) return rc;

  abe::Trace recorder;
  abe::replay_scenario_trial(spec, seed, &recorder);
  const std::vector<abe::TraceEvent> events = recorder.events();
  std::fprintf(stderr, "cell %s seed %llu: %zu events retained (%llu "
               "recorded, %llu evicted)\n",
               spec.cell_id().c_str(),
               static_cast<unsigned long long>(seed), events.size(),
               static_cast<unsigned long long>(recorder.total_recorded()),
               static_cast<unsigned long long>(recorder.evicted()));
  bool exported = false;
  if (flags.has("chrome")) {
    if (!export_events(flags.get_string("chrome", "-"), /*chrome=*/true,
                       events)) {
      return 2;
    }
    exported = true;
  }
  if (flags.has("jsonl")) {
    if (!export_events(flags.get_string("jsonl", "-"), /*chrome=*/false,
                       events)) {
      return 2;
    }
    exported = true;
  }
  if (!exported) std::printf("%s", recorder.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const abe::CliFlags flags(argc, argv);
  // Register the full flag vocabulary up front so a typo'd flag is rejected
  // before any trials run, not silently defaulted.
  for (const char* known :
       {"trials", "seed", "threads", "json", "n", "delay", "mean",
        "equeue", "runtime", "arq", "failure", "behavior", "adversary",
        "chrome", "jsonl", "timeseries"}) {
    flags.has(known);
  }
  const auto unknown = flags.unknown_flags();
  if (!unknown.empty()) {
    for (const auto& flag : unknown) {
      std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    }
    return usage(argv[0]);
  }

  const auto& args = flags.positional();
  if (args.empty()) return usage(argv[0]);
  const std::string& command = args[0];

  if (command == "list") return cmd_list();
  if (command == "describe") {
    if (args.size() < 2) return usage(argv[0]);
    return cmd_describe(args[1]);
  }
  if (command == "run") {
    if (args.size() < 2) return usage(argv[0]);
    return cmd_run(args[1], flags);
  }
  if (command == "sweep") {
    return cmd_sweep(args.size() >= 2 ? args[1] : "robustness", flags);
  }
  if (command == "replay") {
    if (args.size() < 2) return usage(argv[0]);
    return cmd_replay(args[1], flags);
  }
  if (command == "report") {
    return cmd_report(args.size() >= 2 ? args[1] : "robustness", flags);
  }
  if (command == "trace") {
    if (args.size() < 2) return usage(argv[0]);
    return cmd_trace(args[1], flags);
  }
  if (command == "critical-path") {
    return cmd_critical_path(args.size() >= 2 ? args[1] : "robustness",
                             flags);
  }
  return usage(argv[0]);
}
