// Delay-model explorer: what "bounded expected delay" actually looks like.
//
//   ./delay_explorer --model lomax --mean 1.0 --samples 100000
//
// Samples a delay law, prints its quantiles, tail probabilities and an
// ASCII histogram, and contrasts the ABD question ("what is the worst
// case?") with the ABE question ("what is the mean?").
#include <cstdio>

#include "net/delay.h"
#include "sim/rng.h"
#include "stats/histogram.h"
#include "stats/table.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  abe::CliFlags flags(argc, argv);
  const std::string name = flags.get_string("model", "lomax");
  const double mean = flags.get_double("mean", 1.0);
  const int samples = static_cast<int>(flags.get_int("samples", 100000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const auto model = abe::make_delay_model(name, mean);
  abe::Rng rng(seed);
  abe::Histogram h;
  for (int i = 0; i < samples; ++i) h.add(model->sample(rng));

  std::printf("delay model '%s', requested mean %.3f\n", name.c_str(), mean);
  std::printf("  ABE knowledge : delta = %.3f (exact mean of the law)\n",
              model->mean_delay());
  if (model->bounded()) {
    std::printf("  ABD knowledge : worst case = %.3f (this law is also "
                "ABD-compatible)\n",
                model->worst_case());
  } else {
    std::printf("  ABD knowledge : NONE — samples are unbounded; only the "
                "ABE model applies\n");
  }

  abe::Table table({"statistic", "value"});
  table.add_row({"empirical mean", abe::Table::fmt(h.mean(), 4)});
  table.add_row({"p50", abe::Table::fmt(h.quantile(0.5), 4)});
  table.add_row({"p90", abe::Table::fmt(h.quantile(0.9), 4)});
  table.add_row({"p99", abe::Table::fmt(h.quantile(0.99), 4)});
  table.add_row({"p99.9", abe::Table::fmt(h.quantile(0.999), 4)});
  table.add_row({"max seen", abe::Table::fmt(h.quantile(1.0), 4)});
  table.add_row({"P(delay > 2*mean)",
                 abe::Table::fmt(h.tail_fraction(2 * mean), 5)});
  table.add_row({"P(delay > 10*mean)",
                 abe::Table::fmt(h.tail_fraction(10 * mean), 6)});
  std::printf("%s\n", table.render().c_str());

  std::printf("histogram:\n%s", h.ascii(18, 48).c_str());
  std::printf("\navailable models:");
  for (const auto& m : abe::standard_delay_model_names()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\n");
  return 0;
}
