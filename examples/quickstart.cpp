// Quickstart: elect a leader on an anonymous unidirectional ABE ring.
//
//   ./quickstart --n 16 --a0-scale 1.0 --delay exponential --seed 42
//   ./quickstart --n 12 --runtime thread   # same election, real OS threads
//
// Builds a ring of anonymous nodes whose channels have exponentially
// distributed delays (mean 1 — the known bound δ), runs the paper's
// election, and prints what happened, including the per-node end states.
//
// The execution goes through the unified Runtime contract
// (runtime/runtime.h): the identical ring-election AlgorithmDriver runs on
// the deterministic discrete-event simulator or on one OS thread per node
// with wall-clock delays — pick with --runtime.
#include <cstdio>
#include <string>

#include "core/abe.h"
#include "core/harness.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  abe::CliFlags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", 16));
  const double a0_scale = flags.get_double("a0-scale", 1.0);
  const std::string delay = flags.get_string("delay", "exponential");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string runtime_name = flags.get_string("runtime", "sim");

  abe::RuntimeKind runtime = abe::RuntimeKind::kSim;
  if (!abe::runtime_kind_from_name(runtime_name, &runtime)) {
    std::fprintf(stderr, "unknown runtime '%s'; known: sim thread\n",
                 runtime_name.c_str());
    return 2;
  }

  if (runtime == abe::RuntimeKind::kThread &&
      n > abe::kMaxThreadRuntimeNodes) {
    std::fprintf(stderr,
                 "--runtime thread spawns one OS thread per node; max n is "
                 "%zu\n",
                 abe::kMaxThreadRuntimeNodes);
    return 2;
  }

  abe::ElectionExperiment experiment;
  experiment.n = n;
  experiment.delay_name = delay;
  experiment.mean_delay = 1.0;
  // The linear-complexity calibration from the paper: A0 = c/n².
  experiment.election.a0 = abe::linear_regime_a0(n, a0_scale);
  experiment.seed = seed;
  experiment.settle_time = 50.0;
  experiment.trace = n <= 8;  // tiny rings: show the full transcript

  std::printf("ABE ring election: n=%zu, delay=%s (delta=1), A0=%g, "
              "runtime=%s\n",
              n, delay.c_str(), experiment.election.a0,
              abe::runtime_kind_name(runtime));

  // The harness entry point run_election() is exactly this, pinned to the
  // simulator; spelling it out shows the runtime seam.
  abe::ElectionRunResult result;
  const auto driver = abe::make_ring_election_driver(experiment, &result);
  abe::run_algorithm_trial(runtime,
                           abe::election_runtime_config(experiment),
                           *driver);
  if (!result.elected) {
    std::printf("no leader before the deadline — try a larger a0-scale\n");
    return 1;
  }
  std::printf("leader elected: node %zu (anonymous — the index is only the "
              "observer's name for it)\n",
              result.leader_index);
  std::printf("  time to election : %.2f time units  (%.2f per node)\n",
              result.election_time, result.election_time / n);
  std::printf("  messages         : %llu  (%.2f per node)\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<double>(result.messages) / n);
  std::printf("  activations      : %llu, knockout purges: %llu\n",
              static_cast<unsigned long long>(result.activations),
              static_cast<unsigned long long>(result.purges));
  std::printf("  safety           : %s\n",
              result.safety_ok ? "exactly one leader, all others passive"
                               : result.safety_detail.c_str());
  return result.safety_ok ? 0 : 2;
}
