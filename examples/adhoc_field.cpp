// Ad-hoc sensor field: the deployment class the paper motivates ABE with.
//
//   ./adhoc_field --n 36 --radius 0.25 --delay weibull --seed 3
//
// This example is a registered scenario: its defaults (topology family,
// delay law, drift band) come from the "adhoc-field" entry in the scenario
// registry (src/scenario/scenario.h), so `abe_scenarios run adhoc-field`
// sweeps the very same cell the CLI flags tweak here. The example adds the
// parts a sweep doesn't show: an online δ̂ estimate from probe traffic and
// an ASCII map of the field.
#include <cstdio>
#include <vector>

#include "algo/gossip.h"
#include "core/delta_estimator.h"
#include "net/topology.h"
#include "scenario/scenario.h"
#include "stats/table.h"
#include "util/check.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const abe::ScenarioSpec* spec = abe::find_scenario("adhoc-field");
  ABE_CHECK(spec != nullptr);

  abe::CliFlags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(
      flags.get_int("n", static_cast<std::int64_t>(spec->topology.n)));
  const double radius = flags.get_double("radius", spec->topology.param);
  const std::string delay = flags.get_string("delay", spec->delay_name);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));

  abe::Rng rng(seed);
  std::vector<double> pos;
  const abe::Topology field = abe::random_geometric(n, radius, rng, &pos);
  std::printf("sensor field: %zu nodes, %zu radio links, diameter %zu\n",
              field.n, field.edge_count() / 2, abe::diameter(field));

  // Estimate the delay bound from probe samples of the actual law —
  // the deployment does not need to *know* the distribution, only observe.
  const auto model = abe::make_delay_model(delay, spec->mean_delay);
  abe::DeltaEstimator estimator;
  for (int i = 0; i < 2000; ++i) estimator.observe(model->sample(rng));
  std::printf("delay law '%s' (true mean %.2f): estimated mean %.2f, "
              "advertised ABE bound delta-hat = %.2f\n\n",
              delay.c_str(), model->mean_delay(),
              estimator.mean_estimate(), estimator.upper_bound());

  // The scenario's environment (drift band, deadline), this field's graph.
  abe::GossipExperiment experiment;
  experiment.topology = field;
  experiment.delay_name = delay;
  experiment.mean_delay = spec->mean_delay;
  experiment.clock_bounds = spec->clock_bounds;
  experiment.drift = spec->drift;
  experiment.deadline = spec->deadline;
  experiment.seed = seed;
  const abe::GossipResult result = abe::run_gossip(experiment);
  if (!result.all_informed) {
    std::printf("rumor did not reach everyone before the deadline\n");
    return 1;
  }
  std::printf("rumor spread complete: last node informed at t=%.1f "
              "(mean %.1f), %llu pushes total (%.1f per node)\n",
              result.spread_time, result.mean_inform_time,
              static_cast<unsigned long long>(result.messages),
              static_cast<double>(result.messages) / n);

  // Coarse field map: 12x12 grid of cells, each showing the count of
  // sensors it contains.
  std::printf("\nfield map (sensor count per cell, source at upper-left "
              "region depends on seed):\n");
  constexpr int kCells = 12;
  int grid_count[kCells][kCells] = {};
  for (std::size_t i = 0; i < n; ++i) {
    int cx = static_cast<int>(pos[2 * i] * kCells);
    int cy = static_cast<int>(pos[2 * i + 1] * kCells);
    if (cx >= kCells) cx = kCells - 1;
    if (cy >= kCells) cy = kCells - 1;
    ++grid_count[cy][cx];
  }
  for (int y = 0; y < kCells; ++y) {
    std::printf("  ");
    for (int x = 0; x < kCells; ++x) {
      std::printf("%c", grid_count[y][x] == 0
                            ? '.'
                            : static_cast<char>('0' + std::min(
                                  grid_count[y][x], 9)));
    }
    std::printf("\n");
  }
  return 0;
}
