// Real threads, real queues: the election outside the simulator.
//
//   ./threaded_ring --n 12 --a0 0.05 --scale-us 200 --loss 0.01
//
// Spawns one OS thread per node with blocking mailboxes; channel delays are
// realised as wall-clock due times sampled from the same exponential model.
// The identical ElectionNode code that runs on the discrete-event simulator
// runs here unchanged — a fidelity check that nothing in the results depends
// on simulator artefacts. Since the Runtime redesign the harness below is a
// thin shim over the unified contract: the ring-election AlgorithmDriver
// (core/harness.h) executed by ThreadRuntime (runtime/runtime.h), with
// optional failure injection (--loss) that the thread runtime now honors
// and counts.
#include <cstdio>

#include "core/election.h"
#include "runtime/runtime.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  abe::CliFlags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 12));
  const double a0 = flags.get_double("a0", abe::linear_regime_a0(12, 8.0));
  const double scale_us = flags.get_double("scale-us", 200.0);
  const double loss = flags.get_double("loss", 0.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));

  if (n > abe::kMaxThreadRuntimeNodes) {
    std::fprintf(stderr, "one OS thread per node; max n is %zu\n",
                 abe::kMaxThreadRuntimeNodes);
    return 2;
  }
  if (loss < 0.0 || loss >= 1.0) {
    std::fprintf(stderr, "--loss must be in [0, 1)\n");
    return 2;
  }

  std::printf("threaded ABE ring: %zu OS threads, A0=%g, 1 sim unit = %.0f "
              "microseconds%s\n",
              n, a0, scale_us,
              loss > 0.0 ? " (lossy channels)" : "");

  const auto result = abe::run_threaded_election(
      n, a0, /*mean_delay=*/1.0, seed, scale_us,
      std::chrono::milliseconds(30000), abe::ClockBounds{}, loss);

  if (!result.elected) {
    std::printf("no leader within the wall-clock budget (%llu messages "
                "sent by ~t=%.1f)\n",
                static_cast<unsigned long long>(result.messages),
                result.election_time_sim);
    return 1;
  }
  std::printf("leader: node %zu after ~%.1f sim units (wall time), "
              "%llu messages\n",
              result.leader_index, result.election_time_sim,
              static_cast<unsigned long long>(result.messages));
  std::printf("safety: %s\n", result.safety_ok
                                  ? "exactly one leader, others passive"
                                  : "VIOLATED");
  return result.safety_ok ? 0 : 2;
}
