// Tests for the observability stack (obs/metrics.h) and its integration:
// registry semantics, snapshot determinism through the trial pool's chunk
// tree, the seed-pinned per-channel drop regression on a lossy ring, ARQ
// metrics, and the always-on flight-recorder tail on failing trials.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/arq.h"
#include "net/delay.h"
#include "net/network.h"
#include "net/topology.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "trace/trace.h"

namespace abe {
namespace {

// ---------------------------------------------------------------------
// Registry + instruments

TEST(MetricsRegistry, GetOrCreateReturnsStableRefs) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("x.count");
  Counter& c2 = registry.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.inc(4);
  EXPECT_EQ(c1.value(), 5u);

  Gauge& g = registry.gauge("x.depth");
  g.update_max(3.0);
  g.update_max(1.0);  // lower values never win
  EXPECT_DOUBLE_EQ(g.value(), 3.0);

  FixedHistogram& h1 = registry.histogram("x.delay", {1.0, 2.0, 4.0});
  FixedHistogram& h2 = registry.histogram("x.delay", {1.0, 2.0, 4.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(1);
  registry.gauge("alpha").set(2.0);
  registry.histogram("mid", {1.0}).record(0.5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.entries().size(), 3u);
  EXPECT_EQ(snap.entries()[0].name, "alpha");
  EXPECT_EQ(snap.entries()[1].name, "mid");
  EXPECT_EQ(snap.entries()[2].name, "zeta");
  EXPECT_DOUBLE_EQ(snap.value_of("zeta"), 1.0);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsSnapshot, MergeSemantics) {
  MetricsSnapshot a;
  a.add_counter("events", 3.0);
  a.add_gauge("depth", 2.0);
  a.add_histogram("lat", {1.0, 2.0}, {5, 0, 1});

  MetricsSnapshot b;
  b.add_counter("events", 4.0);
  b.add_gauge("depth", 7.0);
  b.add_histogram("lat", {1.0, 2.0}, {1, 2, 0});
  b.add_counter("only_b", 1.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value_of("events"), 7.0);   // counter: sum
  EXPECT_DOUBLE_EQ(a.value_of("depth"), 7.0);    // gauge: max
  EXPECT_DOUBLE_EQ(a.value_of("only_b"), 1.0);   // absent: adopted
  const MetricValue* lat = a.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->buckets, (std::vector<std::uint64_t>{6, 2, 1}));

  // Order-commutative: merging the other way yields the same snapshot.
  MetricsSnapshot a2;
  a2.add_counter("events", 4.0);
  a2.add_gauge("depth", 7.0);
  a2.add_histogram("lat", {1.0, 2.0}, {1, 2, 0});
  a2.add_counter("only_b", 1.0);
  MetricsSnapshot b2;
  b2.add_counter("events", 3.0);
  b2.add_gauge("depth", 2.0);
  b2.add_histogram("lat", {1.0, 2.0}, {5, 0, 1});
  a2.merge(b2);
  EXPECT_EQ(a, a2);
}

TEST(FixedHistogram, BucketsQuantilesAndOverflow) {
  FixedHistogram h({1.0, 2.0, 4.0});
  h.record(0.5);   // bucket 0
  h.record(1.5);   // bucket 1
  h.record(3.0);   // bucket 2
  h.record(100.0);  // overflow bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.total(), 4u);
  // Quantiles interpolate inside the containing bucket; the overflow
  // bucket clamps to the last bound.
  EXPECT_GT(h.quantile(0.1), 0.0);
  EXPECT_LE(h.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(
      FixedHistogram::quantile_of({1.0, 2.0, 4.0}, {1, 1, 1, 1}, 1.0), 4.0);
}

TEST(FixedHistogram, Log2BoundsGeometricAroundCenter) {
  const auto bounds = FixedHistogram::log2_bounds(1.0, /*below=*/2,
                                                  /*above=*/2);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.25);
  EXPECT_DOUBLE_EQ(bounds[2], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 4.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------
// Network integration: the seed-pinned per-channel drop regression

// Sends `count` messages on every out-channel at start.
class Sprayer final : public Node {
 public:
  explicit Sprayer(int count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (std::size_t ch = 0; ch < ctx.out_degree(); ++ch) {
      for (int i = 0; i < count_; ++i) {
        ctx.send(ch, std::make_unique<IntPayload>(i));
      }
    }
  }
  void on_message(Context&, std::size_t, const Payload&) override {}

 private:
  int count_;
};

NetworkConfig lossy_ring_config(std::uint64_t seed) {
  NetworkConfig config;
  config.topology = unidirectional_ring(4);
  config.delay = fixed_delay(1.0);
  config.loss_probability = 0.3;
  config.seed = seed;
  config.metrics = true;
  return config;
}

std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
run_lossy_ring(std::uint64_t seed) {
  Network net(lossy_ring_config(seed));
  net.build_nodes([](std::size_t) -> NodePtr {
    return std::make_unique<Sprayer>(50);
  });
  net.start();
  net.run_until_quiescent();
  return {net.delivered_by_channel(), net.dropped_by_channel()};
}

TEST(NetworkObs, LossyRingPerChannelCountsAreSeedPinned) {
  const auto [delivered, dropped] = run_lossy_ring(42);
  ASSERT_EQ(delivered.size(), 4u);  // one entry per ring edge
  ASSERT_EQ(dropped.size(), 4u);
  std::uint64_t total_dropped = 0;
  for (std::size_t e = 0; e < 4; ++e) {
    // Conservation per channel: every one of the 50 sends on edge e was
    // either delivered or dropped.
    EXPECT_EQ(delivered[e] + dropped[e], 50u) << "edge " << e;
    total_dropped += dropped[e];
  }
  EXPECT_GT(total_dropped, 0u) << "p=0.3 over 200 sends";

  // The regression proper: the same seed must reproduce the exact
  // per-channel split, bit for bit.
  const auto [delivered2, dropped2] = run_lossy_ring(42);
  EXPECT_EQ(delivered, delivered2);
  EXPECT_EQ(dropped, dropped2);
}

TEST(NetworkObs, SnapshotRowsMatchAggregateCounters) {
  Network net(lossy_ring_config(7));
  net.build_nodes([](std::size_t) -> NodePtr {
    return std::make_unique<Sprayer>(25);
  });
  net.start();
  net.run_until_quiescent();
  const MetricsSnapshot snap = net.metrics_snapshot();
  EXPECT_DOUBLE_EQ(snap.value_of("net.sent"),
                   static_cast<double>(net.metrics().messages_sent));
  EXPECT_DOUBLE_EQ(snap.value_of("net.dropped"),
                   static_cast<double>(net.metrics().messages_dropped));
  // Extended rows exist because config.metrics is on.
  const MetricValue* delay = snap.find("net.delay");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->kind, MetricKind::kHistogram);
  std::uint64_t delay_samples = 0;
  for (const std::uint64_t b : delay->buckets) delay_samples += b;
  EXPECT_EQ(delay_samples, net.metrics().messages_delivered);
  ASSERT_NE(snap.find("net.channels.lossy"), nullptr);
  ASSERT_NE(snap.find("sched.queue_high_water"), nullptr);
}

// ---------------------------------------------------------------------
// Trial-pool determinism: merged snapshots are chunk-schedule independent

ScenarioSpec lossy_ring_spec() {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kRingElection;
  spec.topology = TopologySpec{TopologyFamily::kRingUni, 6, 0.0};
  spec.failure = FailureProfile::loss(0.05);
  spec.deadline = 2e4;
  spec.settle_time = 5.0;
  return spec;
}

TEST(ScenarioObs, MergedMetricsBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = lossy_ring_spec();
  const ScenarioAggregate serial =
      run_scenario_trials(spec, /*trials=*/8, /*seed_base=*/42, /*threads=*/1);
  const ScenarioAggregate pooled =
      run_scenario_trials(spec, /*trials=*/8, /*seed_base=*/42, /*threads=*/4);
  ASSERT_FALSE(serial.metrics.empty());
  // merge() is order-commutative, so the chunk tree's shape must not leak
  // into the aggregate snapshot — this is what makes the sweep JSON's
  // metrics block reproducible for every ABE_TRIAL_THREADS.
  EXPECT_EQ(serial.metrics, pooled.metrics);
  EXPECT_GT(serial.metrics.value_of("net.sent"), 0.0);
  EXPECT_DOUBLE_EQ(serial.metrics.value_of("net.sent"),
                   serial.metrics.value_of("net.delivered") +
                       serial.metrics.value_of("net.dropped"));
}

// ---------------------------------------------------------------------
// ARQ metrics

TEST(ArqObs, ExperimentCarriesRttHistogramAndCounters) {
  const ArqResult result = run_arq_experiment(/*p_success=*/0.7,
                                              /*packets=*/40, /*slot=*/1.0,
                                              /*seed=*/13);
  EXPECT_EQ(result.packets, 40u);
  EXPECT_DOUBLE_EQ(result.metrics.value_of("arq.retransmits"),
                   static_cast<double>(result.retransmits));
  const MetricValue* rtt = result.metrics.find("arq.rtt");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->kind, MetricKind::kHistogram);
  std::uint64_t acked = 0;
  for (const std::uint64_t b : rtt->buckets) acked += b;
  EXPECT_EQ(acked, 40u) << "one RTT sample per acknowledged packet";
  // Round trip over a 1.0-delay link is at least 2 time units, so nothing
  // lands below the first log2 bucket's floor.
  EXPECT_GE(FixedHistogram::quantile_of(rtt->bounds, rtt->buckets, 0.0),
            0.0);
}

// ---------------------------------------------------------------------
// Flight recorder: failing trials dump recent history without pre-enabling

TEST(ScenarioObs, FailingTrialCarriesFlightTail) {
  ScenarioSpec spec = lossy_ring_spec();
  // Heavy loss: the election token is dropped with no retransmission, so
  // the ring goes all-passive and the trial stalls.
  spec.failure = FailureProfile::loss(0.5);
  spec.deadline = 5e3;

  bool saw_failure = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_failure; ++seed) {
    const ScenarioTrialResult trial = run_scenario_trial(spec, seed);
    if (trial.completed && trial.safety_ok) continue;
    saw_failure = true;
    // Nobody enabled tracing, yet the failure comes with its recent
    // history — the always-on flight ring, bounded by kFlightCapacity.
    EXPECT_FALSE(trial.flight_tail.empty());
    EXPECT_LE(trial.flight_tail.size(), Trace::kFlightCapacity);
    for (std::size_t i = 1; i < trial.flight_tail.size(); ++i) {
      EXPECT_LE(trial.flight_tail[i - 1].time, trial.flight_tail[i].time);
    }
  }
  EXPECT_TRUE(saw_failure) << "p=0.5 ring election never failed in 20 seeds";
}

TEST(ScenarioObs, CompletedTrialHasNoFlightTailButHasMetrics) {
  ScenarioSpec spec = lossy_ring_spec();
  spec.failure = FailureProfile::none();
  const ScenarioTrialResult trial = run_scenario_trial(spec, 1);
  ASSERT_TRUE(trial.completed);
  ASSERT_TRUE(trial.safety_ok);
  EXPECT_TRUE(trial.flight_tail.empty());
  // Scenario trials always harvest metrics (no RNG cost).
  ASSERT_TRUE(trial.has_metrics);
  EXPECT_GT(trial.metrics.value_of("net.sent"), 0.0);
  EXPECT_GE(trial.wall.run_ms, 0.0);
}

}  // namespace
}  // namespace abe
