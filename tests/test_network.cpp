// Integration-level tests for the discrete-event network runtime.
#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"

namespace abe {
namespace {

// Records everything it receives; optionally echoes back on channel 0.
class SinkNode final : public Node {
 public:
  struct Received {
    SimTime when;
    std::size_t in_index;
    std::int64_t value;
  };

  explicit SinkNode(bool echo = false) : echo_(echo) {}

  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override {
    const auto& msg = payload_as<IntPayload>(payload);
    received_.push_back(Received{ctx.real_now(), in_index, msg.value()});
    if (echo_ && ctx.out_degree() > 0) {
      ctx.send(0, std::make_unique<IntPayload>(msg.value() + 1000));
    }
  }

  const std::vector<Received>& received() const { return received_; }

 private:
  bool echo_;
  std::vector<Received> received_;
};

// Sends a burst of numbered messages on start.
class BurstNode final : public Node {
 public:
  explicit BurstNode(int count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (int i = 0; i < count_; ++i) {
      ctx.send(0, std::make_unique<IntPayload>(i));
    }
  }
  void on_message(Context&, std::size_t, const Payload&) override {}

 private:
  int count_;
};

NetworkConfig two_node_config(DelayModelPtr delay, ChannelOrdering ordering) {
  NetworkConfig config;
  config.topology = line(2);
  config.delay = std::move(delay);
  config.ordering = ordering;
  config.seed = 5;
  return config;
}

TEST(Network, DeliversWithFixedDelay) {
  Network net(two_node_config(fixed_delay(2.0), ChannelOrdering::kFifo));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(1));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(sink->received().size(), 1u);
  EXPECT_EQ(sink->received()[0].when, 2.0);
  EXPECT_EQ(sink->received()[0].value, 0);
  EXPECT_EQ(net.metrics().messages_sent, 1u);
  EXPECT_EQ(net.metrics().messages_delivered, 1u);
  EXPECT_EQ(net.metrics().in_flight(), 0u);
}

TEST(Network, FifoPreservesSendOrderUnderRandomDelay) {
  Network net(two_node_config(exponential_delay(1.0),
                              ChannelOrdering::kFifo));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(100));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(sink->received().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sink->received()[static_cast<std::size_t>(i)].value, i);
  }
}

TEST(Network, ArbitraryOrderReordersEventually) {
  bool reordered = false;
  for (std::uint64_t seed = 0; seed < 10 && !reordered; ++seed) {
    NetworkConfig config = two_node_config(exponential_delay(1.0),
                                           ChannelOrdering::kArbitrary);
    config.seed = seed;
    Network net(std::move(config));
    auto* sink = new SinkNode();
    net.add_node(std::make_unique<BurstNode>(50));
    net.add_node(NodePtr(sink));
    net.start();
    net.run_until_quiescent();
    for (std::size_t i = 1; i < sink->received().size(); ++i) {
      if (sink->received()[i].value < sink->received()[i - 1].value) {
        reordered = true;
        break;
      }
    }
  }
  EXPECT_TRUE(reordered) << "arbitrary ordering never reordered messages";
}

TEST(Network, PerChannelDelayOverride) {
  NetworkConfig config;
  config.topology = unidirectional_ring(2);  // edges 0->1 and 1->0
  config.delay = fixed_delay(1.0);
  config.seed = 1;
  Network net(std::move(config));
  net.set_channel_delay(0, fixed_delay(7.0));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(1));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(sink->received().size(), 1u);
  EXPECT_EQ(sink->received()[0].when, 7.0);
  EXPECT_EQ(net.expected_delay_bound(), 7.0);
}

TEST(Network, LossDropsMessages) {
  NetworkConfig config = two_node_config(fixed_delay(1.0),
                                         ChannelOrdering::kFifo);
  config.loss_probability = 0.5;
  Network net(std::move(config));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(1000));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  const auto& m = net.metrics();
  EXPECT_EQ(m.messages_sent, 1000u);
  EXPECT_EQ(m.messages_delivered + m.messages_dropped, 1000u);
  EXPECT_NEAR(static_cast<double>(m.messages_dropped), 500.0, 60.0);
  EXPECT_EQ(sink->received().size(), m.messages_delivered);
}

TEST(Network, ProcessingDelaySerialisesHandlers) {
  NetworkConfig config = two_node_config(fixed_delay(1.0),
                                         ChannelOrdering::kFifo);
  config.processing = ProcessingModel::fixed(2.0);
  Network net(std::move(config));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(3));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(sink->received().size(), 3u);
  // All arrive at t=1, but the node is busy 2.0 per message: handlers at
  // 3, 5, 7.
  EXPECT_EQ(sink->received()[0].when, 3.0);
  EXPECT_EQ(sink->received()[1].when, 5.0);
  EXPECT_EQ(sink->received()[2].when, 7.0);
}

TEST(Network, ZeroProcessingDeliversAtArrival) {
  Network net(two_node_config(fixed_delay(1.5), ChannelOrdering::kFifo));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(2));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  EXPECT_EQ(sink->received()[0].when, 1.5);
  EXPECT_EQ(sink->received()[1].when, 1.5);
}

class TimerNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    kept_ = ctx.set_timer_local(5.0, 1);
    cancelled_ = ctx.set_timer_local(3.0, 2);
    ctx.cancel_timer(cancelled_);
  }
  void on_message(Context&, std::size_t, const Payload&) override {}
  void on_timer(Context& ctx, TimerId id, std::uint64_t tag) override {
    fired_.push_back(tag);
    fired_ids_.push_back(id.value());
    fire_time_ = ctx.real_now();
    EXPECT_EQ(id.value(), kept_.value());
  }

  std::vector<std::uint64_t> fired_;
  std::vector<std::int64_t> fired_ids_;
  TimerId kept_{}, cancelled_{};
  SimTime fire_time_ = -1;
};

TEST(Network, TimersFireAndCancel) {
  NetworkConfig config;
  config.topology = unidirectional_ring(1);
  config.seed = 3;
  Network net(std::move(config));
  auto* node = new TimerNode();
  net.add_node(NodePtr(node));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(node->fired_.size(), 1u);
  EXPECT_EQ(node->fired_[0], 1u);
  EXPECT_EQ(node->fire_time_, 5.0);
  EXPECT_EQ(net.metrics().timers_fired, 1u);
}

TEST(Network, TimerHonoursClockRate) {
  NetworkConfig config;
  config.topology = unidirectional_ring(1);
  config.clock_bounds = {2.0, 2.0};  // clock runs 2x fast
  config.drift = DriftModel::kFixedRandomRate;
  config.seed = 3;
  Network net(std::move(config));
  auto* node = new TimerNode();
  net.add_node(NodePtr(node));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(node->fired_.size(), 1u);
  // 5 local units at rate 2.0 = 2.5 real units.
  EXPECT_NEAR(node->fire_time_, 2.5, 1e-9);
}

class TickCounter final : public Node {
 public:
  explicit TickCounter(std::uint64_t stop_after) : stop_after_(stop_after) {}
  void on_message(Context&, std::size_t, const Payload&) override {}
  void on_tick(Context& ctx, std::uint64_t tick) override {
    ++ticks_;
    times_.push_back(ctx.real_now());
    EXPECT_EQ(tick, ticks_);
  }
  bool is_terminated() const override { return ticks_ >= stop_after_; }

  std::uint64_t ticks_ = 0;
  std::uint64_t stop_after_;
  std::vector<SimTime> times_;
};

TEST(Network, TicksFireAtLocalPeriodAndStopOnTermination) {
  NetworkConfig config;
  config.topology = unidirectional_ring(1);
  config.enable_ticks = true;
  config.tick_local_period = 1.0;
  config.tick_phase = TickPhase::kAligned;  // pin exact tick instants
  config.seed = 4;
  Network net(std::move(config));
  auto* node = new TickCounter(5);
  net.add_node(NodePtr(node));
  net.start();
  net.run_until_quiescent(100.0);
  EXPECT_EQ(node->ticks_, 5u);  // termination stopped the tick train
  ASSERT_EQ(node->times_.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(node->times_[static_cast<std::size_t>(i)], i + 1.0, 1e-9);
  }
  EXPECT_EQ(net.metrics().ticks_fired, 5u);
}

TEST(Network, SlowClockTicksLater) {
  NetworkConfig config;
  config.topology = unidirectional_ring(1);
  config.enable_ticks = true;
  config.clock_bounds = {0.5, 0.5};
  config.drift = DriftModel::kFixedRandomRate;
  config.tick_phase = TickPhase::kAligned;
  config.seed = 4;
  Network net(std::move(config));
  auto* node = new TickCounter(3);
  net.add_node(NodePtr(node));
  net.start();
  net.run_until_quiescent(100.0);
  ASSERT_EQ(node->times_.size(), 3u);
  // Local period 1 at rate 0.5 = real period 2.
  EXPECT_NEAR(node->times_[0], 2.0, 1e-9);
  EXPECT_NEAR(node->times_[2], 6.0, 1e-9);
}

// The default tick phase desynchronises nodes: each tick train keeps the
// exact local period, but distinct nodes start at distinct offsets inside
// the first period, so ideal-clock nodes never tick in lockstep. (That
// lockstep regime made fixed-delay elections cycle through symmetric
// activation/purge rounds; see ElectionModelSweep.)
TEST(Network, RandomTickPhaseDesynchronisesNodesButKeepsPeriod) {
  NetworkConfig config;
  config.topology = unidirectional_ring(3);
  config.enable_ticks = true;
  config.tick_local_period = 1.0;
  config.seed = 4;
  Network net(std::move(config));
  std::vector<TickCounter*> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(new TickCounter(4));
    net.add_node(NodePtr(nodes.back()));
  }
  net.start();
  net.run_until_quiescent(100.0);
  std::vector<double> phases;
  for (TickCounter* node : nodes) {
    ASSERT_EQ(node->times_.size(), 4u);
    // First tick lands inside (0, 2) — phase in [0,1) plus one period.
    EXPECT_GT(node->times_[0], 0.0);
    EXPECT_LT(node->times_[0], 2.0);
    for (std::size_t k = 1; k < node->times_.size(); ++k) {
      EXPECT_NEAR(node->times_[k] - node->times_[k - 1], 1.0, 1e-9);
    }
    phases.push_back(node->times_[0]);
  }
  EXPECT_NE(phases[0], phases[1]);
  EXPECT_NE(phases[1], phases[2]);
  EXPECT_NE(phases[0], phases[2]);
}

TEST(Network, RunUntilPredicate) {
  Network net(two_node_config(fixed_delay(1.0), ChannelOrdering::kFifo));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(10));
  net.add_node(NodePtr(sink));
  net.start();
  const bool hit = net.run_until(
      [&] { return sink->received().size() >= 4; }, 100.0);
  EXPECT_TRUE(hit);
  EXPECT_GE(sink->received().size(), 4u);
  EXPECT_LT(sink->received().size(), 10u);
}

TEST(Network, RunUntilDeadlineMiss) {
  Network net(two_node_config(fixed_delay(50.0), ChannelOrdering::kFifo));
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(1));
  net.add_node(NodePtr(sink));
  net.start();
  const bool hit = net.run_until(
      [&] { return !sink->received().empty(); }, 10.0);
  EXPECT_FALSE(hit);
}

TEST(Network, TraceRecordsSendAndDeliver) {
  Network net(two_node_config(fixed_delay(1.0), ChannelOrdering::kFifo));
  net.trace().enable();
  auto* sink = new SinkNode();
  net.add_node(std::make_unique<BurstNode>(2));
  net.add_node(NodePtr(sink));
  net.start();
  net.run_until_quiescent();
  EXPECT_EQ(net.trace().count(TraceKind::kSend), 2u);
  EXPECT_EQ(net.trace().count(TraceKind::kDeliver), 2u);
  const auto sends = net.trace().filter(TraceKind::kSend);
  EXPECT_EQ(sends[0].node.value(), 0);
}

TEST(Network, MetricsPerNodeAndChannel) {
  NetworkConfig config;
  config.topology = unidirectional_ring(3);
  config.delay = fixed_delay(1.0);
  config.seed = 1;
  Network net(std::move(config));
  net.add_node(std::make_unique<BurstNode>(4));
  net.add_node(std::make_unique<SinkNode>());
  net.add_node(std::make_unique<SinkNode>());
  net.start();
  net.run_until_quiescent();
  EXPECT_EQ(net.metrics().sent_by_node[0], 4u);
  EXPECT_EQ(net.metrics().sent_by_node[1], 0u);
  EXPECT_EQ(net.metrics().sent_by_channel[0], 4u);
  EXPECT_EQ(net.metrics().mean_channel_delay(), 1.0);
  EXPECT_EQ(net.metrics().max_channel_delay, 1.0);
}

TEST(Network, EchoRoundTrip) {
  NetworkConfig config;
  config.topology = unidirectional_ring(2);
  config.delay = fixed_delay(1.0);
  config.seed = 1;
  Network net(std::move(config));
  auto* b = new SinkNode(/*echo=*/true);
  // Node 0 bursts via its ring channel to node 1, node 1 echoes back.
  net.add_node(std::make_unique<BurstNode>(1));
  net.add_node(NodePtr(b));
  net.start();
  net.run_until_quiescent();
  ASSERT_EQ(b->received().size(), 1u);
  EXPECT_EQ(net.metrics().messages_sent, 2u);  // original + echo
}

TEST(Network, StartRequiresAllNodes) {
  NetworkConfig config;
  config.topology = unidirectional_ring(2);
  Network net(std::move(config));
  net.add_node(std::make_unique<SinkNode>());
  EXPECT_DEATH(net.start(), "missing");
}

TEST(Network, ExtraNodeRejected) {
  NetworkConfig config;
  config.topology = unidirectional_ring(1);
  Network net(std::move(config));
  net.add_node(std::make_unique<SinkNode>());
  EXPECT_DEATH(net.add_node(std::make_unique<SinkNode>()), "more nodes");
}

}  // namespace
}  // namespace abe
