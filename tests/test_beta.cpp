// Tests for the β-synchronizer: must replicate lock-step semantics with
// tree-based overhead (and still respect Theorem 1's n-per-round floor).
#include "syncr/beta.h"

#include <gtest/gtest.h>

#include <numeric>

#include "syncr/alpha.h"
#include "syncr/apps.h"
#include "syncr/sync_runner.h"

namespace abe {
namespace {

TEST(Beta, MatchesReferenceOnBroadcastGrid) {
  const Topology t = grid(3, 4);
  const auto ref = run_synchronous(t, broadcast_app_factory(0), 8);
  const auto beta = run_beta_synchronizer(t, broadcast_app_factory(0), 8,
                                          exponential_delay(1.0), 5);
  ASSERT_TRUE(beta.completed);
  EXPECT_EQ(beta.outputs, ref.outputs);
}

TEST(Beta, MatchesReferenceOnMaxConsensus) {
  const Topology t = bidirectional_ring(10);
  std::vector<std::int64_t> values{4, 17, 3, 99, 5, 21, 8, 2, 54, 7};
  const auto ref = run_synchronous(t, max_app_factory(values), 6);
  const auto beta = run_beta_synchronizer(t, max_app_factory(values), 6,
                                          exponential_delay(1.0), 11);
  ASSERT_TRUE(beta.completed);
  EXPECT_EQ(beta.outputs, ref.outputs);
}

TEST(Beta, MatchesReferenceUnderHeavyTails) {
  const Topology t = line(7);
  const auto ref = run_synchronous(t, broadcast_app_factory(3), 7);
  const auto beta = run_beta_synchronizer(t, broadcast_app_factory(3), 7,
                                          lomax_delay(2.5, 1.0), 23);
  ASSERT_TRUE(beta.completed);
  EXPECT_EQ(beta.outputs, ref.outputs);
}

TEST(Beta, ManySeedsStaySound) {
  const Topology t = torus(3, 3);
  const auto ref = run_synchronous(t, broadcast_app_factory(4), 6);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto beta = run_beta_synchronizer(t, broadcast_app_factory(4), 6,
                                            exponential_delay(1.0), seed);
    ASSERT_TRUE(beta.completed) << "seed=" << seed;
    ASSERT_EQ(beta.outputs, ref.outputs) << "seed=" << seed;
  }
}

TEST(Beta, AllRoundsExecute) {
  const Topology t = complete(6);
  const auto beta = run_beta_synchronizer(t, counter_app_factory(), 12,
                                          exponential_delay(1.0), 3);
  ASSERT_TRUE(beta.completed);
  for (auto v : beta.outputs) EXPECT_EQ(v, 12);
}

// Theorem 1 bookkeeping: with a silent app, β's overhead is exactly the
// tree convergecast/broadcast: 2(n−1) messages per round (amortised; the
// first round has no GO yet and the last sends no new app messages).
TEST(Beta, SilentAppOverheadIsTreeOnly) {
  const Topology t = complete(8);  // alpha would pay |E| = 56 per round
  const std::uint64_t rounds = 20;
  const auto beta = run_beta_synchronizer(t, counter_app_factory(), rounds,
                                          exponential_delay(1.0), 3);
  ASSERT_TRUE(beta.completed);
  // Expect ~2(n-1) per round: SAFE up + GO down. Allow the off-by-one
  // boundary rounds.
  const double per_round = beta.messages_per_round;
  EXPECT_GE(per_round, 2.0 * 7 - 2.0);
  EXPECT_LE(per_round, 2.0 * 7 + 2.0);
  // Still at least n-ish per round — Theorem 1's floor (n=8: 14 >= 8).
  EXPECT_GE(per_round, 8.0);
}

TEST(Beta, CheaperThanAlphaOnDenseGraphs) {
  const Topology t = complete(10);  // |E| = 90
  const std::uint64_t rounds = 10;
  const auto alpha = run_alpha_synchronizer(t, counter_app_factory(), rounds,
                                            exponential_delay(1.0), 3);
  const auto beta = run_beta_synchronizer(t, counter_app_factory(), rounds,
                                          exponential_delay(1.0), 3);
  ASSERT_TRUE(alpha.completed);
  ASSERT_TRUE(beta.completed);
  EXPECT_LT(beta.messages_per_round, alpha.messages_per_round / 2.0);
}

TEST(Beta, SlowerThanAlphaOnDeepTopologies) {
  // The classic trade-off: β pays tree-height latency per round.
  const Topology t = line(16);
  const std::uint64_t rounds = 10;
  const auto alpha = run_alpha_synchronizer(t, counter_app_factory(), rounds,
                                            exponential_delay(1.0), 3);
  const auto beta = run_beta_synchronizer(t, counter_app_factory(), rounds,
                                          exponential_delay(1.0), 3);
  ASSERT_TRUE(alpha.completed);
  ASSERT_TRUE(beta.completed);
  EXPECT_GT(beta.completion_time, alpha.completion_time);
}

TEST(Beta, SingleNode) {
  const auto beta = run_beta_synchronizer(unidirectional_ring(1),
                                          counter_app_factory(), 5,
                                          exponential_delay(1.0), 1);
  ASSERT_TRUE(beta.completed);
  EXPECT_EQ(beta.outputs[0], 5);
  EXPECT_EQ(beta.messages_total, 0u);
}

TEST(BetaWiring, RoutesAreSane) {
  const Topology t = grid(2, 3);
  const SpanningTree tree = bfs_spanning_tree(t, 0);
  const auto wiring = build_beta_wiring(t, tree);
  ASSERT_EQ(wiring.size(), 6u);
  EXPECT_TRUE(wiring[0].is_root);
  std::size_t total_children = 0;
  for (const auto& w : wiring) total_children += w.children_out.size();
  EXPECT_EQ(total_children, 5u);  // n - 1 tree edges
  const auto in_adj = in_adjacency(t);
  for (std::size_t v = 0; v < t.n; ++v) {
    EXPECT_EQ(wiring[v].reverse_of_in.size(), in_adj[v].size());
  }
}

}  // namespace
}  // namespace abe
