// Tests for the BFS spanning-tree substrate.
#include "net/spanning_tree.h"

#include <gtest/gtest.h>

#include <set>

namespace abe {
namespace {

void expect_valid_tree(const SpanningTree& tree, std::size_t n) {
  ASSERT_EQ(tree.parent.size(), n);
  EXPECT_EQ(tree.parent[tree.root], tree.root);
  EXPECT_EQ(tree.depth[tree.root], 0u);
  // Every non-root has a parent with smaller depth; edges total n-1.
  std::size_t child_links = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (v != tree.root) {
      EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
    }
    child_links += tree.children[v].size();
    for (std::size_t c : tree.children[v]) {
      EXPECT_EQ(tree.parent[c], v);
    }
  }
  EXPECT_EQ(child_links, n - 1);
  EXPECT_EQ(tree.edge_count(), n - 1);
}

TEST(SpanningTree, LineIsAPath) {
  const Topology t = line(6);
  const SpanningTree tree = bfs_spanning_tree(t, 0);
  expect_valid_tree(tree, 6);
  EXPECT_EQ(tree.height(), 5u);
  for (std::size_t v = 1; v < 6; ++v) {
    EXPECT_EQ(tree.parent[v], v - 1);
  }
}

TEST(SpanningTree, StarFromHubHasHeightOne) {
  const SpanningTree tree = bfs_spanning_tree(star(9), 0);
  expect_valid_tree(tree, 9);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.children[0].size(), 8u);
}

TEST(SpanningTree, StarFromSpokeHasHeightTwo) {
  const SpanningTree tree = bfs_spanning_tree(star(9), 3);
  expect_valid_tree(tree, 9);
  EXPECT_EQ(tree.height(), 2u);
}

TEST(SpanningTree, GridBfsDepthsAreManhattan) {
  const SpanningTree tree = bfs_spanning_tree(grid(3, 4), 0);
  expect_valid_tree(tree, 12);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(tree.depth[r * 4 + c], r + c);
    }
  }
}

TEST(SpanningTree, CompleteGraphHeightOne) {
  const SpanningTree tree = bfs_spanning_tree(complete(7), 2);
  expect_valid_tree(tree, 7);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(SpanningTree, SingleNode) {
  const SpanningTree tree = bfs_spanning_tree(unidirectional_ring(1), 0);
  EXPECT_EQ(tree.edge_count(), 0u);
  EXPECT_EQ(tree.height(), 0u);
}

TEST(SpanningTree, UnidirectionalRingRejected) {
  // Tree edges need reverse channels; a one-way ring has none.
  EXPECT_DEATH(bfs_spanning_tree(unidirectional_ring(4), 0), "reverse");
}

TEST(SpanningTree, OutChannelMapConsistent) {
  const Topology t = grid(2, 3);
  const auto map = out_channel_to_neighbor(t);
  const auto out = out_adjacency(t);
  for (std::size_t u = 0; u < t.n; ++u) {
    for (std::size_t k = 0; k < out[u].size(); ++k) {
      const std::size_t v = t.edges[out[u][k]].to;
      EXPECT_EQ(map[u][v], k);
    }
  }
}

}  // namespace
}  // namespace abe
