// Parallel trial harness: run_election_trials over a thread pool must be a
// pure speedup — the aggregate it returns is required to be BIT-identical to
// the serial run for every thread count (fixed-chunk aggregation merged in
// seed order), so experiments never trade reproducibility for throughput.
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace abe {
namespace {

ElectionExperiment small_experiment() {
  ElectionExperiment e;
  e.n = 8;
  e.election.a0 = 0.3;
  e.settle_time = 5.0;
  return e;
}

void expect_identical(const ElectionAggregate& a, const ElectionAggregate& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_TRUE(a.messages == b.messages);
  EXPECT_TRUE(a.time == b.time);
  EXPECT_TRUE(a.ticks == b.ticks);
  EXPECT_TRUE(a.activations == b.activations);
  EXPECT_TRUE(a.purges == b.purges);
}

TEST(HarnessParallel, AggregatesBitIdenticalToSerialForEveryThreadCount) {
  // 29 trials: three full chunks of 8 plus a remainder of 5, so the test
  // covers uneven chunking too.
  const auto serial = run_election_trials(small_experiment(), 29, 500, 1);
  EXPECT_EQ(serial.trials, 29u);
  for (unsigned threads : {2u, 3u, 4u, 8u}) {
    const auto parallel =
        run_election_trials(small_experiment(), 29, 500, threads);
    expect_identical(serial, parallel);
  }
}

TEST(HarnessParallel, RepeatRunsAreDeterministic) {
  const auto a = run_election_trials(small_experiment(), 16, 700, 4);
  const auto b = run_election_trials(small_experiment(), 16, 700, 4);
  expect_identical(a, b);
}

TEST(HarnessParallel, SingleTrialAndMoreThreadsThanChunks) {
  const auto one = run_election_trials(small_experiment(), 1, 123, 16);
  EXPECT_EQ(one.trials, 1u);
  EXPECT_EQ(one.messages.count() + one.failures, 1u);
  expect_identical(one, run_election_trials(small_experiment(), 1, 123, 1));
}

// The aggregate must cover exactly the seeds seed_base … seed_base+trials-1:
// cross-check against manual per-seed runs.
TEST(HarnessParallel, CoversExactlyTheSeedRange) {
  const auto agg = run_election_trials(small_experiment(), 10, 300, 4);
  Summary manual;
  ElectionExperiment e = small_experiment();
  for (std::uint64_t s = 300; s < 310; ++s) {
    e.seed = s;
    const auto run = run_election(e);
    ASSERT_TRUE(run.elected);
    manual.add(static_cast<double>(run.messages));
  }
  ASSERT_EQ(agg.messages.count(), manual.count());
  // Chunked merging may reassociate floating point, so compare within a
  // relative epsilon rather than bitwise against the flat accumulation.
  EXPECT_NEAR(agg.messages.mean(), manual.mean(),
              1e-12 * (1.0 + manual.mean()));
  EXPECT_EQ(agg.messages.min(), manual.min());
  EXPECT_EQ(agg.messages.max(), manual.max());
}

TEST(HarnessParallel, EnvironmentKnobSelectsThreadsWithoutChangingResults) {
  ASSERT_EQ(setenv("ABE_TRIAL_THREADS", "3", 1), 0);
  const auto via_env = run_election_trials(small_experiment(), 13, 900, 0);
  ASSERT_EQ(setenv("ABE_TRIAL_THREADS", "all", 1), 0);
  const auto via_all = run_election_trials(small_experiment(), 13, 900, 0);
  ASSERT_EQ(unsetenv("ABE_TRIAL_THREADS"), 0);
  // Without the knob the default is serial (parallelism is opt-in).
  const auto serial = run_election_trials(small_experiment(), 13, 900, 0);
  expect_identical(via_env, serial);
  expect_identical(via_all, serial);
}

// The scenario sweep drives its cells through the same seed-chunked pool,
// so a full cell aggregate — including a random per-trial topology — must
// be bit-identical for every thread count too (ISSUE 3 acceptance).
TEST(HarnessParallel, ScenarioCellBitIdenticalForEveryThreadCount) {
  ScenarioSpec cell;
  cell.algorithm = ScenarioAlgorithm::kPollingElection;
  cell.topology = TopologySpec{TopologyFamily::kGeometric, 12, 0.0};
  // 21 trials: two full chunks of 8 plus a remainder of 5.
  const ScenarioAggregate serial = run_scenario_trials(cell, 21, 400, 1);
  EXPECT_EQ(serial.trials, 21u);
  EXPECT_EQ(serial.safety_violations, 0u);
  for (unsigned threads : {2u, 3u, 8u}) {
    const ScenarioAggregate parallel =
        run_scenario_trials(cell, 21, 400, threads);
    EXPECT_EQ(serial.trials, parallel.trials);
    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(serial.safety_violations, parallel.safety_violations);
    EXPECT_TRUE(serial.messages == parallel.messages);
    EXPECT_TRUE(serial.time == parallel.time);
  }
}

TEST(HarnessParallel, MergeCombinesCountersAndSummaries) {
  ElectionAggregate a;
  a.trials = 3;
  a.failures = 1;
  a.messages.add(10.0);
  a.messages.add(20.0);
  ElectionAggregate b;
  b.trials = 2;
  b.safety_violations = 1;
  b.messages.add(30.0);
  a.merge(b);
  EXPECT_EQ(a.trials, 5u);
  EXPECT_EQ(a.failures, 1u);
  EXPECT_EQ(a.safety_violations, 1u);
  EXPECT_EQ(a.messages.count(), 3u);
  EXPECT_DOUBLE_EQ(a.messages.mean(), 20.0);
  EXPECT_EQ(a.messages.min(), 10.0);
  EXPECT_EQ(a.messages.max(), 30.0);
}

}  // namespace
}  // namespace abe
