// Cross-module integration scenarios: full ABE deployments assembled from
// every substrate at once.
#include <gtest/gtest.h>

#include "core/abe.h"
#include "core/analysis.h"
#include "core/harness.h"
#include "net/arq.h"
#include "net/network.h"
#include "net/topology.h"
#include "stats/histogram.h"

namespace abe {
namespace {

// A "sensor network" deployment: lossy radio links (geometric
// retransmission), drifting oscillators, nonzero CPU time — everything
// Definition 1 allows at once. The election must still work.
TEST(Integration, SensorNetworkScenarioElects) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ElectionExperiment e;
    e.n = 24;
    e.delay = geometric_retransmission_delay(0.6, 0.5);  // mean 0.833
    e.clock_bounds = {0.8, 1.25};
    e.drift = DriftModel::kPiecewiseRandom;
    e.processing = ProcessingModel::exponential(0.05);
    e.election.a0 = 0.25;
    e.seed = seed * 31;
    e.settle_time = 30.0;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected) << "seed=" << seed;
    ASSERT_TRUE(result.safety_ok) << result.safety_detail;
  }
}

// Definition 1 knowledge extraction: a configured deployment advertises its
// (δ, s_low, s_high, γ) and the election only ever relied on those.
TEST(Integration, AbeParamsDescribeDeployment) {
  NetworkConfig config;
  config.topology = unidirectional_ring(8);
  config.delay = geometric_retransmission_delay(0.5, 1.0);
  config.clock_bounds = {0.9, 1.2};
  config.processing = ProcessingModel::exponential(0.1);
  Network net(std::move(config));
  const AbeParams params = abe_params_of(net);
  EXPECT_DOUBLE_EQ(params.delta, 2.0);  // slot/p = 1/0.5
  EXPECT_DOUBLE_EQ(params.delta,
                   expected_retransmission_delay(0.5, 1.0));
  EXPECT_FALSE(is_abd(net));  // retransmission delay is unbounded
}

// The empirical mean channel delay of a long election run converges to the
// model's advertised mean — the network really is ABE with that δ.
TEST(Integration, MeasuredMeanDelayMatchesDelta) {
  ElectionExperiment e;
  e.n = 64;
  e.delay_name = "exponential";
  e.mean_delay = 2.0;
  e.seed = 5;
  // Use the trials harness to accumulate enough deliveries.
  const auto agg = run_election_trials(e, 5, 50);
  EXPECT_EQ(agg.failures, 0u);

  // Re-run one instance and inspect the metrics directly.
  NetworkConfig config;
  config.topology = unidirectional_ring(64);
  config.delay = exponential_delay(2.0);
  config.enable_ticks = true;
  config.seed = 1234;
  Network net(std::move(config));
  ElectionOptions options;
  options.a0 = 0.3;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();
  net.run_until([&] {
    return net.metrics().messages_delivered >= 500;
  }, 1e7);
  EXPECT_NEAR(net.metrics().mean_channel_delay(), 2.0, 0.3);
}

// ARQ-derived delay equals the analytic 1/p law end to end: build the lossy
// link, measure, compare with the DelayModel shortcut.
TEST(Integration, ArqMeasurementMatchesDelayModelShortcut) {
  const double p = 0.4;
  const ArqResult arq = run_arq_experiment(p, 2000, 1.0, 9);
  EXPECT_NEAR(arq.mean_attempts, expected_transmissions(p), 0.15);

  Rng rng(17);
  const auto model = geometric_retransmission_delay(p, 1.0);
  Histogram h;
  for (int i = 0; i < 20000; ++i) h.add(model->sample(rng));
  EXPECT_NEAR(h.mean(), arq.mean_attempts, 0.2);
}

// Heavy-tail evidence: an exponential-delay network observes individual
// delays far above δ even though the mean honours it (ABE's "all executions
// possible, long delays improbable"). A plain tick-driven pump generates
// the traffic so the sample count does not depend on how quickly an
// election happens to converge.
TEST(Integration, LongDelaysOccurButAreRare) {
  class PumpNode final : public Node {
   public:
    void on_tick(Context& ctx, std::uint64_t tick) override {
      ctx.send(0, std::make_unique<IntPayload>(static_cast<std::int64_t>(tick)));
    }
    void on_message(Context&, std::size_t, const Payload&) override {}
  };

  NetworkConfig config;
  config.topology = unidirectional_ring(32);
  config.delay = exponential_delay(1.0);
  config.enable_ticks = true;
  config.seed = 77;
  Network net(std::move(config));
  net.build_nodes(
      [](std::size_t) -> NodePtr { return std::make_unique<PumpNode>(); });
  net.start();
  const bool enough = net.run_until(
      [&] { return net.metrics().messages_delivered >= 2000; }, 1e5);
  ASSERT_TRUE(enough);
  EXPECT_GT(net.metrics().max_channel_delay, 4.0);
  EXPECT_NEAR(net.metrics().mean_channel_delay(), 1.0, 0.15);
}

// Equal-δ invariance: the election's message complexity is essentially the
// same across delay laws with the same mean (bench E5's claim, smoke-sized).
TEST(Integration, MessageComplexityStableAcrossDelayLaws) {
  double means[2];
  int idx = 0;
  for (const char* name : {"fixed", "lomax"}) {
    ElectionExperiment e;
    e.n = 32;
    e.delay_name = name;
    e.election.a0 = linear_regime_a0(e.n);
    const auto agg = run_election_trials(e, 15, 400);
    ASSERT_EQ(agg.failures, 0u);
    means[idx++] = agg.messages.mean();
  }
  // Same mean delay => message counts within 2x of each other (they are
  // typically within ~20%; 2x guards against flaky seeds).
  EXPECT_LT(means[0], means[1] * 2.0);
  EXPECT_LT(means[1], means[0] * 2.0);
}

}  // namespace
}  // namespace abe
