// Unit tests for drifting local clocks (Definition 1(2)).
#include "clock/local_clock.h"

#include <gtest/gtest.h>

#include <cmath>

namespace abe {
namespace {

TEST(ClockBounds, ValidateAcceptsSane) {
  ClockBounds b{0.5, 2.0};
  b.validate();
  EXPECT_EQ(b.ratio(), 4.0);
}

TEST(ClockBounds, ValidateRejectsInverted) {
  ClockBounds b{2.0, 0.5};
  EXPECT_DEATH(b.validate(), "");
}

TEST(LocalClock, IdealClockIsIdentity) {
  LocalClock c({1.0, 1.0}, DriftModel::kNone, Rng(1));
  for (double t : {0.0, 0.5, 10.0, 1234.5}) {
    EXPECT_DOUBLE_EQ(c.local_at(t), t);
    EXPECT_DOUBLE_EQ(c.real_at(t), t);
    EXPECT_DOUBLE_EQ(c.rate_at(t), 1.0);
  }
}

TEST(LocalClock, FixedRateWithinBounds) {
  const ClockBounds bounds{0.8, 1.3};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    LocalClock c(bounds, DriftModel::kFixedRandomRate, Rng(seed));
    const double rate = c.rate_at(5.0);
    EXPECT_GE(rate, bounds.s_low);
    EXPECT_LE(rate, bounds.s_high);
    // Fixed model: same rate everywhere.
    EXPECT_DOUBLE_EQ(c.rate_at(100.0), rate);
    EXPECT_NEAR(c.local_at(10.0), 10.0 * rate, 1e-9);
  }
}

TEST(LocalClock, PiecewiseRespectsDefinitionBounds) {
  const ClockBounds bounds{0.5, 2.0};
  LocalClock c(bounds, DriftModel::kPiecewiseRandom, Rng(99), 3.0);
  // Definition 1(2): for every interval, s_low*(t2-t1) <= C(t2)-C(t1)
  // <= s_high*(t2-t1).
  double prev_local = 0.0;
  double prev_real = 0.0;
  for (int i = 1; i <= 300; ++i) {
    const double real = i * 0.7;
    const double local = c.local_at(real);
    const double dt = real - prev_real;
    const double dl = local - prev_local;
    ASSERT_GE(dl, bounds.s_low * dt - 1e-9);
    ASSERT_LE(dl, bounds.s_high * dt + 1e-9);
    prev_local = local;
    prev_real = real;
  }
}

TEST(LocalClock, LocalTimeStrictlyIncreases) {
  LocalClock c({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(7), 1.0);
  double prev = -1.0;
  for (int i = 0; i <= 500; ++i) {
    const double local = c.local_at(i * 0.31);
    ASSERT_GT(local, prev);
    prev = local;
  }
}

TEST(LocalClock, RealAtInvertsLocalAt) {
  LocalClock c({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(21), 2.0);
  for (double real : {0.1, 1.0, 3.7, 12.0, 55.5, 200.0}) {
    const double local = c.local_at(real);
    EXPECT_NEAR(c.real_at(local), real, 1e-6);
  }
}

TEST(LocalClock, RealAtBeyondExploredTerritory) {
  LocalClock c({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(22), 1.0);
  // Querying far-future local times must extend segments on demand.
  const double real = c.real_at(500.0);
  EXPECT_GT(real, 500.0 / 2.0 - 1e-9);   // cannot be faster than s_high
  EXPECT_LT(real, 500.0 / 0.5 + 1e-9);   // cannot be slower than s_low
  EXPECT_NEAR(c.local_at(real), 500.0, 1e-6);
}

TEST(LocalClock, QueryingPastStaysConsistent) {
  LocalClock c({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(23), 1.5);
  const double at10 = c.local_at(10.0);
  c.local_at(100.0);  // extend far ahead
  EXPECT_DOUBLE_EQ(c.local_at(10.0), at10);  // history is immutable
}

TEST(LocalClock, SeedDeterminesTrajectory) {
  LocalClock a({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(5), 1.0);
  LocalClock b({0.5, 2.0}, DriftModel::kPiecewiseRandom, Rng(5), 1.0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.local_at(i * 0.9), b.local_at(i * 0.9));
  }
}

TEST(LocalClock, DriftModelNames) {
  EXPECT_STREQ(drift_model_name(DriftModel::kNone), "none");
  EXPECT_STREQ(drift_model_name(DriftModel::kFixedRandomRate),
               "fixed-random");
  EXPECT_STREQ(drift_model_name(DriftModel::kPiecewiseRandom),
               "piecewise-random");
}

}  // namespace
}  // namespace abe
