// Event-queue subsystem tests: backend selection, per-backend unit
// behavior, the auto heap->calendar migration, and the randomized
// differential trace that pins the subsystem's core contract — every
// backend pops the bit-identical sequence for the same schedule/cancel/run
// trace, so backend choice can never change a seeded simulation.
//
// The tier-1 differential here runs at n ≈ 4k live events; the n ≈ 10^5
// version (and the n ≥ 10^4 scenario-level cross-backend check) lives in
// test_equeue_stress.cpp under the `slow` label.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/equeue/backend.h"
#include "sim/equeue/event_queue.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace abe {
namespace {

constexpr EqueueBackend kConcreteBackends[] = {
    EqueueBackend::kHeap, EqueueBackend::kCalendar, EqueueBackend::kLadder};

std::uint64_t bits_of(double t) {
  std::uint64_t b;
  std::memcpy(&b, &t, sizeof(b));
  return b;
}

// --- backend selection ------------------------------------------------------

// Backend-selection tests assert specific backends, which an ABE_EQUEUE
// override legitimately defeats (it wins by design); skip under one so the
// whole suite stays green when swept across backends via the environment.
bool equeue_env_pinned() {
  const char* env = std::getenv("ABE_EQUEUE");
  return env != nullptr && env[0] != '\0';
}

TEST(EqueueBackendNames, RoundTrip) {
  for (EqueueBackend b :
       {EqueueBackend::kAuto, EqueueBackend::kHeap, EqueueBackend::kCalendar,
        EqueueBackend::kLadder}) {
    EqueueBackend parsed;
    ASSERT_TRUE(equeue_backend_from_name(equeue_backend_name(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  EqueueBackend unused = EqueueBackend::kAuto;
  EXPECT_FALSE(equeue_backend_from_name("bogus", &unused));
  EXPECT_FALSE(equeue_backend_from_name("", &unused));
  EXPECT_EQ(unused, EqueueBackend::kAuto);  // untouched on failure
}

TEST(EqueueBackendNames, EnvOverrideWinsAndInvalidIsIgnored) {
  if (equeue_env_pinned()) GTEST_SKIP() << "ABE_EQUEUE pinned externally";
  ::unsetenv("ABE_EQUEUE");  // may be set-but-empty
  EXPECT_EQ(resolve_equeue_backend(EqueueBackend::kHeap),
            EqueueBackend::kHeap);

  ::setenv("ABE_EQUEUE", "ladder", 1);
  EXPECT_EQ(resolve_equeue_backend(EqueueBackend::kHeap),
            EqueueBackend::kLadder);
  {
    Scheduler s(EqueueBackend::kHeap);  // env overrides the explicit choice
    EXPECT_STREQ(s.backend_name(), "ladder");
  }
  ::setenv("ABE_EQUEUE", "not-a-backend", 1);
  EXPECT_EQ(resolve_equeue_backend(EqueueBackend::kCalendar),
            EqueueBackend::kCalendar);
  ::unsetenv("ABE_EQUEUE");
}

TEST(Equeue, SchedulerReportsBackendAndPending) {
  if (equeue_env_pinned()) GTEST_SKIP() << "ABE_EQUEUE pinned externally";
  for (EqueueBackend b : kConcreteBackends) {
    Scheduler s(b);
    EXPECT_STREQ(s.backend_name(), equeue_backend_name(b));
    EXPECT_EQ(s.pending(), 0u);
    s.schedule_at(1.0, [] {});
    s.schedule_at(2.0, [] {});
    EXPECT_EQ(s.pending(), 2u);
    EXPECT_EQ(s.pending(), s.live_count());
  }
}

// --- EventQueue unit behavior ----------------------------------------------

TEST(Equeue, PopsInKeyOrderWithFifoTies) {
  for (EqueueBackend b : kConcreteBackends) {
    auto q = make_event_queue(b);
    // Three distinct times, each with three FIFO-tied entries.
    std::uint64_t seq = 0;
    for (double t : {5.0, 1.0, 3.0}) {
      for (int i = 0; i < 3; ++i) {
        q->push(QueueEntry{bits_of(t), seq, static_cast<std::uint32_t>(seq)});
        ++seq;
      }
    }
    ASSERT_EQ(q->size(), 9u) << q->name();
    std::uint64_t prev_seq = 0;
    double prev_t = -1.0;
    for (int i = 0; i < 9; ++i) {
      const QueueEntry e = q->pop_min();
      const double t = entry_time(e);
      ASSERT_GE(t, prev_t) << q->name();
      if (t == prev_t) {
        EXPECT_GT(e.seq, prev_seq) << q->name() << ": ties must pop FIFO";
      }
      prev_t = t;
      prev_seq = e.seq;
    }
    EXPECT_TRUE(q->empty()) << q->name();
    EXPECT_EQ(q->peek_min(), nullptr) << q->name();
  }
}

TEST(Equeue, PeekMatchesPopAndEraseRemoves) {
  for (EqueueBackend b : kConcreteBackends) {
    auto q = make_event_queue(b);
    q->push(QueueEntry{bits_of(2.0), 0, 10});
    q->push(QueueEntry{bits_of(1.0), 1, 20});
    q->push(QueueEntry{bits_of(3.0), 2, 30});
    const QueueEntry* top = q->peek_min();
    ASSERT_NE(top, nullptr) << q->name();
    EXPECT_EQ(top->slot, 20u) << q->name();
    EXPECT_TRUE(q->erase_slot(20)) << q->name();
    EXPECT_EQ(q->size(), 2u);
    EXPECT_EQ(q->pop_min().slot, 10u) << q->name();
    EXPECT_EQ(q->pop_min().slot, 30u) << q->name();
  }
}

TEST(Equeue, DrainMovesEverythingOut) {
  for (EqueueBackend b : kConcreteBackends) {
    auto q = make_event_queue(b);
    Rng rng(3);
    for (std::uint32_t i = 0; i < 100; ++i) {
      q->push(QueueEntry{bits_of(rng.uniform01() * 50.0), i, i});
    }
    std::vector<QueueEntry> out;
    q->drain_into(out);
    EXPECT_EQ(out.size(), 100u) << q->name();
    EXPECT_TRUE(q->empty()) << q->name();
    // The queue is reusable after a drain.
    q->push(QueueEntry{bits_of(1.0), 1000, 7});
    EXPECT_EQ(q->pop_min().slot, 7u) << q->name();
  }
}

TEST(Equeue, InfinityAndZeroTimesStayOrdered) {
  for (EqueueBackend b : kConcreteBackends) {
    auto q = make_event_queue(b);
    q->push(QueueEntry{bits_of(kTimeInfinity), 0, 0});
    q->push(QueueEntry{bits_of(0.0), 1, 1});
    q->push(QueueEntry{bits_of(1e300), 2, 2});
    q->push(QueueEntry{bits_of(kTimeInfinity), 3, 3});
    EXPECT_EQ(q->pop_min().slot, 1u) << q->name();
    EXPECT_EQ(q->pop_min().slot, 2u) << q->name();
    EXPECT_EQ(q->pop_min().slot, 0u) << q->name();
    EXPECT_EQ(q->pop_min().slot, 3u) << q->name();
  }
}

// --- auto policy ------------------------------------------------------------

TEST(Equeue, AutoMigratesToCalendarPastThreshold) {
  if (equeue_env_pinned()) GTEST_SKIP() << "ABE_EQUEUE pinned externally";
  Scheduler s;  // default: auto
  EXPECT_STREQ(s.backend_name(), "heap");
  std::vector<EventId> ids;
  for (std::size_t i = 0; i < kEqueueAutoThreshold; ++i) {
    ids.push_back(s.schedule_at(static_cast<double>(i), [] {}));
  }
  EXPECT_STREQ(s.backend_name(), "heap");  // exactly at the threshold
  ids.push_back(
      s.schedule_at(0.5, [] {}));  // crosses the threshold: migrate
  EXPECT_STREQ(s.backend_name(), "calendar");
  EXPECT_EQ(s.pending(), kEqueueAutoThreshold + 1);

  // Handles issued before the migration still cancel the right events.
  EXPECT_TRUE(s.cancel(ids[3]));
  EXPECT_FALSE(s.cancel(ids[3]));
  // And execution order is unaffected: event at 0 first, 0.5 second.
  s.run_steps(2);
  EXPECT_EQ(s.now(), 0.5);
}

TEST(Equeue, ExplicitBackendNeverMigrates) {
  if (equeue_env_pinned()) GTEST_SKIP() << "ABE_EQUEUE pinned externally";
  Scheduler s(EqueueBackend::kHeap);
  for (std::size_t i = 0; i < kEqueueAutoThreshold + 64; ++i) {
    s.schedule_at(static_cast<double>(i), [] {});
  }
  EXPECT_STREQ(s.backend_name(), "heap");
}

// --- randomized differential trace -----------------------------------------

// One trace event: (time, tag) in execution order.
using Trace = std::vector<std::pair<double, int>>;

// Drives `s` through a deterministic pseudo-random schedule/cancel/run
// trace (seeded by `seed`) and records every executed action. The trace
// covers: schedule_at/schedule_in (with time clusters, exact ties, lattice
// times, heavy tails), direct cancels, cancels of stale ids (already run /
// already cancelled), run_steps, run_until with request_stop fired from
// inside actions, and a final drain.
Trace drive(Scheduler& s, std::uint64_t seed, int rounds, int target_live) {
  Trace trace;
  Rng rng(seed);
  std::vector<EventId> handles;   // mix of live and stale handles
  std::vector<EventId> retired;   // known-stale (cancelled or likely run)
  int tag = 0;

  const auto schedule_one = [&] {
    const double r = rng.uniform01();
    double t;
    if (r < 0.35) {
      t = s.now() + rng.exponential(1.0);
    } else if (r < 0.5) {
      t = s.now() + rng.uniform01() * 100.0;
    } else if (r < 0.6) {
      t = s.now();  // simultaneous with the current instant
    } else if (r < 0.7) {
      t = s.now() + 10.0 + rng.uniform01() * 1e-7;  // tight cluster
    } else if (r < 0.8) {
      t = s.now() + static_cast<double>(1 + rng.uniform_int(5));  // lattice
    } else if (r < 0.9) {
      t = s.now() + rng.exponential(1.0) * 1000.0;  // far tail
    } else {
      t = s.now() + 0.25 * static_cast<double>(rng.uniform_int(4));
    }
    const int this_tag = tag++;
    const bool stopper = rng.bernoulli(0.02);
    handles.push_back(s.schedule_at(t, [&trace, &s, this_tag, stopper] {
      trace.emplace_back(s.now(), this_tag);
      if (stopper) s.request_stop();
    }));
  };

  for (int round = 0; round < rounds; ++round) {
    const int burst = 1 + static_cast<int>(rng.uniform_int(
                              static_cast<std::size_t>(target_live / 8)));
    for (int i = 0; i < burst && s.pending() <
                                     static_cast<std::uint64_t>(target_live);
         ++i) {
      schedule_one();
    }
    // Cancels: a mix of live, already-cancelled and already-run handles.
    const int cancels = static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < cancels && !handles.empty(); ++i) {
      const std::size_t pick = rng.uniform_int(handles.size());
      if (s.cancel(handles[pick])) {
        retired.push_back(handles[pick]);
      }
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (!retired.empty() && rng.bernoulli(0.5)) {
      // Stale-handle cancels must be rejected (and must not disturb state).
      const std::size_t pick = rng.uniform_int(retired.size());
      EXPECT_FALSE(s.cancel(retired[pick]));
    }
    // Run: steps or a deadline window (which exercises peek-then-pop and
    // the request_stop/run_until interleaving semantics).
    if (rng.bernoulli(0.5)) {
      s.run_steps(1 + rng.uniform_int(16));
    } else {
      s.run_until(s.now() + rng.uniform01() * 10.0);
    }
  }
  s.run();  // drain
  return trace;
}

TEST(EqueueDifferential, IdenticalTraceAcrossAllBackends) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    Scheduler heap(EqueueBackend::kHeap);
    const Trace reference = drive(heap, seed, /*rounds=*/300,
                                  /*target_live=*/4096);
    ASSERT_FALSE(reference.empty());
    // Times must be nondecreasing (sanity of the reference itself).
    for (std::size_t i = 1; i < reference.size(); ++i) {
      ASSERT_GE(reference[i].first, reference[i - 1].first);
    }
    for (EqueueBackend b :
         {EqueueBackend::kCalendar, EqueueBackend::kLadder,
          EqueueBackend::kAuto}) {
      Scheduler other(b);
      const Trace got = drive(other, seed, 300, 4096);
      ASSERT_EQ(got.size(), reference.size())
          << equeue_backend_name(b) << " seed " << seed;
      EXPECT_TRUE(got == reference)
          << equeue_backend_name(b) << " seed " << seed
          << ": pop sequence diverged from the heap reference";
    }
  }
}

}  // namespace
}  // namespace abe
