// Tests for the paper's closed-form quantities and the ABE parameter
// plumbing.
#include "core/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/abe.h"
#include "core/election_variants.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/rng.h"

namespace abe {
namespace {

TEST(Analysis, ExpectedTransmissionsIsOneOverP) {
  EXPECT_DOUBLE_EQ(expected_transmissions(1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_transmissions(0.5), 2.0);
  EXPECT_DOUBLE_EQ(expected_transmissions(0.1), 10.0);
}

// The paper's series: k_avg = Σ (k+1)(1-p)^k p. Evaluate it numerically and
// confirm it telescopes to 1/p.
TEST(Analysis, SeriesMatchesClosedForm) {
  for (double p : {0.2, 0.5, 0.8}) {
    double series = 0.0;
    for (int k = 0; k < 2000; ++k) {
      series += (k + 1) * std::pow(1.0 - p, k) * p;
    }
    EXPECT_NEAR(series, expected_transmissions(p), 1e-9) << "p=" << p;
  }
}

TEST(Analysis, RetransmissionTailUnbounded) {
  // (1-p)^k > 0 for every k: no sure bound on the delay exists.
  for (std::uint64_t k : {0ull, 1ull, 10ull, 100ull}) {
    EXPECT_GT(retransmission_tail(0.5, k), 0.0);
  }
  EXPECT_DOUBLE_EQ(retransmission_tail(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(retransmission_tail(1.0, 5), 0.0);
}

TEST(Analysis, ActivationProbabilityBasics) {
  EXPECT_DOUBLE_EQ(activation_probability(0.3, 1), 0.3);
  EXPECT_NEAR(activation_probability(0.3, 2), 1 - 0.49, 1e-12);
  // Monotone in d.
  double prev = 0.0;
  for (std::uint64_t d = 1; d <= 64; ++d) {
    const double p = activation_probability(0.2, d);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

// The design invariant the paper states: "the overall wake-up probability
// for all nodes stays constant over time". Whatever partition of the ring
// the gap counters describe, the combined activation probability equals
// 1 − (1−A0)^n.
TEST(Analysis, CombinedActivationInvariantUnderPartitions) {
  const double a0 = 0.25;
  const std::uint64_t n = 24;
  const std::vector<std::vector<std::uint64_t>> partitions = {
      std::vector<std::uint64_t>(24, 1),  // nobody knocked out
      {24},                               // one survivor
      {12, 12},
      {8, 8, 8},
      {1, 2, 3, 4, 5, 9},
      {23, 1},
  };
  const double expected = 1.0 - std::pow(1.0 - a0, static_cast<double>(n));
  for (const auto& gaps : partitions) {
    std::uint64_t total = 0;
    for (auto g : gaps) total += g;
    ASSERT_EQ(total, n);
    EXPECT_NEAR(
        combined_activation_probability(a0, gaps.data(), gaps.size()),
        expected, 1e-12);
  }
}

// Monte-Carlo cross-check of the invariant: simulate idle nodes with the
// given gaps flipping coins; the empirical at-least-one-activation rate
// matches 1 − (1−A0)^n.
TEST(Analysis, CombinedActivationMonteCarlo) {
  const double a0 = 0.15;
  const std::vector<std::uint64_t> gaps = {5, 3, 7, 1};  // n = 16
  Rng rng(77);
  const int kTrials = 200000;
  int any = 0;
  for (int t = 0; t < kTrials; ++t) {
    bool activated = false;
    for (auto g : gaps) {
      if (rng.bernoulli(activation_probability(a0, g))) activated = true;
    }
    any += activated ? 1 : 0;
  }
  const double expected =
      combined_activation_probability(a0, gaps.data(), gaps.size());
  EXPECT_NEAR(static_cast<double>(any) / kTrials, expected, 0.005);
}

TEST(Analysis, ExpectedTicksToActivation) {
  EXPECT_DOUBLE_EQ(expected_ticks_to_activation(0.5), 2.0);
  EXPECT_DOUBLE_EQ(expected_ticks_to_activation(1.0), 1.0);
}

TEST(Analysis, RetransmissionDelayScalesWithSlot) {
  EXPECT_DOUBLE_EQ(expected_retransmission_delay(0.25, 2.0), 8.0);
}

TEST(ActivationPolicy, NamesRoundTrip) {
  for (auto p : {ActivationPolicy::kAdaptive, ActivationPolicy::kConstant,
                 ActivationPolicy::kLinear}) {
    EXPECT_EQ(activation_policy_from_name(activation_policy_name(p)), p);
  }
  EXPECT_DEATH(activation_policy_from_name("bogus"), "unknown");
}

TEST(ActivationPolicy, PolicyValues) {
  EXPECT_DOUBLE_EQ(
      activation_probability_for(ActivationPolicy::kConstant, 0.3, 10), 0.3);
  EXPECT_DOUBLE_EQ(
      activation_probability_for(ActivationPolicy::kLinear, 0.3, 2), 0.6);
  EXPECT_DOUBLE_EQ(
      activation_probability_for(ActivationPolicy::kLinear, 0.3, 10), 1.0);
  EXPECT_NEAR(
      activation_probability_for(ActivationPolicy::kAdaptive, 0.3, 2),
      0.51, 1e-12);
}

TEST(AbeParams, ValidateAndPrint) {
  AbeParams params;
  params.delta = 2.0;
  params.clocks = {0.5, 2.0};
  params.gamma = 0.1;
  params.validate();
  const std::string s = params.to_string();
  EXPECT_NE(s.find("delta=2"), std::string::npos);
}

TEST(AbeParams, DerivedFromNetwork) {
  NetworkConfig config;
  config.topology = unidirectional_ring(4);
  config.delay = exponential_delay(3.0);
  config.clock_bounds = {0.9, 1.1};
  config.processing = ProcessingModel::exponential(0.25);
  Network net(std::move(config));
  const AbeParams params = abe_params_of(net);
  EXPECT_DOUBLE_EQ(params.delta, 3.0);
  EXPECT_DOUBLE_EQ(params.clocks.s_low, 0.9);
  EXPECT_DOUBLE_EQ(params.gamma, 0.25);
  EXPECT_FALSE(is_abd(net));
}

TEST(AbeParams, AbdDetection) {
  NetworkConfig config;
  config.topology = unidirectional_ring(4);
  config.delay = uniform_delay(0.5, 1.5);
  Network net(std::move(config));
  EXPECT_TRUE(is_abd(net));
}

}  // namespace
}  // namespace abe
