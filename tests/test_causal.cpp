// Tests for the happens-before reconstruction and critical-path profiler
// (obs/causal.h): unit chain extraction and attribution on hand-built
// traces, the exact attribution identity on real simulator trials, the
// byte-stable golden rendering of a fixed-seed cell across event-queue
// backends and trial-pool thread counts, and cross-runtime causal parity
// (the same structural chain invariants hold on the thread substrate).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "runtime/runtime.h"
#include "scenario/drivers.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace abe {
namespace {

TraceEvent make_event(std::int64_t id, TraceKind kind, std::int64_t node,
                      SimTime time, std::int64_t cause, std::int64_t arg = -1,
                      double delay = 0.0, double work = 0.0) {
  TraceEvent e;
  e.id = id;
  e.kind = kind;
  e.node = NodeId{node};
  e.time = time;
  e.cause = cause;
  e.arg = arg;
  e.delay = delay;
  e.work = work;
  return e;
}

// A two-hop chain: tick on node 0 at t=1, token to node 1 (gap 2 = 1.5
// delay + 0.25 work + 0.25 queue), token on to node 2 (gap 3 = 2 + 0.5 +
// 0.5), decision at t=6.
std::vector<TraceEvent> two_hop_chain() {
  return {
      make_event(0, TraceKind::kTick, 0, 1.0, -1),
      make_event(1, TraceKind::kSend, 0, 1.0, 0, /*arg=*/0),
      make_event(2, TraceKind::kDeliver, 1, 3.0, 1, /*arg=*/0, 1.5, 0.25),
      make_event(3, TraceKind::kSend, 1, 3.0, 2, /*arg=*/1),
      make_event(4, TraceKind::kDeliver, 2, 6.0, 3, /*arg=*/1, 2.0, 0.5),
  };
}

TEST(CriticalPath, ExtractsChainAndAttributesExactly) {
  const CriticalPath path =
      extract_critical_path(two_hop_chain(), NodeId{2}, 6.0);
  ASSERT_TRUE(path.found);
  EXPECT_FALSE(path.truncated);
  EXPECT_EQ(path.hops, 2u);
  ASSERT_EQ(path.chain.size(), 5u);
  EXPECT_EQ(path.chain.front().id, 0);
  EXPECT_EQ(path.chain.back().id, 4);
  EXPECT_DOUBLE_EQ(path.span, 6.0);
  EXPECT_DOUBLE_EQ(path.waiting, 1.0);        // root tick lead-in
  EXPECT_DOUBLE_EQ(path.channel_delay, 3.5);  // 1.5 + 2.0
  EXPECT_DOUBLE_EQ(path.processing, 0.75);    // 0.25 + 0.5
  EXPECT_DOUBLE_EQ(path.queueing, 0.75);      // the rest of the two gaps
  EXPECT_DOUBLE_EQ(
      path.waiting + path.channel_delay + path.processing + path.queueing,
      path.span);
}

TEST(CriticalPath, DecisionEventIsLastHandlerAtOrBeforeDecisionTime) {
  std::vector<TraceEvent> events = two_hop_chain();
  // Later traffic at the decision node must not steal the anchor.
  events.push_back(
      make_event(5, TraceKind::kDeliver, 2, 9.0, -1, /*arg=*/1, 1.0, 0.0));
  const CriticalPath path = extract_critical_path(events, NodeId{2}, 6.0);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.chain.back().id, 4);
  // And an unknown node finds nothing.
  EXPECT_FALSE(extract_critical_path(events, NodeId{7}, 6.0).found);
}

TEST(CriticalPath, BackgroundTickDoesNotStealTheAnchor) {
  // On the thread runtime a queued tick can pop at the decision node
  // between the deciding DELIVER and the wall-clock decision_time read.
  // The anchor must stay on the DELIVER — a TICK anchors only when the
  // node saw no message/timer handler at all.
  std::vector<TraceEvent> events = two_hop_chain();
  events.push_back(make_event(5, TraceKind::kTick, 2, 6.5, -1));
  const CriticalPath path = extract_critical_path(events, NodeId{2}, 7.0);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.chain.back().id, 4);
  EXPECT_EQ(path.hops, 2u);
  // A node with only tick activity still anchors on its last tick.
  const std::vector<TraceEvent> ticks = {
      make_event(0, TraceKind::kTick, 0, 1.0, -1),
      make_event(1, TraceKind::kTick, 0, 2.0, 0),
  };
  const CriticalPath tick_path = extract_critical_path(ticks, NodeId{0}, 2.0);
  ASSERT_TRUE(tick_path.found);
  EXPECT_EQ(tick_path.chain.back().id, 1);
  EXPECT_EQ(tick_path.hops, 0u);
  EXPECT_DOUBLE_EQ(tick_path.waiting, 2.0);
}

TEST(CriticalPath, EvictedCauseMarksTruncated) {
  // Drop the first two events, as ring eviction would: the walk hits
  // cause=1 below the retained window and must stop, flagged truncated,
  // with span measuring only the retained extent.
  std::vector<TraceEvent> events = two_hop_chain();
  events.erase(events.begin(), events.begin() + 2);
  const CriticalPath path = extract_critical_path(events, NodeId{2}, 6.0);
  ASSERT_TRUE(path.found);
  EXPECT_TRUE(path.truncated);
  ASSERT_EQ(path.chain.size(), 3u);
  EXPECT_EQ(path.chain.front().id, 2);
  EXPECT_DOUBLE_EQ(path.span, 3.0);  // 6.0 - 3.0
}

TEST(CriticalPath, EdgeSharesSumPerEdge) {
  const CriticalPath path =
      extract_critical_path(two_hop_chain(), NodeId{2}, 6.0);
  const std::vector<EdgeShare> shares = path.edge_shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].edge, 0);
  EXPECT_DOUBLE_EQ(shares[0].delay, 1.5);
  EXPECT_EQ(shares[1].edge, 1);
  EXPECT_DOUBLE_EQ(shares[1].delay, 2.0);
}

TEST(CriticalPathAggregate, WorstTrialTieBreaksOnSmallerSeed) {
  CriticalPath path = extract_critical_path(two_hop_chain(), NodeId{2}, 6.0);
  const CriticalPathStats stats = CriticalPathStats::from_path(path);
  CriticalPathAggregate agg;
  agg.add(stats, /*seed=*/9);
  agg.add(stats, /*seed=*/4);  // same span, smaller seed wins
  ASSERT_TRUE(agg.has_worst);
  EXPECT_EQ(agg.worst_seed, 4u);
  EXPECT_EQ(agg.considered, 2u);
  EXPECT_EQ(agg.found, 2u);
  // Channels sum across trials; top_channels ranks by delay descending.
  const std::vector<EdgeShare> top = agg.top_channels(8);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].edge, 1);
  EXPECT_DOUBLE_EQ(top[0].delay, 4.0);
  EXPECT_EQ(top[1].edge, 0);
}

// ---------------------------------------------------------------------------
// Real trials

ScenarioSpec ring_spec() {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kRingElection;
  spec.topology = TopologySpec{TopologyFamily::kRingUni, 8, 0.0};
  spec.settle_time = 5.0;
  spec.causal_history = true;
  return spec;
}

TEST(CriticalPath, AttributionSumsToDecisionTimeOnSimulator) {
  // The headline invariant: the four components telescope EXACTLY (not
  // approximately) to the trial's decision time on the simulator — with a
  // non-zero processing model so all four components are live.
  ScenarioSpec spec = ring_spec();
  spec.processing = ProcessingModel::fixed(0.05);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ScenarioTrialResult trial = run_scenario_trial(spec, seed);
    ASSERT_TRUE(trial.completed) << "seed " << seed;
    ASSERT_TRUE(trial.has_critical_path) << "seed " << seed;
    const CriticalPathStats& cp = trial.critical_path;
    ASSERT_TRUE(cp.found) << "seed " << seed;
    EXPECT_FALSE(cp.truncated) << "seed " << seed;
    EXPECT_GE(cp.hops, 1u);
    EXPECT_GT(cp.processing, 0.0);
    EXPECT_DOUBLE_EQ(cp.span, trial.time) << "seed " << seed;
    EXPECT_DOUBLE_EQ(
        cp.waiting + cp.channel_delay + cp.processing + cp.queueing,
        trial.time)
        << "seed " << seed;
  }
}

TEST(CriticalPath, GoldenByteStableAcrossBackendsAndThreads) {
  // The serialized aggregate of a fixed-seed cell is the golden artifact:
  // every equeue backend and every trial-pool width must produce the same
  // bytes (same JSON number rendering, same Summary merge order).
  const EqueueBackend backends[] = {EqueueBackend::kHeap,
                                    EqueueBackend::kCalendar,
                                    EqueueBackend::kLadder};
  std::string golden;
  for (const EqueueBackend backend : backends) {
    for (const unsigned threads : {1u, 4u}) {
      ScenarioSpec spec = ring_spec();
      spec.equeue = backend;
      const ScenarioAggregate agg =
          run_scenario_trials(spec, /*trials=*/6, /*seed_base=*/1, threads);
      EXPECT_EQ(agg.critical_path.found, 6u);
      std::string json;
      append_critical_path_json(agg.critical_path, &json);
      if (golden.empty()) {
        golden = json;
        // The aggregate carries real content, not an all-zero skeleton.
        EXPECT_NE(json.find("\"worst\""), std::string::npos) << json;
      } else {
        EXPECT_EQ(json, golden)
            << "backend " << equeue_backend_name(backend) << " threads "
            << threads;
      }
    }
  }
}

// Structural invariants every reconstructed chain must satisfy on BOTH
// substrates: root-first order, DELIVER hops caused by the SEND on the
// same edge, SEND hops caused by a handler-kind event.
void check_chain_structure(const CriticalPath& path) {
  ASSERT_TRUE(path.found);
  ASSERT_FALSE(path.chain.empty());
  for (std::size_t i = 1; i < path.chain.size(); ++i) {
    const CriticalPathHop& prev = path.chain[i - 1];
    const CriticalPathHop& hop = path.chain[i];
    EXPECT_LT(prev.id, hop.id);
    if (hop.kind == TraceKind::kDeliver) {
      EXPECT_EQ(prev.kind, TraceKind::kSend) << "hop " << i;
      EXPECT_EQ(prev.arg, hop.arg) << "hop " << i << ": edge mismatch";
    } else if (hop.kind == TraceKind::kSend) {
      const bool handler = prev.kind == TraceKind::kDeliver ||
                           prev.kind == TraceKind::kTimer ||
                           prev.kind == TraceKind::kTick;
      EXPECT_TRUE(handler) << "hop " << i;
    }
  }
}

TEST(CriticalPath, CausalLinksParityAcrossRuntimes) {
  // Both substrates stamp the same send->deliver and schedule->fire links:
  // a decision-terminated chain exists on each, with identical structural
  // invariants. (Wall-clock timing differs by design, so the parity is
  // structural, not bit-exact — the simulator side additionally keeps the
  // exact attribution identity.)
  ScenarioSpec spec = ring_spec();
  spec.topology.n = 6;
  spec.deadline = 2e4;
  spec.thread_time_scale_us = 100.0;
  spec.thread_wall_timeout_ms = 10000.0;

  for (const RuntimeKind runtime : {RuntimeKind::kSim, RuntimeKind::kThread}) {
    spec.runtime = runtime;
    ASSERT_EQ(runtime_cell_problem(spec), "");
    // Mirrors run_scenario_trial's per-trial topology substream.
    Rng topo_rng = Rng(/*seed=*/1).substream("scenario-topology");
    const Topology topology = spec.topology.build(topo_rng);
    ScenarioTrialDriver binding = make_scenario_driver(spec, topology, 1);
    RuntimeConfig config = scenario_runtime_config(spec, topology, 1);
    binding.driver->configure(config);
    const SimTime deadline = config.deadline;
    const std::unique_ptr<Runtime> rt =
        make_runtime(runtime, std::move(config));
    rt->build_nodes(
        [&](std::size_t i) { return binding.driver->make_node(i); });
    rt->start();
    const bool completed = rt->run_until_done(
        [&] { return binding.driver->done(*rt); }, deadline);
    ASSERT_TRUE(completed) << runtime_kind_name(runtime);
    binding.driver->on_complete(*rt);
    const Trace decided = rt->trace_snapshot();
    binding.driver->settle(*rt, completed);
    rt->stop();
    const TrialOutcome outcome = binding.driver->extract(*rt, completed);
    ASSERT_GE(outcome.decision_node, 0) << runtime_kind_name(runtime);

    const CriticalPath path = extract_critical_path(
        decided.events(), NodeId{outcome.decision_node}, outcome.time);
    SCOPED_TRACE(runtime_kind_name(runtime));
    check_chain_structure(path);
    EXPECT_FALSE(path.truncated);  // causal_history widens both rings
    EXPECT_GE(path.hops, 1u);
    if (runtime == RuntimeKind::kSim) {
      EXPECT_DOUBLE_EQ(path.waiting + path.channel_delay + path.processing +
                           path.queueing,
                       outcome.time);
    }
  }
}

}  // namespace
}  // namespace abe
