// Tests for the synchronous apps, the reference runner, the α-synchronizer
// and the ABD synchronizer (Theorem 1 territory).
#include <gtest/gtest.h>

#include <numeric>

#include "net/topology.h"
#include "syncr/abd_sync.h"
#include "syncr/alpha.h"
#include "syncr/apps.h"
#include "syncr/sync_runner.h"

namespace abe {
namespace {

// ------------------------- reference runner ---------------------------

TEST(SyncRunner, BroadcastComputesBfsDepthOnLine) {
  const Topology t = line(6);
  const auto result =
      run_synchronous(t, broadcast_app_factory(0), /*rounds=*/10);
  ASSERT_EQ(result.outputs.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.outputs[i], static_cast<std::int64_t>(i));
  }
}

TEST(SyncRunner, BroadcastWavefrontOnRing) {
  const Topology t = bidirectional_ring(8);
  const auto result = run_synchronous(t, broadcast_app_factory(3), 10);
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t cw = (i + 8 - 3) % 8;
    const std::size_t ccw = (3 + 8 - i) % 8;
    EXPECT_EQ(result.outputs[i],
              static_cast<std::int64_t>(std::min(cw, ccw)))
        << "node " << i;
  }
}

TEST(SyncRunner, BroadcastUnreachedIsMinusOne) {
  const Topology t = line(5);
  const auto result = run_synchronous(t, broadcast_app_factory(0), 2);
  EXPECT_EQ(result.outputs[2], 2);
  EXPECT_EQ(result.outputs[3], -1);  // wavefront has not arrived yet
  EXPECT_EQ(result.outputs[4], -1);
}

TEST(SyncRunner, MaxConsensusConvergesInDiameterRounds) {
  const Topology t = grid(3, 3);
  std::vector<std::int64_t> values(9);
  std::iota(values.begin(), values.end(), 10);
  const std::uint64_t rounds = diameter(t);
  const auto result = run_synchronous(t, max_app_factory(values), rounds);
  for (auto v : result.outputs) {
    EXPECT_EQ(v, 18);
  }
}

TEST(SyncRunner, MaxConsensusIncompleteBeforeDiameter) {
  const Topology t = line(10);
  std::vector<std::int64_t> values(10, 0);
  values[9] = 100;  // extreme value at one end
  const auto result = run_synchronous(t, max_app_factory(values), 3);
  EXPECT_EQ(result.outputs[0], 0);  // too far for 3 rounds
  EXPECT_EQ(result.outputs[7], 100);
}

TEST(SyncRunner, CounterCountsRounds) {
  const Topology t = complete(4);
  const auto result = run_synchronous(t, counter_app_factory(), 17);
  for (auto v : result.outputs) EXPECT_EQ(v, 17);
  EXPECT_EQ(result.messages_sent, 0u);  // counter app never sends
}

TEST(SyncRunner, SingleNodeTopology) {
  const Topology t = unidirectional_ring(1);
  const auto result = run_synchronous(t, broadcast_app_factory(0), 3);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 0);
}

// ------------------------- α-synchronizer -----------------------------

TEST(Alpha, MatchesReferenceOnBroadcast) {
  const Topology t = grid(3, 4);
  const auto ref = run_synchronous(t, broadcast_app_factory(0), 8);
  const auto alpha = run_alpha_synchronizer(t, broadcast_app_factory(0), 8,
                                            exponential_delay(1.0), 5);
  ASSERT_TRUE(alpha.completed);
  EXPECT_EQ(alpha.outputs, ref.outputs);
}

TEST(Alpha, MatchesReferenceOnMaxConsensus) {
  const Topology t = bidirectional_ring(10);
  std::vector<std::int64_t> values{4, 17, 3, 99, 5, 21, 8, 2, 54, 7};
  const auto ref = run_synchronous(t, max_app_factory(values), 6);
  const auto alpha = run_alpha_synchronizer(t, max_app_factory(values), 6,
                                            exponential_delay(1.0), 11);
  ASSERT_TRUE(alpha.completed);
  EXPECT_EQ(alpha.outputs, ref.outputs);
}

TEST(Alpha, MatchesReferenceUnderHeavyTailDelays) {
  const Topology t = line(7);
  const auto ref = run_synchronous(t, broadcast_app_factory(3), 7);
  const auto alpha = run_alpha_synchronizer(t, broadcast_app_factory(3), 7,
                                            lomax_delay(2.5, 1.0), 23);
  ASSERT_TRUE(alpha.completed);
  EXPECT_EQ(alpha.outputs, ref.outputs);
}

TEST(Alpha, WorksOnUnidirectionalRing) {
  const Topology t = unidirectional_ring(6);
  const auto ref = run_synchronous(t, broadcast_app_factory(0), 6);
  const auto alpha = run_alpha_synchronizer(t, broadcast_app_factory(0), 6,
                                            exponential_delay(1.0), 7);
  ASSERT_TRUE(alpha.completed);
  EXPECT_EQ(alpha.outputs, ref.outputs);
}

// Theorem 1 embodiment: α sends exactly |E| envelopes per round — on a
// unidirectional ring, exactly n per round, meeting the lower bound with
// equality; never fewer than n on any strongly-connected digraph.
TEST(Alpha, MessagesPerRoundEqualsEdgeCount) {
  for (std::size_t n : {4, 9, 16}) {
    const Topology t = unidirectional_ring(n);
    const auto alpha = run_alpha_synchronizer(
        t, counter_app_factory(), 12, exponential_delay(1.0), 3);
    ASSERT_TRUE(alpha.completed);
    EXPECT_DOUBLE_EQ(alpha.messages_per_round, static_cast<double>(n));
  }
  const Topology g = grid(3, 3);
  const auto alpha = run_alpha_synchronizer(
      g, counter_app_factory(), 12, exponential_delay(1.0), 3);
  EXPECT_DOUBLE_EQ(alpha.messages_per_round,
                   static_cast<double>(g.edge_count()));
  EXPECT_GE(alpha.messages_per_round, static_cast<double>(g.n));
}

TEST(Alpha, AllRoundsExecuteEverywhere) {
  const Topology t = torus(3, 3);
  const auto alpha = run_alpha_synchronizer(t, counter_app_factory(), 9,
                                            exponential_delay(2.0), 19);
  ASSERT_TRUE(alpha.completed);
  for (auto v : alpha.outputs) EXPECT_EQ(v, 9);
}

// ------------------------- ABD synchronizer ---------------------------

TEST(AbdSync, CorrectOnAbdNetwork) {
  // Fixed delay 1, period multiplier 1.5 => period 1.5 > Δ: sound.
  const Topology t = grid(2, 3);
  const auto result = run_abd_synchronizer(
      t, broadcast_app_factory(0), 8, fixed_delay(1.0), 1.5, 3);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.late_messages, 0u);
  EXPECT_TRUE(result.outputs_match_reference);
}

TEST(AbdSync, CorrectOnBoundedUniformDelays) {
  // Uniform [0,2] has worst case 2; multiplier 2.5 of mean 1 => period 2.5.
  const Topology t = bidirectional_ring(8);
  const auto result = run_abd_synchronizer(
      t, broadcast_app_factory(2), 10, uniform_delay(0.0, 2.0), 2.5, 9);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.late_messages, 0u);
  EXPECT_TRUE(result.outputs_match_reference);
}

TEST(AbdSync, ZeroOverheadMessaging) {
  // The counter app sends nothing: the ABD synchronizer moves rounds with
  // ZERO messages — legal only because a sure delay bound exists. (Theorem 1
  // says this is impossible for ABE/asynchronous networks.)
  const Topology t = complete(5);
  const auto result = run_abd_synchronizer(
      t, counter_app_factory(), 12, fixed_delay(1.0), 1.5, 1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.messages_total, 0u);
  for (auto v : result.outputs) EXPECT_EQ(v, 12);
}

TEST(AbdSync, ViolatesOnAbeDelays) {
  // Exponential delays: P(delay > c·mean) = e^{-c}. With multiplier 1.0
  // roughly a third of messages overshoot their round; some run of seeds
  // must exhibit late messages and output corruption.
  const Topology t = bidirectional_ring(10);
  std::uint64_t total_late = 0;
  int mismatches = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto result = run_abd_synchronizer(
        t, broadcast_app_factory(0), 10, exponential_delay(1.0), 1.0, seed);
    ASSERT_TRUE(result.completed);
    total_late += result.late_messages;
    if (!result.outputs_match_reference) ++mismatches;
  }
  EXPECT_GT(total_late, 0u);
  EXPECT_GT(mismatches, 0);
}

TEST(AbdSync, LargerPeriodReducesViolations) {
  const Topology t = bidirectional_ring(8);
  auto late_at = [&](double multiplier) {
    std::uint64_t late = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto r = run_abd_synchronizer(t, broadcast_app_factory(0), 10,
                                          exponential_delay(1.0), multiplier,
                                          seed);
      late += r.late_messages;
    }
    return late;
  };
  const std::uint64_t tight = late_at(0.5);
  const std::uint64_t generous = late_at(6.0);
  EXPECT_GT(tight, generous);
  EXPECT_EQ(generous, 0u);  // e^{-6} over ~hundreds of messages
}

TEST(AbdSync, ClockDriftAloneBreaksIt) {
  // Bounded delays but drifting clocks: round windows slide apart and
  // eventually messages land late anyway — Definition 1(2) matters.
  const Topology t = bidirectional_ring(8);
  std::uint64_t late = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto r = run_abd_synchronizer(
        t, broadcast_app_factory(0), 40, fixed_delay(1.0), 1.2, seed,
        ClockBounds{0.7, 1.4}, DriftModel::kFixedRandomRate);
    ASSERT_TRUE(r.completed);
    late += r.late_messages;
  }
  EXPECT_GT(late, 0u);
}

}  // namespace
}  // namespace abe
