// Scenario engine tests: the polling general-graph election, the registry
// (every registered scenario runs one trial cell here, so none can rot
// silently), matrix expansion, sweep determinism, and the JSON emitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "algo/polling_election.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace abe {
namespace {

// --- polling election -----------------------------------------------------

PollingExperiment polling_on(Topology topology, std::uint64_t seed = 1) {
  PollingExperiment e;
  e.topology = std::move(topology);
  e.seed = seed;
  return e;
}

void expect_safe_election(const PollingRunResult& r, std::size_t n) {
  ASSERT_TRUE(r.elected);
  EXPECT_TRUE(r.safety_ok) << r.safety_detail;
  EXPECT_EQ(r.woken, n) << "polling must wake every node explicitly";
  EXPECT_EQ(r.max_leaders_ever, 1u);
  EXPECT_GE(r.rounds, 1u);
}

TEST(PollingElection, ElectsOnTorus) {
  const auto r = run_polling_election(polling_on(torus(4, 4)));
  expect_safe_election(r, 16);
  // One tie-free round: WAKE + ECHO + RESULT over n−1 tree edges each.
  EXPECT_LE(r.messages_total, 3u * 15u);
}

TEST(PollingElection, ElectsOnHypercubeAndRgg) {
  expect_safe_election(run_polling_election(polling_on(hypercube(5))), 32);
  Rng rng(9);
  const Topology field = random_geometric(24, 0.3, rng);
  expect_safe_election(run_polling_election(polling_on(field)), 24);
}

TEST(PollingElection, ElectsOnBidirectionalRingUnderHeavyTail) {
  PollingExperiment e = polling_on(bidirectional_ring(12));
  e.delay_name = "lomax";
  expect_safe_election(run_polling_election(e), 12);
}

TEST(PollingElection, SingleNodeIsLeaderImmediately) {
  const auto r = run_polling_election(polling_on(bidirectional_ring(1)));
  expect_safe_election(r, 1);
  EXPECT_EQ(r.messages_total, 0u);
}

TEST(PollingElection, TiedIdsForceExtraRoundsButOneLeader) {
  // 1-bit ids on 8 nodes: round one ties with probability 1 − 9/2⁷ ≈ 0.93,
  // so extinction has to iterate. Safety must hold regardless.
  PollingExperiment e = polling_on(torus(2, 4), /*seed=*/3);
  e.id_bits = 1;
  const auto r = run_polling_election(e);
  expect_safe_election(r, 8);
  EXPECT_GE(r.rounds, 2u) << "1-bit ids on 8 nodes should tie at least once";
}

TEST(PollingElection, LossStallsAsFailureNeverAsSafetyViolation) {
  // Heavy loss drops WAKE/ECHO/RESULT messages: many trials cannot finish
  // the poll. That is the injected failure being measured — it must be
  // counted as a failed trial; "safety violation" is reserved for a
  // genuine two-leader bug, which loss cannot produce.
  // 5% per-message loss over the ~24 tree messages of a tie-free run:
  // ≈29% of trials complete untouched, the rest stall somewhere.
  PollingExperiment e = polling_on(torus(3, 3));
  e.loss_probability = 0.05;
  e.deadline = 2e4;
  const PollingAggregate agg = run_polling_trials(e, 40, 100);
  EXPECT_EQ(agg.trials, 40u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_GT(agg.failures, 0u)
      << "5% loss over ~24 tree messages should stall some trials";
  EXPECT_LT(agg.failures, 40u) << "and some trials should still finish";
}

TEST(PollingElection, WiringRejectsUnidirectionalRing) {
  EXPECT_DEATH(build_polling_wiring(unidirectional_ring(4)), "");
}

TEST(PollingElection, TrialsBitIdenticalForEveryThreadCount) {
  PollingExperiment e = polling_on(torus(3, 3));
  const PollingAggregate serial = run_polling_trials(e, 19, 100, 1);
  EXPECT_EQ(serial.trials, 19u);
  EXPECT_EQ(serial.failures, 0u);
  EXPECT_EQ(serial.safety_violations, 0u);
  for (unsigned threads : {2u, 4u, 8u}) {
    const PollingAggregate parallel = run_polling_trials(e, 19, 100, threads);
    EXPECT_TRUE(serial.messages == parallel.messages);
    EXPECT_TRUE(serial.time == parallel.time);
    EXPECT_TRUE(serial.rounds == parallel.rounds);
  }
}

// --- registry -------------------------------------------------------------

TEST(ScenarioRegistry, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const ScenarioSpec& s : scenario_registry()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(find_scenario(s.name), &s);
    EXPECT_TRUE(
        scenario_algorithm_supports(s.algorithm, s.topology.family))
        << s.name << " registers an impossible algorithm/topology pair";
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

// Every registered scenario runs one trial cell under ctest (per-case
// timeout via tests/CMakeLists.txt). Seed 1 is a checked-in known-good
// seed: trials are deterministic given the seed, so completion and safety
// are exact assertions, not flaky statistics — if a registered spec stops
// electing or violates safety, the failing parameterised case names it.
class RegistryScenarioTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryScenarioTest, OneTrialCellCompletesSafely) {
  const ScenarioSpec* spec = find_scenario(GetParam());
  ASSERT_NE(spec, nullptr);
  const ScenarioTrialResult trial = run_scenario_trial(*spec, /*seed=*/1);
  EXPECT_TRUE(trial.completed) << "seed-1 trial missed its deadline";
  EXPECT_TRUE(trial.safety_ok) << trial.safety_detail;
  EXPECT_GT(trial.time, 0.0);
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : scenario_registry()) names.push_back(s.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, RegistryScenarioTest,
    ::testing::ValuesIn(registry_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- matrix expansion -----------------------------------------------------

TEST(ScenarioMatrix, RobustnessSweepCoversAcceptanceAxes) {
  const ScenarioMatrix* m = find_sweep("robustness");
  ASSERT_NE(m, nullptr);
  const std::vector<ScenarioSpec> cells = m->expand();

  std::set<std::string> ids;
  std::set<TopologyFamily> polling_families;
  std::set<std::string> ring_delays;
  for (const ScenarioSpec& cell : cells) {
    EXPECT_TRUE(ids.insert(cell.cell_id()).second)
        << "duplicate cell " << cell.cell_id();
    EXPECT_TRUE(
        scenario_algorithm_supports(cell.algorithm, cell.topology.family));
    if (cell.algorithm == ScenarioAlgorithm::kPollingElection) {
      polling_families.insert(cell.topology.family);
    } else if (cell.algorithm == ScenarioAlgorithm::kRingElection) {
      EXPECT_EQ(cell.topology.family, TopologyFamily::kRingUni);
      ring_delays.insert(cell.delay_name);
    }
  }
  // The acceptance matrix: both algorithms, {ring, torus, hypercube, rgg},
  // {fixed, exponential, heavy-tail}.
  EXPECT_TRUE(polling_families.count(TopologyFamily::kRingBi));
  EXPECT_TRUE(polling_families.count(TopologyFamily::kTorus));
  EXPECT_TRUE(polling_families.count(TopologyFamily::kHypercube));
  EXPECT_TRUE(polling_families.count(TopologyFamily::kGeometric));
  EXPECT_EQ(ring_delays,
            (std::set<std::string>{"fixed", "exponential", "lomax"}));
}

TEST(ScenarioMatrix, ExpansionFiltersImpossiblePairsSilently) {
  ScenarioMatrix m;
  m.algorithms = {ScenarioAlgorithm::kRingElection};
  m.topologies = {TopologySpec{TopologyFamily::kTorus, 16, 0.0},
                  TopologySpec{TopologyFamily::kRingUni, 8, 0.0}};
  m.delays = {{"exponential", 1.0}};
  const auto cells = m.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].topology.family, TopologyFamily::kRingUni);
}

// --- runtime axis ---------------------------------------------------------

TEST(RuntimeAxis, CellIdCarriesThreadSuffixOnlyForThreadCells) {
  ScenarioSpec spec;
  const std::string sim_id = spec.cell_id();
  EXPECT_EQ(sim_id.find("/rt-"), std::string::npos)
      << "simulator cells keep their pre-runtime-axis ids";
  spec.runtime = RuntimeKind::kThread;
  EXPECT_EQ(spec.cell_id(), sim_id + "/rt-thread");
}

TEST(RuntimeAxis, ProblemsAreStructuralAndNamedWithoutAborting) {
  ScenarioSpec spec;
  EXPECT_EQ(runtime_cell_problem(spec), "") << "the simulator runs anything";

  spec.runtime = RuntimeKind::kThread;
  EXPECT_EQ(runtime_cell_problem(spec), "");

  spec.drift = DriftModel::kPiecewiseRandom;
  EXPECT_NE(runtime_cell_problem(spec), "")
      << "wall clocks cannot wander piecewise";
  spec.drift = DriftModel::kNone;

  spec.equeue = EqueueBackend::kLadder;
  EXPECT_NE(runtime_cell_problem(spec), "")
      << "the event queue is a simulator knob";
  spec.equeue = EqueueBackend::kAuto;

  spec.topology.n = kMaxThreadRuntimeNodes + 1;
  EXPECT_NE(runtime_cell_problem(spec), "")
      << "one OS thread per node has a budget";
  spec.topology.n = 8;
  EXPECT_EQ(runtime_cell_problem(spec), "");
}

TEST(RuntimeAxis, DescribeNamesThreadCompatibilityPerCell) {
  const ScenarioSpec* lossy = find_scenario("ring-lossy");
  ASSERT_NE(lossy, nullptr);
  EXPECT_NE(lossy->describe().find("thread?  : ok"), std::string::npos);

  // sensor-network pins piecewise drift, which threads cannot realise; the
  // describe output must say why instead of leaving a bare rejection.
  const ScenarioSpec* sensor = find_scenario("sensor-network");
  ASSERT_NE(sensor, nullptr);
  EXPECT_NE(sensor->describe().find("thread?  : rejected"),
            std::string::npos);
  EXPECT_NE(sensor->describe().find("piecewise"), std::string::npos);
}

TEST(RuntimeAxis, MatrixFiltersUnrealisableThreadCellsSilently) {
  ScenarioMatrix m;
  m.algorithms = {ScenarioAlgorithm::kRingElection};
  m.topologies = {
      TopologySpec{TopologyFamily::kRingUni, 8, 0.0},
      TopologySpec{TopologyFamily::kRingUni, kMaxThreadRuntimeNodes + 1,
                   0.0}};
  m.delays = {{"exponential", 1.0}};
  m.runtimes = {RuntimeKind::kSim, RuntimeKind::kThread};
  const auto cells = m.expand();
  // n=8 expands to both substrates; the oversized ring keeps sim only.
  ASSERT_EQ(cells.size(), 3u);
  std::size_t thread_cells = 0;
  for (const ScenarioSpec& cell : cells) {
    if (cell.runtime == RuntimeKind::kThread) {
      ++thread_cells;
      EXPECT_EQ(cell.topology.n, 8u);
    }
    EXPECT_EQ(runtime_cell_problem(cell), "") << cell.cell_id();
  }
  EXPECT_EQ(thread_cells, 1u);
}

TEST(RuntimeAxis, CrossRuntimeSweepPairsEveryCellAcrossSubstrates) {
  const ScenarioMatrix* m = find_sweep("cross-runtime");
  ASSERT_NE(m, nullptr);
  const auto cells = m->expand();
  ASSERT_FALSE(cells.empty());
  std::set<std::string> ids;
  std::size_t thread_cells = 0;
  for (const ScenarioSpec& cell : cells) {
    EXPECT_TRUE(ids.insert(cell.cell_id()).second)
        << "duplicate cell " << cell.cell_id();
    if (cell.runtime == RuntimeKind::kThread) ++thread_cells;
  }
  // Every cell is realisable on both substrates, so the axis doubles it.
  EXPECT_EQ(thread_cells * 2, cells.size());
}

TEST(TopologySpecProblem, FlagsBadSizesWithoutAborting) {
  EXPECT_EQ((TopologySpec{TopologyFamily::kHypercube, 64, 0.0}).problem(),
            "");
  EXPECT_NE((TopologySpec{TopologyFamily::kHypercube, 100, 0.0}).problem(),
            "");
  EXPECT_EQ((TopologySpec{TopologyFamily::kTorus, 16, 0.0}).problem(), "");
  EXPECT_NE((TopologySpec{TopologyFamily::kTorus, 17, 0.0}).problem(), "")
      << "prime sizes cannot factor into a torus";
  EXPECT_NE((TopologySpec{TopologyFamily::kGnp, 8, 1.5}).problem(), "");
  EXPECT_EQ((TopologySpec{TopologyFamily::kRingUni, 1, 0.0}).problem(), "");
}

TEST(ScenarioNames, RoundTrip) {
  for (const char* name : {"ring-uni", "torus", "hypercube", "rgg"}) {
    EXPECT_STREQ(topology_family_name(topology_family_from_name(name)),
                 name);
  }
  for (const char* name :
       {"abe-ring", "polling", "gossip", "beta-sync", "unsafe-toy"}) {
    EXPECT_STREQ(
        scenario_algorithm_name(scenario_algorithm_from_name(name)), name);
  }
}

// --- failure-profile round-trip (describe <-> parse) ------------------------

TEST(FailureProfileRoundTrip, DescribeParseAgreeIncludingEdgeValues) {
  // Every profile must satisfy parse(describe()) == original, including
  // the p = 0 and p = 1 loss edges. p = 1 cannot come from the loss()
  // factory (it CHECKs p < 1 — an everything-lost cell is useless to
  // sweep), which was an asymmetry: describe() could print profiles that
  // parse() then had to reject. parse() constructs by field so the full
  // closed interval round-trips.
  std::vector<FailureProfile> profiles;
  profiles.push_back(FailureProfile::none());
  profiles.push_back(FailureProfile::loss(0.0));
  profiles.push_back(FailureProfile::loss(0.005));
  {
    FailureProfile everything_lost;
    everything_lost.kind = FailureProfile::Kind::kLoss;
    everything_lost.loss_probability = 1.0;
    profiles.push_back(everything_lost);
  }
  profiles.push_back(FailureProfile::degrade(0.0, 1.0));
  profiles.push_back(FailureProfile::degrade(0.1, 20.0));
  profiles.push_back(FailureProfile::degrade(1.0, 2.5));

  for (const FailureProfile& profile : profiles) {
    FailureProfile parsed;
    ASSERT_TRUE(FailureProfile::parse(profile.describe(), &parsed))
        << "unparseable: " << profile.describe();
    EXPECT_TRUE(parsed == profile) << profile.describe();
    EXPECT_EQ(parsed.describe(), profile.describe());
  }
}

TEST(FailureProfileRoundTrip, ParseRejectsMalformedInput) {
  FailureProfile out;
  for (const char* bad :
       {"", "nonsense", "loss-", "loss--0.1", "loss-1.5", "loss-0.1x2",
        "degrade-", "degrade-0.1", "degrade-0.1x", "degrade-2x3",
        "degrade-0.1x0.5", "loss-0.1extra"}) {
    EXPECT_FALSE(FailureProfile::parse(bad, &out)) << bad;
  }
}

// --- adversary axes ---------------------------------------------------------

TEST(AdversaryAxis, CellIdCarriesSuffixesOnlyForAdversarialCells) {
  ScenarioSpec spec;
  const std::string honest_id = spec.cell_id();
  EXPECT_EQ(honest_id.find("/beh-"), std::string::npos);
  EXPECT_EQ(honest_id.find("/adv-"), std::string::npos);

  spec.behavior = BehaviorSpec{BehaviorProfile::kEquivocate, 1, 0.0};
  EXPECT_EQ(spec.cell_id(), honest_id + "/beh-equivocate-1");
  spec.adversary = "targeted";
  EXPECT_EQ(spec.cell_id(), honest_id + "/beh-equivocate-1/adv-targeted");
  spec.behavior = BehaviorSpec{};
  EXPECT_EQ(spec.cell_id(), honest_id + "/adv-targeted");
}

TEST(AdversaryAxis, ProblemsAreStructuralAndNamedWithoutAborting) {
  ScenarioSpec spec;  // ring election on ring-uni
  EXPECT_EQ(behavior_cell_problem(spec), "");

  spec.behavior = BehaviorSpec{BehaviorProfile::kCrashAtT, 1, 50.0};
  EXPECT_EQ(behavior_cell_problem(spec), "");

  spec.behavior.count = spec.topology.n;  // no honest node left
  EXPECT_NE(behavior_cell_problem(spec), "");
  spec.behavior.count = 1;

  spec.algorithm = ScenarioAlgorithm::kGossip;
  EXPECT_NE(behavior_cell_problem(spec), "")
      << "only the ring election realises behavior profiles";
  spec.algorithm = ScenarioAlgorithm::kRingElection;

  spec.adversary = "no-such-policy";
  EXPECT_NE(behavior_cell_problem(spec), "");
  spec.adversary = "targeted";
  EXPECT_EQ(behavior_cell_problem(spec), "");
}

TEST(AdversaryAxis, AdversarySweepCoversProfilesOnBothSubstrates) {
  const ScenarioMatrix* m = find_sweep("adversary");
  ASSERT_NE(m, nullptr);
  const auto cells = m->expand();
  ASSERT_FALSE(cells.empty());
  std::set<std::string> ids;
  std::set<BehaviorProfile> profiles;
  std::size_t thread_cells = 0;
  for (const ScenarioSpec& cell : cells) {
    EXPECT_TRUE(ids.insert(cell.cell_id()).second)
        << "duplicate cell " << cell.cell_id();
    EXPECT_EQ(cell.algorithm, ScenarioAlgorithm::kRingElection);
    EXPECT_EQ(cell.adversary, "targeted");
    EXPECT_FALSE(cell.behavior.is_honest());
    profiles.insert(cell.behavior.profile);
    if (cell.runtime == RuntimeKind::kThread) ++thread_cells;
  }
  EXPECT_TRUE(profiles.count(BehaviorProfile::kCrashAtT));
  EXPECT_TRUE(profiles.count(BehaviorProfile::kEquivocate));
  EXPECT_TRUE(profiles.count(BehaviorProfile::kReorder));
  EXPECT_EQ(thread_cells * 2, cells.size())
      << "every adversarial cell must run on both substrates";
}

TEST(AdversaryAxis, UnsafeToyIsNeverRegistered) {
  // The registry invariant (RegistryScenarioTest) is that every preset's
  // smoke trial is safe; the deliberately-broken toy must stay out.
  for (const ScenarioSpec& s : scenario_registry()) {
    EXPECT_NE(s.algorithm, ScenarioAlgorithm::kUnsafeToy) << s.name;
  }
  for (const ScenarioMatrix& m : sweep_registry()) {
    for (const ScenarioSpec& cell : m.expand()) {
      EXPECT_NE(cell.algorithm, ScenarioAlgorithm::kUnsafeToy)
          << m.name << ": " << cell.cell_id();
    }
  }
}

// --- sweep driver & JSON --------------------------------------------------

ScenarioSpec small_polling_cell() {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kPollingElection;
  spec.topology = TopologySpec{TopologyFamily::kTorus, 9, 0.0};
  return spec;
}

TEST(ScenarioSweep, TrialsAreDeterministicPerSeed) {
  const ScenarioSpec spec = small_polling_cell();
  const ScenarioAggregate a = run_scenario_trials(spec, 11, 50, 2);
  const ScenarioAggregate b = run_scenario_trials(spec, 11, 50, 3);
  EXPECT_EQ(a.trials, 11u);
  EXPECT_TRUE(a.messages == b.messages);
  EXPECT_TRUE(a.time == b.time);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
}

TEST(ScenarioSweep, RandomTopologiesRedrawPerTrialDeterministically) {
  ScenarioSpec spec = small_polling_cell();
  spec.topology = TopologySpec{TopologyFamily::kGeometric, 12, 0.0};
  const ScenarioTrialResult a = run_scenario_trial(spec, 7);
  const ScenarioTrialResult b = run_scenario_trial(spec, 7);
  const ScenarioTrialResult c = run_scenario_trial(spec, 8);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.time, b.time);
  // Different seed, different field (and with overwhelming likelihood a
  // different trace).
  EXPECT_TRUE(a.messages != c.messages || a.time != c.time);
}

TEST(ScenarioSweep, JsonCarriesSchemaMetadataAndCells) {
  const auto outcomes = run_sweep({small_polling_cell()}, 3, 1, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].aggregate.trials, 3u);
  EXPECT_EQ(outcomes[0].aggregate.safety_violations, 0u);

  SweepRunMetadata meta;
  meta.git_sha = "cafe123";
  meta.threads = 4;
  meta.trials = 3;
  std::ostringstream os;
  write_sweep_json(os, meta, outcomes);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"abe-scenario-sweep-v7\""),
            std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": \"cafe123\""), std::string::npos);
  EXPECT_NE(json.find("\"trial_threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"cell\": \"polling/torus-9/exponential/ideal/none\""),
            std::string::npos);
  EXPECT_NE(json.find("\"equeue\": \"auto\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\": \"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"behavior\": \"honest\""), std::string::npos);
  EXPECT_NE(json.find("\"adversary\": \"none\""), std::string::npos);
  EXPECT_NE(json.find("\"safety_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"violation_seeds\": []"), std::string::npos);
  // v5 observability block: per-cell metrics array + wall phase object.
  EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"net.sent\""), std::string::npos);
  EXPECT_NE(json.find("\"wall\": {\"build_ms\": "), std::string::npos);
  // v7: the wall block also carries the single-read-point total.
  EXPECT_NE(json.find("\"total_ms\": "), std::string::npos);
  // v6 causal block: per-cell critical-path attribution aggregate.
  EXPECT_NE(json.find("\"critical_path\": {\"considered\": 3"),
            std::string::npos);
  EXPECT_NE(json.find("\"channel_delay\": {"), std::string::npos);
  // Balanced braces: cheap structural sanity (CI runs the real validator,
  // bench/validate_scenarios.py, on emitted files).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ScenarioSweep, FailureProfilesTransformTheModel) {
  const DelayModelPtr base = make_delay_model("exponential", 1.0);
  const FailureProfile degrade = FailureProfile::degrade(0.1, 20.0);
  const DelayModelPtr wrapped = degrade.apply(base);
  // The advertised ABE bound must degrade with the network.
  EXPECT_NEAR(wrapped->mean_delay(), 1.0 + 0.1 * 19.0, 1e-12);
  EXPECT_EQ(FailureProfile::none().apply(base).get(), base.get());
  EXPECT_DOUBLE_EQ(FailureProfile::loss(0.01).channel_loss(), 0.01);
  EXPECT_DOUBLE_EQ(degrade.channel_loss(), 0.0);
}

}  // namespace
}  // namespace abe
