// Unit and statistical tests for the delay models — the heart of the ABE
// assumption: every model must report an exact mean (the δ an algorithm may
// know) while its samples may be unbounded.
#include "net/delay.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace abe {
namespace {

// Statistical check: the empirical mean of `model` matches mean_delay().
void expect_mean_matches(const DelayModelPtr& model, double tolerance,
                         int samples = 200000) {
  Rng rng(1234);
  double sum = 0;
  for (int i = 0; i < samples; ++i) {
    const double d = model->sample(rng);
    ASSERT_GE(d, 0.0) << model->name();
    sum += d;
  }
  EXPECT_NEAR(sum / samples, model->mean_delay(), tolerance) << model->name();
}

TEST(Delay, FixedIsDeterministic) {
  const auto model = fixed_delay(2.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model->sample(rng), 2.5);
  }
  EXPECT_EQ(model->mean_delay(), 2.5);
  EXPECT_TRUE(model->bounded());
  EXPECT_EQ(model->worst_case(), 2.5);
}

TEST(Delay, FixedZeroAllowed) {
  const auto model = fixed_delay(0.0);
  Rng rng(1);
  EXPECT_EQ(model->sample(rng), 0.0);
}

TEST(Delay, UniformBoundsAndMean) {
  const auto model = uniform_delay(1.0, 3.0);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double d = model->sample(rng);
    ASSERT_GE(d, 1.0);
    ASSERT_LE(d, 3.0);
  }
  EXPECT_EQ(model->mean_delay(), 2.0);
  EXPECT_TRUE(model->bounded());
  EXPECT_EQ(model->worst_case(), 3.0);
  expect_mean_matches(model, 0.02);
}

TEST(Delay, ExponentialMeanAndUnbounded) {
  const auto model = exponential_delay(1.5);
  EXPECT_EQ(model->mean_delay(), 1.5);
  EXPECT_FALSE(model->bounded());
  EXPECT_TRUE(std::isinf(model->worst_case()));
  expect_mean_matches(model, 0.03);
}

TEST(Delay, ShiftedExponentialRespectsOffset) {
  const auto model = shifted_exponential_delay(1.0, 0.5);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(model->sample(rng), 1.0);
  }
  EXPECT_EQ(model->mean_delay(), 1.5);
  expect_mean_matches(model, 0.02);
}

TEST(Delay, ErlangMean) {
  const auto model = erlang_delay(4, 2.0);
  EXPECT_EQ(model->mean_delay(), 2.0);
  expect_mean_matches(model, 0.03);
}

TEST(Delay, GeometricRetransmissionLaw) {
  // p = 0.25, slot = 1: mean delay = 4 (the paper's 1/p law).
  const auto model = geometric_retransmission_delay(0.25, 1.0);
  EXPECT_EQ(model->mean_delay(), 4.0);
  EXPECT_FALSE(model->bounded());
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = model->sample(rng);
    // Delay is a whole number of slots, at least one.
    ASSERT_GE(d, 1.0);
    ASSERT_EQ(d, std::floor(d));
  }
  expect_mean_matches(model, 0.1);
}

TEST(Delay, GeometricPerfectChannelIsOneSlot) {
  const auto model = geometric_retransmission_delay(1.0, 2.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model->sample(rng), 2.0);
  }
  EXPECT_EQ(model->mean_delay(), 2.0);
}

TEST(Delay, LomaxMeanParameterisation) {
  const auto model = lomax_delay(2.5, 1.0);
  EXPECT_EQ(model->mean_delay(), 1.0);
  EXPECT_FALSE(model->bounded());
  expect_mean_matches(model, 0.1, 400000);  // heavy tail: slow convergence
}

TEST(Delay, BimodalMeanAndSupport) {
  const auto model = bimodal_delay(1.0, 10.0, 0.1);
  EXPECT_NEAR(model->mean_delay(), 1.9, 1e-12);
  EXPECT_TRUE(model->bounded());
  EXPECT_EQ(model->worst_case(), 10.0);
  Rng rng(6);
  int slow = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = model->sample(rng);
    ASSERT_TRUE(d == 1.0 || d == 10.0);
    if (d == 10.0) ++slow;
  }
  EXPECT_NEAR(slow / 10000.0, 0.1, 0.02);
}

TEST(Delay, FactoryNormalisesMeans) {
  for (const auto& name : standard_delay_model_names()) {
    const auto model = make_delay_model(name, 2.0);
    ASSERT_TRUE(model != nullptr) << name;
    EXPECT_NEAR(model->mean_delay(), 2.0, 1e-9) << name;
  }
}

TEST(Delay, FactorySamplesMatchRequestedMean) {
  for (const auto& name : standard_delay_model_names()) {
    const auto model = make_delay_model(name, 1.0);
    const double tol = name == "lomax" ? 0.08 : 0.03;
    expect_mean_matches(model, tol);
  }
}

TEST(Delay, FactoryRejectsUnknownName) {
  EXPECT_DEATH(make_delay_model("warp-drive", 1.0), "unknown delay model");
}

TEST(Delay, LomaxRequiresFiniteMeanShape) {
  Rng rng(7);
  EXPECT_DEATH(rng.lomax(1.0, 1.0), "alpha");
}

// The defining ABE property: same mean, wildly different tails. The
// empirical P(X > 3·mean) must be positive for every unbounded model
// (3x keeps even the thin Erlang-4 tail, ~2e-3, statistically visible).
TEST(Delay, TailsDifferAtEqualMean) {
  Rng rng(8);
  const int kN = 200000;
  for (const auto& name : standard_delay_model_names()) {
    const auto model = make_delay_model(name, 1.0);
    int tail = 0;
    for (int i = 0; i < kN; ++i) {
      if (model->sample(rng) > 3.0) ++tail;
    }
    if (model->bounded()) {
      // fixed/uniform/bimodal with mean 1 stay ≤ 10; uniform max is 2.
      EXPECT_LE(model->worst_case(), 10.0) << name;
    } else {
      EXPECT_GT(tail, 0) << name << " should exceed 3x mean sometimes";
    }
  }
}

}  // namespace
}  // namespace abe
