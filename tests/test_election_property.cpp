// Property-based / parameterized sweeps for the election: safety and
// liveness must hold across ring sizes, activation parameters, delay laws,
// channel orderings, activation policies, clock drift and processing delay.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/harness.h"
#include "stats/regression.h"

namespace abe {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: n × delay model × ordering.
using ModelCase = std::tuple<std::size_t, std::string, ChannelOrdering>;

class ElectionModelSweep : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ElectionModelSweep, ElectsExactlyOneLeaderSafely) {
  const auto [n, delay_name, ordering] = GetParam();
  // Each case runs the paper's calibrated regime (A0 = c/n²) at every size,
  // and repeats with a hot constant A0 at sizes where that regime still
  // mixes fast. Only the hot × fixed-delay corner is capped at n = 16, on
  // purpose: under a zero-variance (ABD) delay with ideal clocks the whole
  // execution is phase-locked — every token arrival from a given sender
  // recurs at the same tick-phase offset forever — so the last two
  // candidates purge each other in perfectly periodic rounds, and with the
  // adaptive boost at hot A0 each survivor re-activates with probability
  // 1-(1-A0)^d ≈ 1. The only symmetry break left is a full abstention,
  // probability (1-A0)^d, so the expected number of rounds grows
  // exponentially in n (n=33 took 43 s–timeout in CI). That is a true
  // property of the algorithm outside its calibration, not a simulator
  // bug; the calibrated sweep below is the liveness test, and
  // HotA0DegradesSuperLinearly keeps the degradation itself under test.
  std::vector<double> a0s{linear_regime_a0(n)};
  if (delay_name != "fixed" || n <= 16) a0s.push_back(0.3);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const double a0 : a0s) {
      ElectionExperiment e;
      e.n = n;
      e.delay_name = delay_name;
      e.ordering = ordering;
      e.seed = seed * 7919;
      e.election.a0 = a0;
      e.settle_time = 20.0;
      const auto result = run_election(e);
      ASSERT_TRUE(result.elected) << "n=" << n << " delay=" << delay_name
                                  << " a0=" << a0 << " seed=" << e.seed;
      ASSERT_TRUE(result.safety_ok)
          << "n=" << n << " delay=" << delay_name << " a0=" << a0
          << " seed=" << e.seed << ": " << result.safety_detail;
      ASSERT_EQ(result.max_leaders_ever, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectionModelSweep,
    ::testing::Combine(
        ::testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{5},
                          std::size_t{9}, std::size_t{16}, std::size_t{33}),
        ::testing::Values("exponential", "fixed", "lomax", "georetx"),
        ::testing::Values(ChannelOrdering::kFifo,
                          ChannelOrdering::kArbitrary)),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" +
             channel_ordering_name(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: activation parameter A0 across its open interval.
class ElectionA0Sweep : public ::testing::TestWithParam<double> {};

TEST_P(ElectionA0Sweep, CorrectForAllA0) {
  const double a0 = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ElectionExperiment e;
    e.n = 12;
    e.election.a0 = a0;
    e.seed = seed;
    e.settle_time = 20.0;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected) << "a0=" << a0;
    ASSERT_TRUE(result.safety_ok) << "a0=" << a0 << ": "
                                  << result.safety_detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ElectionA0Sweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           0.99));

// ---------------------------------------------------------------------
// Sweep 3: activation policy ablations stay correct (they only change
// performance, never safety).
class ElectionPolicySweep
    : public ::testing::TestWithParam<ActivationPolicy> {};

TEST_P(ElectionPolicySweep, VariantsRemainSafe) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ElectionExperiment e;
    e.n = 10;
    e.election.policy = GetParam();
    e.election.a0 = 0.2;
    e.seed = seed * 13;
    e.settle_time = 20.0;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected);
    ASSERT_TRUE(result.safety_ok) << result.safety_detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ElectionPolicySweep,
                         ::testing::Values(ActivationPolicy::kAdaptive,
                                           ActivationPolicy::kConstant,
                                           ActivationPolicy::kLinear),
                         [](const auto& info) {
                           return activation_policy_name(info.param);
                         });

// ---------------------------------------------------------------------
// Sweep 4: clock drift and processing delay (Definition 1(2) and 1(3)).
struct HarshCase {
  const char* name;
  ClockBounds clocks;
  DriftModel drift;
  ProcessingModel processing;
};

class ElectionHarshEnvironment : public ::testing::TestWithParam<HarshCase> {
};

TEST_P(ElectionHarshEnvironment, SurvivesEnvironment) {
  const HarshCase& c = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ElectionExperiment e;
    e.n = 9;
    e.clock_bounds = c.clocks;
    e.drift = c.drift;
    e.processing = c.processing;
    e.seed = seed * 101;
    e.settle_time = 30.0;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected) << c.name;
    ASSERT_TRUE(result.safety_ok) << c.name << ": " << result.safety_detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectionHarshEnvironment,
    ::testing::Values(
        HarshCase{"ideal", {1, 1}, DriftModel::kNone,
                  ProcessingModel::zero()},
        HarshCase{"mild_drift", {0.9, 1.1}, DriftModel::kFixedRandomRate,
                  ProcessingModel::zero()},
        HarshCase{"wild_drift", {0.25, 4.0}, DriftModel::kPiecewiseRandom,
                  ProcessingModel::zero()},
        HarshCase{"slow_cpu", {1, 1}, DriftModel::kNone,
                  ProcessingModel::exponential(0.5)},
        HarshCase{"drift_and_cpu", {0.5, 2.0}, DriftModel::kPiecewiseRandom,
                  ProcessingModel::exponential(0.3)}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// Liveness statistics: failures must be zero across a broad seed range.
TEST(ElectionProperty, NoDeadlineMissesOverManySeeds) {
  ElectionExperiment e;
  e.n = 16;
  e.election.a0 = 0.3;
  const auto agg = run_election_trials(e, 50, 1000);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.safety_violations, 0u);
}

// Complexity smoke check (the full curve is bench E2/E3): in the paper's
// linear regime (A0 = c/n², see linear_regime_a0) message and time means
// grow ~linearly in n — the log-log slope over a 16x range stays close to
// 1, far from the n log n regime.
TEST(ElectionProperty, MessageAndTimeGrowthNearLinear) {
  std::vector<double> xs, msgs, times;
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = linear_regime_a0(n);
    const auto agg = run_election_trials(e, 20, 77);
    ASSERT_EQ(agg.failures, 0u);
    xs.push_back(static_cast<double>(n));
    msgs.push_back(agg.messages.mean());
    times.push_back(agg.time.mean());
  }
  const LinearFit msg_fit = fit_loglog(xs, msgs);
  const LinearFit time_fit = fit_loglog(xs, times);
  EXPECT_GT(msg_fit.slope, 0.70) << "messages grew slower than linear?";
  EXPECT_LT(msg_fit.slope, 1.30) << "messages grew super-linearly";
  EXPECT_GT(time_fit.slope, 0.65);
  EXPECT_LT(time_fit.slope, 1.35);
}

// Outside the linear regime a hot constant A0 degrades super-linearly —
// the calibration genuinely matters (this is the negative control for the
// test above and the story of bench E4/E9).
TEST(ElectionProperty, HotA0DegradesSuperLinearly) {
  std::vector<double> xs, msgs;
  for (std::size_t n : {8, 16, 32, 64}) {
    ElectionExperiment e;
    e.n = n;
    e.election.a0 = 0.3;
    const auto agg = run_election_trials(e, 8, 77);
    ASSERT_EQ(agg.failures, 0u);
    xs.push_back(static_cast<double>(n));
    msgs.push_back(agg.messages.mean());
  }
  EXPECT_GT(fit_loglog(xs, msgs).slope, 1.5);
}

// Message lower bound: any election needs the winner's token to traverse
// the full ring.
TEST(ElectionProperty, MessagesAtLeastN) {
  for (std::size_t n : {2, 5, 11, 31}) {
    ElectionExperiment e;
    e.n = n;
    e.seed = 5;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected);
    EXPECT_GE(result.messages, n) << "n=" << n;
  }
}

// Conservation: every activation creates exactly one token and every token
// dies in exactly one purge.
TEST(ElectionProperty, ActivationPurgeConservation) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ElectionExperiment e;
    e.n = 20;
    e.seed = seed;
    e.settle_time = 50.0;
    const auto result = run_election(e);
    ASSERT_TRUE(result.elected);
    ASSERT_TRUE(result.safety_ok) << result.safety_detail;
    EXPECT_EQ(result.activations, result.purges) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace abe
