// Tests for the online invariant checker, and property runs that use it to
// certify the election's internal lemmas during (not just after) execution.
#include "core/invariants.h"

#include <gtest/gtest.h>

#include "core/harness.h"
#include "net/network.h"
#include "net/topology.h"

namespace abe {
namespace {

TEST(InvariantChecker, AcceptsLegalHistory) {
  ElectionInvariantChecker checker(3);
  checker.on_state_change(NodeId{0}, ElectionState::kIdle,
                          ElectionState::kActive, 1.0);
  checker.on_state_change(NodeId{1}, ElectionState::kIdle,
                          ElectionState::kPassive, 2.0);
  checker.on_state_change(NodeId{2}, ElectionState::kIdle,
                          ElectionState::kPassive, 3.0);
  checker.on_state_change(NodeId{0}, ElectionState::kActive,
                          ElectionState::kLeader, 4.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(checker.leaders_now(), 1u);
  EXPECT_EQ(checker.passives_now(), 2u);
}

TEST(InvariantChecker, FlagsSecondLeader) {
  ElectionInvariantChecker checker(3);
  checker.on_state_change(NodeId{1}, ElectionState::kIdle,
                          ElectionState::kPassive, 0.5);
  checker.on_state_change(NodeId{2}, ElectionState::kIdle,
                          ElectionState::kPassive, 0.6);
  checker.on_state_change(NodeId{0}, ElectionState::kIdle,
                          ElectionState::kLeader, 1.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  // A passive node usurping the crown trips both I1 and I2.
  checker.on_state_change(NodeId{1}, ElectionState::kPassive,
                          ElectionState::kLeader, 2.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("two leaders"), std::string::npos);
}

TEST(InvariantChecker, FlagsPassiveResurrection) {
  ElectionInvariantChecker checker(2);
  checker.on_state_change(NodeId{0}, ElectionState::kIdle,
                          ElectionState::kPassive, 1.0);
  checker.on_state_change(NodeId{0}, ElectionState::kPassive,
                          ElectionState::kActive, 2.0);
  EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, FlagsInconsistentFromState) {
  ElectionInvariantChecker checker(2);
  // Node 0 is idle, but the transition claims it was active.
  checker.on_state_change(NodeId{0}, ElectionState::kActive,
                          ElectionState::kIdle, 1.0);
  EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, FlagsEarlyLeader) {
  ElectionInvariantChecker checker(3);
  // Leader with only 1 of 2 required passives.
  checker.on_state_change(NodeId{1}, ElectionState::kIdle,
                          ElectionState::kPassive, 1.0);
  checker.on_state_change(NodeId{0}, ElectionState::kIdle,
                          ElectionState::kLeader, 2.0);
  EXPECT_FALSE(checker.ok());
}

TEST(InvariantChecker, TokenConservation) {
  ElectionInvariantChecker checker(2);
  checker.check_token_conservation(/*minted=*/5, /*retired=*/5,
                                   /*in_flight=*/0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  checker.check_token_conservation(5, 3, 1);  // 5 != 3 + 1
  EXPECT_FALSE(checker.ok());
}

// ---------------------------------------------------------------------
// The real use: wire the checker into live elections and let it watch
// every transition across seeds, delay laws and policies.

void run_checked_election(std::size_t n, const char* delay,
                          ActivationPolicy policy, std::uint64_t seed) {
  NetworkConfig config;
  config.topology = unidirectional_ring(n);
  config.delay = make_delay_model(delay, 1.0);
  config.enable_ticks = true;
  config.seed = seed;
  Network net(std::move(config));

  ElectionInvariantChecker checker(n);
  ElectionOptions options;
  options.a0 = linear_regime_a0(n, 6.0);  // hot enough to create knockouts
  options.policy = policy;
  options.observer = &checker;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();
  const bool elected = net.run_until(
      [&] { return checker.leaders_now() > 0; }, 1e7);
  ASSERT_TRUE(elected) << "n=" << n << " delay=" << delay;

  std::uint64_t minted = 0, retired = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node = static_cast<const ElectionNode&>(net.node(i));
    minted += node.activations();
    retired += node.purges();
  }
  checker.check_token_conservation(minted, retired,
                                   net.metrics().in_flight());
  EXPECT_TRUE(checker.ok())
      << "n=" << n << " delay=" << delay << " seed=" << seed << "\n"
      << checker.report();
}

TEST(ElectionInvariants, HoldOnlineAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_checked_election(12, "exponential", ActivationPolicy::kAdaptive,
                         seed);
  }
}

TEST(ElectionInvariants, HoldOnlineAcrossDelayLaws) {
  for (const char* delay : {"fixed", "uniform", "lomax", "georetx"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      run_checked_election(10, delay, ActivationPolicy::kAdaptive, seed);
    }
  }
}

TEST(ElectionInvariants, HoldOnlineForAblationPolicies) {
  for (ActivationPolicy policy :
       {ActivationPolicy::kConstant, ActivationPolicy::kLinear}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      run_checked_election(10, "exponential", policy, seed);
    }
  }
}

TEST(ElectionInvariants, HoldOnLargerRing) {
  run_checked_election(64, "exponential", ActivationPolicy::kAdaptive, 7);
}

}  // namespace
}  // namespace abe
