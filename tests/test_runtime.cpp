// Tests for the real-thread runtime: mailbox semantics and an end-to-end
// threaded election (the "threads and queues" realisation of the ABE model).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/harness.h"
#include "runtime/mailbox.h"
#include "runtime/thread_net.h"

namespace abe {
namespace {

MailItem message_item(std::int64_t value,
                      std::chrono::milliseconds delay = {}) {
  MailItem item;
  item.kind = MailItem::Kind::kMessage;
  item.due = MailItem::Clock::now() + delay;
  item.payload = std::make_shared<IntPayload>(value);
  return item;
}

TEST(Mailbox, DeliversInDueOrder) {
  Mailbox box;
  box.push(message_item(2, std::chrono::milliseconds(30)));
  box.push(message_item(1, std::chrono::milliseconds(5)));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 1);
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 2);
}

TEST(Mailbox, BlocksUntilDue) {
  Mailbox box;
  const auto start = MailItem::Clock::now();
  box.push(message_item(1, std::chrono::milliseconds(50)));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  const auto waited = MailItem::Clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            45);
}

TEST(Mailbox, CloseUnblocksConsumer) {
  Mailbox box;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    MailItem out;
    const bool alive = box.pop(out);
    EXPECT_FALSE(alive);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(Mailbox, ProducerWakesBlockedConsumer) {
  Mailbox box;
  std::atomic<std::int64_t> got{-1};
  std::thread consumer([&] {
    MailItem out;
    if (box.pop(out)) {
      got = payload_as<IntPayload>(*out.payload).value();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.push(message_item(77));
  consumer.join();
  EXPECT_EQ(got.load(), 77);
}

TEST(Mailbox, CancelledTimerSkipped) {
  Mailbox box;
  MailItem timer;
  timer.kind = MailItem::Kind::kTimer;
  timer.timer_id = 5;
  timer.due = MailItem::Clock::now();
  box.push(timer);
  box.cancel_timer(5);
  box.push(message_item(9));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(out.kind, MailItem::Kind::kMessage);
}

TEST(Mailbox, EarlierItemPreemptsWait) {
  Mailbox box;
  box.push(message_item(2, std::chrono::milliseconds(500)));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push(message_item(1, std::chrono::milliseconds(0)));
  });
  const auto start = MailItem::Clock::now();
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  producer.join();
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 1);
  const auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          MailItem::Clock::now() - start)
          .count();
  EXPECT_LT(waited, 400);
}

// ---------------------------------------------------------------------

TEST(ThreadNet, ElectsExactlyOneLeader) {
  const auto result = run_threaded_election(
      /*n=*/8, /*a0=*/0.4, /*mean_delay=*/1.0, /*seed=*/1,
      /*time_scale_us=*/200.0);
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
  EXPECT_GE(result.messages, 8u);
}

TEST(ThreadNet, RepeatedRunsStaySafe) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto result =
        run_threaded_election(6, 0.4, 0.5, seed, /*time_scale_us=*/150.0);
    ASSERT_TRUE(result.elected) << "seed=" << seed;
    EXPECT_TRUE(result.safety_ok) << "seed=" << seed;
  }
}

TEST(ThreadNet, LargerRingStillElects) {
  const auto result =
      run_threaded_election(16, 0.3, 0.5, 5, /*time_scale_us=*/100.0);
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
}

TEST(ThreadNet, PiecewiseDriftRejected) {
  ThreadNetConfig config;
  config.topology = unidirectional_ring(3);
  config.drift = DriftModel::kPiecewiseRandom;
  EXPECT_DEATH(ThreadNetwork net(std::move(config)), "thread runtime");
}

// Simulator-vs-thread parity smoke (ROADMAP "thread runtime parity"): the
// same election under the same drift band must reach the same qualitative
// outcome on both runtimes — one leader, n−1 passive, plausible message
// count. Wall-clock scheduling can't reproduce the simulator trial
// bit-for-bit, so parity here means the model-level postconditions, not the
// trace.
TEST(ThreadNet, DriftBandParityWithSimulatorOnSmallRing) {
  constexpr std::size_t kN = 6;
  constexpr double kA0 = 0.4;
  const ClockBounds band{0.8, 1.25};

  ElectionExperiment sim;
  sim.n = kN;
  sim.election.a0 = kA0;
  sim.clock_bounds = band;
  sim.drift = DriftModel::kFixedRandomRate;
  sim.seed = 11;
  sim.settle_time = 5.0;
  const ElectionRunResult sim_result = run_election(sim);
  ASSERT_TRUE(sim_result.elected);
  EXPECT_TRUE(sim_result.safety_ok) << sim_result.safety_detail;

  const ThreadedElectionResult threaded = run_threaded_election(
      kN, kA0, /*mean_delay=*/1.0, /*seed=*/11, /*time_scale_us=*/150.0,
      std::chrono::milliseconds(30000), band);
  ASSERT_TRUE(threaded.elected);
  EXPECT_TRUE(threaded.safety_ok);

  // Both runtimes drive the same algorithm: a ring election needs at least
  // one full circulation on either substrate.
  EXPECT_GE(sim_result.messages, kN);
  EXPECT_GE(threaded.messages, kN);
}

}  // namespace
}  // namespace abe
