// Tests for the real-thread runtime: mailbox semantics, end-to-end threaded
// elections (the "threads and queues" realisation of the ABE model), thread
// failure injection, condition-variable wakeups, and the cross-runtime
// parity suite over the unified Runtime contract (runtime/runtime.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/harness.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "runtime/thread_net.h"
#include "scenario/drivers.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "sim/rng.h"
#include "stats/summary.h"
#include "trace/trace.h"

namespace abe {
namespace {

MailItem message_item(std::int64_t value,
                      std::chrono::milliseconds delay = {}) {
  MailItem item;
  item.kind = MailItem::Kind::kMessage;
  item.due = MailItem::Clock::now() + delay;
  item.payload = std::make_shared<IntPayload>(value);
  return item;
}

TEST(Mailbox, DeliversInDueOrder) {
  Mailbox box;
  box.push(message_item(2, std::chrono::milliseconds(30)));
  box.push(message_item(1, std::chrono::milliseconds(5)));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 1);
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 2);
}

TEST(Mailbox, BlocksUntilDue) {
  Mailbox box;
  const auto start = MailItem::Clock::now();
  box.push(message_item(1, std::chrono::milliseconds(50)));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  const auto waited = MailItem::Clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            45);
}

TEST(Mailbox, CloseUnblocksConsumer) {
  Mailbox box;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    MailItem out;
    const bool alive = box.pop(out);
    EXPECT_FALSE(alive);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(Mailbox, ProducerWakesBlockedConsumer) {
  Mailbox box;
  std::atomic<std::int64_t> got{-1};
  std::thread consumer([&] {
    MailItem out;
    if (box.pop(out)) {
      got = payload_as<IntPayload>(*out.payload).value();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.push(message_item(77));
  consumer.join();
  EXPECT_EQ(got.load(), 77);
}

TEST(Mailbox, CancelledTimerSkipped) {
  Mailbox box;
  MailItem timer;
  timer.kind = MailItem::Kind::kTimer;
  timer.timer_id = 5;
  timer.due = MailItem::Clock::now();
  box.push(timer);
  box.cancel_timer(5);
  box.push(message_item(9));
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(out.kind, MailItem::Kind::kMessage);
}

TEST(Mailbox, EarlierItemPreemptsWait) {
  Mailbox box;
  box.push(message_item(2, std::chrono::milliseconds(500)));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push(message_item(1, std::chrono::milliseconds(0)));
  });
  const auto start = MailItem::Clock::now();
  MailItem out;
  ASSERT_TRUE(box.pop(out));
  producer.join();
  EXPECT_EQ(payload_as<IntPayload>(*out.payload).value(), 1);
  const auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          MailItem::Clock::now() - start)
          .count();
  EXPECT_LT(waited, 400);
}

// ---------------------------------------------------------------------

TEST(ThreadNet, ElectsExactlyOneLeader) {
  const auto result = run_threaded_election(
      /*n=*/8, /*a0=*/0.4, /*mean_delay=*/1.0, /*seed=*/1,
      /*time_scale_us=*/200.0);
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
  EXPECT_GE(result.messages, 8u);
}

TEST(ThreadNet, RepeatedRunsStaySafe) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto result =
        run_threaded_election(6, 0.4, 0.5, seed, /*time_scale_us=*/150.0);
    ASSERT_TRUE(result.elected) << "seed=" << seed;
    EXPECT_TRUE(result.safety_ok) << "seed=" << seed;
  }
}

TEST(ThreadNet, LargerRingStillElects) {
  const auto result =
      run_threaded_election(16, 0.3, 0.5, 5, /*time_scale_us=*/100.0);
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
}

TEST(ThreadNet, PiecewiseDriftRejected) {
  ThreadNetConfig config;
  config.topology = unidirectional_ring(3);
  config.drift = DriftModel::kPiecewiseRandom;
  EXPECT_DEATH(ThreadNetwork net(std::move(config)), "thread runtime");
}

// Simulator-vs-thread parity smoke (ROADMAP "thread runtime parity"): the
// same election under the same drift band must reach the same qualitative
// outcome on both runtimes — one leader, n−1 passive, plausible message
// count. Wall-clock scheduling can't reproduce the simulator trial
// bit-for-bit, so parity here means the model-level postconditions, not the
// trace.
TEST(ThreadNet, DriftBandParityWithSimulatorOnSmallRing) {
  constexpr std::size_t kN = 6;
  constexpr double kA0 = 0.4;
  const ClockBounds band{0.8, 1.25};

  ElectionExperiment sim;
  sim.n = kN;
  sim.election.a0 = kA0;
  sim.clock_bounds = band;
  sim.drift = DriftModel::kFixedRandomRate;
  sim.seed = 11;
  sim.settle_time = 5.0;
  const ElectionRunResult sim_result = run_election(sim);
  ASSERT_TRUE(sim_result.elected);
  EXPECT_TRUE(sim_result.safety_ok) << sim_result.safety_detail;

  const ThreadedElectionResult threaded = run_threaded_election(
      kN, kA0, /*mean_delay=*/1.0, /*seed=*/11, /*time_scale_us=*/150.0,
      std::chrono::milliseconds(30000), band);
  ASSERT_TRUE(threaded.elected);
  EXPECT_TRUE(threaded.safety_ok);

  // Both runtimes drive the same algorithm: a ring election needs at least
  // one full circulation on either substrate.
  EXPECT_GE(sim_result.messages, kN);
  EXPECT_GE(threaded.messages, kN);
}

// ---------------------------------------------------------------------
// Condition-variable wakeups (wait_until must not busy-poll)

// Terminates when its one local timer fires.
class TimerTerminator final : public Node {
 public:
  explicit TimerTerminator(double local_delay) : local_delay_(local_delay) {}
  void on_start(Context& ctx) override {
    ctx.set_timer_local(local_delay_, 0);
  }
  void on_message(Context&, std::size_t, const Payload&) override {}
  void on_timer(Context&, TimerId, std::uint64_t) override { done_ = true; }
  bool is_terminated() const override { return done_; }

 private:
  double local_delay_;
  bool done_ = false;
};

ThreadNetConfig two_node_config(double time_scale_us = 1000.0) {
  ThreadNetConfig config;
  config.topology = bidirectional_ring(2);
  config.time_scale_us = time_scale_us;
  config.drift = DriftModel::kNone;
  return config;
}

TEST(ThreadNet, WaitUntilAlreadyTruePredicateReturnsImmediately) {
  ThreadNetwork net(two_node_config());
  net.build_nodes([](std::size_t) -> NodePtr {
    return std::make_unique<TimerTerminator>(1e9);
  });
  net.start();
  const auto start = MailItem::Clock::now();
  EXPECT_TRUE(net.wait_until([] { return true; },
                             std::chrono::milliseconds(60000)));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      MailItem::Clock::now() - start);
  EXPECT_LT(waited.count(), 1000);
}

// The regression the condition variable fixes: a predicate satisfied by a
// node event must wake the waiter promptly, not after the wall timeout.
TEST(ThreadNet, WaitUntilSatisfiedMidWaitReturnsPromptly) {
  ThreadNetwork net(two_node_config());
  net.build_nodes([](std::size_t) -> NodePtr {
    // Timer fires at ~50 ms wall (50 sim units at 1000 us/unit).
    return std::make_unique<TimerTerminator>(50.0);
  });
  net.start();
  const auto start = MailItem::Clock::now();
  const bool held = net.wait_until(
      [&] { return net.terminated(0) && net.terminated(1); },
      std::chrono::milliseconds(60000));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      MailItem::Clock::now() - start);
  EXPECT_TRUE(held);
  // Generous bound — the point is "well under the 60 s timeout", immune to
  // CI scheduling noise.
  EXPECT_LT(waited.count(), 5000);
}

// ---------------------------------------------------------------------
// Failure injection on real threads

// Sends `count` messages to its successor in on_start, then idles.
class Flooder final : public Node {
 public:
  explicit Flooder(std::uint64_t count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (std::uint64_t i = 0; i < count_; ++i) {
      ctx.send(0, std::make_unique<IntPayload>(static_cast<std::int64_t>(i)));
    }
  }
  void on_message(Context&, std::size_t, const Payload&) override {}

 private:
  std::uint64_t count_;
};

TEST(ThreadNet, LossInjectionCountsDropsAndConservesMessages) {
  ThreadNetConfig config = two_node_config(/*time_scale_us=*/100.0);
  config.loss_probability = 0.3;
  config.delay = fixed_delay(0.1);
  ThreadNetwork net(std::move(config));
  net.build_nodes([](std::size_t i) -> NodePtr {
    return std::make_unique<Flooder>(i == 0 ? 400 : 0);
  });
  net.start();
  ASSERT_TRUE(net.wait_quiescent(std::chrono::milliseconds(10000)));
  net.stop();

  EXPECT_EQ(net.messages_sent(), 400u);
  EXPECT_GT(net.messages_dropped(), 0u) << "p=0.3 over 400 sends";
  EXPECT_LT(net.messages_dropped(), 400u);
  EXPECT_EQ(net.messages_sent(),
            net.messages_delivered() + net.messages_dropped());
}

// ---------------------------------------------------------------------
// Cross-runtime parity suite (the Runtime-contract acceptance): the same
// scenario cell on the simulator and on real threads must agree at the
// model level — every completed trial satisfies the algorithm's safety
// postconditions (leader uniqueness), and message counts land in the same
// regime. Wall-clock runs are nondeterministic by design, so lossy cells
// may legitimately fail trials (a dropped WAKE stalls polling); what they
// must never do is mint two leaders.

struct ParityCase {
  const char* name;
  ScenarioAlgorithm algorithm;
  double loss;
  // Behavior-profile token (adversary/behavior.h grammar). Adversarial
  // cells may legitimately stall — crashing or equivocating nodes can
  // starve the election — but a completed trial must still elect exactly
  // one leader on EVERY substrate. That is the safety property under test.
  const char* behavior = "honest";
  // Run the real-socket leg too (sim × thread × udp). Lossy udp cells run
  // the ARQ reliable channel, so they complete rather than stall — real
  // loss is masked, not simulated away.
  bool udp = false;
};

class CrossRuntimeParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(CrossRuntimeParity, CompletedTrialsAreSafeAndMessagesComparable) {
  const ParityCase& c = GetParam();

  ScenarioSpec spec;
  spec.algorithm = c.algorithm;
  spec.topology = c.algorithm == ScenarioAlgorithm::kRingElection
                      ? TopologySpec{TopologyFamily::kRingUni, 6, 0.0}
                      : TopologySpec{TopologyFamily::kTorus, 9, 0.0};
  spec.failure = c.loss > 0.0 ? FailureProfile::loss(c.loss)
                              : FailureProfile::none();
  ASSERT_TRUE(behavior_spec_from_name(c.behavior, &spec.behavior));
  const bool adversarial = !spec.behavior.is_honest();
  spec.settle_time = 5.0;
  // Lossy cells can stall; fail fast on both substrates (cf. the failure
  // sweep). 2e4 units at 100 us/unit is a 2 s wall budget per trial.
  spec.deadline = 2e4;
  spec.thread_time_scale_us = 100.0;
  spec.thread_wall_timeout_ms = 10000.0;

  const std::size_t n = spec.topology.n;

  // Simulator side: deterministic, several seeds.
  Summary sim_messages;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    spec.runtime = RuntimeKind::kSim;
    const ScenarioTrialResult trial = run_scenario_trial(spec, seed);
    if (!trial.completed) {
      ASSERT_TRUE(c.loss > 0.0 || adversarial)
          << "reliable honest sim trial missed its deadline";
      continue;
    }
    EXPECT_TRUE(trial.safety_ok) << "seed=" << seed << ": "
                                 << trial.safety_detail;
    EXPECT_GE(trial.messages, n - 1);
    sim_messages.add(static_cast<double>(trial.messages));
  }

  // Thread side: two wall-clock trials.
  Summary thread_messages;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    spec.runtime = RuntimeKind::kThread;
    ASSERT_EQ(runtime_cell_problem(spec), "");
    const ScenarioTrialResult trial = run_scenario_trial(spec, seed);
    if (!trial.completed) {
      ASSERT_TRUE(c.loss > 0.0 || adversarial)
          << "reliable honest thread trial did not complete";
      continue;
    }
    EXPECT_TRUE(trial.safety_ok) << "seed=" << seed << ": "
                                 << trial.safety_detail;
    EXPECT_GE(trial.messages, n - 1);
    thread_messages.add(static_cast<double>(trial.messages));
  }

  // Udp side: two real-datagram trials. Lossy cells ride the ARQ reliable
  // channel, so completion is expected, not merely tolerated.
  Summary udp_messages;
  if (c.udp) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      spec.runtime = RuntimeKind::kUdp;
      spec.udp_reliable = c.loss > 0.0;
      ASSERT_EQ(runtime_cell_problem(spec), "");
      const ScenarioTrialResult trial = run_scenario_trial(spec, seed);
      ASSERT_TRUE(trial.completed)
          << "udp trial (ARQ masks loss) did not complete, seed=" << seed;
      EXPECT_TRUE(trial.safety_ok) << "seed=" << seed << ": "
                                   << trial.safety_detail;
      EXPECT_GE(trial.messages, n - 1);
      udp_messages.add(static_cast<double>(trial.messages));
    }
  }

  if (c.loss == 0.0 && !adversarial) {
    // Reliable honest cells must complete everywhere.
    EXPECT_EQ(sim_messages.count(), 6u);
    EXPECT_EQ(thread_messages.count(), 2u);
  }
  const auto comparable = [&](const char* name, const Summary& other) {
    // Same algorithm, same graph, same model regime: per-trial message
    // aggregates agree within an order of magnitude (the election is
    // stochastic and wall scheduling differs; bit-equality is impossible).
    if (sim_messages.count() == 0 || other.count() == 0) return;
    const double ratio = other.mean() / sim_messages.mean();
    EXPECT_GT(ratio, 0.1) << name << " mean " << other.mean()
                          << " vs sim mean " << sim_messages.mean();
    EXPECT_LT(ratio, 10.0) << name << " mean " << other.mean()
                           << " vs sim mean " << sim_messages.mean();
  };
  comparable("thread", thread_messages);
  comparable("udp", udp_messages);
}

INSTANTIATE_TEST_SUITE_P(
    RingAndPolling, CrossRuntimeParity,
    ::testing::Values(
        ParityCase{"ring_reliable", ScenarioAlgorithm::kRingElection, 0.0,
                   "honest", /*udp=*/true},
        ParityCase{"ring_lossy", ScenarioAlgorithm::kRingElection, 0.01,
                   "honest", /*udp=*/true},
        ParityCase{"polling_reliable", ScenarioAlgorithm::kPollingElection,
                   0.0, "honest", /*udp=*/true},
        ParityCase{"polling_lossy", ScenarioAlgorithm::kPollingElection,
                   0.01, "honest", /*udp=*/true},
        ParityCase{"ring_equivocate", ScenarioAlgorithm::kRingElection, 0.0,
                   "equivocate-1"},
        ParityCase{"ring_reorder", ScenarioAlgorithm::kRingElection, 0.0,
                   "reorder-1x4"}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return std::string(info.param.name);
    });

// The RuntimeConfig::trace flag must be honored on BOTH substrates (the
// thread runtime used to silently drop it). Run one reliable honest ring
// cell with full tracing on each runtime and check the recorder against
// the stats counters: a trace is only trustworthy evidence if it saw every
// message the network counted.
TEST(CrossRuntimeParity, TraceSendDeliverCountsMatchStats) {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kRingElection;
  spec.topology = TopologySpec{TopologyFamily::kRingUni, 6, 0.0};
  spec.failure = FailureProfile::none();
  spec.settle_time = 5.0;
  spec.deadline = 2e4;
  spec.thread_time_scale_us = 100.0;
  spec.thread_wall_timeout_ms = 10000.0;

  const std::uint64_t seed = 7;
  Rng topo_rng = Rng(seed).substream("scenario-topology");
  const Topology topology = spec.topology.build(topo_rng);

  for (const RuntimeKind kind :
       {RuntimeKind::kSim, RuntimeKind::kThread, RuntimeKind::kUdp}) {
    SCOPED_TRACE(runtime_kind_name(kind));
    ScenarioTrialDriver binding = make_scenario_driver(spec, topology, seed);
    RuntimeConfig config = scenario_runtime_config(spec, topology, seed);
    config.trace = true;

    // run_algorithm_trial's lifecycle, inlined so the runtime survives for
    // inspection after the trial.
    binding.driver->configure(config);
    const SimTime deadline = config.deadline;
    std::unique_ptr<Runtime> rt = make_runtime(kind, std::move(config));
    rt->build_nodes(
        [&](std::size_t i) { return binding.driver->make_node(i); });
    rt->start();
    const bool completed = rt->run_until_done(
        [&] { return binding.driver->done(*rt); }, deadline);
    ASSERT_TRUE(completed) << "reliable honest ring cell must complete";
    binding.driver->on_complete(*rt);
    binding.driver->settle(*rt, completed);
    rt->stop();

    const RunStats stats = rt->stats();
    const Trace trace = rt->trace_snapshot();
    EXPECT_TRUE(trace.enabled()) << "trace flag was dropped by the runtime";
    EXPECT_GT(stats.messages_sent, 0u);
    // count() is monotonic past ring eviction, so these hold even if the
    // run outgrew the ring.
    EXPECT_EQ(trace.count(TraceKind::kSend), stats.messages_sent);
    EXPECT_EQ(trace.count(TraceKind::kDeliver), stats.messages_delivered);
    EXPECT_EQ(trace.count(TraceKind::kDrop), stats.messages_dropped);
  }
}

// RunStats wall accounting: each phase boundary is ONE monotonic-clock
// read shared by the phase before and after it, and total_ms is measured
// between the first and last of those same reads — so build + run +
// settle must equal total up to floating-point summation on every
// substrate. (The regression this pins: ThreadRuntime::start() used to
// take a second clock read for its wall deadline, and total was not
// measured at all.)
TEST(CrossRuntimeParity, WallPhaseTimesSumToTotal) {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kRingElection;
  spec.topology = TopologySpec{TopologyFamily::kRingUni, 6, 0.0};
  spec.settle_time = 5.0;
  spec.deadline = 2e4;
  spec.thread_time_scale_us = 100.0;
  spec.thread_wall_timeout_ms = 10000.0;

  for (const RuntimeKind kind :
       {RuntimeKind::kSim, RuntimeKind::kThread, RuntimeKind::kUdp}) {
    SCOPED_TRACE(runtime_kind_name(kind));
    spec.runtime = kind;
    const ScenarioTrialResult trial = run_scenario_trial(spec, 3);
    ASSERT_TRUE(trial.completed);
    const WallPhaseTimes& wall = trial.wall;
    EXPECT_GT(wall.total_ms, 0.0);
    EXPECT_GE(wall.build_ms, 0.0);
    EXPECT_GE(wall.run_ms, 0.0);
    EXPECT_GE(wall.settle_ms, 0.0);
    EXPECT_NEAR(wall.build_ms + wall.run_ms + wall.settle_ms, wall.total_ms,
                1e-6);
  }
}

}  // namespace
}  // namespace abe
