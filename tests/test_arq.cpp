// Tests for the stop-and-wait ARQ substrate — the mechanism behind the
// paper's case (iii): unbounded delay with bounded expectation 1/p.
#include "net/arq.h"

#include <gtest/gtest.h>

#include "core/analysis.h"

namespace abe {
namespace {

TEST(Arq, PerfectChannelOneAttemptPerPacket) {
  const ArqResult r = run_arq_experiment(/*p=*/1.0, /*packets=*/200,
                                         /*slot=*/1.0, /*seed=*/1);
  EXPECT_EQ(r.packets, 200u);
  EXPECT_DOUBLE_EQ(r.mean_attempts, 1.0);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_DOUBLE_EQ(r.predicted_attempts, 1.0);
}

TEST(Arq, MeanAttemptsMatchesOneOverP) {
  for (double p : {0.8, 0.5, 0.3}) {
    const ArqResult r = run_arq_experiment(p, 3000, 1.0, 7);
    EXPECT_EQ(r.packets, 3000u);
    EXPECT_NEAR(r.mean_attempts, expected_transmissions(p),
                0.1 * expected_transmissions(p))
        << "p=" << p;
  }
}

TEST(Arq, LatencyScalesWithAttempts) {
  const ArqResult fast = run_arq_experiment(0.9, 1000, 1.0, 3);
  const ArqResult slow = run_arq_experiment(0.3, 1000, 1.0, 3);
  EXPECT_GT(slow.mean_latency, fast.mean_latency * 2);
  // Each attempt costs ~one timeout (1.05 slots); latency ≈ attempts·slot.
  EXPECT_NEAR(slow.mean_latency, slow.mean_attempts * 1.05, 0.6);
}

TEST(Arq, AllPacketsEventuallyDelivered) {
  // Even a terrible channel (p = 0.1) delivers everything: delay is
  // unbounded but finite w.p. 1 — the essence of the ABE argument.
  const ArqResult r = run_arq_experiment(0.1, 300, 1.0, 11);
  EXPECT_EQ(r.packets, 300u);
  EXPECT_NEAR(r.mean_attempts, 10.0, 1.5);
}

TEST(Arq, DeterministicGivenSeed) {
  const ArqResult a = run_arq_experiment(0.5, 500, 1.0, 42);
  const ArqResult b = run_arq_experiment(0.5, 500, 1.0, 42);
  EXPECT_EQ(a.mean_attempts, b.mean_attempts);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.duplicates, b.duplicates);
}

TEST(Arq, DifferentSlotTime) {
  const ArqResult r = run_arq_experiment(0.5, 1000, 4.0, 5);
  // Mean latency should scale with the slot: ~ attempts * 4.2.
  EXPECT_NEAR(r.mean_latency, r.mean_attempts * 4.2, 2.0);
}

TEST(Arq, PayloadDescribe) {
  ArqPayload data(ArqPayload::Kind::kData, 7);
  ArqPayload ack(ArqPayload::Kind::kAck, 7);
  EXPECT_EQ(data.describe(), "DATA(7)");
  EXPECT_EQ(ack.describe(), "ACK(7)");
  auto clone = data.clone();
  EXPECT_EQ(clone->describe(), "DATA(7)");
}

}  // namespace
}  // namespace abe
