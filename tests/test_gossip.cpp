// Tests for push gossip on ABE graphs.
#include "algo/gossip.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace abe {
namespace {

GossipExperiment base(Topology t, std::uint64_t seed) {
  GossipExperiment e;
  e.topology = std::move(t);
  e.seed = seed;
  return e;
}

TEST(Gossip, SpreadsOnCompleteGraph) {
  const auto r = run_gossip(base(complete(16), 1));
  ASSERT_TRUE(r.all_informed);
  EXPECT_GT(r.spread_time, 0.0);
  EXPECT_GE(r.messages, 15u);  // at least one push per victim
}

TEST(Gossip, SpreadsOnRingAndGridAndTorus) {
  for (auto t : {bidirectional_ring(12), grid(4, 4), torus(4, 4)}) {
    const auto r = run_gossip(base(t, 3));
    ASSERT_TRUE(r.all_informed) << t.name;
  }
}

TEST(Gossip, SourceCountsAsInformed) {
  GossipExperiment e = base(complete(4), 2);
  e.source = 2;
  const auto r = run_gossip(e);
  ASSERT_TRUE(r.all_informed);
  EXPECT_LE(r.mean_inform_time, r.spread_time);
}

TEST(Gossip, SingleNodeTrivial) {
  const auto r = run_gossip(base(unidirectional_ring(1), 1));
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.spread_time, 0.0);
}

TEST(Gossip, DeterministicGivenSeed) {
  const auto a = run_gossip(base(grid(3, 3), 42));
  const auto b = run_gossip(base(grid(3, 3), 42));
  ASSERT_TRUE(a.all_informed);
  EXPECT_EQ(a.spread_time, b.spread_time);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Gossip, CompleteGraphSpreadsLogarithmically) {
  // Push gossip on K_n informs everyone in O(log n) ticks; spread time for
  // n=64 should be well below n ticks.
  const auto r = run_gossip(base(complete(64), 5));
  ASSERT_TRUE(r.all_informed);
  EXPECT_LT(r.spread_time, 40.0);
}

TEST(Gossip, RingSpreadsLinearly) {
  // On a bidirectional ring the rumor advances ~1 hop per tick per side.
  const auto fast = run_gossip(base(bidirectional_ring(8), 5));
  const auto slow = run_gossip(base(bidirectional_ring(32), 5));
  ASSERT_TRUE(fast.all_informed);
  ASSERT_TRUE(slow.all_informed);
  EXPECT_GT(slow.spread_time, fast.spread_time * 2);
}

TEST(Gossip, HeavyTailDelaysStillSpread) {
  GossipExperiment e = base(grid(4, 4), 9);
  e.delay_name = "lomax";
  const auto r = run_gossip(e);
  ASSERT_TRUE(r.all_informed);
}

TEST(Gossip, DriftingClocksStillSpread) {
  GossipExperiment e = base(torus(3, 3), 11);
  e.clock_bounds = {0.5, 2.0};
  e.drift = DriftModel::kPiecewiseRandom;
  const auto r = run_gossip(e);
  ASSERT_TRUE(r.all_informed);
}

TEST(Gossip, UnidirectionalRingWorksToo) {
  const auto r = run_gossip(base(unidirectional_ring(8), 13));
  ASSERT_TRUE(r.all_informed);
}

}  // namespace
}  // namespace abe
