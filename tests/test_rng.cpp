// Unit tests for the deterministic PRNG and its samplers.
#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace abe {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SubstreamsAreIndependentOfDrawOrder) {
  Rng root(7);
  Rng s1 = root.substream("alpha", 0);
  // Drawing from the root must not change what a substream yields.
  root.next_u64();
  root.next_u64();
  Rng s2 = root.substream("alpha", 0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(s1.next_u64(), s2.next_u64());
  }
}

TEST(Rng, SubstreamsDifferByNameAndIndex) {
  Rng root(7);
  Rng a = root.substream("alpha", 0);
  Rng b = root.substream("beta", 0);
  Rng c = root.substream("alpha", 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(4);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(Rng, GeometricFailuresMean) {
  Rng rng(12);
  // mean failures = (1-p)/p; for p = 0.25 that is 3.
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.geometric_failures(0.25));
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.geometric_failures(1.0), 0u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  double sum = 0, sq = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LomaxMean) {
  Rng rng(15);
  // alpha=3, lambda=4 -> mean = lambda/(alpha-1) = 2.
  double sum = 0;
  const int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += rng.lomax(3.0, 4.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, ErlangMean) {
  Rng rng(16);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.erlang(4, 0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, ErlangHasLowerVarianceThanExponential) {
  Rng rng(17);
  const int kN = 100000;
  double sq_erl = 0, sq_exp = 0;
  for (int i = 0; i < kN; ++i) {
    const double e = rng.erlang(4, 0.5);  // mean 2
    const double x = rng.exponential(2.0);
    sq_erl += (e - 2.0) * (e - 2.0);
    sq_exp += (x - 2.0) * (x - 2.0);
  }
  EXPECT_LT(sq_erl, sq_exp * 0.5);  // Erlang-4 variance is 1/4 of exp
}

TEST(Rng, PermutationIsValid) {
  Rng rng(18);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(19);
  const auto perm = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10u);  // expected ~1 fixed point
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(20);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, HashNameStable) {
  EXPECT_EQ(hash_name("channels"), hash_name("channels"));
  EXPECT_NE(hash_name("channels"), hash_name("channel"));
  EXPECT_NE(hash_name("a"), hash_name("b"));
}

// Distribution tails: the geometric sampler must actually produce large
// values occasionally (the unbounded-delay property the paper builds on).
TEST(Rng, GeometricTailReachesLargeValues) {
  Rng rng(21);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 100000; ++i) {
    max_seen = std::max(max_seen, rng.geometric_failures(0.5));
  }
  EXPECT_GE(max_seen, 10u);  // P(X >= 10) per draw ~ 1e-3
}

TEST(Rng, LomaxTailHeavierThanExponential) {
  Rng rng(22);
  const int kN = 200000;
  int lomax_tail = 0, exp_tail = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.lomax(2.5, 1.5) > 10.0) ++lomax_tail;  // mean 1
    if (rng.exponential(1.0) > 10.0) ++exp_tail;
  }
  EXPECT_GT(lomax_tail, exp_tail * 5);
}

}  // namespace
}  // namespace abe
