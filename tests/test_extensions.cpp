// Tests for the extension substrate: extra delay laws, the random geometric
// topology, and the online δ-estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "core/delta_estimator.h"
#include "net/delay.h"
#include "net/topology.h"
#include "sim/rng.h"

namespace abe {
namespace {

// ------------------------- new delay laws -----------------------------

void expect_mean(const DelayModelPtr& model, double tol,
                 int samples = 300000) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < samples; ++i) {
    const double d = model->sample(rng);
    ASSERT_GE(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / samples, model->mean_delay(), tol) << model->name();
}

TEST(DelayExt, WeibullMeanParameterisation) {
  expect_mean(weibull_delay(0.7, 2.0), 0.06);
  expect_mean(weibull_delay(2.0, 1.0), 0.02);
}

TEST(DelayExt, WeibullShapeControlsTail) {
  Rng rng(7);
  const auto heavy = weibull_delay(0.5, 1.0);
  const auto light = weibull_delay(3.0, 1.0);
  int heavy_tail = 0, light_tail = 0;
  for (int i = 0; i < 100000; ++i) {
    if (heavy->sample(rng) > 4.0) ++heavy_tail;
    if (light->sample(rng) > 4.0) ++light_tail;
  }
  EXPECT_GT(heavy_tail, light_tail * 10);
}

TEST(DelayExt, LognormalMeanParameterisation) {
  expect_mean(lognormal_delay(1.5, 1.0), 0.06);
  expect_mean(lognormal_delay(1.0, 0.25), 0.02);
}

TEST(DelayExt, HyperexponentialMeanAndVariance) {
  const auto model = hyperexponential_delay(0.5, 5.0, 0.2);
  EXPECT_NEAR(model->mean_delay(), 1.4, 1e-12);
  expect_mean(model, 0.05);
  // Its variance must exceed an exponential of equal mean.
  Rng rng(5);
  const auto expo = exponential_delay(1.4);
  double sq_h = 0, sq_e = 0;
  for (int i = 0; i < 200000; ++i) {
    const double h = model->sample(rng) - 1.4;
    const double e = expo->sample(rng) - 1.4;
    sq_h += h * h;
    sq_e += e * e;
  }
  EXPECT_GT(sq_h, sq_e * 1.5);
}

TEST(DelayExt, FactoryCoversNewModels) {
  for (const char* name : {"weibull", "lognormal", "hyperexp"}) {
    const auto model = make_delay_model(name, 2.5);
    EXPECT_NEAR(model->mean_delay(), 2.5, 1e-9) << name;
    EXPECT_FALSE(model->bounded()) << name;
  }
  EXPECT_EQ(standard_delay_model_names().size(), 11u);
}

// ------------------------- geometric topology --------------------------

TEST(GeometricTopology, ConnectedAndSymmetric) {
  Rng rng(42);
  const Topology t = random_geometric(40, 0.2, rng);
  EXPECT_TRUE(is_strongly_connected(t));
  // Both directions of every radio link exist.
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (const Edge& e : t.edges) edges.insert({e.from, e.to});
  for (const Edge& e : t.edges) {
    EXPECT_TRUE(edges.count({e.to, e.from})) << e.from << "->" << e.to;
  }
}

TEST(GeometricTopology, PositionsMatchEdges) {
  Rng rng(7);
  std::vector<double> pos;
  const Topology t = random_geometric(25, 0.3, rng, &pos);
  ASSERT_EQ(pos.size(), 50u);
  // Edges connect nodes within some radius r; all edge lengths must be
  // below the maximum edge length implied by connectivity growth (sanity:
  // every listed edge is shorter than the diagonal).
  for (const Edge& e : t.edges) {
    const double dx = pos[2 * e.from] - pos[2 * e.to];
    const double dy = pos[2 * e.from + 1] - pos[2 * e.to + 1];
    EXPECT_LT(std::sqrt(dx * dx + dy * dy), std::sqrt(2.0));
  }
}

TEST(GeometricTopology, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const Topology ta = random_geometric(30, 0.25, a);
  const Topology tb = random_geometric(30, 0.25, b);
  EXPECT_EQ(ta.edge_count(), tb.edge_count());
}

TEST(GeometricTopology, TinyRadiusStillConnects) {
  Rng rng(3);
  const Topology t = random_geometric(20, 0.01, rng);  // grows until joined
  EXPECT_TRUE(is_strongly_connected(t));
}

TEST(GeometricTopology, SingleNode) {
  Rng rng(1);
  const Topology t = random_geometric(1, 0.1, rng);
  EXPECT_EQ(t.n, 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

// ------------------------- delta estimator -----------------------------

TEST(DeltaEstimator, BracketsStationaryMean) {
  DeltaEstimator est;
  Rng rng(11);
  const auto model = exponential_delay(2.0);
  for (int i = 0; i < 5000; ++i) est.observe(model->sample(rng));
  EXPECT_NEAR(est.mean_estimate(), 2.0, 0.5);
  EXPECT_GT(est.upper_bound(), 2.0);       // it is a *bound*
  EXPECT_LT(est.upper_bound(), 2.0 * 10);  // but not a useless one
}

TEST(DeltaEstimator, WidensImmediatelyOnRegimeShift) {
  DeltaEstimator est;
  Rng rng(13);
  const auto calm = exponential_delay(1.0);
  const auto storm = exponential_delay(8.0);
  for (int i = 0; i < 2000; ++i) est.observe(calm->sample(rng));
  const double before = est.upper_bound();
  for (int i = 0; i < 2000; ++i) est.observe(storm->sample(rng));
  EXPECT_GT(est.upper_bound(), before * 2);
  EXPECT_GT(est.upper_bound(), 8.0);
}

TEST(DeltaEstimator, TightensOnlySlowly) {
  DeltaEstimator est;
  Rng rng(17);
  const auto storm = exponential_delay(8.0);
  for (int i = 0; i < 2000; ++i) est.observe(storm->sample(rng));
  const double peak = est.upper_bound();
  const auto calm = exponential_delay(1.0);
  for (int i = 0; i < 50; ++i) est.observe(calm->sample(rng));
  // 50 quiet samples at <=1% tightening each cannot halve the bound.
  EXPECT_GT(est.upper_bound(), peak * 0.5);
}

TEST(DeltaEstimator, FirstSampleInitialises) {
  DeltaEstimator est;
  est.observe(3.0);
  EXPECT_EQ(est.samples(), 1u);
  EXPECT_DOUBLE_EQ(est.mean_estimate(), 3.0);
  EXPECT_GT(est.upper_bound(), 3.0);
}

TEST(DeltaEstimator, BoundHoldsForHeavyTails) {
  DeltaEstimator est;
  Rng rng(23);
  const auto model = lomax_delay(2.5, 1.0);
  for (int i = 0; i < 20000; ++i) est.observe(model->sample(rng));
  // The true expected delay is 1.0: the advertised bound must cover it.
  EXPECT_GT(est.upper_bound(), 1.0);
}

}  // namespace
}  // namespace abe
