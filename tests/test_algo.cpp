// Tests for the baseline election algorithms (Itai–Rodeh, Chang–Roberts).
#include <gtest/gtest.h>

#include "algo/chang_roberts.h"
#include "algo/itai_rodeh.h"

namespace abe {
namespace {

// ------------------------- Itai–Rodeh ---------------------------------

TEST(ItaiRodeh, SingleNode) {
  IrExperiment e;
  e.n = 1;
  const auto result = run_itai_rodeh(e);
  EXPECT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
  EXPECT_EQ(result.leader_index, 0u);
}

TEST(ItaiRodeh, ElectsExactlyOneAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    IrExperiment e;
    e.n = 8;
    e.seed = seed;
    const auto result = run_itai_rodeh(e);
    ASSERT_TRUE(result.elected) << "seed=" << seed;
    ASSERT_TRUE(result.safety_ok) << "seed=" << seed;
    ASSERT_LT(result.leader_index, 8u);
    ASSERT_GE(result.rounds, 1u);
  }
}

TEST(ItaiRodeh, VariousRingSizes) {
  for (std::size_t n : {2, 3, 5, 16, 40}) {
    IrExperiment e;
    e.n = n;
    e.seed = 42;
    const auto result = run_itai_rodeh(e);
    ASSERT_TRUE(result.elected) << "n=" << n;
    ASSERT_TRUE(result.safety_ok) << "n=" << n;
  }
}

TEST(ItaiRodeh, FixedDelayWorksToo) {
  IrExperiment e;
  e.n = 12;
  e.delay_name = "fixed";
  e.seed = 3;
  const auto result = run_itai_rodeh(e);
  EXPECT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
}

TEST(ItaiRodeh, MessagesAtLeastN) {
  IrExperiment e;
  e.n = 10;
  e.seed = 9;
  const auto result = run_itai_rodeh(e);
  ASSERT_TRUE(result.elected);
  EXPECT_GE(result.messages, 10u);
}

TEST(ItaiRodeh, SmallIdRangeForcesRedraws) {
  // id_range = 1 forces ties every round until... it can never break
  // symmetry with one id, so use range 2 and check it still terminates.
  IrExperiment e;
  e.n = 4;
  e.seed = 11;
  // run via custom network: reuse run_itai_rodeh but the option isn't
  // plumbed; instead verify more rounds happen on average for small rings
  // by checking rounds >= 1 and messages grow with retries.
  const auto result = run_itai_rodeh(e);
  ASSERT_TRUE(result.elected);
  EXPECT_GE(result.rounds, 1u);
}

TEST(ItaiRodeh, TrialsAggregate) {
  IrExperiment e;
  e.n = 16;
  const auto agg = run_itai_rodeh_trials(e, 10, 500);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_EQ(agg.messages.count(), 10u);
  EXPECT_GE(agg.rounds.mean(), 1.0);
}

// The headline complexity contrast (full curves in bench E2): IR's
// per-election message mean exceeds the ABE election's on the same ring.
TEST(ItaiRodeh, CostlierThanAbeElectionHeadToHead) {
  IrExperiment ir;
  ir.n = 64;
  const auto ir_agg = run_itai_rodeh_trials(ir, 10, 900);
  ASSERT_EQ(ir_agg.failures, 0u);
  // IR sends at least one full n-token wave per round, ~n log n overall.
  EXPECT_GT(ir_agg.messages.mean(), 64.0 * 2);
}

// ------------------------- Chang–Roberts -------------------------------

TEST(ChangRoberts, SingleNode) {
  CrExperiment e;
  e.n = 1;
  const auto result = run_chang_roberts(e);
  EXPECT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok);
}

TEST(ChangRoberts, MaxIdWinsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    CrExperiment e;
    e.n = 9;
    e.seed = seed;
    const auto result = run_chang_roberts(e);
    ASSERT_TRUE(result.elected) << "seed=" << seed;
    ASSERT_TRUE(result.safety_ok) << "seed=" << seed;
  }
}

TEST(ChangRoberts, MessageBounds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CrExperiment e;
    e.n = 12;
    e.seed = seed;
    const auto result = run_chang_roberts(e);
    ASSERT_TRUE(result.elected);
    // Lower bound: winner's token circles (n) plus each other node sends
    // its own token once (n-1). Upper bound: n(n+1)/2 + n.
    EXPECT_GE(result.messages, 2u * 12 - 1);
    EXPECT_LE(result.messages, 12u * 13 / 2 + 12);
  }
}

TEST(ChangRoberts, WorksUnderAllDelayModels) {
  for (const char* delay : {"fixed", "exponential", "lomax"}) {
    CrExperiment e;
    e.n = 10;
    e.delay_name = delay;
    e.seed = 77;
    const auto result = run_chang_roberts(e);
    ASSERT_TRUE(result.elected) << delay;
    ASSERT_TRUE(result.safety_ok) << delay;
  }
}

TEST(ChangRoberts, TrialsAggregate) {
  CrExperiment e;
  e.n = 20;
  const auto agg = run_chang_roberts_trials(e, 10, 300);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.safety_violations, 0u);
  // Average-case CR: ~n·H_n messages; definitely more than 2n.
  EXPECT_GT(agg.messages.mean(), 40.0);
}

}  // namespace
}  // namespace abe
