// Unit tests for topology builders and graph utilities.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace abe {
namespace {

TEST(Topology, UnidirectionalRingShape) {
  const Topology t = unidirectional_ring(5);
  EXPECT_EQ(t.n, 5u);
  EXPECT_EQ(t.edge_count(), 5u);
  const auto out = out_adjacency(t);
  const auto in = in_adjacency(t);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(out[i].size(), 1u);
    ASSERT_EQ(in[i].size(), 1u);
    EXPECT_EQ(t.edges[out[i][0]].to, (i + 1) % 5);
  }
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);
}

TEST(Topology, SingleNodeRingHasNoEdges) {
  const Topology t = unidirectional_ring(1);
  EXPECT_EQ(t.n, 1u);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 0u);
}

TEST(Topology, TwoNodeRing) {
  const Topology t = unidirectional_ring(2);
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 1u);
}

TEST(Topology, BidirectionalRingShape) {
  const Topology t = bidirectional_ring(6);
  EXPECT_EQ(t.edge_count(), 12u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 3u);
}

TEST(Topology, LineShapeAndDiameter) {
  const Topology t = line(7);
  EXPECT_EQ(t.edge_count(), 12u);  // 6 hops * 2 directions
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 6u);
}

TEST(Topology, StarShape) {
  const Topology t = star(9);
  EXPECT_EQ(t.edge_count(), 16u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 2u);
  const auto out = out_adjacency(t);
  EXPECT_EQ(out[0].size(), 8u);  // hub
  EXPECT_EQ(out[3].size(), 1u);  // spoke
}

TEST(Topology, CompleteShape) {
  const Topology t = complete(5);
  EXPECT_EQ(t.edge_count(), 20u);
  EXPECT_EQ(diameter(t), 1u);
}

TEST(Topology, GridShape) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.n, 12u);
  // Horizontal: 3 rows * 3 hops * 2; vertical: 2 * 4 * 2.
  EXPECT_EQ(t.edge_count(), 34u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 5u);  // (3-1) + (4-1)
}

TEST(Topology, TorusShapeAndDiameter) {
  const Topology t = torus(4, 4);
  EXPECT_EQ(t.n, 16u);
  EXPECT_EQ(t.edge_count(), 64u);  // 2*n edges, both directions
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);  // wraparound halves distances
}

TEST(Topology, TorusTwoByTwoDeduplicates) {
  const Topology t = torus(2, 2);
  EXPECT_TRUE(is_strongly_connected(t));
  // Each node has exactly 2 distinct neighbours; duplicate wrap edges were
  // dropped rather than doubled.
  const auto out = out_adjacency(t);
  for (std::size_t i = 0; i < t.n; ++i) {
    EXPECT_EQ(out[i].size(), 2u);
  }
}

TEST(Topology, HypercubeShape) {
  const Topology t = hypercube(4);
  EXPECT_EQ(t.n, 16u);
  EXPECT_EQ(t.edge_count(), 64u);  // n * dim
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);
}

TEST(Topology, HypercubeDimZeroIsSingleton) {
  const Topology t = hypercube(0);
  EXPECT_EQ(t.n, 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(Topology, RandomConnectedIsConnectedAndDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  const Topology a = random_connected(20, 0.15, rng1);
  const Topology b = random_connected(20, 0.15, rng2);
  EXPECT_TRUE(is_strongly_connected(a));
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from);
    EXPECT_EQ(a.edges[i].to, b.edges[i].to);
  }
}

TEST(Topology, RandomConnectedSparseStillTerminates) {
  Rng rng(7);
  const Topology t = random_connected(30, 0.01, rng);
  EXPECT_TRUE(is_strongly_connected(t));
}

TEST(Topology, DisconnectedGraphDetected) {
  Topology t;
  t.n = 4;
  t.edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  EXPECT_FALSE(is_strongly_connected(t));
}

TEST(Topology, OneWayPairNotStronglyConnected) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 1}};
  EXPECT_FALSE(is_strongly_connected(t));
}

TEST(Topology, InIndexMappingConsistent) {
  const Topology t = grid(2, 3);
  const auto in = in_adjacency(t);
  std::set<std::size_t> all_edges;
  for (std::size_t v = 0; v < t.n; ++v) {
    for (std::size_t e : in[v]) {
      EXPECT_EQ(t.edges[e].to, v);
      all_edges.insert(e);
    }
  }
  EXPECT_EQ(all_edges.size(), t.edge_count());
}

TEST(Topology, ValidateRejectsSelfLoop) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 0}};
  EXPECT_DEATH(validate_topology(t), "self-loops");
}

TEST(Topology, ValidateRejectsOutOfRange) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 5}};
  EXPECT_DEATH(validate_topology(t), "");
}

}  // namespace
}  // namespace abe
