// Unit tests for topology builders and graph utilities.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace abe {
namespace {

TEST(Topology, UnidirectionalRingShape) {
  const Topology t = unidirectional_ring(5);
  EXPECT_EQ(t.n, 5u);
  EXPECT_EQ(t.edge_count(), 5u);
  const auto out = out_adjacency(t);
  const auto in = in_adjacency(t);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(out[i].size(), 1u);
    ASSERT_EQ(in[i].size(), 1u);
    EXPECT_EQ(t.edges[out[i][0]].to, (i + 1) % 5);
  }
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);
}

TEST(Topology, SingleNodeRingHasNoEdges) {
  const Topology t = unidirectional_ring(1);
  EXPECT_EQ(t.n, 1u);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 0u);
}

TEST(Topology, TwoNodeRing) {
  const Topology t = unidirectional_ring(2);
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 1u);
}

TEST(Topology, BidirectionalRingShape) {
  const Topology t = bidirectional_ring(6);
  EXPECT_EQ(t.edge_count(), 12u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 3u);
}

TEST(Topology, LineShapeAndDiameter) {
  const Topology t = line(7);
  EXPECT_EQ(t.edge_count(), 12u);  // 6 hops * 2 directions
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 6u);
}

TEST(Topology, StarShape) {
  const Topology t = star(9);
  EXPECT_EQ(t.edge_count(), 16u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 2u);
  const auto out = out_adjacency(t);
  EXPECT_EQ(out[0].size(), 8u);  // hub
  EXPECT_EQ(out[3].size(), 1u);  // spoke
}

TEST(Topology, CompleteShape) {
  const Topology t = complete(5);
  EXPECT_EQ(t.edge_count(), 20u);
  EXPECT_EQ(diameter(t), 1u);
}

TEST(Topology, GridShape) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.n, 12u);
  // Horizontal: 3 rows * 3 hops * 2; vertical: 2 * 4 * 2.
  EXPECT_EQ(t.edge_count(), 34u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 5u);  // (3-1) + (4-1)
}

TEST(Topology, TorusShapeAndDiameter) {
  const Topology t = torus(4, 4);
  EXPECT_EQ(t.n, 16u);
  EXPECT_EQ(t.edge_count(), 64u);  // 2*n edges, both directions
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);  // wraparound halves distances
}

TEST(Topology, TorusTwoByTwoDeduplicates) {
  const Topology t = torus(2, 2);
  EXPECT_TRUE(is_strongly_connected(t));
  // Each node has exactly 2 distinct neighbours; duplicate wrap edges were
  // dropped rather than doubled.
  const auto out = out_adjacency(t);
  for (std::size_t i = 0; i < t.n; ++i) {
    EXPECT_EQ(out[i].size(), 2u);
  }
}

TEST(Topology, HypercubeShape) {
  const Topology t = hypercube(4);
  EXPECT_EQ(t.n, 16u);
  EXPECT_EQ(t.edge_count(), 64u);  // n * dim
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_EQ(diameter(t), 4u);
}

TEST(Topology, HypercubeDimZeroIsSingleton) {
  const Topology t = hypercube(0);
  EXPECT_EQ(t.n, 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

// FNV-1a digest of an edge list: stable fingerprint for the cross-platform
// determinism properties below (the Rng is our own xoshiro — bit-identical
// everywhere — so a fixed seed must give a fixed graph on every platform).
std::uint64_t edge_digest(const Topology& t) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(t.n);
  for (const Edge& e : t.edges) {
    mix(e.from);
    mix(e.to);
  }
  return h;
}

// Property: every random topology is strongly connected and deterministic
// for a fixed Rng seed — including the tiny-n corners, where the documented
// clamps (p := 1 for n <= 2; radius grown to √2 coverage) guarantee
// termination.
TEST(TopologyProperty, RandomConnectedAlwaysConnectedDeterministicTinyN) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 12u, 30u}) {
    for (double p : {0.0, 0.05, 0.5}) {
      for (std::uint64_t seed : {1u, 7u, 42u}) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        const Topology a = random_connected(n, p, rng_a);
        const Topology b = random_connected(n, p, rng_b);
        ASSERT_TRUE(is_strongly_connected(a))
            << "n=" << n << " p=" << p << " seed=" << seed;
        EXPECT_EQ(edge_digest(a), edge_digest(b));
        validate_topology(a);
      }
    }
  }
}

TEST(TopologyProperty, RandomGeometricAlwaysConnectedDeterministicTinyN) {
  for (std::size_t n : {1u, 2u, 3u, 9u, 36u}) {
    // 5.0 exercises the documented clamp to √2; 1e-3 the growth loop.
    for (double radius : {1e-3, 0.25, 5.0}) {
      for (std::uint64_t seed : {1u, 7u, 42u}) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        std::vector<double> pos;
        const Topology a = random_geometric(n, radius, rng_a, &pos);
        const Topology b = random_geometric(n, radius, rng_b);
        ASSERT_TRUE(is_strongly_connected(a))
            << "n=" << n << " radius=" << radius << " seed=" << seed;
        EXPECT_EQ(edge_digest(a), edge_digest(b));
        EXPECT_EQ(pos.size(), 2 * n);
        validate_topology(a);
      }
    }
  }
}

// Golden fingerprints: lock the exact graphs a fixed seed produces, so a
// platform or toolchain whose draws diverge fails loudly here instead of
// silently skewing every scenario sweep. Values recorded from the xoshiro
// Rng's defined output — they must never change.
TEST(TopologyProperty, FixedSeedGoldenDigests) {
  Rng rng_gnp(99);
  EXPECT_EQ(edge_digest(random_connected(12, 0.2, rng_gnp)),
            0x36a5a9958a489d91ull);
  Rng rng_geo(99);
  EXPECT_EQ(edge_digest(random_geometric(12, 0.35, rng_geo)),
            0xd323590796fce3f7ull);
}

TEST(Topology, RandomConnectedTinyNClampsToCompleteGraph) {
  Rng rng(3);
  // n <= 2 clamps p to 1: the graph exists on the first attempt even with
  // p = 0, and for n = 2 it is exactly the 2-cycle.
  const Topology one = random_connected(1, 0.0, rng);
  EXPECT_EQ(one.edge_count(), 0u);
  const Topology two = random_connected(2, 0.0, rng);
  EXPECT_EQ(two.edge_count(), 2u);
  EXPECT_TRUE(is_strongly_connected(two));
}

TEST(Topology, RandomGeometricHugeRadiusClampsToComplete) {
  Rng rng(5);
  // radius > √2 covers the whole unit square: every pair is connected.
  const Topology t = random_geometric(6, 100.0, rng);
  EXPECT_EQ(t.edge_count(), 6u * 5u);
  EXPECT_EQ(diameter(t), 1u);
}

TEST(Topology, RandomConnectedIsConnectedAndDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  const Topology a = random_connected(20, 0.15, rng1);
  const Topology b = random_connected(20, 0.15, rng2);
  EXPECT_TRUE(is_strongly_connected(a));
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from);
    EXPECT_EQ(a.edges[i].to, b.edges[i].to);
  }
}

TEST(Topology, RandomConnectedSparseStillTerminates) {
  Rng rng(7);
  const Topology t = random_connected(30, 0.01, rng);
  EXPECT_TRUE(is_strongly_connected(t));
}

TEST(Topology, DisconnectedGraphDetected) {
  Topology t;
  t.n = 4;
  t.edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  EXPECT_FALSE(is_strongly_connected(t));
}

TEST(Topology, OneWayPairNotStronglyConnected) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 1}};
  EXPECT_FALSE(is_strongly_connected(t));
}

TEST(Topology, InIndexMappingConsistent) {
  const Topology t = grid(2, 3);
  const auto in = in_adjacency(t);
  std::set<std::size_t> all_edges;
  for (std::size_t v = 0; v < t.n; ++v) {
    for (std::size_t e : in[v]) {
      EXPECT_EQ(t.edges[e].to, v);
      all_edges.insert(e);
    }
  }
  EXPECT_EQ(all_edges.size(), t.edge_count());
}

TEST(Topology, ValidateRejectsSelfLoop) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 0}};
  EXPECT_DEATH(validate_topology(t), "self-loops");
}

TEST(Topology, ValidateRejectsOutOfRange) {
  Topology t;
  t.n = 2;
  t.edges = {{0, 5}};
  EXPECT_DEATH(validate_topology(t), "");
}

}  // namespace
}  // namespace abe
