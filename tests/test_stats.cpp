// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace abe {
namespace {

TEST(Summary, EmptyIsZeroCount) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Summary, MeanAndVarianceKnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Summary, CiShrinksWithSamples) {
  Summary small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) big.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_half_width(), big.ci95_half_width());
}

TEST(Summary, ToJsonRoundTripPrecisionAndNullCi) {
  Summary s;
  s.add(1.0 / 3.0);
  s.add(2.0 / 3.0);
  const std::string json = s.to_json();
  // Round-trip precision: 1/3 must appear with max_digits10 digits, not
  // the default 6 — byte-stable serialization of bit-identical aggregates.
  EXPECT_NE(json.find("\"mean\": 0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("0.33333333333333331"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ci95\": "), std::string::npos);

  // Fewer than two samples: no interval, serialized as 0 (every field
  // stays a finite JSON number).
  Summary one;
  one.add(4.0);
  EXPECT_NE(one.to_json().find("\"ci95\": 0"), std::string::npos)
      << one.to_json();

  // Empty summary (an all-failures sweep cell): min/max are NaN in C++,
  // which JSON cannot represent — the serialization must stay parseable.
  const Summary empty;
  EXPECT_EQ(empty.to_json(),
            "{\"count\": 0, \"mean\": 0, \"stddev\": 0, \"min\": 0, "
            "\"max\": 0, \"ci95\": 0}");
}

TEST(Summary, TCriticalValues) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_975(1000), 1.96, 1e-3);
  EXPECT_TRUE(std::isinf(t_critical_975(0)));
}

TEST(Histogram, QuantilesExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(h.median(), 50.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.25), 25.75, 1e-9);
}

TEST(Histogram, TailFraction) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.tail_fraction(5.0), 0.5, 1e-12);
  EXPECT_NEAR(h.tail_fraction(10.0), 0.0, 1e-12);
  EXPECT_NEAR(h.tail_fraction(0.0), 1.0, 1e-12);
}

TEST(Histogram, MeanAndCount) {
  Histogram h;
  h.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean(), 2.0, 1e-12);
}

TEST(Histogram, AsciiRendersBins) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  const std::string art = h.ascii(5, 30);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Histogram, InterleavedAddAndQuery) {
  Histogram h;
  h.add(5.0);
  EXPECT_EQ(h.median(), 5.0);
  h.add(1.0);
  h.add(9.0);
  EXPECT_EQ(h.median(), 5.0);  // re-sorts after mutation
}

TEST(Regression, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineHighR2) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + ((i % 3) - 1) * 0.1);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Regression, LogLogRecoversPolynomialDegree) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i * i);  // degree 2
  }
  const LinearFit fit = fit_loglog(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Regression, LogLogLinearVsNLogN) {
  std::vector<double> x, linear, nlogn;
  for (int i = 2; i <= 512; i *= 2) {
    x.push_back(i);
    linear.push_back(4.0 * i);
    nlogn.push_back(4.0 * i * std::log2(static_cast<double>(i)));
  }
  EXPECT_NEAR(fit_loglog(x, linear).slope, 1.0, 1e-9);
  EXPECT_GT(fit_loglog(x, nlogn).slope, 1.2);  // clearly super-linear
}

TEST(Regression, CorrelationSigns) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, down), -1.0, 1e-12);
}

TEST(Regression, CorrelationDegenerateIsNaN) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> flat{5, 5, 5};
  EXPECT_TRUE(std::isnan(correlation(x, flat)));
}

TEST(Table, RendersAlignedRows) {
  Table t({"n", "messages", "time"});
  t.add_row({"8", "25.31", "10.2"});
  t.add_row({"128", "412.77", "161.9"});
  const std::string out = t.render("E2");
  EXPECT_NE(out.find("== E2 =="), std::string::npos);
  EXPECT_NE(out.find("messages"), std::string::npos);
  EXPECT_NE(out.find("412.77"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

}  // namespace
}  // namespace abe
