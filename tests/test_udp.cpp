// Tests for the real-socket runtime (runtime/udp_runtime.h): the UdpSocket
// wrapper, datagram elections through the scenario driver stack, the ARQ
// reliable layer under injected per-attempt loss (exactly-once delivery),
// the measured-transit histogram, and the measured-delay -> DelayModel
// calibration path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include "net/delay.h"
#include "net/message.h"
#include "net/node.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "runtime/udp_runtime.h"
#include "runtime/udp_socket.h"
#include "scenario/drivers.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "sim/rng.h"

namespace abe {
namespace {

// ---------------------------------------------------------------------
// UdpSocket wrapper

TEST(UdpSocket, RoundTripsOneDatagram) {
  UdpSocket tx;
  UdpSocket rx;
  ASSERT_NE(rx.port(), 0);
  const char ping[] = "ping";
  ASSERT_TRUE(tx.send_to(rx.port(), ping, sizeof(ping)));
  char buffer[64] = {};
  int got = 0;
  // Loopback delivery is fast but asynchronous; each receive() polls one
  // kernel timeout interval.
  for (int attempt = 0; attempt < 100 && got == 0; ++attempt) {
    got = rx.receive(buffer, sizeof(buffer));
  }
  ASSERT_EQ(got, static_cast<int>(sizeof(ping)));
  EXPECT_STREQ(buffer, "ping");
}

TEST(UdpSocket, ReceiveOnEmptySocketReturnsZeroPromptly) {
  UdpSocket idle;
  char buffer[8];
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(idle.receive(buffer, sizeof(buffer)), 0);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // One poll interval plus scheduling slack, not a hang.
  EXPECT_LT(waited.count(), 10 * UdpSocket::kPollIntervalMs);
}

// ---------------------------------------------------------------------
// End-to-end elections over real datagrams (scenario driver stack)

ScenarioSpec udp_ring_spec(std::size_t n) {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kRingElection;
  spec.topology = TopologySpec{TopologyFamily::kRingUni, n, 0.0};
  spec.runtime = RuntimeKind::kUdp;
  spec.settle_time = 5.0;
  spec.deadline = 2e4;
  spec.thread_time_scale_us = 100.0;
  spec.thread_wall_timeout_ms = 10000.0;
  return spec;
}

TEST(UdpNet, ElectsExactlyOneLeaderOverRealDatagrams) {
  ScenarioSpec spec = udp_ring_spec(8);
  ASSERT_EQ(runtime_cell_problem(spec), "");
  const TrialOutcome trial = run_scenario_trial(spec, /*seed=*/1);
  ASSERT_TRUE(trial.completed);
  EXPECT_TRUE(trial.safety_ok) << trial.safety_detail;
  EXPECT_GE(trial.messages, 7u);
}

TEST(UdpNet, LossyCellCompletesUnderArq) {
  ScenarioSpec spec = udp_ring_spec(8);
  spec.failure = FailureProfile::loss(0.1);
  spec.udp_reliable = true;
  ASSERT_EQ(runtime_cell_problem(spec), "");
  const TrialOutcome trial = run_scenario_trial(spec, /*seed=*/2);
  ASSERT_TRUE(trial.completed)
      << "ARQ must mask 10% per-attempt loss on loopback";
  EXPECT_TRUE(trial.safety_ok) << trial.safety_detail;
}

// ---------------------------------------------------------------------
// ARQ over real injected loss: every message delivered exactly once

// Sends `count` messages down edge 0 from on_start, then idles terminated.
class Burster final : public Node {
 public:
  explicit Burster(std::uint64_t count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (std::uint64_t i = 0; i < count_; ++i) {
      ctx.send(0, std::make_unique<IntPayload>(static_cast<std::int64_t>(i)));
    }
  }
  void on_message(Context&, std::size_t, const Payload&) override {}
  bool is_terminated() const override { return true; }

 private:
  std::uint64_t count_;
};

// Counts deliveries; exactly-once is checked against this tally.
class CountingSink final : public Node {
 public:
  void on_message(Context&, std::size_t, const Payload&) override {
    ++received_;
  }
  std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

TEST(UdpNet, ArqOverRealLossDeliversExactlyOnce) {
  constexpr std::uint64_t kMessages = 300;
  UdpNetConfig config;
  config.topology = unidirectional_ring(2);
  config.delay = fixed_delay(0.05);
  config.time_scale_us = 100.0;
  config.loss_probability = 0.3;  // drawn per ATTEMPT, masked by ARQ
  config.reliable = true;
  config.seed = 3;  // pinned: the attempt-loss coin sequence is replayable
  UdpNetwork net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    if (i == 0) return std::make_unique<Burster>(kMessages);
    return std::make_unique<CountingSink>();
  });
  net.start();
  // Quiescence on the reliable channel means: every message ACKed AND
  // handled — an unACKed message keeps sent > done, so this wait is the
  // delivery guarantee's enforcement point.
  ASSERT_TRUE(net.wait_quiescent(std::chrono::milliseconds(30000)));
  net.stop();

  EXPECT_EQ(net.messages_sent(), kMessages);
  EXPECT_EQ(net.messages_delivered(), kMessages) << "every message, despite "
                                                 << "30% per-attempt loss";
  EXPECT_EQ(net.messages_dropped(), 0u) << "no give-ups expected";
  const auto& sink = static_cast<const CountingSink&>(net.node(1));
  EXPECT_EQ(sink.received(), kMessages) << "exactly once at the algorithm";

  // ~30% of first attempts were suppressed, so the ARQ layer must have
  // actually retransmitted — this is what distinguishes the test from a
  // lossless run.
  const MetricsSnapshot snapshot = net.metrics_snapshot();
  double retransmits = -1.0;
  double attempt_drops = -1.0;
  for (const MetricValue& entry : snapshot.entries()) {
    if (entry.name == "udp.retransmits") retransmits = entry.value;
    if (entry.name == "udp.attempt_drops") attempt_drops = entry.value;
  }
  EXPECT_GT(attempt_drops, 0.0);
  EXPECT_GT(retransmits, 0.0);
}

// ---------------------------------------------------------------------
// Measured transit + calibration

TEST(UdpNet, TransitHistogramMeasuresRealDelays) {
  ScenarioSpec spec = udp_ring_spec(6);
  const TrialOutcome trial = run_scenario_trial(spec, /*seed=*/5);
  ASSERT_TRUE(trial.completed);
  ASSERT_TRUE(trial.has_metrics);
  std::uint64_t samples = 0;
  bool found = false;
  for (const MetricValue& entry : trial.metrics.entries()) {
    if (entry.name != "udp.transit_us") continue;
    found = true;
    ASSERT_EQ(entry.kind, MetricKind::kHistogram);
    for (const std::uint64_t bucket : entry.buckets) samples += bucket;
  }
  ASSERT_TRUE(found) << "udp cells must harvest the measured-delay histogram";
  EXPECT_GT(samples, 0u) << "every delivered datagram records its transit";
}

TEST(UdpCalibrationFit, FitsMeasuredTransitIntoDelayModel) {
  ScenarioSpec spec = udp_ring_spec(6);
  const TrialOutcome trial = run_scenario_trial(spec, /*seed=*/6);
  ASSERT_TRUE(trial.completed);
  ASSERT_TRUE(trial.has_metrics);

  const UdpCalibration cal = fit_udp_calibration(trial.metrics);
  ASSERT_TRUE(cal.ok);
  EXPECT_GT(cal.samples, 0u);
  EXPECT_GE(cal.offset_us, 0.0);
  EXPECT_GE(cal.mean_extra_us, 0.0);

  // The fitted model must be a usable simulator delay source: nonnegative
  // samples at or above the fitted floor (in sim units at this scale).
  const double scale = 100.0;
  const DelayModelPtr model = cal.to_delay_model(scale);
  ASSERT_NE(model, nullptr);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    const double d = model->sample(rng);
    EXPECT_GE(d, cal.offset_us / scale - 1e-12);
  }
}

TEST(UdpCalibrationFit, EmptySnapshotIsNotOk) {
  const UdpCalibration cal = fit_udp_calibration(MetricsSnapshot{});
  EXPECT_FALSE(cal.ok);
  EXPECT_EQ(cal.samples, 0u);
}

// ---------------------------------------------------------------------
// Structural gates

TEST(UdpNet, OverSocketBudgetCellIsRejectedStructurally) {
  ScenarioSpec spec = udp_ring_spec(kMaxUdpRuntimeNodes + 1);
  const std::string problem = runtime_cell_problem(spec);
  ASSERT_NE(problem, "");
  EXPECT_NE(problem.find("socket"), std::string::npos) << problem;
  // Same size is fine on the thread runtime (bigger budget, no sockets).
  spec.runtime = RuntimeKind::kThread;
  EXPECT_EQ(runtime_cell_problem(spec), "");
}

TEST(UdpNet, PiecewiseDriftRejected) {
  UdpNetConfig config;
  config.topology = unidirectional_ring(3);
  config.drift = DriftModel::kPiecewiseRandom;
  EXPECT_DEATH(UdpNetwork net(std::move(config)), "udp runtime");
}

TEST(UdpNet, ArqSuffixAppearsOnlyOnReliableUdpCells) {
  ScenarioSpec spec = udp_ring_spec(8);
  const std::string plain = spec.cell_id();
  EXPECT_NE(plain.find("/rt-udp"), std::string::npos);
  EXPECT_EQ(plain.find("/arq"), std::string::npos);
  spec.udp_reliable = true;
  EXPECT_NE(spec.cell_id().find("/rt-udp/arq"), std::string::npos);
  // The flag is a udp-realisation knob: other substrates ignore it.
  spec.runtime = RuntimeKind::kSim;
  EXPECT_EQ(spec.cell_id().find("/arq"), std::string::npos);
}

}  // namespace
}  // namespace abe
