// Unit tests for the discrete-event scheduler.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.h"

namespace abe {
namespace {

TEST(Scheduler, StartsAtZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.live_count(), 0u);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Scheduler, ScheduleInUsesRelativeDelay) {
  Scheduler s;
  double seen = -1;
  s.schedule_in(2.0, [&] {
    seen = s.now();
    s.schedule_in(3.0, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.processed_count(), 0u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterRunReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<double> times;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&times, &s] {
      times.push_back(s.now());
    });
  }
  EXPECT_EQ(s.run_until(5.0), 5u);
  EXPECT_EQ(s.now(), 5.0);
  EXPECT_EQ(times.size(), 5u);
  EXPECT_EQ(s.live_count(), 5u);
  EXPECT_EQ(s.run(), 5u);
}

TEST(Scheduler, RunUntilAdvancesTimeWhenQueueDrains) {
  Scheduler s;
  s.schedule_at(1.0, [] {});
  s.run_until(10.0);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(Scheduler, RunStepsLimitsEvents) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  EXPECT_EQ(s.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.run_steps(100), 6u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) s.schedule_in(1.0, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(s.now(), 49.0);
}

TEST(Scheduler, RequestStopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] {
      if (++count == 3) s.request_stop();
    });
  }
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(count, 3);
  // A later run() resumes.
  EXPECT_EQ(s.run(), 7u);
}

// Regression: request_stop() during run_until() used to fast-forward now()
// to the deadline even though live events earlier than the deadline were
// still pending; the next run() then aborted on its e.when >= now_ check.
TEST(Scheduler, StopDuringRunUntilKeepsPendingEventsRunnable) {
  Scheduler s;
  std::vector<double> times;
  for (int i = 1; i <= 6; ++i) {
    s.schedule_at(static_cast<double>(i), [&times, &s] {
      times.push_back(s.now());
      if (times.size() == 2) s.request_stop();
    });
  }
  EXPECT_EQ(s.run_until(5.0), 2u);
  // Events at 3, 4, 5 are still pending before the deadline, so time must
  // not have been fast-forwarded past them.
  EXPECT_EQ(s.now(), 2.0);
  EXPECT_EQ(s.live_count(), 4u);
  EXPECT_EQ(s.run(), 4u);
  EXPECT_EQ(times, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(Scheduler, RunUntilAdvancesToDeadlineWhenRemainingEventsAreLater) {
  Scheduler s;
  s.schedule_at(1.0, [] {});
  s.schedule_at(20.0, [] {});
  EXPECT_EQ(s.run_until(10.0), 1u);
  EXPECT_EQ(s.now(), 10.0);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(s.now(), 20.0);
}

TEST(Scheduler, ProcessedCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_in(1.0, [] {});
  s.run();
  for (int i = 0; i < 3; ++i) s.schedule_in(1.0, [] {});
  s.run();
  EXPECT_EQ(s.processed_count(), 8u);
}

TEST(Scheduler, CancelInterleavedWithExecution) {
  Scheduler s;
  std::vector<int> order;
  EventId later = s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.cancel(later);
  });
  s.run();
  EXPECT_EQ(order, std::vector<int>{1});
}

// Regression: -0.0 passes the `when >= now()` guard but its raw IEEE bit
// pattern (sign bit only) would sort after every positive time; the packed
// key must canonicalize it so ordering matches value comparison. Clock
// arithmetic can produce -0.0 legitimately (e.g. 0.0 * -drift).
TEST(Scheduler, NegativeZeroTimeOrdersAsZero) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(-0.0, [&] { order.push_back(0); });
  EXPECT_EQ(s.next_event_time(), 0.0);
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));

  Scheduler s2;
  bool ran = false;
  s2.schedule_at(1.0, [&] { ran = true; });
  // A -0.0 deadline must behave exactly like 0.0: nothing runs.
  EXPECT_EQ(s2.run_until(-0.0), 0u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(s2.live_count(), 1u);
}

// Regression: the lazy-deletion design kept one tombstone heap entry per
// cancel, so ARQ-style schedule/cancel churn grew the queue without bound.
// Direct cancellation must keep allocated records at the live high-water
// mark no matter how many events churn through.
TEST(Scheduler, ChurnKeepsMemoryBounded) {
  Scheduler s;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(1000.0 + i, [] {});
  }
  for (int i = 0; i < 100000; ++i) {
    const EventId id = s.schedule_in(1.0, [] {});
    ASSERT_TRUE(s.cancel(id));
  }
  EXPECT_EQ(s.live_count(), 16u);
  EXPECT_LE(s.slot_capacity(), 17u);
  EXPECT_EQ(s.run(), 16u);
}

// A cancelled event's slot may be reused by a newer event; the stale handle
// must then be rejected (generation counted), never cancel the new occupant.
TEST(Scheduler, StaleIdAfterCancelCannotTouchSlotReuser) {
  Scheduler s;
  bool ran_b = false;
  const EventId a = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(a));
  const EventId b = s.schedule_at(2.0, [&] { ran_b = true; });
  EXPECT_NE(a.value(), b.value());
  EXPECT_FALSE(s.cancel(a));  // stale: must not cancel b
  EXPECT_EQ(s.live_count(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_TRUE(ran_b);
}

TEST(Scheduler, StaleIdAfterRunCannotTouchSlotReuser) {
  Scheduler s;
  const EventId a = s.schedule_at(1.0, [] {});
  EXPECT_EQ(s.run(), 1u);
  bool ran_b = false;
  const EventId b = s.schedule_at(2.0, [&] { ran_b = true; });
  EXPECT_FALSE(s.cancel(a));  // already ran; slot may now belong to b
  EXPECT_TRUE(s.cancel(b));
  EXPECT_FALSE(ran_b);
  // And a handle for a slot that was never allocated.
  EXPECT_FALSE(s.cancel(EventId{std::int64_t{1} << 40}));
  EXPECT_FALSE(s.cancel(EventId{}));  // invalid (negative) handle
}

// Repeated reuse of one slot: every generation must get a distinct id and
// exactly the right event must be cancellable at each step.
TEST(Scheduler, GenerationsStayDistinctAcrossManyReuses) {
  Scheduler s;
  EventId prev{};
  for (int i = 0; i < 1000; ++i) {
    const EventId id = s.schedule_at(1.0, [] {});
    EXPECT_NE(id.value(), prev.value());
    EXPECT_FALSE(s.cancel(prev));
    EXPECT_TRUE(s.cancel(id));
    prev = id;
  }
  EXPECT_TRUE(s.idle());
  EXPECT_LE(s.slot_capacity(), 1u);
}

TEST(Scheduler, PeekNextIdMatchesBothAllocationPaths) {
  Scheduler s;
  // Fresh-slot path.
  const EventId peek_fresh = s.peek_next_id();
  const EventId got_fresh = s.schedule_at(1.0, [] {});
  EXPECT_EQ(peek_fresh.value(), got_fresh.value());
  // Free-list path: a cancelled slot is recycled with a new generation.
  EXPECT_TRUE(s.cancel(got_fresh));
  const EventId peek_reuse = s.peek_next_id();
  const EventId got_reuse = s.schedule_at(2.0, [] {});
  EXPECT_EQ(peek_reuse.value(), got_reuse.value());
  EXPECT_NE(got_reuse.value(), got_fresh.value());
}

// Random interleaving of schedules, direct cancels, and runs must preserve
// the (time, seq) execution order exactly.
TEST(Scheduler, RandomCancelPatternKeepsOrder) {
  Scheduler s;
  Rng rng(99);
  std::vector<EventId> pending;
  int executed = 0;
  double last = -1.0;
  bool monotone = true;
  int scheduled = 0;
  int cancelled = 0;
  for (int round = 0; round < 2000; ++round) {
    const double when = s.now() + rng.uniform01() * 100.0;
    pending.push_back(s.schedule_at(when, [&, when] {
      if (when < last) monotone = false;
      last = when;
      ++executed;
    }));
    ++scheduled;
    if (rng.bernoulli(0.4) && !pending.empty()) {
      const std::size_t pick = rng.uniform_int(pending.size());
      if (s.cancel(pending[pick])) ++cancelled;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (rng.bernoulli(0.3)) s.run_steps(1 + rng.uniform_int(3));
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(executed, scheduled - cancelled);
  EXPECT_TRUE(s.idle());
}

// Actions larger than the inline buffer fall back to the heap and must be
// invoked and destroyed exactly once.
TEST(Scheduler, OversizedActionsRunAndDestruct) {
  Scheduler s;
  auto token = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> p;
    double padding[8];
    void operator()() const { ++*p; }
  };
  static_assert(!InlineAction::stores_inline<Big>(),
                "Big must exercise the heap fallback");
  s.schedule_at(1.0, Big{token, {}});
  const EventId cancelled = s.schedule_at(2.0, Big{token, {}});
  EXPECT_EQ(token.use_count(), 3);
  EXPECT_TRUE(s.cancel(cancelled));
  EXPECT_EQ(token.use_count(), 2);  // cancelled action destroyed eagerly
  s.run();
  EXPECT_EQ(*token, 1);
  EXPECT_EQ(token.use_count(), 1);  // run action destroyed after firing
}

// The delivery closure — the hottest event in the simulator — must stay
// within the inline buffer (scheduling it must not allocate).
TEST(Scheduler, HotPathClosuresStoreInline) {
  struct DeliveryShaped {
    void* net;
    std::size_t edge;
    std::shared_ptr<const int> payload;
    double sent_at;
    void operator()() const {}
  };
  static_assert(InlineAction::stores_inline<DeliveryShaped>(),
                "delivery closures must not allocate");
  SUCCEED();
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double when = static_cast<double>((i * 7919) % 1000);
    s.schedule_at(when, [&, when] {
      if (when < last) monotone = false;
      last = when;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace abe
