// Unit tests for the discrete-event scheduler.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace abe {
namespace {

TEST(Scheduler, StartsAtZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.live_count(), 0u);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Scheduler, ScheduleInUsesRelativeDelay) {
  Scheduler s;
  double seen = -1;
  s.schedule_in(2.0, [&] {
    seen = s.now();
    s.schedule_in(3.0, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.processed_count(), 0u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterRunReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<double> times;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&times, &s] {
      times.push_back(s.now());
    });
  }
  EXPECT_EQ(s.run_until(5.0), 5u);
  EXPECT_EQ(s.now(), 5.0);
  EXPECT_EQ(times.size(), 5u);
  EXPECT_EQ(s.live_count(), 5u);
  EXPECT_EQ(s.run(), 5u);
}

TEST(Scheduler, RunUntilAdvancesTimeWhenQueueDrains) {
  Scheduler s;
  s.schedule_at(1.0, [] {});
  s.run_until(10.0);
  EXPECT_EQ(s.now(), 10.0);
}

TEST(Scheduler, RunStepsLimitsEvents) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  EXPECT_EQ(s.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.run_steps(100), 6u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) s.schedule_in(1.0, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(s.now(), 49.0);
}

TEST(Scheduler, RequestStopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<double>(i), [&] {
      if (++count == 3) s.request_stop();
    });
  }
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(count, 3);
  // A later run() resumes.
  EXPECT_EQ(s.run(), 7u);
}

// Regression: request_stop() during run_until() used to fast-forward now()
// to the deadline even though live events earlier than the deadline were
// still pending; the next run() then aborted on its e.when >= now_ check.
TEST(Scheduler, StopDuringRunUntilKeepsPendingEventsRunnable) {
  Scheduler s;
  std::vector<double> times;
  for (int i = 1; i <= 6; ++i) {
    s.schedule_at(static_cast<double>(i), [&times, &s] {
      times.push_back(s.now());
      if (times.size() == 2) s.request_stop();
    });
  }
  EXPECT_EQ(s.run_until(5.0), 2u);
  // Events at 3, 4, 5 are still pending before the deadline, so time must
  // not have been fast-forwarded past them.
  EXPECT_EQ(s.now(), 2.0);
  EXPECT_EQ(s.live_count(), 4u);
  EXPECT_EQ(s.run(), 4u);
  EXPECT_EQ(times, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(Scheduler, RunUntilAdvancesToDeadlineWhenRemainingEventsAreLater) {
  Scheduler s;
  s.schedule_at(1.0, [] {});
  s.schedule_at(20.0, [] {});
  EXPECT_EQ(s.run_until(10.0), 1u);
  EXPECT_EQ(s.now(), 10.0);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(s.now(), 20.0);
}

TEST(Scheduler, ProcessedCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_in(1.0, [] {});
  s.run();
  for (int i = 0; i < 3; ++i) s.schedule_in(1.0, [] {});
  s.run();
  EXPECT_EQ(s.processed_count(), 8u);
}

TEST(Scheduler, CancelInterleavedWithExecution) {
  Scheduler s;
  std::vector<int> order;
  EventId later = s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.cancel(later);
  });
  s.run();
  EXPECT_EQ(order, std::vector<int>{1});
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double when = static_cast<double>((i * 7919) % 1000);
    s.schedule_at(when, [&, when] {
      if (when < last) monotone = false;
      last = when;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace abe
