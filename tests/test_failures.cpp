// Failure injection: what happens when the ABE assumptions are *broken*.
//
// The ABE model (like the asynchronous model) requires that every message
// is eventually delivered. These tests knock that pillar out on purpose —
// messages silently dropped with probability q — and check that the failure
// mode is the theoretically expected one: SAFETY survives (never two
// leaders; hop = n still certifies n−1 passives) while LIVENESS dies with
// positive probability (the winning token can vanish, leaving one eternal
// active candidate and a passive ring). This is evidence the implementation
// fails the way the theory says it must, not arbitrarily.
#include <gtest/gtest.h>

#include "core/election.h"
#include "core/invariants.h"
#include "net/network.h"
#include "net/topology.h"

namespace abe {
namespace {

struct LossyOutcome {
  bool elected = false;
  bool safety_ok = true;
  std::size_t leaders = 0;
};

LossyOutcome run_lossy_election(std::size_t n, double loss,
                                std::uint64_t seed, SimTime horizon) {
  NetworkConfig config;
  config.topology = unidirectional_ring(n);
  config.delay = exponential_delay(1.0);
  config.enable_ticks = true;
  config.loss_probability = loss;
  config.seed = seed;
  Network net(std::move(config));

  ElectionInvariantChecker checker(n);
  ElectionOptions options;
  options.a0 = linear_regime_a0(n, 4.0);
  options.observer = &checker;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();
  const bool elected = net.run_until(
      [&] { return checker.leaders_now() > 0; }, horizon);
  // Run a little longer to catch any post-election violation.
  net.run_until([] { return false; }, net.now() + 50.0);

  LossyOutcome outcome;
  outcome.elected = elected;
  outcome.leaders = checker.leaders_now();
  // Note: token conservation intentionally NOT checked — loss breaks it by
  // design. Leader uniqueness and passive-absorption must still hold.
  outcome.safety_ok = checker.leaders_now() <= 1;
  for (const auto& v : checker.violations()) {
    if (v.find("two leaders") != std::string::npos ||
        v.find("left the passive") != std::string::npos ||
        v.find("left the leader") != std::string::npos) {
      outcome.safety_ok = false;
    }
  }
  return outcome;
}

TEST(FailureInjection, SafetySurvivesMessageLoss) {
  // Even at 30% silent loss, no run ever shows two leaders or a passive
  // resurrection.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto outcome = run_lossy_election(10, 0.3, seed, 5e4);
    EXPECT_TRUE(outcome.safety_ok) << "seed=" << seed;
    EXPECT_LE(outcome.leaders, 1u) << "seed=" << seed;
  }
}

TEST(FailureInjection, LivenessDegradesWithLoss) {
  // With heavy loss some runs must fail to elect within a generous horizon:
  // a dropped winning token leaves one active node waiting forever while
  // everyone else is passive. (The ABE/asynchronous delivery guarantee is
  // load-bearing, not decorative.)
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto outcome = run_lossy_election(8, 0.5, seed, 2e3);
    if (!outcome.elected) ++failures;
  }
  EXPECT_GT(failures, 0) << "expected at least one stalled election under "
                            "50% loss (deadlock after a dropped token)";
}

TEST(FailureInjection, NoLossNoFailures) {
  // Control: the identical configuration with loss = 0 always elects.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto outcome = run_lossy_election(8, 0.0, seed, 2e3);
    EXPECT_TRUE(outcome.elected) << "seed=" << seed;
    EXPECT_TRUE(outcome.safety_ok);
  }
}

// The model's own answer to loss: put the retransmission *inside* the
// channel (case iii) — the delay becomes unbounded-but-ABE and liveness
// returns. Loss handled at the right layer is not loss at all.
TEST(FailureInjection, RetransmissionChannelRestoresLiveness) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    NetworkConfig config;
    config.topology = unidirectional_ring(8);
    // Same 50% per-attempt loss, but modelled as geometric retransmission:
    // every message eventually arrives, mean delay 2 slots.
    config.delay = geometric_retransmission_delay(0.5, 1.0);
    config.enable_ticks = true;
    config.seed = seed;
    Network net(std::move(config));
    ElectionInvariantChecker checker(8);
    ElectionOptions options;
    options.a0 = linear_regime_a0(8, 4.0);
    options.observer = &checker;
    net.build_nodes([&](std::size_t) -> NodePtr {
      return std::make_unique<ElectionNode>(options);
    });
    net.start();
    const bool elected = net.run_until(
        [&] { return checker.leaders_now() > 0; }, 2e3);
    EXPECT_TRUE(elected) << "seed=" << seed;
    EXPECT_TRUE(checker.ok()) << checker.report();
  }
}

}  // namespace
}  // namespace abe
