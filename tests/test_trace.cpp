// Tests for the trace recorder and for the CLI flag parser.
#include <gtest/gtest.h>

#include "trace/trace.h"
#include "util/cli.h"

namespace abe {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "x");
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace trace;
  trace.enable();
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "a");
  trace.record(2.0, TraceKind::kDeliver, NodeId{1}, "b");
  trace.record(3.0, TraceKind::kSend, NodeId{0}, "c");
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count(TraceKind::kSend), 2u);
  EXPECT_EQ(trace.count(TraceKind::kDeliver), 1u);
  EXPECT_EQ(trace.count(TraceKind::kDrop), 0u);
}

TEST(Trace, FilterAndForNode) {
  Trace trace;
  trace.enable();
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "a");
  trace.record(2.0, TraceKind::kTick, NodeId{1}, "b");
  trace.record(3.0, TraceKind::kSend, NodeId{1}, "c");
  const auto sends = trace.filter(TraceKind::kSend);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[1].detail, "c");
  const auto node1 = trace.for_node(NodeId{1});
  ASSERT_EQ(node1.size(), 2u);
  EXPECT_EQ(node1[0].kind, TraceKind::kTick);
}

TEST(Trace, ToStringAndClear) {
  Trace trace;
  trace.enable();
  trace.record(1.5, TraceKind::kStateChange, NodeId{3}, "idle->active");
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("STATE"), std::string::npos);
  EXPECT_NE(s.find("idle->active"), std::string::npos);
  EXPECT_NE(s.find("node=3"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, KindNamesDistinct) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kSend), "SEND");
  EXPECT_STREQ(trace_kind_name(TraceKind::kDrop), "DROP");
  EXPECT_STREQ(trace_kind_name(TraceKind::kRoundStart), "ROUND");
}

// ---------------------------------------------------------------------

CliFlags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  for (auto& s : storage) argv.push_back(s.data());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const CliFlags flags = parse({"prog", "--n=32", "--rate=0.5"});
  EXPECT_EQ(flags.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const CliFlags flags = parse({"prog", "--n", "32", "--name", "ring"});
  EXPECT_EQ(flags.get_int("n", 0), 32);
  EXPECT_EQ(flags.get_string("name", ""), "ring");
}

TEST(Cli, BareBooleanAndExplicit) {
  const CliFlags flags = parse({"prog", "--verbose", "--fast=false"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("fast", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(Cli, DefaultsWhenMissing) {
  const CliFlags flags = parse({"prog"});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get_string("s", "d"), "d");
  EXPECT_FALSE(flags.has("n"));
}

TEST(Cli, PositionalArguments) {
  const CliFlags flags = parse({"prog", "one", "--k=2", "two"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Cli, NegativeNumberAsValue) {
  const CliFlags flags = parse({"prog", "--offset=-5"});
  EXPECT_EQ(flags.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace abe
