// Tests for the trace recorder and for the CLI flag parser.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "trace/trace.h"
#include "util/cli.h"

namespace abe {
namespace {

TEST(Trace, FlightRecorderAlwaysOn) {
  // The flight recorder records even before enable(): a small always-on
  // ring so failing trials can dump recent history without pre-enabling.
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "x");
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.count(TraceKind::kSend), 1u);
  EXPECT_EQ(trace.capacity(), Trace::kFlightCapacity);
}

TEST(Trace, EnableRaisesCapacity) {
  Trace trace;
  trace.enable();
  EXPECT_TRUE(trace.enabled());
  EXPECT_EQ(trace.capacity(), Trace::kFullCapacity);
}

TEST(Trace, RingWrapsAndKeepsNewest) {
  Trace trace;  // lite mode: capacity kFlightCapacity
  const std::size_t cap = Trace::kFlightCapacity;
  for (std::size_t i = 0; i < cap + 10; ++i) {
    trace.record(static_cast<double>(i), TraceKind::kSend, NodeId{0},
                 static_cast<std::int64_t>(i));
  }
  const auto events = trace.events();
  ASSERT_EQ(events.size(), cap);
  // Oldest retained is the 11th record; newest is the last; chronological.
  EXPECT_EQ(events.front().arg, 10);
  EXPECT_EQ(events.back().arg, static_cast<std::int64_t>(cap + 9));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  // Counts are monotonic over the whole run, eviction included.
  EXPECT_EQ(trace.count(TraceKind::kSend), cap + 10);
  EXPECT_EQ(trace.total_recorded(), cap + 10);
  EXPECT_EQ(trace.evicted(), 10u);
}

TEST(Trace, SetCapacityRelinearizesKeepingNewest) {
  Trace trace;
  for (int i = 0; i < 20; ++i) {
    trace.record(static_cast<double>(i), TraceKind::kTick, NodeId{0},
                 static_cast<std::int64_t>(i));
  }
  trace.set_capacity(5);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().arg, 15);
  EXPECT_EQ(events.back().arg, 19);
}

TEST(Trace, RecordsWhenEnabled) {
  Trace trace;
  trace.enable();
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "a");
  trace.record(2.0, TraceKind::kDeliver, NodeId{1}, "b");
  trace.record(3.0, TraceKind::kSend, NodeId{0}, "c");
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count(TraceKind::kSend), 2u);
  EXPECT_EQ(trace.count(TraceKind::kDeliver), 1u);
  EXPECT_EQ(trace.count(TraceKind::kDrop), 0u);
}

TEST(Trace, FilterAndForNode) {
  Trace trace;
  trace.enable();
  trace.record(1.0, TraceKind::kSend, NodeId{0}, "a");
  trace.record(2.0, TraceKind::kTick, NodeId{1}, "b");
  trace.record(3.0, TraceKind::kSend, NodeId{1}, "c");
  const auto sends = trace.filter(TraceKind::kSend);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[1].detail, "c");
  const auto node1 = trace.for_node(NodeId{1});
  ASSERT_EQ(node1.size(), 2u);
  EXPECT_EQ(node1[0].kind, TraceKind::kTick);
}

TEST(Trace, ToStringAndClear) {
  Trace trace;
  trace.enable();
  trace.record(1.5, TraceKind::kStateChange, NodeId{3}, "idle->active");
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("STATE"), std::string::npos);
  EXPECT_NE(s.find("idle->active"), std::string::npos);
  EXPECT_NE(s.find("node=3"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, KindNamesDistinct) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kSend), "SEND");
  EXPECT_STREQ(trace_kind_name(TraceKind::kDrop), "DROP");
  EXPECT_STREQ(trace_kind_name(TraceKind::kRoundStart), "ROUND");
}

TEST(Trace, KindNamesExhaustive) {
  // Every kind in [0, kTraceKindCount) must have a distinct, non-empty
  // name — adding an enumerator without extending trace_kind_name (or
  // kTraceKindCount) is the regression this pins.
  std::set<std::string> names;
  for (std::size_t i = 0; i < kTraceKindCount; ++i) {
    const char* name = trace_kind_name(static_cast<TraceKind>(i));
    ASSERT_NE(name, nullptr) << "kind " << i;
    EXPECT_FALSE(std::string(name).empty()) << "kind " << i;
    EXPECT_NE(std::string(name), "?") << "kind " << i;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kTraceKindCount) << "duplicate kind names";
}

TEST(Trace, RecordReturnsDenseIds) {
  Trace trace;
  const std::int64_t a = trace.record(1.0, TraceKind::kSend, NodeId{0});
  const std::int64_t b =
      trace.record(2.0, TraceKind::kDeliver, NodeId{1}, /*arg=*/7,
                   /*cause=*/a, /*delay=*/0.5, /*work=*/0.25);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(trace.next_id(), 2);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, a);
  EXPECT_EQ(events[1].id, b);
  EXPECT_EQ(events[1].cause, a);
  EXPECT_DOUBLE_EQ(events[1].delay, 0.5);
  EXPECT_DOUBLE_EQ(events[1].work, 0.25);
  // Ids survive eviction: they index the record stream, not the ring.
  for (std::size_t i = 0; i < Trace::kFlightCapacity; ++i) {
    trace.record(3.0, TraceKind::kTick, NodeId{0});
  }
  EXPECT_EQ(trace.events().front().id,
            static_cast<std::int64_t>(trace.evicted()));
}

TEST(Trace, ToStringShowsCause) {
  Trace trace;
  trace.enable();
  const std::int64_t cause = trace.record(1.0, TraceKind::kSend, NodeId{0});
  trace.record(2.0, TraceKind::kDeliver, NodeId{1}, /*arg=*/-1, cause);
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("<-#0"), std::string::npos) << s;
}

TEST(Trace, FilterAfterEviction) {
  // filter() reserves from the per-kind count clamped to the retained ring
  // (the count includes evicted records); the result must hold exactly the
  // retained matches.
  Trace trace;  // lite: 256-slot ring
  const std::size_t total = Trace::kFlightCapacity * 2;
  for (std::size_t i = 0; i < total; ++i) {
    trace.record(static_cast<double>(i),
                 i % 2 == 0 ? TraceKind::kSend : TraceKind::kDeliver,
                 NodeId{0}, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(trace.count(TraceKind::kSend), total / 2);
  const auto sends = trace.filter(TraceKind::kSend);
  EXPECT_EQ(sends.size(), Trace::kFlightCapacity / 2);
  for (const TraceEvent& e : sends) EXPECT_EQ(e.kind, TraceKind::kSend);
}

// ---------------------------------------------------------------------

CliFlags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  for (auto& s : storage) argv.push_back(s.data());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const CliFlags flags = parse({"prog", "--n=32", "--rate=0.5"});
  EXPECT_EQ(flags.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const CliFlags flags = parse({"prog", "--n", "32", "--name", "ring"});
  EXPECT_EQ(flags.get_int("n", 0), 32);
  EXPECT_EQ(flags.get_string("name", ""), "ring");
}

TEST(Cli, BareBooleanAndExplicit) {
  const CliFlags flags = parse({"prog", "--verbose", "--fast=false"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("fast", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(Cli, DefaultsWhenMissing) {
  const CliFlags flags = parse({"prog"});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get_string("s", "d"), "d");
  EXPECT_FALSE(flags.has("n"));
}

TEST(Cli, PositionalArguments) {
  const CliFlags flags = parse({"prog", "one", "--k=2", "two"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Cli, NegativeNumberAsValue) {
  const CliFlags flags = parse({"prog", "--offset=-5"});
  EXPECT_EQ(flags.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace abe
