// Tests for the leader-announcement extension (full termination + ring
// indexing as a by-product).
#include "core/announce.h"

#include <gtest/gtest.h>

namespace abe {
namespace {

TEST(Announce, SingleNode) {
  const auto r = run_announced_election(1, 0.3, 1);
  ASSERT_TRUE(r.all_done);
  EXPECT_TRUE(r.distances_consistent);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Announce, EveryNodeLearnsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto r =
        run_announced_election(10, linear_regime_a0(10, 4.0), seed);
    ASSERT_TRUE(r.all_done) << "seed=" << seed;
    ASSERT_TRUE(r.distances_consistent) << "seed=" << seed;
  }
}

TEST(Announce, DistancesFormRingIndexing) {
  const auto r = run_announced_election(16, linear_regime_a0(16, 4.0), 9);
  ASSERT_TRUE(r.all_done);
  // distances_consistent already asserts that node (leader + d) mod n has
  // distance d for every d — i.e. the ring is now indexed.
  EXPECT_TRUE(r.distances_consistent);
  EXPECT_LT(r.leader_index, 16u);
}

TEST(Announce, CostsExactlyOneExtraCirculation) {
  // The announce wave adds exactly n messages on top of the election.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 12;
    const auto r = run_announced_election(n, linear_regime_a0(n), seed);
    ASSERT_TRUE(r.all_done);
    // Election alone needs >= n (the winner's token) and the wave adds n.
    EXPECT_GE(r.messages, 2 * n);
  }
}

TEST(Announce, WorksUnderHeavyTailDelays) {
  for (const char* delay : {"fixed", "lomax", "georetx"}) {
    const auto r =
        run_announced_election(9, linear_regime_a0(9, 2.0), 33, delay);
    ASSERT_TRUE(r.all_done) << delay;
    ASSERT_TRUE(r.distances_consistent) << delay;
  }
}

TEST(Announce, TwoNodes) {
  const auto r = run_announced_election(2, 0.2, 4);
  ASSERT_TRUE(r.all_done);
  EXPECT_TRUE(r.distances_consistent);
}

}  // namespace
}  // namespace abe
