// Slow-label equeue stress: the differential contract at n ≈ 10^5 live
// events with heavy-tailed Erlang/exponential delay mixes (the regime the
// ladder queue exists for), plus the scenario-level acceptance check — a
// registered scale-sweep torus cell at n = 10^4 whose aggregates must be
// bit-identical across every backend and thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace abe {
namespace {

// Erlang(k) / exponential / Lomax-ish mixture: most mass near now() with a
// genuinely heavy tail — the distribution shape that breaks single-width
// calendars and that the ladder's recursive bucketing absorbs.
double heavy_mix_delay(Rng& rng) {
  const double r = rng.uniform01();
  if (r < 0.5) return rng.exponential(1.0);
  if (r < 0.8) {
    double sum = 0.0;  // Erlang(4)
    for (int i = 0; i < 4; ++i) sum += rng.exponential(0.25);
    return sum;
  }
  // Pareto/Lomax-ish tail via inverse transform.
  return 0.1 * (std::pow(1.0 - rng.uniform01() * 0.999, -0.75) - 1.0);
}

using Trace = std::vector<double>;

Trace drive_hold(Scheduler& s, std::uint64_t seed, std::size_t live,
                 std::uint64_t events) {
  Trace times;
  times.reserve(events);
  Rng rng(seed);
  struct Hold {
    Scheduler* s;
    Rng* rng;
    Trace* times;
    void operator()() const {
      times->push_back(s->now());
      s->schedule_in(heavy_mix_delay(*rng), *this);
    }
  };
  for (std::size_t i = 0; i < live; ++i) {
    s.schedule_in(heavy_mix_delay(rng), Hold{&s, &rng, &times});
  }
  s.run_steps(events);
  return times;
}

TEST(EqueueStress, HoldAt100kLiveBitIdenticalAcrossBackends) {
  constexpr std::size_t kLive = 100000;
  constexpr std::uint64_t kEvents = 400000;
  Scheduler heap(EqueueBackend::kHeap);
  const Trace reference = drive_hold(heap, 11, kLive, kEvents);
  ASSERT_EQ(reference.size(), kEvents);
  for (EqueueBackend b : {EqueueBackend::kCalendar, EqueueBackend::kLadder,
                          EqueueBackend::kAuto}) {
    Scheduler other(b);
    const Trace got = drive_hold(other, 11, kLive, kEvents);
    ASSERT_EQ(got.size(), reference.size()) << equeue_backend_name(b);
    EXPECT_TRUE(got == reference)
        << equeue_backend_name(b) << ": pop times diverged";
  }
}

// Cancel-heavy mix at scale: ARQ-style schedule/cancel churn layered over a
// large pending set, driven identically across backends.
TEST(EqueueStress, ChurnAt100kLiveBitIdenticalAcrossBackends) {
  constexpr std::size_t kLive = 100000;
  const auto drive = [](Scheduler& s) {
    Trace times;
    Rng rng(29);
    std::vector<EventId> timers;
    for (std::size_t i = 0; i < kLive; ++i) {
      s.schedule_in(heavy_mix_delay(rng), [&times, &s] {
        times.push_back(s.now());
      });
    }
    for (int round = 0; round < 60000; ++round) {
      const EventId id =
          s.schedule_in(10.0 + rng.uniform01(), [&times, &s] {
            times.push_back(s.now());
          });
      if (rng.bernoulli(0.9)) {
        EXPECT_TRUE(s.cancel(id));
      } else {
        timers.push_back(id);
      }
      if (rng.bernoulli(0.2)) s.run_steps(1 + rng.uniform_int(4));
      if (!timers.empty() && rng.bernoulli(0.1)) {
        const std::size_t pick = rng.uniform_int(timers.size());
        s.cancel(timers[pick]);
        timers.erase(timers.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    s.run_until(s.now() + 5.0);
    return times;
  };
  Scheduler heap(EqueueBackend::kHeap);
  const Trace reference = drive(heap);
  for (EqueueBackend b : {EqueueBackend::kCalendar, EqueueBackend::kLadder}) {
    Scheduler other(b);
    EXPECT_TRUE(drive(other) == reference) << equeue_backend_name(b);
  }
}

// The ISSUE 4 acceptance cell: a registered scale-sweep torus cell at
// n = 10^4, aggregates bit-identical across every backend AND every thread
// count (the equeue axis composes with the seed-chunked trial pool).
TEST(EqueueStress, ScaleSweepTorusCellBitIdenticalAcrossBackendsAndThreads) {
  const ScenarioMatrix* scale = find_sweep("scale");
  ASSERT_NE(scale, nullptr);
  const std::vector<ScenarioSpec> cells = scale->expand();
  // One cell per backend at n = 10000 (ids carry the eq- suffix).
  std::vector<const ScenarioSpec*> small;
  for (const ScenarioSpec& cell : cells) {
    if (cell.topology.n == 10000) small.push_back(&cell);
  }
  ASSERT_EQ(small.size(), 3u) << "heap, calendar and ladder cells";

  constexpr std::uint64_t kTrials = 2;
  const ScenarioAggregate reference =
      run_scenario_trials(*small[0], kTrials, /*seed_base=*/1, /*threads=*/1);
  EXPECT_EQ(reference.trials, kTrials);
  EXPECT_EQ(reference.failures, 0u);
  EXPECT_EQ(reference.safety_violations, 0u);
  for (const ScenarioSpec* cell : small) {
    for (unsigned threads : {1u, 3u}) {
      if (cell == small[0] && threads == 1u) continue;
      const ScenarioAggregate agg =
          run_scenario_trials(*cell, kTrials, 1, threads);
      EXPECT_TRUE(agg.messages == reference.messages)
          << cell->cell_id() << " threads=" << threads;
      EXPECT_TRUE(agg.time == reference.time)
          << cell->cell_id() << " threads=" << threads;
      EXPECT_EQ(agg.failures, reference.failures);
      EXPECT_EQ(agg.safety_violations, reference.safety_violations);
    }
  }
}

}  // namespace
}  // namespace abe
