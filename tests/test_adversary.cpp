// Adversarial fault-injection tests: behavior-spec round-trips, the
// bounded-delay adversary's ABE-mean enforcement, ring-election safety
// probing under crash/equivocate/reorder profiles on both runtimes, the
// all-passive-deadlock stalled classification, and the deliberately-unsafe
// toy that proves the probe catches violations and that captured seeds
// replay bit-identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/behavior.h"
#include "adversary/delay_policy.h"
#include "scenario/drivers.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace abe {
namespace {

// --- behavior spec round-trip ----------------------------------------------

TEST(AdversaryBehavior, DescribeParseRoundTrip) {
  const std::vector<BehaviorSpec> specs = {
      BehaviorSpec{},
      BehaviorSpec{BehaviorProfile::kCrashAtT, 1, 50.0},
      BehaviorSpec{BehaviorProfile::kCrashAtT, 3, 12.5},
      BehaviorSpec{BehaviorProfile::kCrashRandom, 2, 0.0},
      BehaviorSpec{BehaviorProfile::kEquivocate, 1, 0.0},
      BehaviorSpec{BehaviorProfile::kReorder, 1, 4.0},
  };
  for (const BehaviorSpec& spec : specs) {
    BehaviorSpec parsed;
    ASSERT_TRUE(behavior_spec_from_name(spec.describe(), &parsed))
        << "unparseable: " << spec.describe();
    EXPECT_EQ(parsed.profile, spec.profile) << spec.describe();
    EXPECT_EQ(parsed.count, spec.count) << spec.describe();
    EXPECT_DOUBLE_EQ(parsed.param, spec.param) << spec.describe();
    EXPECT_EQ(parsed.describe(), spec.describe());
  }
}

TEST(AdversaryBehavior, ParseRejectsMalformedInput) {
  BehaviorSpec out;
  for (const char* bad :
       {"", "nonsense", "crash-", "crash-1", "crash-1@", "crash-0@5",
        "crash-1.5@5", "crash-rand-", "crash-rand-0", "equivocate-",
        "reorder-1", "reorder-1x", "honest-1"}) {
    EXPECT_FALSE(behavior_spec_from_name(bad, &out)) << bad;
  }
}

TEST(AdversaryBehavior, AfflictsTakesNodesFromTheTop) {
  // Node 0 has distinguished roles (gossip source, toy initiator), so the
  // faulty set grows from n-1 downward.
  const BehaviorSpec spec{BehaviorProfile::kCrashAtT, 2, 10.0};
  EXPECT_FALSE(spec.afflicts(0, 8));
  EXPECT_FALSE(spec.afflicts(5, 8));
  EXPECT_TRUE(spec.afflicts(6, 8));
  EXPECT_TRUE(spec.afflicts(7, 8));
  EXPECT_FALSE(BehaviorSpec{}.afflicts(7, 8));
}

TEST(AdversaryBehavior, ProblemFlagsStructuralErrorsWithoutAborting) {
  EXPECT_EQ((BehaviorSpec{BehaviorProfile::kCrashAtT, 1, 5.0}).problem(8),
            "");
  EXPECT_NE((BehaviorSpec{BehaviorProfile::kCrashAtT, 8, 5.0}).problem(8),
            "")
      << "no honest node left";
  EXPECT_NE((BehaviorSpec{BehaviorProfile::kCrashAtT, 1, -1.0}).problem(8),
            "");
  EXPECT_NE((BehaviorSpec{BehaviorProfile::kReorder, 1, 0.0}).problem(8),
            "");
}

// --- bounded-delay adversary -------------------------------------------------

TEST(AdversaryDelay, GreedyScheduleIsClampedToTheBoundEveryStep) {
  // A schedule that always asks for 100x the bound can never push any
  // channel's empirical mean past the bound: each grant is clamped to the
  // remaining budget (and the policy ABE_CHECKs the invariant internally).
  const double bound = 2.0;
  const AdversaryPolicyPtr policy = make_bounded_adversary(
      "greedy", bound,
      [](std::size_t, std::size_t, std::uint64_t) { return 200.0; });
  double total = 0.0;
  for (int i = 1; i <= 50; ++i) {
    total += policy->next_delay(0, 1);
    EXPECT_LE(total / i, bound + 1e-9);
  }
  EXPECT_NEAR(total / 50, bound, 1e-9)
      << "a greedy schedule should saturate the budget exactly";
}

TEST(AdversaryDelay, TargetedSlowdownBanksThenSpendsOnVictimEdges) {
  const AdversaryPolicyPtr policy = targeted_slowdown(1.0, /*victim=*/0,
                                                      /*period=*/8);
  EXPECT_EQ(policy->name(), "targeted");
  EXPECT_DOUBLE_EQ(policy->bound(), 1.0);
  // Victim edges: 7 instant deliveries bank budget, the 8th burns it all.
  double total = 0.0;
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(policy->next_delay(0, 1), 0.0);
  }
  EXPECT_DOUBLE_EQ(policy->next_delay(0, 1), 8.0);
  total = 8.0;
  EXPECT_NEAR(total / 8, 1.0, 1e-12) << "mean exactly at the bound";
  // Non-victim edges take the honest per-message budget.
  EXPECT_DOUBLE_EQ(policy->next_delay(3, 4), 1.0);
}

TEST(AdversaryDelay, BurstThenStallAlternates) {
  const AdversaryPolicyPtr policy = burst_then_stall(1.0, /*burst=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(policy->next_delay(0, 1), 0.0);
  }
  EXPECT_DOUBLE_EQ(policy->next_delay(0, 1), 5.0);
}

TEST(AdversaryDelay, NamedFactoryValidatesWithoutAborting) {
  bool ok = false;
  EXPECT_EQ(make_named_adversary("none", 1.0, &ok), nullptr);
  EXPECT_TRUE(ok);
  EXPECT_NE(make_named_adversary("targeted", 1.0, &ok), nullptr);
  EXPECT_TRUE(ok);
  EXPECT_NE(make_named_adversary("burst-stall", 1.0, &ok), nullptr);
  EXPECT_TRUE(ok);
  EXPECT_EQ(make_named_adversary("no-such-policy", 1.0, &ok), nullptr);
  EXPECT_FALSE(ok);
  EXPECT_EQ(adversary_policy_names().size(), 2u);
}

// --- safety probing on the ring ---------------------------------------------

ScenarioSpec adversarial_ring(BehaviorSpec behavior,
                              const std::string& adversary = "targeted") {
  ScenarioSpec spec;  // ring election on the unidirectional ring
  spec.topology.n = 8;
  spec.behavior = behavior;
  spec.adversary = adversary;
  spec.deadline = 2e4;
  return spec;
}

TEST(AdversarySafetyProbe, RingUnderCrashNeverViolatesSafety) {
  // The acceptance bar: crashing is the benign fault the election's
  // knockout logic absorbs. Trials complete or stall (a crash-severed ring
  // goes quiescent with no leader) — they never elect two leaders.
  const ScenarioSpec spec =
      adversarial_ring(BehaviorSpec{BehaviorProfile::kCrashAtT, 1, 25.0});
  const ScenarioAggregate agg = run_scenario_trials(spec, 12, 1, 2);
  EXPECT_EQ(agg.trials, 12u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_TRUE(agg.violation_seeds.empty());
  EXPECT_EQ(agg.messages.count() + agg.failures + agg.stalled, 12u);
}

TEST(AdversarySafetyProbe, RingUnderCrashRandomNeverViolatesSafety) {
  const ScenarioSpec spec =
      adversarial_ring(BehaviorSpec{BehaviorProfile::kCrashRandom, 1, 0.0});
  const ScenarioAggregate agg = run_scenario_trials(spec, 8, 1, 2);
  EXPECT_EQ(agg.safety_violations, 0u);
  // Deterministic given the seed: the crash time is a substream draw.
  const ScenarioTrialResult a = run_scenario_trial(spec, 3);
  const ScenarioTrialResult b = run_scenario_trial(spec, 3);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.time, b.time);
}

TEST(AdversarySafetyProbe, RingUnderEquivocationRunsAndStaysSafe) {
  // Equivocated tokens violate the honest ring's hop/d invariants; the
  // tolerance path must drop them (not abort the process), and leader
  // uniqueness must hold on every completed trial.
  const ScenarioSpec spec =
      adversarial_ring(BehaviorSpec{BehaviorProfile::kEquivocate, 1, 0.0});
  const ScenarioAggregate agg = run_scenario_trials(spec, 12, 1, 2);
  EXPECT_EQ(agg.trials, 12u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_GT(agg.messages.count(), 0u) << "some trials must still complete";
}

TEST(AdversarySafetyProbe, RingUnderReorderingCompletesSafely) {
  const ScenarioSpec spec =
      adversarial_ring(BehaviorSpec{BehaviorProfile::kReorder, 1, 4.0});
  const ScenarioAggregate agg = run_scenario_trials(spec, 12, 1, 2);
  EXPECT_EQ(agg.trials, 12u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_GT(agg.messages.count(), 0u);
}

TEST(AdversarySafetyProbe, HonestCellsAreByteIdenticalWithAndWithoutSubsystem) {
  // The honest path must not consume any randomness from the adversary
  // subsystem: a spec with default behavior/adversary is the exact same
  // trial it was before the subsystem existed (the baseline-diff guard in
  // CI checks the full sweep files; this pins one cell).
  ScenarioSpec spec;
  spec.topology.n = 8;
  const ScenarioTrialResult a = run_scenario_trial(spec, 5);
  const ScenarioTrialResult b = run_scenario_trial(spec, 5);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.time, b.time);
}

// --- stalled classification --------------------------------------------------

TEST(AdversarySafetyProbe, AllPassiveDeadlockUnderLossReportsStalled) {
  // Regression pin for the ring's rare deadlock under loss: every token
  // died in a channel and every node was knocked out — quiescent, no
  // leader, no idle node left. Seed 1 on this cell hits it (checked in;
  // trials are deterministic given the seed). It must classify as STALLED,
  // not be lumped into deadline failures.
  ScenarioSpec spec;
  spec.topology.n = 4;
  spec.failure = FailureProfile::loss(0.25);
  spec.deadline = 2e4;
  const ScenarioTrialResult trial = run_scenario_trial(spec, /*seed=*/1);
  EXPECT_FALSE(trial.completed);
  EXPECT_TRUE(trial.stalled) << trial.safety_detail;
  EXPECT_NE(trial.safety_detail.find("stalled"), std::string::npos);

  const ScenarioAggregate agg = run_scenario_trials(spec, 8, 1, 2);
  EXPECT_GT(agg.stalled, 0u);
  EXPECT_EQ(agg.messages.count() + agg.failures + agg.stalled, agg.trials)
      << "stalled must be disjoint from failures";
}

// --- the unsafe toy: the probe catches violations and seeds replay -----------

ScenarioSpec unsafe_toy_spec() {
  ScenarioSpec spec;
  spec.algorithm = ScenarioAlgorithm::kUnsafeToy;
  spec.topology.n = 6;
  return spec;
}

TEST(AdversarySafetyProbe, UnsafeToyViolationIsCaughtAndSeedsCaptured) {
  const ScenarioSpec spec = unsafe_toy_spec();
  const ScenarioTrialResult trial = run_scenario_trial(spec, 1);
  EXPECT_TRUE(trial.completed);
  EXPECT_FALSE(trial.safety_ok);
  EXPECT_NE(trial.safety_detail.find("SAFETY-VIOLATION"), std::string::npos)
      << trial.safety_detail;

  const ScenarioAggregate agg = run_scenario_trials(spec, 5, 1, 2);
  EXPECT_EQ(agg.safety_violations, 5u);
  ASSERT_EQ(agg.violation_seeds.size(), 5u);
  // Seed-ordered regardless of thread count (merge contract).
  for (std::uint64_t s = 1; s <= 5; ++s) {
    EXPECT_EQ(agg.violation_seeds[s - 1], s);
  }
}

TEST(AdversarySafetyProbe, CapturedViolationSeedReplaysBitIdentically) {
  // The capture is only useful if the seed reproduces the violation
  // exactly: same outcome, same measurements, plus the full event trace.
  const ScenarioSpec spec = unsafe_toy_spec();
  const ScenarioTrialResult original = run_scenario_trial(spec, 1);
  ASSERT_TRUE(original.completed);
  ASSERT_FALSE(original.safety_ok);

  Trace trace;
  const TrialOutcome replayed = replay_scenario_trial(spec, 1, &trace);
  EXPECT_EQ(replayed.completed, original.completed);
  EXPECT_EQ(replayed.safety_ok, original.safety_ok);
  EXPECT_EQ(replayed.safety_detail, original.safety_detail);
  EXPECT_EQ(replayed.messages, original.messages);
  EXPECT_EQ(replayed.time, original.time);
  EXPECT_GT(trace.size(), 0u) << "replay must surface the event transcript";
  EXPECT_FALSE(trace.to_string().empty());
}

// --- thread-runtime adversarial cells (TSan coverage) ------------------------

TEST(AdversaryThreadRuntime, AdversarialCellRunsOnRealThreads) {
  // One wall-clock trial with the full stack engaged: FaultyNode decoration
  // on node threads, the BoundedAdversary's mutex under concurrent sends.
  // Nondeterministic by design — assert the safety contract, not numbers.
  ScenarioSpec spec =
      adversarial_ring(BehaviorSpec{BehaviorProfile::kEquivocate, 1, 0.0});
  spec.topology.n = 6;
  spec.runtime = RuntimeKind::kThread;
  spec.deadline = 2e3;
  spec.thread_wall_timeout_ms = 8000.0;
  const ScenarioTrialResult trial = run_scenario_trial(spec, 42);
  if (trial.completed) {
    EXPECT_TRUE(trial.safety_ok) << trial.safety_detail;
  }
}

}  // namespace
}  // namespace abe
