// Parameterized conservation and ordering properties of the network layer,
// swept across topology × delay law × ordering × processing model.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "net/network.h"
#include "net/topology.h"

namespace abe {
namespace {

// Every node floods a burst on all its out-channels at start, then the net
// runs to quiescence; the properties below must hold for any configuration.
class FloodNode final : public Node {
 public:
  explicit FloodNode(int burst) : burst_(burst) {}
  void on_start(Context& ctx) override {
    for (int b = 0; b < burst_; ++b) {
      for (std::size_t c = 0; c < ctx.out_degree(); ++c) {
        ctx.send(c, std::make_unique<IntPayload>(b));
      }
    }
  }
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override {
    ++received_;
    const auto& msg = payload_as<IntPayload>(payload);
    if (in_index < last_per_channel_.size()) {
      // For FIFO runs the per-channel sequence must be nondecreasing.
      if (msg.value() < last_per_channel_[in_index]) {
        order_violated_ = true;
      }
      last_per_channel_[in_index] = msg.value();
    } else {
      last_per_channel_.resize(in_index + 1, msg.value());
    }
    (void)ctx;
  }

  std::uint64_t received_ = 0;
  bool order_violated_ = false;
  std::vector<std::int64_t> last_per_channel_;

 private:
  int burst_;
};

struct NetCase {
  const char* topology_name;
  Topology topology;
  std::string delay;
  ChannelOrdering ordering;
  ProcessingModel processing;
};

class NetworkPropertySweep : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkPropertySweep, ConservationAndOrdering) {
  const NetCase& c = GetParam();
  constexpr int kBurst = 20;
  NetworkConfig config;
  config.topology = c.topology;
  config.delay = make_delay_model(c.delay, 1.0);
  config.ordering = c.ordering;
  config.processing = c.processing;
  config.seed = 77;
  Network net(std::move(config));
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<FloodNode>(kBurst);
  });
  net.start();
  net.run_until_quiescent();

  const auto& m = net.metrics();
  // Conservation: everything sent is delivered (no loss configured).
  const std::uint64_t expected_sent =
      static_cast<std::uint64_t>(kBurst) * c.topology.edge_count();
  EXPECT_EQ(m.messages_sent, expected_sent);
  EXPECT_EQ(m.messages_delivered, expected_sent);
  EXPECT_EQ(m.messages_dropped, 0u);
  EXPECT_EQ(m.in_flight(), 0u);

  // Per-channel counters sum to the total.
  std::uint64_t by_channel = 0;
  for (auto v : m.sent_by_channel) by_channel += v;
  EXPECT_EQ(by_channel, m.messages_sent);
  std::uint64_t by_node = 0;
  for (auto v : m.sent_by_node) by_node += v;
  EXPECT_EQ(by_node, m.messages_sent);

  // Receivers got exactly their share, in order when FIFO.
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const FloodNode&>(net.node(i));
    received += node.received_;
    if (c.ordering == ChannelOrdering::kFifo) {
      EXPECT_FALSE(node.order_violated_) << "FIFO violated at node " << i;
    }
  }
  EXPECT_EQ(received, expected_sent);

  // Delay accounting is sane: mean within the law's plausible range.
  if (m.messages_delivered > 100) {
    EXPECT_GT(m.mean_channel_delay(), 0.0);
    EXPECT_LT(m.mean_channel_delay(), 10.0);
  }
}

std::vector<NetCase> make_cases() {
  std::vector<NetCase> cases;
  const std::pair<const char*, Topology> shapes[] = {
      {"ring", unidirectional_ring(6)},
      {"grid", grid(3, 3)},
      {"complete", complete(5)},
      {"star", star(7)},
  };
  const char* delays[] = {"fixed", "exponential", "lomax"};
  for (const auto& [name, topo] : shapes) {
    for (const char* delay : delays) {
      for (auto ordering :
           {ChannelOrdering::kFifo, ChannelOrdering::kArbitrary}) {
        cases.push_back(NetCase{name, topo, delay, ordering,
                                ProcessingModel::zero()});
      }
      cases.push_back(NetCase{name, topo, delay, ChannelOrdering::kFifo,
                              ProcessingModel::exponential(0.2)});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkPropertySweep, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<NetCase>& info) {
      const NetCase& c = info.param;
      return std::string(c.topology_name) + "_" + c.delay + "_" +
             channel_ordering_name(c.ordering) + "_" +
             (c.processing.kind == ProcessingModel::Kind::kZero ? "nocpu"
                                                                : "cpu");
    });

// Processing delay must serialise but never reorder a FIFO channel, and the
// busy time must sum up: with fixed processing t and k back-to-back
// messages the last handler runs at arrival + k*t.
TEST(NetworkProperty, ProcessingBacklogTiming) {
  NetworkConfig config;
  config.topology = line(2);
  config.delay = fixed_delay(1.0);
  config.ordering = ChannelOrdering::kFifo;
  config.processing = ProcessingModel::fixed(0.5);
  config.seed = 1;
  Network net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    return std::make_unique<FloodNode>(i == 0 ? 8 : 0);
  });
  net.start();
  net.run_until_quiescent();
  // All 8 arrive at t=1; processing 0.5 each => last done at 1 + 8*0.5 = 5.
  EXPECT_DOUBLE_EQ(net.now(), 5.0);
}

// Exponential processing with many messages: node busy-time accounting must
// keep the system quiescing (no lost wakeups / stuck queues).
TEST(NetworkProperty, ExponentialProcessingQuiesces) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    NetworkConfig config;
    config.topology = complete(4);
    config.delay = exponential_delay(1.0);
    config.processing = ProcessingModel::exponential(0.3);
    config.seed = seed;
    Network net(std::move(config));
    net.build_nodes([&](std::size_t) -> NodePtr {
      return std::make_unique<FloodNode>(10);
    });
    net.start();
    net.run_until_quiescent();
    EXPECT_EQ(net.metrics().in_flight(), 0u);
    EXPECT_EQ(net.metrics().messages_delivered, 10u * 12u);
  }
}

}  // namespace
}  // namespace abe
