// Behavioural tests for the ABE ring election (paper Section 3).
#include "core/election.h"

#include <gtest/gtest.h>

#include "core/harness.h"
#include "net/network.h"
#include "net/topology.h"

namespace abe {
namespace {

ElectionExperiment base_experiment(std::size_t n, std::uint64_t seed) {
  ElectionExperiment e;
  e.n = n;
  e.seed = seed;
  e.election.a0 = 0.3;
  e.settle_time = 50.0;
  return e;
}

TEST(Election, SingleNodeElectsItself) {
  const auto result = run_election(base_experiment(1, 1));
  EXPECT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok) << result.safety_detail;
  EXPECT_EQ(result.leader_index, 0u);
  EXPECT_EQ(result.messages, 0u);  // no channels exist, none needed
}

TEST(Election, TwoNodesElectExactlyOne) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto result = run_election(base_experiment(2, seed));
    ASSERT_TRUE(result.elected) << "seed " << seed;
    ASSERT_TRUE(result.safety_ok) << "seed " << seed << ": "
                                  << result.safety_detail;
  }
}

TEST(Election, MediumRingBasics) {
  const auto result = run_election(base_experiment(16, 7));
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok) << result.safety_detail;
  EXPECT_LT(result.leader_index, 16u);
  // The winning message alone crosses n channels.
  EXPECT_GE(result.messages, 16u);
  EXPECT_GT(result.election_time, 0.0);
  EXPECT_GE(result.activations, 1u);
  EXPECT_EQ(result.max_leaders_ever, 1u);
}

TEST(Election, NoSecondLeaderDuringLongSettle) {
  auto experiment = base_experiment(12, 3);
  experiment.settle_time = 2000.0;
  const auto result = run_election(experiment);
  ASSERT_TRUE(result.elected);
  EXPECT_TRUE(result.safety_ok) << result.safety_detail;
  EXPECT_EQ(result.max_leaders_ever, 1u);
  // Once everyone is passive nothing circulates: the settle window adds no
  // messages.
  EXPECT_EQ(result.messages_total, result.messages);
}

TEST(Election, PurgeCountMatchesFailedActivations) {
  const auto result = run_election(base_experiment(24, 11));
  ASSERT_TRUE(result.elected);
  // Every activation sends one message; every message either knocks out its
  // originator's competitor chain or elects. Message conservation:
  // activations = purges (every sent token is eventually purged at an
  // active/leader node — the final one at the leader itself).
  EXPECT_EQ(result.activations, result.purges);
}

TEST(Election, TraceShowsKnockoutPattern) {
  auto experiment = base_experiment(4, 5);
  experiment.trace = true;
  const auto result = run_election(experiment);
  ASSERT_TRUE(result.elected);
}

// Direct state-machine probing on a hand-built 3-ring with huge tick period
// (so no spontaneous activations interfere): we drive one node manually by
// injecting messages through a neighbour.
class ScriptedSender final : public Node {
 public:
  void on_message(Context&, std::size_t, const Payload&) override {}
  void on_start(Context& ctx) override {
    ctx.send(0, std::make_unique<HopPayload>(1));
  }
};

TEST(Election, IdleReceiverBecomesPassiveAndForwardsDPlusOne) {
  NetworkConfig config;
  config.topology = unidirectional_ring(3);
  config.delay = fixed_delay(1.0);
  config.enable_ticks = false;  // freeze spontaneous activity
  config.seed = 2;
  Network net(std::move(config));
  net.trace().enable();

  ElectionOptions options;
  options.a0 = 0.5;
  net.add_node(std::make_unique<ScriptedSender>());
  auto* b = new ElectionNode(options);
  auto* c = new ElectionNode(options);
  net.add_node(NodePtr(b));
  net.add_node(NodePtr(c));
  net.start();
  net.run_until_quiescent(10.0);

  // B received <1>: passive, d = 1, forwarded <2> to C.
  EXPECT_EQ(b->state(), ElectionState::kPassive);
  EXPECT_EQ(b->d(), 1u);
  EXPECT_EQ(b->forwards(), 1u);
  // C received <2>: passive, d = 2, forwarded <3> to A (scripted, ignores).
  EXPECT_EQ(c->state(), ElectionState::kPassive);
  EXPECT_EQ(c->d(), 2u);
}

TEST(Election, HopNeverExceedsRingSize) {
  auto experiment = base_experiment(8, 17);
  experiment.trace = true;
  const auto result = run_election(experiment);
  ASSERT_TRUE(result.elected);
  // ABE_CHECK inside ElectionNode::on_message would have aborted otherwise;
  // reaching here with safety_ok is the assertion.
  EXPECT_TRUE(result.safety_ok) << result.safety_detail;
}

TEST(Election, ObserverSeesEveryLeaderTransition) {
  struct Counting : ElectionObserver {
    int leaders = 0;
    int transitions = 0;
    void on_state_change(NodeId, ElectionState, ElectionState to,
                         SimTime) override {
      ++transitions;
      if (to == ElectionState::kLeader) ++leaders;
    }
  } obs;

  NetworkConfig config;
  config.topology = unidirectional_ring(8);
  config.delay = exponential_delay(1.0);
  config.enable_ticks = true;
  config.seed = 9;
  Network net(std::move(config));
  ElectionOptions options;
  options.a0 = 0.3;
  options.observer = &obs;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();
  ASSERT_TRUE(net.run_until([&] { return obs.leaders > 0; }, 1e6));
  EXPECT_EQ(obs.leaders, 1);
  EXPECT_GE(obs.transitions, 8);  // at least each node left idle once
}

TEST(Election, InvalidA0Rejected) {
  ElectionOptions options;
  options.a0 = 0.0;
  EXPECT_DEATH(ElectionNode{options}, "");
  options.a0 = 1.0;
  EXPECT_DEATH(ElectionNode{options}, "");
}

TEST(Election, DeterministicGivenSeed) {
  const auto a = run_election(base_experiment(16, 123));
  const auto b = run_election(base_experiment(16, 123));
  ASSERT_TRUE(a.elected);
  EXPECT_EQ(a.leader_index, b.leader_index);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.election_time, b.election_time);
  EXPECT_EQ(a.ticks, b.ticks);
}

TEST(Election, DifferentSeedsDifferentOutcomes) {
  int distinct_leaders = 0;
  std::size_t first = run_election(base_experiment(16, 1)).leader_index;
  for (std::uint64_t seed = 2; seed <= 10; ++seed) {
    if (run_election(base_experiment(16, seed)).leader_index != first) {
      ++distinct_leaders;
    }
  }
  EXPECT_GT(distinct_leaders, 0);  // anonymity: no fixed winner
}

TEST(Election, TrialsAggregateIsConsistent) {
  auto experiment = base_experiment(8, 0);
  const auto agg = run_election_trials(experiment, 20, 100);
  EXPECT_EQ(agg.trials, 20u);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.safety_violations, 0u);
  EXPECT_EQ(agg.messages.count(), 20u);
  EXPECT_GE(agg.messages.min(), 8.0);
  EXPECT_GT(agg.time.mean(), 0.0);
}

}  // namespace
}  // namespace abe
