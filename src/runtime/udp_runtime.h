// Real-socket runtime: one loopback UDP socket per node, messages as real
// datagrams. The third implementation of the unified Runtime contract
// (runtime/runtime.h), next to the discrete-event simulator and the
// thread runtime.
//
// Where the simulator ASSUMES bounded expected delay (Definition 1(1):
// sampled DelayModel) and the thread runtime EMULATES it (due-time sleeps),
// this substrate runs the same algorithm code over a transport whose delay
// is a measured property: every datagram's real loopback transit
// (send → recv, monotonic clock) is recorded into the `udp.transit_us`
// histogram, and fit_udp_calibration() fits those measurements back into a
// DelayModel (shifted exponential) so simulated and real cells
// cross-validate on the same sweep.
//
// Per node: one UdpSocket (runtime/udp_socket.h — the only raw-socket
// site) plus two threads. The READER blocks in receive(), translates wire
// headers into mailbox items and answers ACKs; the DISPATCHER pops the
// node's Mailbox in due-time order and drives the algorithm exactly like
// ThreadNetwork::thread_main — same Node/Context interface, same causal
// trace links (the SEND record id rides the datagram so the DELIVER links
// back), same net.* counters, so AlgorithmDrivers, `abe_scenarios trace`
// and critical-path extraction work on real packets unchanged.
//
// Payloads are polymorphic C++ objects with no wire format (net/message.h),
// and every node lives in this process — so datagrams carry a fixed header
// (edge, seq, trace cause, timestamps) while the payload pointer crosses
// through an in-process table keyed by message id. The network path is
// real (kernel, loopback device, real loss under pressure); the payload
// hand-off is honestly in-memory. README § "Real-socket runtime" spells
// out the caveat.
//
// Reliability: `reliable` layers the net/arq.h retransmission logic onto
// every channel — per-edge sequence numbers, per-datagram ACKs, timeout
// retransmission with an attempt cap, receiver-side dedup (cumulative
// base + out-of-order set, duplicates re-ACKed) — so injected per-attempt
// loss degrades goodput instead of dropping messages, and `arq.rtt`
// records first-send→ack round trips. Unreliable mode mirrors the thread
// runtime: per-attempt Bernoulli loss drops the message before the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "clock/local_clock.h"
#include "net/delay.h"
#include "net/node.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "runtime/udp_socket.h"
#include "trace/trace.h"
#include "util/thread_annotations.h"

namespace abe {

struct UdpNetConfig {
  Topology topology;
  DelayModelPtr delay;               // per-channel delay (sim units)
  // When set, the adversary chooses every message's delay instead of
  // sampling `delay` (net/delay.h). Same contract as ThreadNetConfig.
  AdversaryPolicyPtr adversary_delay;
  double time_scale_us = 1000.0;     // wall microseconds per sim unit
  // Clock-drift band, realised exactly like the thread runtime: one fixed
  // rate per node within the bounds (kPiecewiseRandom is rejected — wall
  // clocks cannot wander on demand).
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kFixedRandomRate;
  ProcessingModel processing = ProcessingModel::zero();
  // Per-attempt silent drop. Unreliable mode: the message is lost
  // (counted in messages_dropped, kDrop trace). Reliable mode: the DATA
  // datagram attempt is suppressed (udp.attempt_drops) and the ARQ layer
  // retransmits; ACKs are immune to injected loss, mirroring the lossless-
  // ack convention of run_arq_experiment (net/arq.h).
  double loss_probability = 0.0;
  // Per-channel ARQ reliable mode (see file comment).
  bool reliable = false;
  // Retransmission timeout in sim units (scaled to wall time like every
  // other delay). Should exceed the delay model's mean by a few ×.
  double arq_timeout = 4.0;
  // Attempt cap per message: past it the sender gives up and counts the
  // message dropped, so a pathological channel cannot wedge quiescence.
  // With ACKs immune to injected loss, a capped message is (up to
  // astronomically unlikely kernel-drop streaks) genuinely undelivered.
  int arq_max_attempts = 64;
  bool enable_ticks = false;
  double tick_local_period = 1.0;    // in sim units, on the local clock
  std::uint64_t seed = 1;
  bool trace = false;
  bool causal_history = false;
  bool metrics = false;
};

class UdpNetwork {
 public:
  explicit UdpNetwork(UdpNetConfig config);
  ~UdpNetwork();
  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  // Installs nodes (same contract as ThreadNetwork).
  void add_node(NodePtr node);
  void build_nodes(const std::function<NodePtr(std::size_t)>& factory);

  // Spawns reader + dispatcher threads and delivers on_start on each
  // node's dispatcher thread.
  void start();

  // Same contract and thread-safety requirements as
  // ThreadNetwork::wait_until / wait_quiescent.
  bool wait_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout) EXCLUDES(progress_mutex_);
  bool wait_quiescent(std::chrono::milliseconds timeout);

  // Closes mailboxes, raises the reader stop flag, joins all threads.
  // Idempotent; also runs on destruction.
  void stop();

  std::size_t size() const { return config_.topology.n; }
  // Only safe after stop(): node state is owned by its dispatcher thread.
  Node& node(std::size_t i);
  bool terminated(std::size_t i) const;

  std::uint64_t messages_sent() const { return messages_sent_.load(); }
  std::uint64_t messages_delivered() const {
    return messages_delivered_.load();
  }
  std::uint64_t messages_dropped() const { return messages_dropped_.load(); }
  std::uint64_t ticks_fired() const { return ticks_fired_.load(); }
  // Wall time since start(), in sim units.
  double now_sim() const;
  // The single monotonic-clock read start() took: wall deadlines derived
  // from it share now_sim()'s origin (one read point per phase —
  // UdpRuntime/ThreadRuntime both build their budgets from this).
  MailItem::Clock::time_point start_time() const { return start_time_; }

  // Flight-recorder copy; DELIVER records stamped with mailbox delivery
  // time, identical to ThreadNetwork::trace_copy().
  Trace trace_copy() const EXCLUDES(trace_mutex_);

  // net.* counters shared with both other substrates plus udp.* transport
  // rows (datagram/ack/retransmit/duplicate counts, the measured
  // udp.transit_us histogram, arq.rtt in reliable mode). Wall-clock facts:
  // not bit-reproducible across runs.
  MetricsSnapshot metrics_snapshot() const EXCLUDES(trace_mutex_);

 private:
  class UdpContext;

  // Mailbox timer_id sentinels (user timers are nonnegative): the local
  // tick generator, and the ARQ retransmission timer whose tag carries the
  // pending message id.
  static constexpr std::int64_t kTickTimerId = -1;
  static constexpr std::int64_t kRetransmitTimerId = -2;

  // A message the reliable layer has transmitted but not yet seen ACKed.
  struct PendingTx {
    std::size_t edge = 0;
    std::uint64_t seq = 0;
    std::size_t to = 0;
    std::int64_t send_id = -1;   // SEND trace record (kDrop cause on give-up)
    double delay_sim = 0.0;
    std::int64_t first_send_ns = 0;  // arq.rtt base
    int attempts = 0;
  };

  // Receiver-side dedup state for one in-channel (reader thread only):
  // sequences <= cum_delivered plus the out-of-order set have been
  // delivered; anything else is new.
  struct RxChannel {
    std::uint64_t cum_delivered = 0;
    std::set<std::uint64_t> delivered_ahead;
  };

  struct Slot {
    NodePtr node;
    std::unique_ptr<UdpSocket> socket;
    std::unique_ptr<Mailbox> mailbox;
    std::unique_ptr<UdpContext> context;
    std::thread dispatcher;
    std::thread reader;
    Rng rng;  // dispatcher-thread substream (delay/loss/processing draws)
    double clock_rate = 1.0;
    // Trace id of the event the dispatcher is currently handling; like
    // `rng`, touched only by the dispatcher thread.
    std::int64_t current_cause = -1;
    std::atomic<bool> terminated{false};
    std::atomic<std::uint64_t> handler_ns{0};
    // Reliable-mode transmit ledger, keyed by message id. Shared between
    // the dispatcher (send, retransmit, give-up) and the reader (ACK).
    AnnotatedMutex tx_mutex;
    std::map<std::uint64_t, PendingTx> unacked GUARDED_BY(tx_mutex);
    // Per-out-channel next sequence number (dispatcher thread only).
    std::vector<std::uint64_t> next_seq;
    // Per-in-channel dedup state (reader thread only).
    std::vector<RxChannel> rx;
  };

  struct UdpWire;  // fixed-size datagram header (udp_runtime.cpp)

  void dispatcher_main(std::size_t index);
  void reader_main(std::size_t index);
  void handle_data(std::size_t index, const UdpWire& wire,
                   std::int64_t recv_ns);
  void handle_ack(std::size_t index, const UdpWire& wire,
                  std::int64_t recv_ns);
  // One DATA transmission attempt (initial or retransmission): draws the
  // per-attempt loss coin in reliable mode, stamps send_ns, sends the
  // datagram. Dispatcher thread only (the loss draw uses slot.rng).
  void transmit_data(std::size_t from, const UdpWire& wire);
  // Pushes the retransmission timer for `msg_id` into the sender's own
  // mailbox, due one arq_timeout from now.
  void arm_retransmit(std::size_t from, std::uint64_t msg_id);
  // Pops of the retransmit sentinel: rearm or give up. Dispatcher thread.
  void handle_retransmit(std::size_t index, std::uint64_t msg_id);
  void signal_progress() EXCLUDES(progress_mutex_);
  MailItem::Clock::time_point sim_to_wall(double sim_delay_from_now) const;
  std::int64_t record_trace(TraceKind kind, NodeId node, std::int64_t arg,
                            const std::string& detail = std::string(),
                            std::int64_t cause = -1, double delay = 0.0,
                            double work = 0.0) EXCLUDES(trace_mutex_);
  std::string trace_detail(const Payload& payload, std::size_t edge) const;

  UdpNetConfig config_;
  Rng root_rng_;
  std::vector<Slot> slots_;
  std::vector<std::uint16_t> port_of_;  // node index -> loopback port
  std::vector<std::vector<std::size_t>> out_channels_;
  std::vector<std::vector<std::size_t>> in_channels_;
  std::vector<std::size_t> in_index_of_edge_;
  MailItem::Clock::time_point start_time_{};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> ticks_fired_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> cv_wakeups_{0};
  // Transport-level tallies, harvested as udp.* metrics_snapshot() rows
  // (datagrams_tx/rx, acks_tx/rx, retransmits, duplicates, attempt_drops,
  // giveups, orphans).
  std::atomic<std::uint64_t> datagrams_tx_{0};
  std::atomic<std::uint64_t> datagrams_rx_{0};
  std::atomic<std::uint64_t> acks_tx_{0};
  std::atomic<std::uint64_t> acks_rx_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> attempt_drops_{0};
  std::atomic<std::uint64_t> giveups_{0};
  std::atomic<std::uint64_t> orphan_datagrams_{0};
  std::atomic<std::uint64_t> active_handlers_{0};
  std::atomic<std::size_t> nodes_started_{0};
  std::atomic<std::int64_t> next_timer_id_{0};
  std::atomic<std::uint64_t> next_msg_id_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stop_readers_{false};
  // In-process payload hand-off: message id -> payload, inserted by the
  // sender before the datagram leaves, removed by the receiving reader at
  // delivery (or by the sender on unreliable drop / reliable give-up).
  mutable AnnotatedMutex inflight_mutex_;
  std::map<std::uint64_t, std::shared_ptr<const Payload>> inflight_
      GUARDED_BY(inflight_mutex_);
  // Measured-delay instruments (thread-safe: FixedHistogram buckets are
  // atomic). transit: one-way datagram transit in wall microseconds;
  // rtt: first-send -> ack round trip in sim units (reliable mode).
  MetricsRegistry registry_;
  FixedHistogram* transit_hist_ = nullptr;
  FixedHistogram* rtt_hist_ = nullptr;
  // Pure wakeup fence, same contract as ThreadNetwork::progress_mutex_.
  mutable AnnotatedMutex progress_mutex_;
  AnnotatedCondVar progress_cv_;
  mutable AnnotatedMutex trace_mutex_;
  Trace trace_ GUARDED_BY(trace_mutex_);
};

// ---------------------------------------------------------------------------
// Runtime adapter

class UdpRuntime final : public Runtime {
 public:
  explicit UdpRuntime(RuntimeConfig config);

  RuntimeKind kind() const override { return RuntimeKind::kUdp; }
  std::size_t size() const override { return net_.size(); }
  void build_nodes(
      const std::function<NodePtr(std::size_t)>& factory) override;
  void start() override;
  bool run_until_done(const std::function<bool()>& done,
                      SimTime deadline) override;
  void run_for(SimTime duration) override;
  bool drain(SimTime max_wait) override;
  void stop() override;
  SimTime now() const override;
  bool terminated(std::size_t i) const override { return net_.terminated(i); }
  Node& node(std::size_t i) override { return net_.node(i); }
  RunStats stats() const override;
  MetricsSnapshot metrics_snapshot() const override {
    return net_.metrics_snapshot();
  }
  Trace trace_snapshot() const override { return net_.trace_copy(); }

  UdpNetwork& udp_network() { return net_; }

 private:
  static UdpNetConfig to_udp_config(const RuntimeConfig& config);
  double remaining_budget_ms() const;

  double time_scale_us_;
  double wall_timeout_ms_;
  UdpNetwork net_;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool started_ = false;
  bool stopped_ = false;
  SimTime stop_time_ = 0.0;
};

// ---------------------------------------------------------------------------
// Calibration: measured loopback delay -> DelayModel parameters

// Shifted-exponential fit of the `udp.transit_us` histogram in a harvested
// snapshot: offset = the 5th-percentile transit (the deterministic kernel
// floor), mean_extra = histogram mean above that offset. The measured
// analogue of Definition 1(1)'s expected-delay bound — feed to_delay_model
// back into a simulator cell to cross-validate against real transport.
struct UdpCalibration {
  bool ok = false;              // histogram present with nonzero samples
  std::uint64_t samples = 0;
  double offset_us = 0.0;       // fitted minimum transit (wall us)
  double mean_extra_us = 0.0;   // fitted mean above the offset (wall us)

  // The fitted model in sim units under `time_scale_us`
  // (shifted_exponential_delay, net/delay.h). ok must hold.
  DelayModelPtr to_delay_model(double time_scale_us) const;
};

UdpCalibration fit_udp_calibration(const MetricsSnapshot& snapshot);

}  // namespace abe
