// Blocking per-node mailbox for the thread runtime.
//
// Items carry a due time (monotonic clock): channel delay is realised by
// enqueueing with a future due time; pop() blocks until the earliest item is
// due, a new earlier item arrives, or the mailbox is closed. One consumer
// (the node's own thread), many producers (peers' threads).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "net/message.h"
#include "util/thread_annotations.h"

namespace abe {

struct MailItem {
  enum class Kind : std::uint8_t { kMessage, kTimer, kStop };
  using Clock = std::chrono::steady_clock;

  Kind kind = Kind::kMessage;
  Clock::time_point due{};
  std::uint64_t sequence = 0;  // tie-break for deterministic ordering
  // Causality (obs/causal.h): trace id of the event behind this item — the
  // SEND record for kMessage, the scheduling handler for kTimer — stamped
  // onto the DELIVER/TIMER/TICK record when the item is popped.
  std::int64_t cause = -1;
  // kMessage:
  std::size_t in_index = 0;
  std::size_t edge = 0;  // global channel id — the DELIVER record's arg,
                         // matching the simulator so edge attribution agrees
  std::shared_ptr<const Payload> payload;
  double delay_sim = 0.0;  // sampled channel delay (sim units), for
                           // critical-path attribution
  // kTimer:
  std::int64_t timer_id = 0;
  std::uint64_t tag = 0;
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Enqueues an item (producer side). Safe from any thread.
  void push(MailItem item) EXCLUDES(mutex_);

  // Blocks until the earliest item is due, then pops it. Returns false when
  // the mailbox was closed and drained of due work (consumer should exit).
  bool pop(MailItem& out) EXCLUDES(mutex_);

  // Wakes the consumer and makes pop() return false once the queue empties.
  void close() EXCLUDES(mutex_);

  // Marks a timer id cancelled; the matching kTimer item is dropped on pop.
  void cancel_timer(std::int64_t timer_id) EXCLUDES(mutex_);

  std::size_t approximate_size() const EXCLUDES(mutex_);

  // Largest queue depth ever observed after a push — the mailbox-backlog
  // gauge of the obs metrics snapshot. Updated under the mutex the push
  // already holds, so tracking it costs one compare.
  std::size_t high_water() const EXCLUDES(mutex_);

 private:
  struct Later {
    bool operator()(const MailItem& a, const MailItem& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.sequence > b.sequence;
    }
  };

  mutable AnnotatedMutex mutex_;
  AnnotatedCondVar cv_;
  std::priority_queue<MailItem, std::vector<MailItem>, Later> queue_
      GUARDED_BY(mutex_);
  std::vector<std::int64_t> cancelled_timers_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  std::uint64_t next_sequence_ GUARDED_BY(mutex_) = 0;
  std::size_t high_water_ GUARDED_BY(mutex_) = 0;
};

}  // namespace abe
