#include "runtime/udp_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace abe {

namespace {

std::int64_t steady_ns(MailItem::Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

MailItem::Clock::time_point from_steady_ns(std::int64_t ns) {
  return MailItem::Clock::time_point(
      std::chrono::duration_cast<MailItem::Clock::duration>(
          std::chrono::nanoseconds(ns)));
}

}  // namespace

// The fixed-size datagram header — the only bytes that cross the socket.
// Payload objects stay in the in-process inflight table (see the header
// file comment); `msg_id` is the key that reunites them at delivery.
struct UdpNetwork::UdpWire {
  static constexpr std::uint32_t kMagic = 0x41424544u;  // "ABED"
  static constexpr std::uint8_t kKindData = 0;
  static constexpr std::uint8_t kKindAck = 1;

  std::uint32_t magic = kMagic;
  std::uint8_t kind = kKindData;
  std::uint8_t pad[3] = {0, 0, 0};
  std::uint32_t from = 0;        // sending node index (ACKs route back here)
  std::uint32_t edge = 0;        // global channel id
  std::uint64_t seq = 0;         // per-channel ARQ sequence; 0 = unreliable
  std::uint64_t msg_id = 0;      // inflight-table key; ACKs echo it
  std::int64_t send_id = -1;     // SEND trace record (DELIVER's cause)
  std::int64_t send_ns = 0;      // steady-clock ns of THIS attempt
  std::int64_t first_send_ns = 0;  // first attempt (arq.rtt base; ACK echo)
  double delay_sim = 0.0;        // sampled model delay (sim units)
};

// Context implementation whose methods run exclusively on the node's
// dispatcher thread (mirrors ThreadNetwork::ThreadContext).
class UdpNetwork::UdpContext final : public Context {
 public:
  UdpContext(UdpNetwork* net, std::size_t index) : net_(net), index_(index) {}

  NodeId self() const override {
    return NodeId{static_cast<std::int64_t>(index_)};
  }
  std::size_t out_degree() const override {
    return net_->out_channels_[index_].size();
  }
  std::size_t in_degree() const override {
    return net_->in_channels_[index_].size();
  }
  std::size_t network_size() const override { return net_->size(); }

  void send(std::size_t out_index, PayloadPtr payload) override {
    ABE_CHECK_LT(out_index, net_->out_channels_[index_].size());
    ABE_CHECK(static_cast<bool>(payload));
    Slot& self_slot = net_->slots_[index_];
    const std::size_t edge = net_->out_channels_[index_][out_index];
    const std::size_t to = net_->config_.topology.edges[edge].to;

    net_->messages_sent_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t send_id = net_->record_trace(
        TraceKind::kSend, self(), static_cast<std::int64_t>(edge),
        net_->trace_detail(*payload, edge), self_slot.current_cause);
    // Unreliable mode realises injected loss exactly like ThreadNetwork:
    // the message vanishes before the wire, sent-then-dropped counting.
    // (Reliable mode draws loss per ATTEMPT in transmit_data instead.)
    if (!net_->config_.reliable && net_->config_.loss_probability > 0.0 &&
        self_slot.rng.bernoulli(net_->config_.loss_probability)) {
      net_->messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      net_->record_trace(TraceKind::kDrop,
                         NodeId{static_cast<std::int64_t>(to)},
                         static_cast<std::int64_t>(edge),
                         net_->trace_detail(*payload, edge), send_id);
      return;
    }

    const double delay =
        net_->config_.adversary_delay != nullptr
            ? net_->config_.adversary_delay->next_delay(index_, to)
            : net_->config_.delay->sample(self_slot.rng);
    const std::uint64_t msg_id =
        net_->next_msg_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    {
      MutexLock lock(net_->inflight_mutex_);
      net_->inflight_[msg_id] =
          std::shared_ptr<const Payload>(payload.release());
    }

    UdpWire wire;
    wire.from = static_cast<std::uint32_t>(index_);
    wire.edge = static_cast<std::uint32_t>(edge);
    wire.msg_id = msg_id;
    wire.send_id = send_id;
    wire.first_send_ns = steady_ns(MailItem::Clock::now());
    wire.delay_sim = delay;
    if (net_->config_.reliable) {
      wire.seq = ++self_slot.next_seq[out_index];
      {
        MutexLock lock(self_slot.tx_mutex);
        PendingTx tx;
        tx.edge = edge;
        tx.seq = wire.seq;
        tx.to = to;
        tx.send_id = send_id;
        tx.delay_sim = delay;
        tx.first_send_ns = wire.first_send_ns;
        tx.attempts = 1;
        self_slot.unacked.emplace(msg_id, tx);
      }
      net_->transmit_data(index_, wire);
      net_->arm_retransmit(index_, msg_id);
    } else {
      wire.seq = 0;
      net_->transmit_data(index_, wire);
    }
  }

  double local_now() override {
    return net_->now_sim() * net_->slots_[index_].clock_rate;
  }
  SimTime real_now() const override { return net_->now_sim(); }

  TimerId set_timer_local(double local_delay, std::uint64_t tag) override {
    ABE_CHECK_GE(local_delay, 0.0);
    const double real_delay = local_delay / net_->slots_[index_].clock_rate;
    const std::int64_t id =
        net_->next_timer_id_.fetch_add(1, std::memory_order_relaxed);
    MailItem item;
    item.kind = MailItem::Kind::kTimer;
    item.due = net_->sim_to_wall(real_delay);
    item.cause = net_->slots_[index_].current_cause;
    item.timer_id = id;
    item.tag = tag;
    net_->slots_[index_].mailbox->push(std::move(item));
    return TimerId{id};
  }

  bool cancel_timer(TimerId id) override {
    net_->slots_[index_].mailbox->cancel_timer(id.value());
    return true;
  }

  Rng& rng() override { return net_->slots_[index_].rng; }

  void log(const std::string& detail) override {
    net_->record_trace(TraceKind::kCustom, self(), -1, detail,
                       net_->slots_[index_].current_cause);
  }

 private:
  UdpNetwork* net_;
  std::size_t index_;
};

UdpNetwork::UdpNetwork(UdpNetConfig config)
    : config_(std::move(config)), root_rng_(config_.seed) {
  static_assert(sizeof(UdpWire) == 64,
                "wire header layout is part of the datagram format");
  static_assert(std::is_trivially_copyable<UdpWire>::value,
                "wire header is sent as raw bytes");
  validate_topology(config_.topology);
  config_.clock_bounds.validate();
  if (!config_.delay) config_.delay = exponential_delay(1.0);
  ABE_CHECK_GT(config_.time_scale_us, 0.0);
  ABE_CHECK_GE(config_.loss_probability, 0.0);
  ABE_CHECK_LT(config_.loss_probability, 1.0)
      << "loss probability 1 would never deliver";
  ABE_CHECK_GT(config_.arq_timeout, 0.0);
  ABE_CHECK_GE(config_.arq_max_attempts, 1);
  ABE_CHECK(config_.drift != DriftModel::kPiecewiseRandom)
      << "udp runtime realises clocks as scaled wall time; only kNone and "
         "kFixedRandomRate are possible";

  const std::size_t n = config_.topology.n;
  out_channels_ = out_adjacency(config_.topology);
  in_channels_ = in_adjacency(config_.topology);
  in_index_of_edge_.assign(config_.topology.edges.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < in_channels_[v].size(); ++k) {
      in_index_of_edge_[in_channels_[v][k]] = k;
    }
  }

  // Sockets open in the constructor so every sender knows every port before
  // the first datagram — start() only spawns threads.
  slots_ = std::vector<Slot>(n);
  port_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].socket = std::make_unique<UdpSocket>();
    port_of_[i] = slots_[i].socket->port();
    slots_[i].mailbox = std::make_unique<Mailbox>();
    slots_[i].context = std::make_unique<UdpContext>(this, i);
    slots_[i].rng = root_rng_.substream("udp-node", i);
    if (config_.drift == DriftModel::kFixedRandomRate) {
      Rng clock_rng = root_rng_.substream("udp-clock", i);
      slots_[i].clock_rate = clock_rng.uniform(config_.clock_bounds.s_low,
                                               config_.clock_bounds.s_high);
    } else {
      slots_[i].clock_rate = 1.0;
    }
    slots_[i].next_seq.assign(out_channels_[i].size(), 0);
    slots_[i].rx.resize(in_channels_[i].size());
  }

  // Measured-delay instruments live in the network's own registry and are
  // always on: the whole point of this substrate is the measurement, and
  // wall-clock transits are nondeterministic regardless.
  transit_hist_ = &registry_.histogram(
      "udp.transit_us", FixedHistogram::log2_bounds(64.0, 4, 10));
  if (config_.reliable) {
    rtt_hist_ = &registry_.histogram("arq.rtt",
                                     FixedHistogram::log2_bounds(1.0, 6, 10));
  }

  {
    MutexLock lock(trace_mutex_);
    if (config_.trace) trace_.enable();
    if (config_.causal_history) trace_.set_capacity(Trace::kFullCapacity);
  }
}

UdpNetwork::~UdpNetwork() { stop(); }

std::string UdpNetwork::trace_detail(const Payload& payload,
                                     std::size_t edge) const {
  if (!config_.trace) return std::string();
  return "edge=" + std::to_string(edge) + " " + payload.describe();
}

std::int64_t UdpNetwork::record_trace(TraceKind kind, NodeId node,
                                      std::int64_t arg,
                                      const std::string& detail,
                                      std::int64_t cause, double delay,
                                      double work) {
  const double t = now_sim();
  MutexLock lock(trace_mutex_);
  if (detail.empty()) {
    return trace_.record(t, kind, node, arg, cause, delay, work);
  }
  return trace_.record(t, kind, node, detail, arg, cause, delay, work);
}

Trace UdpNetwork::trace_copy() const {
  MutexLock lock(trace_mutex_);
  return trace_;
}

MetricsSnapshot UdpNetwork::metrics_snapshot() const {
  // Start from the registry harvest (udp.transit_us, arq.rtt) and layer the
  // counters on top — add_* upserts, so the merge is well defined.
  MetricsSnapshot snap = registry_.snapshot();
  snap.add_counter("net.sent", static_cast<double>(messages_sent_.load()));
  snap.add_counter("net.delivered",
                   static_cast<double>(messages_delivered_.load()));
  snap.add_counter("net.dropped",
                   static_cast<double>(messages_dropped_.load()));
  snap.add_counter("net.ticks", static_cast<double>(ticks_fired_.load()));
  snap.add_counter("net.timers", static_cast<double>(timers_fired_.load()));
  snap.add_counter("udp.cv_wakeups",
                   static_cast<double>(cv_wakeups_.load()));
  snap.add_counter("udp.datagrams_tx",
                   static_cast<double>(datagrams_tx_.load()));
  snap.add_counter("udp.datagrams_rx",
                   static_cast<double>(datagrams_rx_.load()));
  snap.add_counter("udp.acks_tx", static_cast<double>(acks_tx_.load()));
  snap.add_counter("udp.acks_rx", static_cast<double>(acks_rx_.load()));
  snap.add_counter("udp.retransmits",
                   static_cast<double>(retransmits_.load()));
  snap.add_counter("udp.duplicates", static_cast<double>(duplicates_.load()));
  snap.add_counter("udp.attempt_drops",
                   static_cast<double>(attempt_drops_.load()));
  snap.add_counter("udp.giveups", static_cast<double>(giveups_.load()));
  snap.add_counter("udp.orphans",
                   static_cast<double>(orphan_datagrams_.load()));
  std::size_t mailbox_high_water = 0;
  for (const auto& slot : slots_) {
    mailbox_high_water =
        std::max(mailbox_high_water, slot.mailbox->high_water());
  }
  snap.add_gauge("udp.mailbox_high_water",
                 static_cast<double>(mailbox_high_water));
  if (config_.metrics) {
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    for (const auto& slot : slots_) {
      const std::uint64_t ns = slot.handler_ns.load(std::memory_order_relaxed);
      total_ns += ns;
      max_ns = std::max(max_ns, ns);
    }
    snap.add_counter("udp.handler_us.sum",
                     static_cast<double>(total_ns) / 1e3);
    snap.add_gauge("udp.handler_us.max", static_cast<double>(max_ns) / 1e3);
  }
  {
    MutexLock lock(trace_mutex_);
    snap.add_counter("trace.recorded",
                     static_cast<double>(trace_.total_recorded()));
  }
  return snap;
}

void UdpNetwork::add_node(NodePtr node) {
  ABE_CHECK(!started_.load());
  ABE_CHECK(static_cast<bool>(node));
  for (auto& slot : slots_) {
    if (!slot.node) {
      slot.node = std::move(node);
      return;
    }
  }
  ABE_CHECK(false) << "more nodes than topology slots";
}

void UdpNetwork::build_nodes(
    const std::function<NodePtr(std::size_t)>& factory) {
  for (std::size_t i = 0; i < size(); ++i) add_node(factory(i));
}

MailItem::Clock::time_point UdpNetwork::sim_to_wall(
    double sim_delay_from_now) const {
  return MailItem::Clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(
             sim_delay_from_now * config_.time_scale_us));
}

double UdpNetwork::now_sim() const {
  const auto elapsed = MailItem::Clock::now() - start_time_;
  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  return us / config_.time_scale_us;
}

void UdpNetwork::start() {
  ABE_CHECK(!started_.exchange(true)) << "start() called twice";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ABE_CHECK(static_cast<bool>(slots_[i].node)) << "node " << i << " missing";
  }
  start_time_ = MailItem::Clock::now();
  // Readers first: every socket must have someone draining it before any
  // on_start sends (datagrams would only buffer in the kernel, but prompt
  // draining keeps measured transits honest from the first message).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].reader = std::thread([this, i] { reader_main(i); });
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].dispatcher = std::thread([this, i] { dispatcher_main(i); });
  }
}

void UdpNetwork::signal_progress() {
  // Same missed-wakeup fence as ThreadNetwork::signal_progress.
  cv_wakeups_.fetch_add(1, std::memory_order_relaxed);
  { MutexLock lock(progress_mutex_); }
  progress_cv_.notify_all();
}

void UdpNetwork::transmit_data(std::size_t from, const UdpWire& wire) {
  Slot& slot = slots_[from];
  UdpWire out = wire;
  out.send_ns = steady_ns(MailItem::Clock::now());
  // Reliable mode injects loss per transmission ATTEMPT: the datagram is
  // suppressed, the ARQ timer retries. (Unreliable injected loss was
  // already realised in send(), before the wire.)
  if (config_.reliable && config_.loss_probability > 0.0 &&
      slot.rng.bernoulli(config_.loss_probability)) {
    attempt_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t to = config_.topology.edges[wire.edge].to;
  if (slot.socket->send_to(port_of_[to], &out, sizeof(out))) {
    datagrams_tx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Kernel refused the send (shutdown race, transient ENOBUFS): treat as
    // transit loss — ARQ retries it, unreliable mode genuinely loses it.
    attempt_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpNetwork::arm_retransmit(std::size_t from, std::uint64_t msg_id) {
  MailItem item;
  item.kind = MailItem::Kind::kTimer;
  item.timer_id = kRetransmitTimerId;
  item.tag = msg_id;
  item.due = sim_to_wall(config_.arq_timeout);
  slots_[from].mailbox->push(std::move(item));
}

void UdpNetwork::handle_retransmit(std::size_t index, std::uint64_t msg_id) {
  Slot& slot = slots_[index];
  UdpWire wire;
  bool resend = false;
  bool give_up = false;
  std::int64_t drop_send_id = -1;
  std::size_t drop_to = 0;
  std::size_t drop_edge = 0;
  {
    MutexLock lock(slot.tx_mutex);
    auto it = slot.unacked.find(msg_id);
    if (it == slot.unacked.end()) return;  // ACKed since the timer armed
    PendingTx& tx = it->second;
    if (tx.attempts >= config_.arq_max_attempts) {
      // Attempt cap: with ACKs immune to injected loss, reaching it takes
      // ~loss^max_attempts consecutive data-attempt losses — the give-up
      // exists so a pathological channel cannot wedge quiescence forever.
      give_up = true;
      drop_send_id = tx.send_id;
      drop_to = tx.to;
      drop_edge = tx.edge;
      slot.unacked.erase(it);
    } else {
      tx.attempts += 1;
      wire.from = static_cast<std::uint32_t>(index);
      wire.edge = static_cast<std::uint32_t>(tx.edge);
      wire.seq = tx.seq;
      wire.msg_id = msg_id;
      wire.send_id = tx.send_id;
      wire.first_send_ns = tx.first_send_ns;
      wire.delay_sim = tx.delay_sim;
      resend = true;
    }
  }
  if (give_up) {
    {
      MutexLock lock(inflight_mutex_);
      inflight_.erase(msg_id);
    }
    giveups_.fetch_add(1, std::memory_order_relaxed);
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    record_trace(TraceKind::kDrop, NodeId{static_cast<std::int64_t>(drop_to)},
                 static_cast<std::int64_t>(drop_edge), std::string(),
                 drop_send_id);
    return;
  }
  if (resend) {
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    transmit_data(index, wire);
    arm_retransmit(index, msg_id);
  }
}

void UdpNetwork::reader_main(std::size_t index) {
  Slot& slot = slots_[index];
  UdpWire wire;
  while (!stop_readers_.load(std::memory_order_acquire)) {
    const int got = slot.socket->receive(&wire, sizeof(wire));
    if (got == 0) continue;  // poll interval elapsed; re-check stop flag
    if (got < 0) return;     // unrecoverable socket error (shutdown)
    if (static_cast<std::size_t>(got) != sizeof(UdpWire) ||
        wire.magic != UdpWire::kMagic) {
      // Not ours (stray datagram on a reused port): drop silently.
      continue;
    }
    const std::int64_t recv_ns = steady_ns(MailItem::Clock::now());
    if (wire.kind == UdpWire::kKindAck) {
      handle_ack(index, wire, recv_ns);
    } else {
      handle_data(index, wire, recv_ns);
    }
  }
}

void UdpNetwork::handle_data(std::size_t index, const UdpWire& wire,
                             std::int64_t recv_ns) {
  Slot& slot = slots_[index];
  datagrams_rx_.fetch_add(1, std::memory_order_relaxed);
  // The measurement this substrate exists for: real kernel+loopback transit
  // of this datagram, in wall microseconds.
  transit_hist_->record(
      static_cast<double>(recv_ns - wire.send_ns) / 1e3);

  if (config_.reliable) {
    // Always ACK — duplicates too (the earlier ACK may have raced the
    // retransmit timer). ACKs are deliberately exempt from injected loss,
    // mirroring run_arq_experiment's lossless ack channel (net/arq.h):
    // this keeps sender give-up of an already-delivered message (which
    // would double-count it as both delivered and dropped) out of the
    // model, at ~loss^max_attempts residual probability.
    UdpWire ack;
    ack.kind = UdpWire::kKindAck;
    ack.from = static_cast<std::uint32_t>(index);
    ack.edge = wire.edge;
    ack.seq = wire.seq;
    ack.msg_id = wire.msg_id;
    ack.send_id = wire.send_id;
    ack.send_ns = steady_ns(MailItem::Clock::now());
    ack.first_send_ns = wire.first_send_ns;
    if (slot.socket->send_to(port_of_[wire.from], &ack, sizeof(ack))) {
      acks_tx_.fetch_add(1, std::memory_order_relaxed);
    }
    RxChannel& rx = slot.rx[in_index_of_edge_[wire.edge]];
    if (wire.seq <= rx.cum_delivered ||
        rx.delivered_ahead.count(wire.seq) != 0) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    rx.delivered_ahead.insert(wire.seq);
    while (rx.delivered_ahead.erase(rx.cum_delivered + 1) != 0) {
      rx.cum_delivered += 1;
    }
  }

  std::shared_ptr<const Payload> payload;
  {
    MutexLock lock(inflight_mutex_);
    auto it = inflight_.find(wire.msg_id);
    if (it != inflight_.end()) {
      payload = it->second;
      inflight_.erase(it);
    }
  }
  if (!payload) {
    // The sender already reclaimed the payload (give-up racing a late
    // datagram) or the kernel duplicated an unreliable datagram. The
    // message was accounted for elsewhere; this wire copy is inert.
    orphan_datagrams_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // The sampled model delay is realised against the SEND instant, so real
  // transit slower than the sampled delay degrades into immediate dispatch
  // rather than stacking on top (hybrid semantics; see README).
  MailItem item;
  item.kind = MailItem::Kind::kMessage;
  item.due = from_steady_ns(wire.send_ns) +
             std::chrono::microseconds(static_cast<std::int64_t>(
                 wire.delay_sim * config_.time_scale_us));
  item.cause = wire.send_id;
  item.in_index = in_index_of_edge_[wire.edge];
  item.edge = wire.edge;
  item.payload = std::move(payload);
  item.delay_sim = wire.delay_sim;
  slot.mailbox->push(std::move(item));
}

void UdpNetwork::handle_ack(std::size_t index, const UdpWire& wire,
                            std::int64_t recv_ns) {
  Slot& slot = slots_[index];
  acks_rx_.fetch_add(1, std::memory_order_relaxed);
  bool newly_acked = false;
  {
    MutexLock lock(slot.tx_mutex);
    newly_acked = slot.unacked.erase(wire.msg_id) > 0;
  }
  if (newly_acked && rtt_hist_ != nullptr) {
    // First-send -> ACK round trip, converted to sim units so arq.rtt is
    // comparable with the simulated ARQ experiments.
    rtt_hist_->record(static_cast<double>(recv_ns - wire.first_send_ns) /
                      1e3 / config_.time_scale_us);
  }
}

void UdpNetwork::dispatcher_main(std::size_t index) {
  Slot& slot = slots_[index];
  Context& ctx = *slot.context;
  active_handlers_.fetch_add(1, std::memory_order_acq_rel);
  slot.node->on_start(ctx);
  slot.terminated.store(slot.node->is_terminated(), std::memory_order_release);
  nodes_started_.fetch_add(1, std::memory_order_acq_rel);
  active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
  signal_progress();

  std::uint64_t tick_seq = 0;
  auto next_tick_due = [&]() {
    const double next_local =
        static_cast<double>(tick_seq + 1) * config_.tick_local_period;
    const double real = next_local / slot.clock_rate;  // sim units
    return start_time_ + std::chrono::microseconds(static_cast<std::int64_t>(
                             real * config_.time_scale_us));
  };
  if (config_.enable_ticks) {
    MailItem tick;
    tick.kind = MailItem::Kind::kTimer;
    tick.timer_id = kTickTimerId;
    tick.due = next_tick_due();
    slot.mailbox->push(std::move(tick));
  }

  MailItem item;
  while (slot.mailbox->pop(item)) {
    // ARQ bookkeeping pops: not node events — no trace record, no timer
    // counter — but bracketed by active_handlers_ like everything else so
    // a give-up's dropped++ can never land outside a handler window.
    if (item.kind == MailItem::Kind::kTimer &&
        item.timer_id == kRetransmitTimerId) {
      active_handlers_.fetch_add(1, std::memory_order_acq_rel);
      handle_retransmit(index, item.tag);
      active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
      signal_progress();
      continue;
    }
    active_handlers_.fetch_add(1, std::memory_order_acq_rel);
    const auto handler_start = config_.metrics ? MailItem::Clock::now()
                                               : MailItem::Clock::time_point{};
    if (item.kind == MailItem::Kind::kMessage) {
      messages_delivered_.fetch_add(1, std::memory_order_relaxed);
      double ptime = 0.0;
      if (config_.processing.kind != ProcessingModel::Kind::kZero) {
        ptime = config_.processing.sample(slot.rng);
      }
      slot.current_cause = record_trace(
          TraceKind::kDeliver, ctx.self(),
          static_cast<std::int64_t>(item.edge),
          config_.trace ? "edge=" + std::to_string(item.edge) + " " +
                              item.payload->describe()
                        : std::string(),
          item.cause, item.delay_sim, ptime);
      if (ptime > 0.0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(ptime * config_.time_scale_us)));
      }
      slot.node->on_message(ctx, item.in_index, *item.payload);
    } else if (item.kind == MailItem::Kind::kTimer) {
      if (item.timer_id == kTickTimerId) {
        ++tick_seq;
        ticks_fired_.fetch_add(1, std::memory_order_relaxed);
        slot.current_cause = record_trace(TraceKind::kTick, ctx.self(),
                                          static_cast<std::int64_t>(tick_seq),
                                          std::string(), item.cause);
        slot.node->on_tick(ctx, tick_seq);
        if (!slot.node->is_terminated()) {
          MailItem tick;
          tick.kind = MailItem::Kind::kTimer;
          tick.timer_id = kTickTimerId;
          tick.cause = slot.current_cause;
          tick.due = next_tick_due();
          slot.mailbox->push(std::move(tick));
        }
      } else {
        timers_fired_.fetch_add(1, std::memory_order_relaxed);
        slot.current_cause = record_trace(TraceKind::kTimer, ctx.self(),
                                          static_cast<std::int64_t>(item.tag),
                                          std::string(), item.cause);
        slot.node->on_timer(ctx, TimerId{item.timer_id}, item.tag);
      }
    }
    if (config_.metrics) {
      const auto handler_ns = std::chrono::duration_cast<
          std::chrono::nanoseconds>(MailItem::Clock::now() - handler_start);
      slot.handler_ns.fetch_add(static_cast<std::uint64_t>(handler_ns.count()),
                                std::memory_order_relaxed);
    }
    slot.terminated.store(slot.node->is_terminated(),
                          std::memory_order_release);
    active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
    signal_progress();
  }
}

bool UdpNetwork::wait_until(const std::function<bool()>& pred,
                            std::chrono::milliseconds timeout) {
  const auto deadline = MailItem::Clock::now() + timeout;
  MutexLock lock(progress_mutex_);
  return progress_cv_.wait_until(progress_mutex_, deadline,
                                 [&] { return pred(); });
}

bool UdpNetwork::wait_quiescent(std::chrono::milliseconds timeout) {
  return wait_until(
      [&] {
        // Same consistent-snapshot dance as ThreadNetwork::wait_quiescent
        // (see the commentary there). The reliable layer needs no extra
        // clause: an unACKed message keeps sent > delivered + dropped
        // until its datagram is popped by the receiving dispatcher or its
        // sender gives up — both counted.
        if (nodes_started_.load(std::memory_order_acquire) != size()) {
          return false;
        }
        const std::uint64_t sent1 = messages_sent_.load();
        const std::uint64_t done1 =
            messages_delivered_.load() + messages_dropped_.load();
        if (sent1 != done1) return false;
        if (active_handlers_.load(std::memory_order_acquire) != 0) {
          return false;
        }
        const std::uint64_t sent2 = messages_sent_.load();
        const std::uint64_t done2 =
            messages_delivered_.load() + messages_dropped_.load();
        return sent2 == sent1 && done2 == done1;
      },
      timeout);
}

void UdpNetwork::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Readers first so no new mailbox items appear while dispatchers drain;
  // they exit within one poll interval. Closed mailboxes then unblock the
  // dispatchers.
  stop_readers_.store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    slot.mailbox->close();
  }
  for (auto& slot : slots_) {
    if (slot.dispatcher.joinable()) slot.dispatcher.join();
  }
  for (auto& slot : slots_) {
    if (slot.reader.joinable()) slot.reader.join();
  }
}

Node& UdpNetwork::node(std::size_t i) {
  ABE_CHECK_LT(i, slots_.size());
  return *slots_[i].node;
}

bool UdpNetwork::terminated(std::size_t i) const {
  ABE_CHECK_LT(i, slots_.size());
  return slots_[i].terminated.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// UdpRuntime

UdpNetConfig UdpRuntime::to_udp_config(const RuntimeConfig& config) {
  ABE_CHECK_LE(config.topology.n, kMaxUdpRuntimeNodes)
      << "udp runtime opens one loopback socket and two OS threads per node";
  UdpNetConfig net;
  net.topology = config.topology;
  net.delay = config.delay;
  net.adversary_delay = config.adversary_delay;
  net.time_scale_us = config.time_scale_us;
  net.clock_bounds = config.clock_bounds;
  net.drift = config.drift;
  net.processing = config.processing;
  net.loss_probability = config.loss_probability;
  net.reliable = config.udp_reliable;
  net.enable_ticks = config.enable_ticks;
  net.tick_local_period = config.tick_local_period;
  net.seed = config.seed;
  net.trace = config.trace;
  net.metrics = config.metrics;
  net.causal_history = config.causal_history;
  return net;
}

UdpRuntime::UdpRuntime(RuntimeConfig config)
    : time_scale_us_(config.time_scale_us),
      wall_timeout_ms_(config.wall_timeout_ms),
      net_(to_udp_config(config)) {
  ABE_CHECK_GT(wall_timeout_ms_, 0.0);
}

void UdpRuntime::build_nodes(
    const std::function<NodePtr(std::size_t)>& factory) {
  net_.build_nodes(factory);
}

void UdpRuntime::start() {
  net_.start();
  // Single clock read point per phase: the wall deadline derives from the
  // same start_time_ read net_.start() took, so now()/budget arithmetic
  // share one origin (the ISSUE's cross-substrate wall-accounting fix).
  wall_deadline_ =
      net_.start_time() +
      std::chrono::microseconds(
          static_cast<std::int64_t>(wall_timeout_ms_ * 1000.0));
  started_ = true;
}

double UdpRuntime::remaining_budget_ms() const {
  if (!started_) return wall_timeout_ms_;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      wall_deadline_ - std::chrono::steady_clock::now());
  return std::max<double>(1.0, static_cast<double>(left.count()));
}

bool UdpRuntime::run_until_done(const std::function<bool()>& done,
                                SimTime deadline) {
  double budget_ms = remaining_budget_ms();
  if (deadline < kTimeInfinity) {
    const SimTime sim_left = std::max(0.0, deadline - net_.now_sim());
    budget_ms = std::min(budget_ms, sim_left * time_scale_us_ / 1000.0);
  }
  return net_.wait_until(
      done,
      std::chrono::milliseconds(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(budget_ms))));
}

void UdpRuntime::run_for(SimTime duration) {
  const double ms =
      std::max(kMinSettleWallMs, duration * time_scale_us_ / 1000.0);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<std::int64_t>(ms)));
}

bool UdpRuntime::drain(SimTime max_wait) {
  double budget_ms = remaining_budget_ms();
  if (max_wait < kTimeInfinity) {
    budget_ms = std::min(budget_ms, max_wait * time_scale_us_ / 1000.0);
  }
  return net_.wait_quiescent(std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(budget_ms))));
}

void UdpRuntime::stop() {
  if (!stopped_) {
    stop_time_ = net_.now_sim();
    stopped_ = true;
  }
  net_.stop();
}

SimTime UdpRuntime::now() const {
  return stopped_ ? stop_time_ : net_.now_sim();
}

RunStats UdpRuntime::stats() const {
  RunStats stats;
  stats.messages_sent = net_.messages_sent();
  stats.messages_delivered = net_.messages_delivered();
  stats.messages_dropped = net_.messages_dropped();
  stats.ticks_fired = net_.ticks_fired();
  stats.now = now();
  stats.terminated.resize(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    stats.terminated[i] = net_.terminated(i);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Calibration

UdpCalibration fit_udp_calibration(const MetricsSnapshot& snapshot) {
  UdpCalibration cal;
  const MetricValue* mv = snapshot.find("udp.transit_us");
  if (mv == nullptr || mv->kind != MetricKind::kHistogram) return cal;
  std::uint64_t total = 0;
  for (const std::uint64_t c : mv->buckets) total += c;
  if (total == 0) return cal;
  cal.samples = total;
  // Offset: the 5th-percentile transit. The true minimum is noisier than a
  // low quantile under scheduler jitter, and the shifted-exponential fit
  // only needs "the deterministic floor, roughly".
  cal.offset_us = FixedHistogram::quantile_of(mv->bounds, mv->buckets, 0.05);
  // Mean from bucket midpoints; the overflow bucket contributes at the last
  // bound (a deliberate under-estimate — tail samples there are outliers
  // the fit should not chase).
  double weighted_sum = 0.0;
  double lower = 0.0;
  for (std::size_t i = 0; i < mv->bounds.size(); ++i) {
    weighted_sum += static_cast<double>(mv->buckets[i]) * 0.5 *
                    (lower + mv->bounds[i]);
    lower = mv->bounds[i];
  }
  weighted_sum +=
      static_cast<double>(mv->buckets.back()) * mv->bounds.back();
  const double mean = weighted_sum / static_cast<double>(total);
  cal.mean_extra_us = std::max(0.0, mean - cal.offset_us);
  cal.ok = true;
  return cal;
}

DelayModelPtr UdpCalibration::to_delay_model(double time_scale_us) const {
  ABE_CHECK(ok) << "no transit samples to fit";
  ABE_CHECK_GT(time_scale_us, 0.0);
  // A degenerate all-one-bucket histogram can fit mean_extra == 0; keep the
  // model a genuine (if tiny) exponential rather than a point mass.
  const double mean_extra = std::max(mean_extra_us, 1e-6);
  return shifted_exponential_delay(offset_us / time_scale_us,
                                   mean_extra / time_scale_us);
}

}  // namespace abe
