#include "runtime/thread_net.h"

#include <algorithm>

#include "util/check.h"

namespace abe {

// Context implementation whose methods run exclusively on the node's thread.
class ThreadNetwork::ThreadContext final : public Context {
 public:
  ThreadContext(ThreadNetwork* net, std::size_t index)
      : net_(net), index_(index) {}

  NodeId self() const override {
    return NodeId{static_cast<std::int64_t>(index_)};
  }
  std::size_t out_degree() const override {
    return net_->out_channels_[index_].size();
  }
  std::size_t in_degree() const override {
    return net_->in_channels_[index_].size();
  }
  std::size_t network_size() const override { return net_->size(); }

  void send(std::size_t out_index, PayloadPtr payload) override {
    ABE_CHECK_LT(out_index, net_->out_channels_[index_].size());
    ABE_CHECK(static_cast<bool>(payload));
    Slot& self_slot = net_->slots_[index_];
    const std::size_t edge = net_->out_channels_[index_][out_index];
    const std::size_t to = net_->config_.topology.edges[edge].to;

    net_->messages_sent_.fetch_add(1, std::memory_order_relaxed);
    // The send's cause is the handler this thread is currently running; the
    // send's id rides the mail item so the pop-side DELIVER links back.
    const std::int64_t send_id = net_->record_trace(
        TraceKind::kSend, self(), static_cast<std::int64_t>(edge),
        net_->trace_detail(*payload, edge), self_slot.current_cause);
    // Silent loss (failure injection): the message vanishes in transit.
    // Sent-then-dropped counting mirrors NetworkMetrics, so in-flight
    // arithmetic (sent - delivered - dropped) works on both runtimes.
    if (net_->config_.loss_probability > 0.0 &&
        self_slot.rng.bernoulli(net_->config_.loss_probability)) {
      net_->messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      net_->record_trace(TraceKind::kDrop,
                         NodeId{static_cast<std::int64_t>(to)},
                         static_cast<std::int64_t>(edge),
                         net_->trace_detail(*payload, edge), send_id);
      return;
    }

    // Policies synchronise internally (make_bounded_adversary) — this call
    // runs concurrently from every node thread.
    const double delay =
        net_->config_.adversary_delay != nullptr
            ? net_->config_.adversary_delay->next_delay(index_, to)
            : net_->config_.delay->sample(self_slot.rng);
    MailItem item;
    item.kind = MailItem::Kind::kMessage;
    item.due = net_->sim_to_wall(delay);
    item.cause = send_id;
    item.in_index = net_->in_index_of_edge_[edge];
    item.edge = edge;
    item.payload = std::shared_ptr<const Payload>(payload.release());
    item.delay_sim = delay;
    net_->slots_[to].mailbox->push(std::move(item));
  }

  double local_now() override {
    return net_->now_sim() * net_->slots_[index_].clock_rate;
  }
  SimTime real_now() const override { return net_->now_sim(); }

  TimerId set_timer_local(double local_delay, std::uint64_t tag) override {
    ABE_CHECK_GE(local_delay, 0.0);
    const double real_delay =
        local_delay / net_->slots_[index_].clock_rate;
    const std::int64_t id =
        net_->next_timer_id_.fetch_add(1, std::memory_order_relaxed);
    MailItem item;
    item.kind = MailItem::Kind::kTimer;
    item.due = net_->sim_to_wall(real_delay);
    // set_timer_local runs on the node's own thread: the arming handler is
    // this slot's current event.
    item.cause = net_->slots_[index_].current_cause;
    item.timer_id = id;
    item.tag = tag;
    net_->slots_[index_].mailbox->push(std::move(item));
    return TimerId{id};
  }

  bool cancel_timer(TimerId id) override {
    net_->slots_[index_].mailbox->cancel_timer(id.value());
    return true;
  }

  Rng& rng() override { return net_->slots_[index_].rng; }

  void log(const std::string& detail) override {
    net_->record_trace(TraceKind::kCustom, self(), -1, detail,
                       net_->slots_[index_].current_cause);
  }

 private:
  ThreadNetwork* net_;
  std::size_t index_;
};

ThreadNetwork::ThreadNetwork(ThreadNetConfig config)
    : config_(std::move(config)), root_rng_(config_.seed) {
  validate_topology(config_.topology);
  config_.clock_bounds.validate();
  if (!config_.delay) config_.delay = exponential_delay(1.0);
  ABE_CHECK_GT(config_.time_scale_us, 0.0);
  ABE_CHECK_GE(config_.loss_probability, 0.0);
  ABE_CHECK_LT(config_.loss_probability, 1.0)
      << "loss probability 1 would never deliver";

  const std::size_t n = config_.topology.n;
  out_channels_ = out_adjacency(config_.topology);
  in_channels_ = in_adjacency(config_.topology);
  in_index_of_edge_.assign(config_.topology.edges.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < in_channels_[v].size(); ++k) {
      in_index_of_edge_[in_channels_[v][k]] = k;
    }
  }
  ABE_CHECK(config_.drift != DriftModel::kPiecewiseRandom)
      << "thread runtime realises clocks as scaled wall time; only kNone "
         "and kFixedRandomRate are possible";

  slots_ = std::vector<Slot>(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].mailbox = std::make_unique<Mailbox>();
    slots_[i].context = std::make_unique<ThreadContext>(this, i);
    slots_[i].rng = root_rng_.substream("thread-node", i);
    if (config_.drift == DriftModel::kFixedRandomRate) {
      Rng clock_rng = root_rng_.substream("thread-clock", i);
      slots_[i].clock_rate = clock_rng.uniform(config_.clock_bounds.s_low,
                                               config_.clock_bounds.s_high);
    } else {
      slots_[i].clock_rate = 1.0;
    }
  }
  {
    MutexLock lock(trace_mutex_);
    if (config_.trace) trace_.enable();
    // Lite records at full capacity: enough retained history for complete
    // cause chains without the detail-string cost.
    if (config_.causal_history) trace_.set_capacity(Trace::kFullCapacity);
  }
}

std::string ThreadNetwork::trace_detail(const Payload& payload,
                                        std::size_t edge) const {
  if (!config_.trace) return std::string();
  return "edge=" + std::to_string(edge) + " " + payload.describe();
}

std::int64_t ThreadNetwork::record_trace(TraceKind kind, NodeId node,
                                         std::int64_t arg,
                                         const std::string& detail,
                                         std::int64_t cause, double delay,
                                         double work) {
  // Delivery-side records are stamped with now_sim() at the moment the
  // consumer popped the item — mailbox delivery time, the thread runtime's
  // analogue of the simulator's event time.
  const double t = now_sim();
  MutexLock lock(trace_mutex_);
  if (detail.empty()) {
    return trace_.record(t, kind, node, arg, cause, delay, work);
  }
  return trace_.record(t, kind, node, detail, arg, cause, delay, work);
}

Trace ThreadNetwork::trace_copy() const {
  MutexLock lock(trace_mutex_);
  return trace_;
}

MetricsSnapshot ThreadNetwork::metrics_snapshot() const {
  MetricsSnapshot snap;
  snap.add_counter("net.sent", static_cast<double>(messages_sent_.load()));
  snap.add_counter("net.delivered",
                   static_cast<double>(messages_delivered_.load()));
  snap.add_counter("net.dropped",
                   static_cast<double>(messages_dropped_.load()));
  snap.add_counter("net.ticks", static_cast<double>(ticks_fired_.load()));
  snap.add_counter("net.timers", static_cast<double>(timers_fired_.load()));
  snap.add_counter("thread.cv_wakeups",
                   static_cast<double>(cv_wakeups_.load()));
  std::size_t mailbox_high_water = 0;
  for (const auto& slot : slots_) {
    mailbox_high_water = std::max(mailbox_high_water,
                                  slot.mailbox->high_water());
  }
  snap.add_gauge("thread.mailbox_high_water",
                 static_cast<double>(mailbox_high_water));
  if (config_.metrics) {
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    for (const auto& slot : slots_) {
      const std::uint64_t ns =
          slot.handler_ns.load(std::memory_order_relaxed);
      total_ns += ns;
      max_ns = std::max(max_ns, ns);
    }
    snap.add_counter("thread.handler_us.sum",
                     static_cast<double>(total_ns) / 1e3);
    snap.add_gauge("thread.handler_us.max",
                   static_cast<double>(max_ns) / 1e3);
  }
  {
    MutexLock lock(trace_mutex_);
    snap.add_counter("trace.recorded",
                     static_cast<double>(trace_.total_recorded()));
  }
  return snap;
}

ThreadNetwork::~ThreadNetwork() { stop(); }

void ThreadNetwork::add_node(NodePtr node) {
  ABE_CHECK(!started_.load());
  ABE_CHECK(static_cast<bool>(node));
  for (auto& slot : slots_) {
    if (!slot.node) {
      slot.node = std::move(node);
      return;
    }
  }
  ABE_CHECK(false) << "more nodes than topology slots";
}

void ThreadNetwork::build_nodes(
    const std::function<NodePtr(std::size_t)>& factory) {
  for (std::size_t i = 0; i < size(); ++i) add_node(factory(i));
}

MailItem::Clock::time_point ThreadNetwork::sim_to_wall(
    double sim_delay_from_now) const {
  return MailItem::Clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(
             sim_delay_from_now * config_.time_scale_us));
}

double ThreadNetwork::now_sim() const {
  const auto elapsed = MailItem::Clock::now() - start_time_;
  const double us =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count());
  return us / config_.time_scale_us;
}

void ThreadNetwork::start() {
  ABE_CHECK(!started_.exchange(true)) << "start() called twice";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ABE_CHECK(static_cast<bool>(slots_[i].node)) << "node " << i << " missing";
  }
  start_time_ = MailItem::Clock::now();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].thread = std::thread([this, i] { thread_main(i); });
  }
}

void ThreadNetwork::signal_progress() {
  // The empty critical section pairs with the wait in wait_until: a
  // predicate flip made by this thread can never slip between the waiter's
  // pred() check and its block (classic missed-wakeup fence).
  cv_wakeups_.fetch_add(1, std::memory_order_relaxed);
  { MutexLock lock(progress_mutex_); }
  progress_cv_.notify_all();
}

void ThreadNetwork::thread_main(std::size_t index) {
  Slot& slot = slots_[index];
  Context& ctx = *slot.context;
  active_handlers_.fetch_add(1, std::memory_order_acq_rel);
  slot.node->on_start(ctx);
  slot.terminated.store(slot.node->is_terminated(),
                        std::memory_order_release);
  nodes_started_.fetch_add(1, std::memory_order_acq_rel);
  active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
  signal_progress();

  // Self-generated ticks: computed from the node's local clock.
  std::uint64_t tick_seq = 0;
  auto next_tick_due = [&]() {
    const double next_local =
        static_cast<double>(tick_seq + 1) * config_.tick_local_period;
    const double real = next_local / slot.clock_rate;  // sim units
    return start_time_ + std::chrono::microseconds(static_cast<std::int64_t>(
                             real * config_.time_scale_us));
  };
  if (config_.enable_ticks) {
    MailItem tick;
    tick.kind = MailItem::Kind::kTimer;
    tick.timer_id = -1;  // sentinel: tick, not a user timer
    tick.due = next_tick_due();
    slot.mailbox->push(std::move(tick));
  }

  MailItem item;
  while (slot.mailbox->pop(item)) {
    // The handler scope participates in quiescence detection: in-flight can
    // read 0 while a just-delivered message is still being handled (and may
    // yet send), so wait_quiescent also requires active_handlers_ == 0.
    // Ordering matters — the increment must precede messages_delivered_.
    active_handlers_.fetch_add(1, std::memory_order_acq_rel);
    // Handler-time accounting (metrics mode): wall-clock reads bracket the
    // handler body only, not the mailbox wait.
    const auto handler_start = config_.metrics
                                   ? MailItem::Clock::now()
                                   : MailItem::Clock::time_point{};
    if (item.kind == MailItem::Kind::kMessage) {
      messages_delivered_.fetch_add(1, std::memory_order_relaxed);
      // The processing draw happens before the record so the DELIVER can
      // carry its `work` attribution; same per-thread draw sequence either
      // way (this thread's rng sees no other draw in between).
      double ptime = 0.0;
      if (config_.processing.kind != ProcessingModel::Kind::kZero) {
        ptime = config_.processing.sample(slot.rng);
      }
      // arg is the global edge id, as on the simulator, so cross-runtime
      // edge attribution and the SEND->DELIVER edge match line up.
      slot.current_cause = record_trace(
          TraceKind::kDeliver, ctx.self(),
          static_cast<std::int64_t>(item.edge),
          config_.trace ? "edge=" + std::to_string(item.edge) + " " +
                              item.payload->describe()
                        : std::string(),
          item.cause, item.delay_sim, ptime);
      // Definition 1(3): handling occupies the node for the sampled time.
      if (ptime > 0.0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(ptime * config_.time_scale_us)));
      }
      slot.node->on_message(ctx, item.in_index, *item.payload);
    } else if (item.kind == MailItem::Kind::kTimer) {
      if (item.timer_id == -1) {
        ++tick_seq;
        ticks_fired_.fetch_add(1, std::memory_order_relaxed);
        slot.current_cause = record_trace(TraceKind::kTick, ctx.self(),
                                          static_cast<std::int64_t>(tick_seq),
                                          std::string(), item.cause);
        slot.node->on_tick(ctx, tick_seq);
        if (!slot.node->is_terminated()) {
          MailItem tick;
          tick.kind = MailItem::Kind::kTimer;
          tick.timer_id = -1;
          tick.cause = slot.current_cause;  // this tick schedules the next
          tick.due = next_tick_due();
          slot.mailbox->push(std::move(tick));
        }
      } else {
        timers_fired_.fetch_add(1, std::memory_order_relaxed);
        slot.current_cause = record_trace(TraceKind::kTimer, ctx.self(),
                                          static_cast<std::int64_t>(item.tag),
                                          std::string(), item.cause);
        slot.node->on_timer(ctx, TimerId{item.timer_id}, item.tag);
      }
    }
    if (config_.metrics) {
      const auto handler_ns = std::chrono::duration_cast<
          std::chrono::nanoseconds>(MailItem::Clock::now() - handler_start);
      slot.handler_ns.fetch_add(
          static_cast<std::uint64_t>(handler_ns.count()),
          std::memory_order_relaxed);
    }
    slot.terminated.store(slot.node->is_terminated(),
                          std::memory_order_release);
    active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
    signal_progress();
  }
}

bool ThreadNetwork::wait_until(const std::function<bool()>& pred,
                               std::chrono::milliseconds timeout) {
  const auto deadline = MailItem::Clock::now() + timeout;
  MutexLock lock(progress_mutex_);
  return progress_cv_.wait_until(progress_mutex_, deadline,
                                 [&] { return pred(); });
}

bool ThreadNetwork::wait_quiescent(std::chrono::milliseconds timeout) {
  return wait_until(
      [&] {
        // Freshly spawned threads look quiescent before their on_start has
        // run (and sent anything), so quiescence starts counting only once
        // every node came up.
        if (nodes_started_.load(std::memory_order_acquire) != size()) {
          return false;
        }
        // Consistent-snapshot dance: counters balanced → no handler active
        // → counters unchanged. The three reads happen at different times,
        // so each alone can race a node popping the last in-flight message
        // (delivered++ lands between our reads while its handler, which
        // may yet send, is still running). The re-read closes that window
        // for message-driven protocols: a handler active at the middle
        // read would have bumped `delivered` between the two counter
        // snapshots (its increment precedes the handler body), and any
        // message still in a mailbox keeps sent > delivered + dropped in
        // both snapshots.
        const std::uint64_t sent1 = messages_sent_.load();
        const std::uint64_t done1 =
            messages_delivered_.load() + messages_dropped_.load();
        if (sent1 != done1) return false;
        if (active_handlers_.load(std::memory_order_acquire) != 0) {
          return false;
        }
        const std::uint64_t sent2 = messages_sent_.load();
        const std::uint64_t done2 =
            messages_delivered_.load() + messages_dropped_.load();
        return sent2 == sent1 && done2 == done1;
      },
      timeout);
}

void ThreadNetwork::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (auto& slot : slots_) {
    slot.mailbox->close();
  }
  for (auto& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

Node& ThreadNetwork::node(std::size_t i) {
  ABE_CHECK_LT(i, slots_.size());
  return *slots_[i].node;
}

bool ThreadNetwork::terminated(std::size_t i) const {
  ABE_CHECK_LT(i, slots_.size());
  return slots_[i].terminated.load(std::memory_order_acquire);
}

}  // namespace abe
