#include "runtime/udp_socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/check.h"

namespace abe {

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  ABE_CHECK_GE(fd_, 0) << "socket(AF_INET, SOCK_DGRAM): "
                       << std::strerror(errno);

  // Poll-interval receive timeout: the reader loop's stop-flag check rides
  // on this, so shutdown never depends on a wakeup datagram arriving.
  timeval tv{};
  tv.tv_sec = kPollIntervalMs / 1000;
  tv.tv_usec = (kPollIntervalMs % 1000) * 1000;
  ABE_CHECK_EQ(
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0)
      << "setsockopt(SO_RCVTIMEO): " << std::strerror(errno);

  // A burst of sends toward a node whose dispatcher is sleeping in a
  // processing-time window must not overflow the default receive buffer —
  // kernel-dropped datagrams look like untracked loss and stall quiescence
  // in unreliable mode. Headers are ~64 bytes, so 1 MiB holds far more
  // in-flight datagrams than any cell under the node budget can produce.
  const int rcvbuf = 1 << 20;
  ABE_CHECK_EQ(
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)), 0)
      << "setsockopt(SO_RCVBUF): " << std::strerror(errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  ABE_CHECK_EQ(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << "bind(127.0.0.1:0): " << std::strerror(errno);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ABE_CHECK_EQ(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len), 0)
      << "getsockname: " << std::strerror(errno);
  port_ = ntohs(bound.sin_port);
  ABE_CHECK_GT(port_, 0);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::send_to(std::uint16_t port, const void* data,
                        std::size_t size) const {
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(port);
  const ssize_t sent =
      ::sendto(fd_, data, size, 0, reinterpret_cast<const sockaddr*>(&dest),
               sizeof(dest));
  return sent == static_cast<ssize_t>(size);
}

int UdpSocket::receive(void* buffer, std::size_t capacity) const {
  const ssize_t got = ::recvfrom(fd_, buffer, capacity, 0, nullptr, nullptr);
  if (got >= 0) return static_cast<int>(got);
  // Poll timeout (SO_RCVTIMEO) and signal interruption are the expected
  // idle outcomes; anything else is a real socket failure.
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

}  // namespace abe
