#include "runtime/runtime.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/harness.h"
#include "runtime/udp_runtime.h"
#include "util/check.h"

namespace abe {

const char* runtime_kind_name(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kSim:
      return "sim";
    case RuntimeKind::kThread:
      return "thread";
    case RuntimeKind::kUdp:
      return "udp";
  }
  return "?";
}

bool runtime_kind_from_name(const std::string& name, RuntimeKind* out) {
  for (RuntimeKind kind :
       {RuntimeKind::kSim, RuntimeKind::kThread, RuntimeKind::kUdp}) {
    if (name == runtime_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// SimRuntime

NetworkConfig SimRuntime::to_network_config(RuntimeConfig config) {
  NetworkConfig net;
  net.topology = std::move(config.topology);
  net.delay = std::move(config.delay);
  net.adversary_delay = std::move(config.adversary_delay);
  net.ordering = config.ordering;
  net.clock_bounds = config.clock_bounds;
  net.drift = config.drift;
  net.processing = config.processing;
  net.enable_ticks = config.enable_ticks;
  net.tick_local_period = config.tick_local_period;
  net.loss_probability = config.loss_probability;
  net.seed = config.seed;
  net.equeue = config.equeue;
  net.metrics = config.metrics;
  net.causal_history = config.causal_history;
  net.timeseries_interval = config.timeseries_interval;
  return net;
}

SimRuntime::SimRuntime(RuntimeConfig config)
    : trace_(config.trace), net_(to_network_config(std::move(config))) {
  if (trace_) net_.trace().enable();
}

void SimRuntime::build_nodes(
    const std::function<NodePtr(std::size_t)>& factory) {
  net_.build_nodes(factory);
}

void SimRuntime::start() { net_.start(); }

bool SimRuntime::run_until_done(const std::function<bool()>& done,
                                SimTime deadline) {
  return net_.run_until(done, deadline);
}

void SimRuntime::run_for(SimTime duration) {
  net_.run_until([] { return false; }, net_.now() + duration);
}

bool SimRuntime::drain(SimTime max_wait) {
  const SimTime deadline = max_wait >= kTimeInfinity
                               ? kTimeInfinity
                               : net_.now() + max_wait;
  net_.run_until_quiescent(deadline);
  return net_.metrics().in_flight() == 0;
}

bool SimRuntime::terminated(std::size_t i) const {
  return const_cast<Network&>(net_).node(i).is_terminated();
}

RunStats SimRuntime::stats() const {
  const NetworkMetrics& m = net_.metrics();
  RunStats stats;
  stats.messages_sent = m.messages_sent;
  stats.messages_delivered = m.messages_delivered;
  stats.messages_dropped = m.messages_dropped;
  stats.ticks_fired = m.ticks_fired;
  stats.now = net_.now();
  stats.terminated.resize(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    stats.terminated[i] = terminated(i);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// ThreadRuntime

ThreadNetConfig ThreadRuntime::to_thread_config(const RuntimeConfig& config) {
  ABE_CHECK_LE(config.topology.n, kMaxThreadRuntimeNodes)
      << "thread runtime spawns one OS thread per node";
  ThreadNetConfig net;
  net.topology = config.topology;
  net.delay = config.delay;
  net.adversary_delay = config.adversary_delay;
  net.time_scale_us = config.time_scale_us;
  net.clock_bounds = config.clock_bounds;
  net.drift = config.drift;
  net.processing = config.processing;
  net.loss_probability = config.loss_probability;
  net.enable_ticks = config.enable_ticks;
  net.tick_local_period = config.tick_local_period;
  net.seed = config.seed;
  net.trace = config.trace;
  net.metrics = config.metrics;
  net.causal_history = config.causal_history;
  return net;
}

ThreadRuntime::ThreadRuntime(RuntimeConfig config)
    : time_scale_us_(config.time_scale_us),
      wall_timeout_ms_(config.wall_timeout_ms),
      net_(to_thread_config(config)) {
  ABE_CHECK_GT(wall_timeout_ms_, 0.0);
}

void ThreadRuntime::build_nodes(
    const std::function<NodePtr(std::size_t)>& factory) {
  net_.build_nodes(factory);
}

void ThreadRuntime::start() {
  net_.start();
  // Single clock read point: derive the wall deadline from the same
  // start_time_ read net_.start() took, rather than a second now() — so
  // the budget and now_sim() share one origin and cross-substrate wall
  // accounting lines up (ISSUE 10 small fix).
  wall_deadline_ =
      net_.start_time() +
      std::chrono::microseconds(
          static_cast<std::int64_t>(wall_timeout_ms_ * 1000.0));
  started_ = true;
}

double ThreadRuntime::remaining_budget_ms() const {
  if (!started_) return wall_timeout_ms_;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      wall_deadline_ - std::chrono::steady_clock::now());
  return std::max<double>(1.0, static_cast<double>(left.count()));
}

bool ThreadRuntime::run_until_done(const std::function<bool()>& done,
                                   SimTime deadline) {
  // The deadline is absolute sim time (contract shared with SimRuntime),
  // so only the remainder beyond the current clock converts to wall time;
  // the per-trial wall budget caps it so a deadline meant for the
  // simulator (often 1e7 units) cannot turn into an hours-long wall hang.
  double budget_ms = remaining_budget_ms();
  if (deadline < kTimeInfinity) {
    const SimTime sim_left = std::max(0.0, deadline - net_.now_sim());
    budget_ms = std::min(budget_ms, sim_left * time_scale_us_ / 1000.0);
  }
  return net_.wait_until(
      done, std::chrono::milliseconds(
                std::max<std::int64_t>(1, static_cast<std::int64_t>(budget_ms))));
}

void ThreadRuntime::run_for(SimTime duration) {
  // Wall-clock floor: below ~kMinSettleWallMs of wall time, OS scheduling
  // jitter dominates and the requested settle window is not actually
  // realised (in-flight wakeups land later than any sim-unit conversion
  // suggests).
  const double ms =
      std::max(kMinSettleWallMs, duration * time_scale_us_ / 1000.0);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<std::int64_t>(ms)));
}

bool ThreadRuntime::drain(SimTime max_wait) {
  double budget_ms = remaining_budget_ms();
  if (max_wait < kTimeInfinity) {
    budget_ms = std::min(budget_ms, max_wait * time_scale_us_ / 1000.0);
  }
  return net_.wait_quiescent(std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(budget_ms))));
}

void ThreadRuntime::stop() {
  if (!stopped_) {
    stop_time_ = net_.now_sim();
    stopped_ = true;
  }
  net_.stop();
}

SimTime ThreadRuntime::now() const {
  return stopped_ ? stop_time_ : net_.now_sim();
}

RunStats ThreadRuntime::stats() const {
  RunStats stats;
  stats.messages_sent = net_.messages_sent();
  stats.messages_delivered = net_.messages_delivered();
  stats.messages_dropped = net_.messages_dropped();
  stats.ticks_fired = net_.ticks_fired();
  stats.now = now();
  stats.terminated.resize(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    stats.terminated[i] = net_.terminated(i);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Factory and trial loop

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind,
                                      RuntimeConfig config) {
  switch (kind) {
    case RuntimeKind::kSim:
      return std::make_unique<SimRuntime>(std::move(config));
    case RuntimeKind::kThread:
      return std::make_unique<ThreadRuntime>(std::move(config));
    case RuntimeKind::kUdp:
      return std::make_unique<UdpRuntime>(std::move(config));
  }
  ABE_CHECK(false) << "unhandled runtime kind";
  return nullptr;
}

TrialOutcome run_algorithm_trial(RuntimeKind kind, RuntimeConfig config,
                                 AlgorithmDriver& driver) {
  using WallClock = std::chrono::steady_clock;
  const auto ms_between = [](WallClock::time_point a, WallClock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  driver.configure(config);
  const SimTime deadline = config.deadline;
  const bool want_metrics = config.metrics;
  const auto wall_begin = WallClock::now();
  std::unique_ptr<Runtime> rt = make_runtime(kind, std::move(config));
  rt->build_nodes([&driver](std::size_t i) { return driver.make_node(i); });
  const auto wall_built = WallClock::now();
  rt->start();
  const bool completed =
      rt->run_until_done([&] { return driver.done(*rt); }, deadline);
  const auto wall_ran = WallClock::now();
  if (completed) driver.on_complete(*rt);
  // The decision's causal history must be snapshotted BEFORE the settle
  // phase: settle traffic keeps recording and would evict the decision
  // neighborhood from the lite flight ring. The decision NODE is only known
  // after extract(), so hold the whole (bounded) ring.
  Trace decided_trace;
  if (completed) decided_trace = rt->trace_snapshot();
  driver.settle(*rt, completed);
  rt->stop();
  const auto wall_settled = WallClock::now();
  TrialOutcome outcome = driver.extract(*rt, completed);
  // Observability harvest happens here, after extract(): wall phases and
  // metrics belong to the trial loop, not to individual drivers.
  outcome.wall.build_ms = ms_between(wall_begin, wall_built);
  outcome.wall.run_ms = ms_between(wall_built, wall_ran);
  outcome.wall.settle_ms = ms_between(wall_ran, wall_settled);
  // Computed from the SAME chained reads as the phases — one clock read
  // per phase boundary — so build + run + settle == total identically.
  outcome.wall.total_ms = ms_between(wall_begin, wall_settled);
  if (want_metrics) {
    outcome.metrics = rt->metrics_snapshot();
    outcome.has_metrics = true;
  }
  if (outcome.completed && outcome.decision_node >= 0) {
    // Decision-terminated critical path (obs/causal.h). Pure analysis of
    // the pre-settle snapshot: no RNG, no event reordering, so aggregates
    // are untouched; chains may be `truncated` in lite flight mode
    // (RuntimeConfig::causal_history widens the ring).
    const CriticalPath path = extract_critical_path(
        decided_trace.events(), NodeId{outcome.decision_node}, outcome.time);
    outcome.critical_path = CriticalPathStats::from_path(path);
    outcome.has_critical_path = true;
  }
  {
    TimeSeries series = rt->timeseries_snapshot();
    if (series.enabled()) {
      series.trials = 1;
      outcome.timeseries = std::move(series);
      outcome.has_timeseries = true;
    }
  }
  if (!outcome.completed || outcome.stalled || !outcome.safety_ok) {
    // Failure forensics: dump the always-on flight recorder's recent
    // history so stalled or violating trials are diagnosable without
    // having pre-enabled tracing.
    outcome.flight_tail = rt->trace_snapshot().events();
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Threaded election harness (shim over ThreadRuntime + the ring driver)

ThreadedElectionResult run_threaded_election(
    std::size_t n, double a0, double mean_delay, std::uint64_t seed,
    double time_scale_us, std::chrono::milliseconds timeout,
    ClockBounds clock_bounds, double loss_probability) {
  ElectionExperiment experiment;
  experiment.n = n;
  experiment.election.a0 = a0;
  experiment.delay = exponential_delay(mean_delay);
  experiment.clock_bounds = clock_bounds;
  experiment.drift = DriftModel::kFixedRandomRate;
  experiment.loss_probability = loss_probability;
  experiment.seed = seed;
  // The old harness always slept 100 ms before freezing state; a positive
  // settle_time hits ThreadRuntime::run_for's kMinSettleWallMs floor, which
  // realises exactly that window.
  experiment.settle_time = 1.0;

  RuntimeConfig config = election_runtime_config(experiment);
  config.time_scale_us = time_scale_us;
  config.wall_timeout_ms = static_cast<double>(timeout.count());

  ElectionRunResult run;
  const auto driver = make_ring_election_driver(experiment, &run);
  run_algorithm_trial(RuntimeKind::kThread, std::move(config), *driver);

  ThreadedElectionResult result;
  result.elected = run.elected;
  result.leader_index = run.leader_index;
  result.election_time_sim = run.election_time;
  result.messages = run.messages_total > 0 ? run.messages_total : run.messages;
  result.safety_ok = run.safety_ok;
  return result;
}

}  // namespace abe
