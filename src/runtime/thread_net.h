// Real-thread runtime: one std::thread per node, blocking mailboxes,
// wall-clock delays. This is the substrate behind ThreadRuntime — the
// real-thread half of the unified Runtime contract (runtime/runtime.h);
// algorithm code reaches it through the same Node/Context interface the
// simulator provides, so the exact same node objects run on both.
//
// One simulated time unit maps to `time_scale_us` microseconds of wall
// time; channel delays are sampled from the same DelayModel and realised by
// due-time enqueueing. Local clocks are wall clocks scaled by a per-node
// fixed drift rate within the configured bounds — an honest (if
// small-scale) physical realisation of the ABE model, used as a fidelity
// check on the simulator's conclusions. Failure injection mirrors the
// simulator: per-attempt silent loss (`loss_probability`, drops counted in
// messages_dropped()) and congestion-degraded delays (wrap the DelayModel
// with FailureProfile::apply before handing it in). Definition 1(3)
// processing time is realised literally: the node's thread sleeps for the
// sampled handling time before processing a delivered message.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "clock/local_clock.h"
#include "net/delay.h"
#include "net/network.h"
#include "net/node.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "runtime/mailbox.h"
#include "trace/trace.h"
#include "util/thread_annotations.h"

namespace abe {

struct ThreadNetConfig {
  Topology topology;
  DelayModelPtr delay;               // per-channel delay (sim units)
  // When set, the adversary chooses every message's delay instead of
  // sampling `delay` (net/delay.h). Policies are called concurrently from
  // node threads and synchronise internally (make_bounded_adversary).
  AdversaryPolicyPtr adversary_delay;
  double time_scale_us = 1000.0;     // wall microseconds per sim unit
  // Clock-drift band [s_low, s_high] (Definition 1(2)), mirroring the
  // simulator's NetworkConfig. kNone pins every rate to exactly 1;
  // kFixedRandomRate draws one rate per node within the bounds (the
  // default, and the only wandering model a wall-clock-scaled runtime can
  // realise — kPiecewiseRandom is rejected).
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kFixedRandomRate;
  // Definition 1(3): handling a delivered message occupies the node — the
  // thread sleeps for the sampled time before invoking on_message.
  ProcessingModel processing = ProcessingModel::zero();
  // Per-attempt silent drop (failure injection; scenario engine). Dropped
  // sends still count as sent, mirroring NetworkMetrics.
  double loss_probability = 0.0;
  bool enable_ticks = false;
  double tick_local_period = 1.0;    // in sim units, on the local clock
  std::uint64_t seed = 1;
  // Full-detail tracing (payload strings in every record). The flight
  // recorder itself is always on — see ThreadNetwork::trace_copy().
  bool trace = false;
  // Causal-history mode (mirrors NetworkConfig::causal_history): widen the
  // flight ring to full capacity while keeping records lite, so cause
  // chains (obs/causal.h) reach their roots.
  bool causal_history = false;
  // Extended observability: per-node handler-time accounting, harvested by
  // metrics_snapshot(). Off by default.
  bool metrics = false;
};

class ThreadNetwork {
 public:
  explicit ThreadNetwork(ThreadNetConfig config);
  ~ThreadNetwork();
  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  // Installs nodes (same contract as Network).
  void add_node(NodePtr node);
  void build_nodes(const std::function<NodePtr(std::size_t)>& factory);

  // Spawns the node threads and delivers on_start on each node's thread.
  void start();

  // Blocks until `pred()` holds or the wall timeout expires, and returns
  // whether pred() held. The predicate is re-evaluated on every node-event
  // completion via condition-variable notification (no busy polling), so a
  // satisfied predicate returns promptly. It runs concurrently with node
  // threads and must only read atomics (terminated(i), the message
  // counters, or caller-owned atomic observers).
  bool wait_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout) EXCLUDES(progress_mutex_);

  // Blocks until no message is in flight or being handled (quiescence for
  // message-driven protocols; meaningless with tick generators or live
  // timers) or the wall timeout expires. Returns whether quiescence held.
  bool wait_quiescent(std::chrono::milliseconds timeout);

  // Closes all mailboxes and joins all threads. Idempotent; also runs on
  // destruction.
  void stop();

  std::size_t size() const { return config_.topology.n; }
  // Only safe after stop(): node state is owned by its thread while running.
  Node& node(std::size_t i);
  // Race-free terminated flag, updated by the node's thread after each event.
  bool terminated(std::size_t i) const;

  std::uint64_t messages_sent() const { return messages_sent_.load(); }
  std::uint64_t messages_delivered() const {
    return messages_delivered_.load();
  }
  std::uint64_t messages_dropped() const { return messages_dropped_.load(); }
  std::uint64_t ticks_fired() const { return ticks_fired_.load(); }
  // Wall time since start(), in sim units.
  double now_sim() const;
  // The single monotonic-clock read start() took; ThreadRuntime derives
  // its wall deadline from it so budget arithmetic and now_sim() share one
  // origin (one clock read point per phase).
  MailItem::Clock::time_point start_time() const { return start_time_; }

  // Copy of the flight recorder (trace/trace.h): always-on ring of recent
  // events, stamped with mailbox DELIVERY time (now_sim() at pop), so the
  // transcript orders events the way the node experienced them, not the
  // way producers enqueued them. ThreadNetConfig::trace switches it to the
  // full-detail ring the CrossRuntimeParity transcript checks read.
  Trace trace_copy() const EXCLUDES(trace_mutex_);

  // Deterministic-by-name harvest mirroring Network::metrics_snapshot():
  // net.* counters shared with the simulator plus thread.* rows (CV
  // wakeups, mailbox high-water, per-node handler time when
  // ThreadNetConfig::metrics is on). Values are wall-clock facts, so unlike
  // simulator snapshots they are not bit-reproducible across runs.
  MetricsSnapshot metrics_snapshot() const EXCLUDES(trace_mutex_);

 private:
  class ThreadContext;
  struct Slot {
    NodePtr node;
    std::unique_ptr<Mailbox> mailbox;
    std::unique_ptr<ThreadContext> context;
    std::thread thread;
    Rng rng;
    double clock_rate = 1.0;
    // Trace id of the event this node's thread is currently handling (-1
    // outside handlers). Like `rng`, touched only by the owning thread:
    // sends stamp it as their cause, pops overwrite it.
    std::int64_t current_cause = -1;
    std::atomic<bool> terminated{false};
    // Nanoseconds spent inside event handlers (metrics mode only). Written
    // by the owning node thread, read by metrics_snapshot().
    std::atomic<std::uint64_t> handler_ns{0};
  };

  void thread_main(std::size_t index);
  // Wakes wait_until/wait_quiescent callers after a state change.
  void signal_progress() EXCLUDES(progress_mutex_);
  MailItem::Clock::time_point sim_to_wall(double sim_delay_from_now) const;
  // Appends to the flight recorder and returns the record's id; called
  // concurrently from node threads. `detail` is recorded only in full-trace
  // mode (or for kCustom, whose payload IS the string). `cause`/`delay`/
  // `work` mirror Trace::record (obs/causal.h attribution).
  std::int64_t record_trace(TraceKind kind, NodeId node, std::int64_t arg,
                            const std::string& detail = std::string(),
                            std::int64_t cause = -1, double delay = 0.0,
                            double work = 0.0) EXCLUDES(trace_mutex_);
  // "edge=N <payload>" in full-trace mode, empty otherwise — so lite-mode
  // sends never pay for string formatting.
  std::string trace_detail(const Payload& payload, std::size_t edge) const;

  ThreadNetConfig config_;
  Rng root_rng_;
  std::vector<Slot> slots_;
  std::vector<std::vector<std::size_t>> out_channels_;
  std::vector<std::vector<std::size_t>> in_channels_;
  std::vector<std::size_t> in_index_of_edge_;
  MailItem::Clock::time_point start_time_{};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> ticks_fired_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> cv_wakeups_{0};
  // Nodes currently inside an event handler; part of the quiescence
  // condition (a handler may still send).
  std::atomic<std::uint64_t> active_handlers_{0};
  // Nodes whose on_start has completed; quiescence is meaningless before
  // every node came up (a fresh network has sent nothing yet).
  std::atomic<std::size_t> nodes_started_{0};
  std::atomic<std::int64_t> next_timer_id_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  // Pure wakeup fence: no field is guarded by it — waiter predicates read
  // only the atomics above — so its whole job is the missed-wakeup pairing
  // in signal_progress()/wait_until(). The EXCLUDES contracts on those two
  // are what -Wthread-safety checks here.
  mutable AnnotatedMutex progress_mutex_;
  AnnotatedCondVar progress_cv_;
  // Flight recorder, shared by all node threads. Separate mutex from the
  // progress fence: trace records happen on every event, progress waits
  // only at the run boundary, and the two must not contend.
  mutable AnnotatedMutex trace_mutex_;
  Trace trace_ GUARDED_BY(trace_mutex_);
};

// Convenience harness mirroring core/harness.h on the thread runtime.
// (Thin shim over ThreadRuntime + the ring-election AlgorithmDriver; see
// runtime/runtime.h.)
struct ThreadedElectionResult {
  bool elected = false;
  std::size_t leader_index = 0;
  double election_time_sim = 0.0;
  std::uint64_t messages = 0;
  bool safety_ok = false;
};

// `clock_bounds` realises the drift band on real threads (one fixed rate
// per node drawn within the bounds); the default is ideal clocks.
// `loss_probability` injects per-attempt silent message loss.
ThreadedElectionResult run_threaded_election(
    std::size_t n, double a0, double mean_delay, std::uint64_t seed,
    double time_scale_us = 200.0,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(30000),
    ClockBounds clock_bounds = {}, double loss_probability = 0.0);

}  // namespace abe
