// The unified Runtime contract: one execution API over both substrates.
//
// The paper's ABE model sits *between* pure asynchrony and real networks, so
// conclusions drawn from the discrete-event simulator should be checkable
// against a real-thread execution of the very same algorithm code, on the
// same scenario matrix. This header is that seam:
//
//   * RuntimeConfig — the runtime-agnostic experiment environment (topology,
//     delay model, clock bounds/drift, processing, failure injection, ticks,
//     seed) plus the per-substrate realisation knobs (equeue backend for the
//     simulator; wall time scale and budget for threads);
//   * Runtime — one lifecycle (build nodes → start → run to a completion
//     predicate or deadline → settle/drain → stop → inspect), implemented by
//       - SimRuntime    wrapping Scheduler+Network  (net/network.h),
//       - ThreadRuntime wrapping ThreadNetwork      (runtime/thread_net.h),
//       - UdpRuntime    wrapping UdpNetwork         (runtime/udp_runtime.h,
//         real loopback datagrams with measured delays);
//   * RunStats — the uniform harvest (messages sent/delivered/dropped, ticks,
//     clock reading, per-node terminated flags);
//   * AlgorithmDriver — what an algorithm must provide to run on either
//     substrate: a node factory, a done-predicate, and result extraction.
//     run_algorithm_trial() executes a driver on either runtime.
//
// Determinism contract: on the simulator the driver lifecycle makes the
// exact same Network calls the pre-Runtime per-algorithm runners made, so
// seeded aggregates are bit-identical across the redesign. The thread
// runtime is wall-clock driven and intentionally nondeterministic — parity
// there means model-level postconditions (leader uniqueness, dissemination,
// message counts in the same regime), never traces.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "runtime/thread_net.h"
#include "trace/trace.h"

namespace abe {

// ---------------------------------------------------------------------------
// Runtime axis

enum class RuntimeKind : std::uint8_t {
  kSim,     // discrete-event simulator (deterministic, any n)
  kThread,  // one OS thread per node, wall-clock delays (fidelity check)
  kUdp,     // real loopback UDP datagrams, measured delays (udp_runtime.h)
};

const char* runtime_kind_name(RuntimeKind kind);
// Non-aborting parse of the names printed by runtime_kind_name; returns
// false on unknown input (the CLI validation boundary).
bool runtime_kind_from_name(const std::string& name, RuntimeKind* out);

// ---------------------------------------------------------------------------
// Configuration

// Everything a runtime needs to realise one trial environment. Field-level
// comments live with the originating structs (NetworkConfig,
// ThreadNetConfig); this is their union, with substrate-only knobs marked.
struct RuntimeConfig {
  Topology topology;
  DelayModelPtr delay;  // failure-degrade wrapping already applied
  // When set, overrides `delay` for every channel: the adversary chooses
  // each message's delay (stateful, edge-aware) instead of sampling the
  // model. Build only via make_bounded_adversary (adversary/delay_policy.h),
  // which enforces the ABE empirical-mean bound per channel. Both runtimes
  // honor it; nullptr keeps the honest sampling path byte-for-byte.
  AdversaryPolicyPtr adversary_delay;
  ChannelOrdering ordering = ChannelOrdering::kArbitrary;  // sim only
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  bool enable_ticks = false;
  double tick_local_period = 1.0;
  // Per-attempt silent drop (FailureProfile::channel_loss). Both runtimes
  // honor it and count drops in RunStats.messages_dropped.
  double loss_probability = 0.0;
  std::uint64_t seed = 1;
  // Give up past this simulated time (thread: scaled to a wall budget and
  // clamped by wall_timeout_ms).
  SimTime deadline = 1e7;
  EqueueBackend equeue = EqueueBackend::kAuto;  // sim only
  // Full-detail tracing on either substrate (the flight recorder itself is
  // always on at small capacity; this raises capacity and records payload
  // strings). See trace/trace.h.
  bool trace = false;
  // Extended metrics (delay/RTT histograms, per-node handler timing).
  // Recording consumes no RNG and never reorders events, so flipping this
  // cannot change any seeded aggregate. Off by default; scenario sweeps
  // turn it on.
  bool metrics = false;
  // Causal-history mode: widen the always-on flight ring to full capacity
  // while keeping records lite (no detail strings), so critical-path
  // chains (obs/causal.h) reach back to their roots instead of truncating
  // at 256 events. Same no-RNG/no-reorder contract as `metrics`.
  bool causal_history = false;
  // Time-series telemetry (obs/timeseries.h): sim-time sampling grid for
  // load gauges; 0 disables. Simulator only — thread-runtime gauges would
  // be wall-clock artefacts.
  double timeseries_interval = 0.0;
  // --- thread/udp-runtime realisation (ignored by the simulator) ---------
  double time_scale_us = 200.0;     // wall microseconds per sim unit
  // Hard per-trial wall budget, counted from start(): run_until_done and
  // drain share it (a stalled run cannot burn the full budget twice).
  // Settle windows (run_for) are bounded sleeps on top.
  double wall_timeout_ms = 30000.0;
  // --- udp-runtime realisation (ignored elsewhere) -----------------------
  // Per-channel ARQ reliable mode: sequence numbers, ACKs, timeout
  // retransmission, receiver dedup (runtime/udp_runtime.h). Injected loss
  // then degrades goodput instead of dropping messages.
  bool udp_reliable = false;
};

// ---------------------------------------------------------------------------
// Uniform harvest

struct RunStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // failure injection
  std::uint64_t ticks_fired = 0;
  SimTime now = 0.0;  // runtime clock at the moment of sampling
  std::vector<bool> terminated;  // per-node snapshot

  // On a RUNNING thread runtime the three counters are sampled by separate
  // atomic loads — no consistent snapshot — so cross-counter arithmetic
  // like this can transiently read zero while messages are in flight.
  // Treat it as exact only after stop() or a successful drain() (which
  // does the consistent-snapshot dance internally); never build a thread
  // done-predicate on it.
  std::uint64_t in_flight() const {
    const std::uint64_t done = messages_delivered + messages_dropped;
    return messages_sent > done ? messages_sent - done : 0;
  }
};

// Wall-clock phase timing of one trial, measured by run_algorithm_trial.
// Kept OUTSIDE MetricsSnapshot on purpose: wall times differ run to run,
// while simulator snapshots must compare bit-identical across trial-pool
// thread counts.
struct WallPhaseTimes {
  double build_ms = 0.0;   // configure + runtime construction + build_nodes
  double run_ms = 0.0;     // start → done-predicate (or deadline)
  double settle_ms = 0.0;  // on_complete + settle + stop
  // Whole-trial wall time, measured between the SAME two clock reads that
  // bound the phases (run_algorithm_trial chains one read per phase
  // boundary), so build + run + settle == total exactly — the invariant
  // that makes cross-substrate wall blocks comparable, and that
  // tests/test_runtime.cpp pins.
  double total_ms = 0.0;
  WallPhaseTimes& operator+=(const WallPhaseTimes& other) {
    build_ms += other.build_ms;
    run_ms += other.run_ms;
    settle_ms += other.settle_ms;
    total_ms += other.total_ms;
    return *this;
  }
};

// Runtime-agnostic outcome of one trial (the scenario engine's trial
// currency; algorithm-specific detail travels via driver sinks).
struct TrialOutcome {
  bool completed = false;   // done-predicate held before the deadline
  bool safety_ok = false;   // algorithm's safety postconditions
  std::string safety_detail;
  // Refinement of !completed: the run went quiescent with no way to make
  // further progress (e.g. the ring election's all-passive deadlock under
  // loss) rather than still working when the deadline hit. Always false
  // when completed.
  bool stalled = false;
  SimTime time = 0.0;       // completion time (sim units on both runtimes)
  std::uint64_t messages = 0;
  // Node at which the algorithm decided (elected leader / consensus sink);
  // -1 when unknown. Set by drivers in extract(); anchors the causal
  // critical path (obs/causal.h).
  std::int64_t decision_node = -1;
  // Observability harvest (run_algorithm_trial fills these in; drivers
  // that hand-construct outcomes may leave them empty).
  bool has_metrics = false;       // metrics was on and a snapshot was taken
  MetricsSnapshot metrics;        // deterministic on the simulator
  WallPhaseTimes wall;            // wall-clock phases, never deterministic
  // Critical path of the decision (completed trials with a decision node
  // only). Extracted from a trace snapshot taken BEFORE the settle phase,
  // so settle traffic cannot evict the decision's causal history.
  bool has_critical_path = false;
  CriticalPathStats critical_path;
  // Per-trial time series (sim runtime with timeseries_interval > 0 only).
  bool has_timeseries = false;
  TimeSeries timeseries;
  // Tail of the always-on flight recorder, populated only for trials that
  // stalled, missed the deadline, or violated safety — the recent-history
  // dump that makes failures diagnosable without pre-enabling tracing.
  std::vector<TraceEvent> flight_tail;
};

// ---------------------------------------------------------------------------
// The contract

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual RuntimeKind kind() const = 0;
  virtual std::size_t size() const = 0;

  // --- lifecycle (call in this order) -----------------------------------
  // Installs one node per topology slot, in index order.
  virtual void build_nodes(
      const std::function<NodePtr(std::size_t)>& factory) = 0;
  // Delivers on_start on every node (and first ticks where enabled).
  virtual void start() = 0;
  // Runs until `done()` holds or `deadline` (sim units) passes; returns
  // whether done() held. On the simulator the predicate is checked after
  // every event; on threads it is re-evaluated on every node-event
  // completion (condition-variable, no busy polling). Thread predicates run
  // concurrently with node threads and must only read atomics —
  // terminated(i) or driver-owned atomic observers; individual RunStats
  // counters are atomic too, but arithmetic ACROSS them (in_flight) has no
  // consistent snapshot while running — use drain() for quiescence.
  virtual bool run_until_done(const std::function<bool()>& done,
                              SimTime deadline) = 0;
  // Lets the network run for `duration` more sim units (settle windows).
  // The thread runtime floors this at kMinSettleWallMs of wall time — OS
  // scheduling jitter makes shorter windows meaningless there.
  virtual void run_for(SimTime duration) = 0;
  // Runs until no messages are in flight or being handled (quiescence for
  // message-driven protocols; meaningless with tick generators). Returns
  // whether quiescence was reached within `max_wait` sim units.
  virtual bool drain(SimTime max_wait) = 0;
  // Freezes execution. Idempotent. After stop(), node state is safe to
  // inspect on any runtime and now() stops advancing.
  virtual void stop() = 0;

  // --- observation -------------------------------------------------------
  // Global clock in sim units (wall time / time_scale on threads).
  virtual SimTime now() const = 0;
  // Race-free per-node terminated flag; safe while running on both
  // runtimes (atomic on threads).
  virtual bool terminated(std::size_t i) const = 0;
  // Node state. Safe any time on the simulator; only after stop() on the
  // thread runtime (state is owned by the node's thread while running).
  virtual Node& node(std::size_t i) = 0;
  virtual RunStats stats() const = 0;
  // Deterministic-by-name metrics harvest (obs/metrics.h). Simulator
  // snapshots are bit-reproducible for a fixed seed; thread snapshots
  // report wall-clock facts. Safe after stop() on both runtimes.
  virtual MetricsSnapshot metrics_snapshot() const = 0;
  // Copy of the flight recorder: always-on ring of recent events (full
  // capacity + payload detail when RuntimeConfig::trace is set). Thread
  // records are stamped with mailbox delivery time. Safe after stop().
  virtual Trace trace_snapshot() const = 0;
  // Sampled load gauges (RuntimeConfig::timeseries_interval). Only the
  // simulator samples; the default is an empty, disabled series.
  virtual TimeSeries timeseries_snapshot() const { return TimeSeries{}; }
};

// Minimum wall window ThreadRuntime::run_for realises (see run_for).
constexpr double kMinSettleWallMs = 100.0;

// Node cap for the thread runtime: one OS thread per node.
constexpr std::size_t kMaxThreadRuntimeNodes = 256;

// Node cap for the udp runtime: one loopback socket (fd + ephemeral port)
// plus TWO OS threads (reader + dispatcher) per node, so its budget is
// tighter than the thread runtime's.
constexpr std::size_t kMaxUdpRuntimeNodes = 128;

// ---------------------------------------------------------------------------
// Concrete runtimes

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(RuntimeConfig config);

  RuntimeKind kind() const override { return RuntimeKind::kSim; }
  std::size_t size() const override { return net_.size(); }
  void build_nodes(
      const std::function<NodePtr(std::size_t)>& factory) override;
  void start() override;
  bool run_until_done(const std::function<bool()>& done,
                      SimTime deadline) override;
  void run_for(SimTime duration) override;
  bool drain(SimTime max_wait) override;
  void stop() override {}
  SimTime now() const override { return net_.now(); }
  bool terminated(std::size_t i) const override;
  Node& node(std::size_t i) override { return net_.node(i); }
  RunStats stats() const override;
  MetricsSnapshot metrics_snapshot() const override {
    return net_.metrics_snapshot();
  }
  Trace trace_snapshot() const override { return net_.trace(); }
  TimeSeries timeseries_snapshot() const override {
    return net_.timeseries();
  }

  // Escape hatch for simulator-only instrumentation (trace, per-channel
  // overrides, scheduler introspection).
  Network& network() { return net_; }

 private:
  static NetworkConfig to_network_config(RuntimeConfig config);
  bool trace_ = false;  // declared before net_: read from config pre-move
  Network net_;
};

class ThreadRuntime final : public Runtime {
 public:
  explicit ThreadRuntime(RuntimeConfig config);

  RuntimeKind kind() const override { return RuntimeKind::kThread; }
  std::size_t size() const override { return net_.size(); }
  void build_nodes(
      const std::function<NodePtr(std::size_t)>& factory) override;
  void start() override;
  bool run_until_done(const std::function<bool()>& done,
                      SimTime deadline) override;
  void run_for(SimTime duration) override;
  bool drain(SimTime max_wait) override;
  void stop() override;
  SimTime now() const override;
  bool terminated(std::size_t i) const override { return net_.terminated(i); }
  Node& node(std::size_t i) override { return net_.node(i); }
  RunStats stats() const override;
  MetricsSnapshot metrics_snapshot() const override {
    return net_.metrics_snapshot();
  }
  Trace trace_snapshot() const override { return net_.trace_copy(); }

  ThreadNetwork& thread_network() { return net_; }

 private:
  static ThreadNetConfig to_thread_config(const RuntimeConfig& config);
  // Wall milliseconds left of the per-trial budget (≥ 1 so waits with an
  // exhausted budget still poll the predicate once).
  double remaining_budget_ms() const;

  double time_scale_us_;
  double wall_timeout_ms_;
  ThreadNetwork net_;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool started_ = false;
  bool stopped_ = false;
  SimTime stop_time_ = 0.0;
};

// Constructs the runtime for `kind`. Thread-runtime structural limits
// (piecewise drift, node cap) abort here — gate user input with
// runtime_cell_problem (scenario/scenario.h) first.
std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, RuntimeConfig config);

// ---------------------------------------------------------------------------
// AlgorithmDriver

// What an algorithm contributes to a trial, runtime-agnostic. One driver
// instance serves exactly one trial (drivers hold per-trial observer state).
class AlgorithmDriver {
 public:
  virtual ~AlgorithmDriver() = default;

  // Adjusts the environment before the runtime is constructed (enable
  // ticks, derive wiring from config.topology, …).
  virtual void configure(RuntimeConfig& config) { (void)config; }
  // Builds the node for topology slot `index`.
  virtual NodePtr make_node(std::size_t index) = 0;
  // Completion predicate; see Runtime::run_until_done for the thread-side
  // thread-safety requirements.
  virtual bool done(const Runtime& rt) = 0;
  // Called once, right when done() first held — snapshot completion-moment
  // measurements (time, message count) here.
  virtual void on_complete(Runtime& rt) { (void)rt; }
  // Post-completion settle/drain phase, before stop().
  virtual void settle(Runtime& rt, bool completed) {
    (void)rt;
    (void)completed;
  }
  // Harvests the outcome after stop() — node state is frozen here.
  virtual TrialOutcome extract(Runtime& rt, bool completed) = 0;
};

// Runs one trial of `driver` on a fresh runtime of `kind`:
//   configure → build_nodes → start → run_until_done(deadline) →
//   on_complete (if completed) → settle → stop → extract.
TrialOutcome run_algorithm_trial(RuntimeKind kind, RuntimeConfig config,
                                 AlgorithmDriver& driver);

}  // namespace abe
