#include "runtime/mailbox.h"

#include <algorithm>

namespace abe {

void Mailbox::push(MailItem item) {
  {
    MutexLock lock(mutex_);
    item.sequence = next_sequence_++;
    queue_.push(std::move(item));
    high_water_ = std::max(high_water_, queue_.size());
  }
  cv_.notify_one();
}

bool Mailbox::pop(MailItem& out) {
  MutexLock lock(mutex_);
  for (;;) {
    // Drop cancelled timers eagerly while they are at the front.
    while (!queue_.empty() && queue_.top().kind == MailItem::Kind::kTimer &&
           std::find(cancelled_timers_.begin(), cancelled_timers_.end(),
                     queue_.top().timer_id) != cancelled_timers_.end()) {
      cancelled_timers_.erase(
          std::find(cancelled_timers_.begin(), cancelled_timers_.end(),
                    queue_.top().timer_id));
      queue_.pop();
    }
    if (queue_.empty()) {
      if (closed_) return false;
      cv_.wait(mutex_);
      continue;
    }
    const auto now = MailItem::Clock::now();
    if (queue_.top().due <= now) {
      out = queue_.top();
      queue_.pop();
      return out.kind != MailItem::Kind::kStop;
    }
    // Copy the deadline out of the queue before waiting: wait_until takes
    // it by const reference and releases mutex_ for the duration of the
    // wait, so a reference into the priority_queue's vector would dangle
    // the moment a concurrent push() reallocates it (TSan-caught
    // use-after-free).
    const auto deadline = queue_.top().due;
    cv_.wait_until(mutex_, deadline);
  }
}

void Mailbox::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
    MailItem stop;
    stop.kind = MailItem::Kind::kStop;
    stop.due = MailItem::Clock::now();
    stop.sequence = next_sequence_++;
    queue_.push(std::move(stop));
  }
  cv_.notify_all();
}

void Mailbox::cancel_timer(std::int64_t timer_id) {
  MutexLock lock(mutex_);
  cancelled_timers_.push_back(timer_id);
}

std::size_t Mailbox::approximate_size() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t Mailbox::high_water() const {
  MutexLock lock(mutex_);
  return high_water_;
}

}  // namespace abe
