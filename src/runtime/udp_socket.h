// Loopback UDP socket wrapper — the ONE place in the tree that touches the
// raw socket API (socket(2)/bind/sendto/recvfrom). The `raw-socket` lint
// rule (tools/lint/abe_lint.py) rejects those calls anywhere else, so every
// datagram the udp runtime moves goes through this class.
//
// Scope is deliberately narrow: IPv4 loopback only, ephemeral ports,
// datagrams up to a small fixed header size (runtime/udp_runtime.cpp keeps
// payload objects in-process and ships headers only). receive() polls with
// a short kernel timeout (SO_RCVTIMEO) instead of blocking forever, so a
// reader thread can observe a stop flag without needing self-addressed
// wakeup datagrams — shutdown is then loss-proof by construction.
//
// Thread-safety: send_to() and receive() are safe to call concurrently
// from different threads (POSIX datagram sockets serialise per call); the
// port is fixed at construction. No mutable shared state lives here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace abe {

class UdpSocket {
 public:
  // Milliseconds receive() blocks before returning 0 (poll interval for
  // stop-flag checks). Small enough that runtime shutdown is prompt, large
  // enough that an idle reader costs ~50 wakeups/s.
  static constexpr int kPollIntervalMs = 20;

  // Opens an IPv4 datagram socket and binds it to 127.0.0.1 with an
  // ephemeral port. Aborts on resource exhaustion (fd or port budget) —
  // gate node counts with kMaxUdpRuntimeNodes (runtime/runtime.h) first.
  UdpSocket();
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // The bound loopback port (host byte order).
  std::uint16_t port() const { return port_; }

  // Sends one datagram to 127.0.0.1:port. Returns false when the kernel
  // rejected the send (e.g. the destination socket already closed during
  // shutdown) — callers treat that as transit loss, never as fatal.
  bool send_to(std::uint16_t port, const void* data, std::size_t size) const;

  // Receives one datagram: returns its size, 0 when the poll interval
  // elapsed with nothing pending (check your stop flag and call again), or
  // -1 on an unrecoverable socket error. Datagrams larger than `capacity`
  // are truncated by the kernel; callers size buffers to the wire header.
  int receive(void* buffer, std::size_t capacity) const;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace abe
