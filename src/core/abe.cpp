#include "core/abe.h"

#include <sstream>

#include "net/network.h"
#include "util/check.h"

namespace abe {

void AbeParams::validate() const {
  ABE_CHECK_GT(delta, 0.0);
  ABE_CHECK_GE(gamma, 0.0);
  clocks.validate();
}

std::string AbeParams::to_string() const {
  std::ostringstream os;
  os << "AbeParams{delta=" << delta << ", s_low=" << clocks.s_low
     << ", s_high=" << clocks.s_high << ", gamma=" << gamma << "}";
  return os.str();
}

AbeParams abe_params_of(const Network& net) {
  AbeParams params;
  params.delta = net.expected_delay_bound();
  params.clocks = net.config().clock_bounds;
  params.gamma = net.config().processing.mean;
  params.validate();
  return params;
}

bool is_abd(const Network& net) {
  // Every channel must have a sure worst-case delay. The config-wide model
  // is authoritative unless overridden; expected_delay_bound() covers the
  // mean, so inspect the default model here.
  return net.config().delay && net.config().delay->bounded();
}

}  // namespace abe
