// Election with leader announcement — process termination for every node.
//
// The paper's algorithm ends with one node in the leader state, but passive
// nodes cannot know the election is over (they would forward tokens
// forever). This extension adds the standard completion wave: the fresh
// leader circulates an ⟨announce, hop⟩ token; every passive node records
// "done" (learning its distance to the leader as a by-product) and forwards
// it; the token returns to the leader after exactly n further messages.
// Total cost stays linear: election + n.
//
// This is the natural "make it a usable primitive" extension of the paper's
// Section 3 (it also yields a ring orientation/indexing: each node ends up
// knowing its clockwise distance from the leader — a free by-product that
// downstream protocols typically want).
#pragma once

#include <cstdint>
#include <string>

#include "core/election.h"
#include "net/node.h"
#include "stats/summary.h"

namespace abe {

// ⟨announce, hop⟩: hop counts channels traversed since the leader.
class AnnouncePayload final : public Payload {
 public:
  explicit AnnouncePayload(std::uint64_t hop) : hop_(hop) {}
  std::uint64_t hop() const { return hop_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<AnnouncePayload>(hop_);
  }
  std::string describe() const override {
    return "Announce(" + std::to_string(hop_) + ")";
  }

 private:
  std::uint64_t hop_;
};

// Wraps the paper's ElectionNode and layers the announcement protocol on
// top: same Node interface, same anonymity (distance, not identity, is
// learned).
class AnnouncingElectionNode final : public Node {
 public:
  explicit AnnouncingElectionNode(ElectionOptions options);

  void on_start(Context& ctx) override;
  void on_tick(Context& ctx, std::uint64_t tick) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;
  // Terminated once this node *knows* the election finished.
  bool is_terminated() const override { return done_; }

  bool done() const { return done_; }
  bool is_leader() const { return inner_.state() == ElectionState::kLeader; }
  // Clockwise distance from the leader (0 for the leader itself);
  // meaningful once done().
  std::uint64_t distance_from_leader() const { return distance_; }
  const ElectionNode& inner() const { return inner_; }

 private:
  ElectionNode inner_;
  bool announced_ = false;  // leader: announcement sent
  bool done_ = false;
  std::uint64_t distance_ = 0;
};

struct AnnouncedElectionResult {
  bool all_done = false;
  std::size_t leader_index = 0;
  SimTime completion_time = 0.0;  // until *every* node knows
  std::uint64_t messages = 0;     // election + announcement wave
  bool distances_consistent = false;  // 0..n-1, each exactly once
};

// Runs the announcing election on a unidirectional ABE ring.
AnnouncedElectionResult run_announced_election(std::size_t n, double a0,
                                               std::uint64_t seed,
                                               const std::string& delay_name
                                               = "exponential",
                                               SimTime deadline = 1e7);

}  // namespace abe
