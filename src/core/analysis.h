// Closed-form quantities from the paper, used by tests and benches as the
// "paper says" side of every comparison.
#pragma once

#include <cstddef>
#include <cstdint>

namespace abe {

// Section 1, case (iii): expected number of transmissions over a channel
// with per-attempt success probability p:
//   k_avg = Σ_{k>=0} (k+1)·(1−p)^k·p = 1/p.
double expected_transmissions(double p);

// Probability that a message needs more than k retransmissions: (1−p)^k.
// Shows the delay is unbounded for every p < 1.
double retransmission_tail(double p, std::uint64_t k);

// Section 3: activation probability of an idle node with gap counter d,
// base parameter A0:  1 − (1−A0)^d.
double activation_probability(double a0, std::uint64_t d);

// The design invariant behind the adaptive probability: for idle nodes whose
// gap counters d_1…d_m sum to n (they partition the ring into knocked-out
// stretches), the probability that at least one node activates in a tick is
// exactly 1 − (1−A0)^n, independent of the partition. This function computes
// that combined probability for an arbitrary list of gaps.
double combined_activation_probability(double a0, const std::uint64_t* gaps,
                                       std::size_t count);

// Expected number of ticks until at least one of the nodes (with combined
// activation probability q) activates: 1/q.
double expected_ticks_to_activation(double q);

// Expected delay of a channel whose per-slot success probability is p and
// slot time is `slot`: slot/p (the paper's average message delay for the
// retransmission case).
double expected_retransmission_delay(double p, double slot);

}  // namespace abe
