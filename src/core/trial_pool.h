// Seed-chunked trial pool: the reproducible-parallelism engine behind every
// Monte-Carlo harness in the repo (ring election, scenario sweeps).
//
// Trials are identified by their seed. They are grouped into fixed-size
// chunks of consecutive seeds, chunks are distributed over a thread pool,
// and the per-chunk aggregates are merged in seed order — so the final
// aggregate is BIT-identical for every thread count (including 1). The
// chunk size is a constant, never derived from the thread count, because it
// determines the floating-point merge tree.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace abe {

// Aggregation chunk size shared by all trial harnesses.
inline constexpr std::uint64_t kTrialChunk = 8;

// Resolves a `threads` argument: nonzero values are taken as-is; 0 consults
// the ABE_TRIAL_THREADS environment variable (a count, or "all" for every
// hardware thread) and defaults to 1 — parallelism is an explicit opt-in so
// ctest -j and bench sweeps don't oversubscribe the host.
unsigned resolve_trial_threads(unsigned threads);

// Runs trials with seeds seed_base … seed_base+trials−1 and returns the
// merged aggregate. `run_chunk(seed_lo, seed_hi, out)` must run the trials
// with seeds [seed_lo, seed_hi) sequentially into `out`; Aggregate needs a
// default constructor and `void merge(const Aggregate&)`. Chunks may run on
// pool workers concurrently, so run_chunk must not share mutable state
// across calls.
template <typename Aggregate, typename RunChunk>
Aggregate run_seed_chunked_trials(std::uint64_t trials,
                                  std::uint64_t seed_base, unsigned threads,
                                  RunChunk&& run_chunk) {
  ABE_CHECK_GT(trials, 0u);
  // Overflow-proof ceiling division: trials near 2^64 (e.g. a negative
  // count cast by a caller) must not wrap to zero chunks and silently
  // return an empty aggregate.
  const std::uint64_t chunks =
      trials / kTrialChunk + (trials % kTrialChunk != 0 ? 1 : 0);
  const auto run_one = [&](std::uint64_t c, Aggregate& out) {
    const std::uint64_t lo = seed_base + c * kTrialChunk;
    const std::uint64_t hi =
        seed_base + std::min(trials, (c + 1) * kTrialChunk);
    run_chunk(lo, hi, out);
  };

  const unsigned workers = static_cast<unsigned>(
      std::min<std::uint64_t>(resolve_trial_threads(threads), chunks));
  if (workers <= 1) {
    // Chunks complete in order, so each one can merge into the result as
    // soon as it finishes — the exact merge sequence the parallel path
    // performs below, in O(1) memory instead of O(chunks).
    Aggregate agg;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      Aggregate chunk;
      run_one(c, chunk);
      agg.merge(chunk);
    }
    return agg;
  }

  std::vector<Aggregate> partial(chunks);
  {
    // Workers share nothing but the read-only closure state; each trial's
    // randomness derives from its seed alone. This is why the pool carries
    // no AnnotatedMutex (util/thread_annotations.h): the only shared
    // mutable word is the `next` chunk counter (atomic), every partial[c]
    // is written by exactly the worker that claimed chunk c, and join()
    // publishes all of them to the merge loop below. Any future shared
    // mutable state here must be an atomic or a GUARDED_BY-annotated field
    // behind an AnnotatedMutex — the TSan CI job runs this pool's suites.
    std::atomic<std::uint64_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::uint64_t c = next.fetch_add(1); c < chunks;
             c = next.fetch_add(1)) {
          run_one(c, partial[c]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // Merge in seed (chunk) order: the only source of nondeterminism in the
  // parallel run is which worker ran a chunk, and that cannot reach the
  // result through an order-fixed merge.
  Aggregate agg;
  for (const auto& p : partial) agg.merge(p);
  return agg;
}

}  // namespace abe
