// Online invariant checking for the ring election.
//
// The correctness argument of the paper's algorithm rests on a handful of
// global invariants. This observer tracks them *during* a run (not just in
// the terminal configuration), so property tests catch transient
// violations that a post-mortem check would miss:
//
//   I1  at most one node is ever in the leader state (safety);
//   I2  passive is absorbing: no node ever leaves it;
//   I3  the number of live tokens equals the number of active nodes
//       (activation mints a token, every purge retires one, forwarding
//       preserves) — the lemma behind "hop = n only reaches its originator";
//   I4  the passive count never decreases and is n−1 when a leader exists.
//
// The checker is wired in as an ElectionObserver plus simple counters the
// harness feeds from network metrics; `ok()`/`violations()` report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/election.h"

namespace abe {

class ElectionInvariantChecker final : public ElectionObserver {
 public:
  explicit ElectionInvariantChecker(std::size_t n);

  // ElectionObserver: every node state transition, in event order.
  void on_state_change(NodeId node, ElectionState from, ElectionState to,
                       SimTime when) override;

  // Feed from the network after the run: messages sent/purged bookkeeping.
  // tokens_minted = Σ activations, tokens_retired = Σ purges.
  void check_token_conservation(std::uint64_t tokens_minted,
                                std::uint64_t tokens_retired,
                                std::uint64_t in_flight);

  // --- results ----------------------------------------------------------
  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::string report() const;

  std::size_t leaders_now() const { return leaders_; }
  std::size_t passives_now() const { return passives_; }
  std::size_t actives_now() const { return actives_; }
  std::uint64_t transitions_seen() const { return transitions_; }

 private:
  void violate(const std::string& what, SimTime when);

  std::size_t n_;
  std::vector<ElectionState> state_;
  std::size_t leaders_ = 0;
  std::size_t passives_ = 0;
  std::size_t actives_ = 0;
  std::uint64_t transitions_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace abe
