#include "core/announce.h"

#include <sstream>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "util/check.h"

namespace abe {

AnnouncingElectionNode::AnnouncingElectionNode(ElectionOptions options)
    : inner_(options) {}

void AnnouncingElectionNode::on_start(Context& ctx) { inner_.on_start(ctx); }

void AnnouncingElectionNode::on_tick(Context& ctx, std::uint64_t tick) {
  if (done_) return;
  inner_.on_tick(ctx, tick);
  // A 1-ring's node elects itself on a tick with no message traffic.
  if (inner_.state() == ElectionState::kLeader && ctx.network_size() == 1) {
    announced_ = true;
    done_ = true;
  }
}

void AnnouncingElectionNode::on_message(Context& ctx,
                                        std::size_t in_index,
                                        const Payload& payload) {
  if (const auto* announce = payload_cast<AnnouncePayload>(payload)) {
    const std::uint64_t n = ctx.network_size();
    ABE_CHECK_LE(announce->hop(), n);
    if (inner_.state() == ElectionState::kLeader) {
      // Wave completed the circle; everyone knows now.
      ABE_CHECK_EQ(announce->hop(), n) << "announce returned early";
      done_ = true;
      return;
    }
    ABE_CHECK(inner_.state() == ElectionState::kPassive)
        << "announce met a non-passive non-leader ("
        << inner_.state_string() << ")";
    done_ = true;
    distance_ = announce->hop();
    ctx.send(0, std::make_unique<AnnouncePayload>(announce->hop() + 1));
    return;
  }

  inner_.on_message(ctx, in_index, payload);
  if (inner_.state() == ElectionState::kLeader && !announced_) {
    announced_ = true;
    distance_ = 0;
    if (ctx.network_size() > 1) {
      ctx.send(0, std::make_unique<AnnouncePayload>(1));
    } else {
      done_ = true;
    }
  }
}

std::string AnnouncingElectionNode::state_string() const {
  std::ostringstream os;
  os << inner_.state_string();
  if (done_) os << " done(d=" << distance_ << ")";
  return os.str();
}

AnnouncedElectionResult run_announced_election(std::size_t n, double a0,
                                               std::uint64_t seed,
                                               const std::string& delay_name,
                                               SimTime deadline) {
  ABE_CHECK_GE(n, 1u);
  NetworkConfig config;
  config.topology = unidirectional_ring(n);
  config.delay = make_delay_model(delay_name, 1.0);
  config.enable_ticks = true;
  config.seed = seed;

  Network net(std::move(config));
  ElectionOptions options;
  options.a0 = a0;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<AnnouncingElectionNode>(options);
  });
  net.start();

  auto all_done = [&] {
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (!static_cast<const AnnouncingElectionNode&>(net.node(i)).done()) {
        return false;
      }
    }
    return true;
  };
  AnnouncedElectionResult result;
  result.all_done = net.run_until(all_done, deadline);
  if (!result.all_done) return result;

  result.completion_time = net.now();
  result.messages = net.metrics().messages_sent;

  // Distances must be a permutation of 0..n-1 consistent with the ring.
  std::vector<char> seen(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node =
        static_cast<const AnnouncingElectionNode&>(net.node(i));
    if (node.is_leader()) result.leader_index = i;
    const std::uint64_t d = node.distance_from_leader();
    if (d < n && !seen[d]) {
      seen[d] = 1;
    } else {
      return result;  // distances_consistent stays false
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node =
        static_cast<const AnnouncingElectionNode&>(net.node(i));
    const std::size_t expected =
        (i + n - result.leader_index) % n;
    if (node.distance_from_leader() != expected) return result;
  }
  result.distances_consistent = true;
  return result;
}

}  // namespace abe
