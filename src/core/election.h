// Leader election for anonymous, unidirectional ABE rings (paper Section 3).
//
// Every node runs the same code, has no identity, and knows only the ring
// size n and the base activation parameter A0 ∈ (0,1). States:
//
//   idle    — at every local clock tick, activates with probability
//             1 − (1−A0)^d and sends ⟨1⟩;
//   passive — knocked out; forwards every message as ⟨d+1⟩ (absorbing);
//   active  — waiting for its message to come home; a received message with
//             hop = n makes it leader, any other message knocks it back to
//             idle (the message is purged in both cases);
//   leader  — terminal.
//
// d(A) tracks the highest hop count ever received: it certifies that d(A)−1
// predecessors are passive, and boosting the activation probability by
// exactly that factor keeps the *combined* wake-up probability of all idle
// nodes at 1 − (1−A0)^n regardless of how many have been knocked out — the
// invariant behind the linear time and message complexity (see
// core/analysis.h and bench E9 for the ablation).
#pragma once

#include <cstdint>
#include <string>

#include "core/election_variants.h"
#include "net/node.h"

namespace abe {

enum class ElectionState : std::uint8_t {
  kIdle,
  kActive,
  kPassive,
  kLeader,
};

const char* election_state_name(ElectionState s);

// The ring message ⟨hop⟩, hop ∈ {1, …, n}.
class HopPayload final : public Payload {
 public:
  explicit HopPayload(std::uint64_t hop) : hop_(hop) {}
  std::uint64_t hop() const { return hop_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<HopPayload>(hop_);
  }
  std::string describe() const override {
    return "Hop(" + std::to_string(hop_) + ")";
  }

 private:
  std::uint64_t hop_;
};

// Receives every node state transition; used by the harness to detect the
// leader in O(1) and by tests to assert "never two leaders" online.
class ElectionObserver {
 public:
  virtual ~ElectionObserver() = default;
  virtual void on_state_change(NodeId node, ElectionState from,
                               ElectionState to, SimTime when) = 0;
};

// The base activation parameter that realises the paper's linear-complexity
// regime on a ring of size n.
//
// The paper's design invariant is that the *combined* wake-up probability of
// all idle nodes "stays constant over time"; for the election to be linear
// it must also be calibrated so that roughly one activation happens per
// token circulation time (n·δ, which is n ticks when δ equals the tick
// period). Per tick the combined probability is 1 − (1−A0)^n ≈ n·A0, so the
// calibration is
//     n·A0 · (n ticks) ≈ c   ⇒   A0 = c/n².
// With a hotter A0 (constant, or even c/n) surviving candidates reactivate
// during each other's token flights and knock each other out over and over:
// measured complexity degrades towards Θ(n²) (bench E4 charts the sweep).
// `c` trades waiting time against collision messages; c ≈ 1 is a good
// default (≈1.5n messages, ≈3n time, see EXPERIMENTS.md).
double linear_regime_a0(std::size_t n, double c = 1.0);

struct ElectionOptions {
  double a0 = 0.3;  // base activation parameter, in (0,1)
  // Activation policy; kAdaptive is the paper's algorithm, the others exist
  // for the E9 ablation.
  ActivationPolicy policy = ActivationPolicy::kAdaptive;
  // Optional, non-owning; must outlive the nodes.
  ElectionObserver* observer = nullptr;
  // Honest rings keep the token-conservation invariants (hop <= n, d < n at
  // non-active receivers) as hard ABE_CHECKs — a violation there is a bug.
  // Under Byzantine profiles (adversary/behavior.h: equivocation injects
  // duplicate tokens that drive d past n at passive nodes) the invariants
  // can be violated by DESIGN; setting this drops the offending message
  // (counted in overflow_drops()) instead of aborting the process, so
  // safety probing can observe what the protocol does under attack.
  bool tolerate_protocol_violation = false;
};

class ElectionNode final : public Node {
 public:
  explicit ElectionNode(ElectionOptions options);

  void on_start(Context& ctx) override;
  void on_tick(Context& ctx, std::uint64_t tick) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override {
    return election_state_name(state_);
  }
  bool is_terminated() const override {
    return state_ == ElectionState::kLeader;
  }

  // --- observable state (tests & metrics) --------------------------------
  ElectionState state() const { return state_; }
  std::uint64_t d() const { return d_; }
  // How many times this node entered the active state.
  std::uint64_t activations() const { return activations_; }
  // Messages this node purged while active (competitor knockouts).
  std::uint64_t purges() const { return purges_; }
  // Messages forwarded while idle or passive.
  std::uint64_t forwards() const { return forwards_; }
  // Protocol-violating messages dropped under tolerate_protocol_violation.
  std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  void set_state(Context& ctx, ElectionState next);

  ElectionOptions options_;
  ElectionState state_ = ElectionState::kIdle;
  std::uint64_t d_ = 1;
  std::uint64_t activations_ = 0;
  std::uint64_t purges_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace abe
