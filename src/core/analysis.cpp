#include "core/analysis.h"

#include <cmath>

#include "util/check.h"

namespace abe {

double expected_transmissions(double p) {
  ABE_CHECK_GT(p, 0.0);
  ABE_CHECK_LE(p, 1.0);
  return 1.0 / p;
}

double retransmission_tail(double p, std::uint64_t k) {
  ABE_CHECK_GT(p, 0.0);
  ABE_CHECK_LE(p, 1.0);
  return std::pow(1.0 - p, static_cast<double>(k));
}

double activation_probability(double a0, std::uint64_t d) {
  ABE_CHECK_GT(a0, 0.0);
  ABE_CHECK_LT(a0, 1.0);
  ABE_CHECK_GE(d, 1u);
  return 1.0 - std::pow(1.0 - a0, static_cast<double>(d));
}

double combined_activation_probability(double a0, const std::uint64_t* gaps,
                                       std::size_t count) {
  ABE_CHECK_GT(a0, 0.0);
  ABE_CHECK_LT(a0, 1.0);
  double none = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    // P(node i stays idle) = (1−A0)^{d_i}; independence multiplies.
    none *= std::pow(1.0 - a0, static_cast<double>(gaps[i]));
  }
  return 1.0 - none;
}

double expected_ticks_to_activation(double q) {
  ABE_CHECK_GT(q, 0.0);
  ABE_CHECK_LE(q, 1.0);
  return 1.0 / q;
}

double expected_retransmission_delay(double p, double slot) {
  ABE_CHECK_GT(slot, 0.0);
  return expected_transmissions(p) * slot;
}

}  // namespace abe
