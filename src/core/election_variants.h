// Activation policies: the paper's adaptive rule plus ablation variants.
//
// The paper's key design point is the *adaptive* activation probability
// 1 − (1−A0)^d. The variants below keep everything else identical so bench
// E9 can isolate the effect of that single choice:
//   kConstant — always A0, ignoring d. The combined wake-up probability of
//               the surviving idle nodes *decays* as nodes are knocked out,
//               so late phases stall and total time degrades.
//   kLinear   — min(1, A0·d), a naive compensation that overshoots: it
//               raises collision rates early (more concurrent candidates,
//               more purged messages).
#pragma once

#include <cstdint>
#include <string>

namespace abe {

enum class ActivationPolicy : std::uint8_t {
  kAdaptive,  // 1 − (1−A0)^d   (the paper's rule)
  kConstant,  // A0
  kLinear,    // min(1, A0·d)
};

const char* activation_policy_name(ActivationPolicy p);

// Parses "adaptive" | "constant" | "linear"; aborts on unknown names.
ActivationPolicy activation_policy_from_name(const std::string& name);

// Activation probability of an idle node with gap counter d under `policy`.
double activation_probability_for(ActivationPolicy policy, double a0,
                                  std::uint64_t d);

}  // namespace abe
