#include "core/election.h"

#include <algorithm>

#include "util/check.h"

namespace abe {

const char* election_state_name(ElectionState s) {
  switch (s) {
    case ElectionState::kIdle:
      return "idle";
    case ElectionState::kActive:
      return "active";
    case ElectionState::kPassive:
      return "passive";
    case ElectionState::kLeader:
      return "leader";
  }
  return "?";
}

double linear_regime_a0(std::size_t n, double c) {
  ABE_CHECK_GE(n, 1u);
  ABE_CHECK_GT(c, 0.0);
  const double a0 = c / (static_cast<double>(n) * static_cast<double>(n));
  // Clamp into the open interval (0,1); tiny rings want a sane ceiling.
  return std::min(a0, 0.5);
}

ElectionNode::ElectionNode(ElectionOptions options) : options_(options) {
  ABE_CHECK_GT(options_.a0, 0.0);
  ABE_CHECK_LT(options_.a0, 1.0);
}

void ElectionNode::on_start(Context& ctx) {
  // Unidirectional ring: exactly one outgoing and one incoming channel
  // (degenerate n = 1 rings have none).
  if (ctx.network_size() > 1) {
    ABE_CHECK_EQ(ctx.out_degree(), 1u);
    ABE_CHECK_EQ(ctx.in_degree(), 1u);
  }
}

void ElectionNode::set_state(Context& ctx, ElectionState next) {
  if (state_ == next) return;
  ctx.log(std::string(election_state_name(state_)) + "->" +
          election_state_name(next));
  const ElectionState prev = state_;
  state_ = next;
  if (options_.observer != nullptr) {
    options_.observer->on_state_change(ctx.self(), prev, next,
                                       ctx.real_now());
  }
}

void ElectionNode::on_tick(Context& ctx, std::uint64_t /*tick*/) {
  if (state_ != ElectionState::kIdle) return;
  const double p =
      activation_probability_for(options_.policy, options_.a0, d_);
  if (!ctx.rng().bernoulli(p)) return;

  ++activations_;
  // Degenerate ring of one node: our own message would traverse zero
  // channels and come straight home with hop = n = 1; elect immediately.
  if (ctx.network_size() == 1) {
    set_state(ctx, ElectionState::kLeader);
    return;
  }
  set_state(ctx, ElectionState::kActive);
  ctx.send(0, std::make_unique<HopPayload>(1));
}

void ElectionNode::on_message(Context& ctx, std::size_t /*in_index*/,
                              const Payload& payload) {
  const auto& msg = payload_as<HopPayload>(payload);
  const std::uint64_t n = ctx.network_size();
  ABE_CHECK_GE(msg.hop(), 1u);
  if (msg.hop() > n && options_.tolerate_protocol_violation) {
    // An equivocated token over-counted the passive stretch; a correct
    // node discards what the honest protocol could never have sent.
    ++overflow_drops_;
    return;
  }
  ABE_CHECK_LE(msg.hop(), n) << "hop counter exceeded ring size";

  // Every receipt first folds the hop count into d(A).
  d_ = std::max(d_, msg.hop());

  switch (state_) {
    case ElectionState::kIdle:
    case ElectionState::kPassive:
      // (i)/(ii) idle nodes are knocked out and turn passive; passive nodes
      // forward. Either way the message moves on as ⟨d+1⟩, advertising the
      // knocked-out stretch behind this node. d < n here: a hop of n can
      // only reach an active node (the count of live messages always equals
      // the count of active nodes, so a non-active receiver implies another
      // active node exists, i.e. at most n−2 passives) — except under
      // equivocation, where a duplicated token can legitimately drive d to
      // n at a passive node; tolerance drops it (the knockout stands).
      if (d_ >= n && options_.tolerate_protocol_violation) {
        ++overflow_drops_;
        set_state(ctx, ElectionState::kPassive);
        break;
      }
      ABE_CHECK_LT(d_, n) << "forwarding would exceed ring size";
      set_state(ctx, ElectionState::kPassive);
      ++forwards_;
      ctx.send(0, std::make_unique<HopPayload>(d_ + 1));
      break;
    case ElectionState::kActive:
      // (iii) purge; hop = n certifies all n−1 others are passive.
      ++purges_;
      if (msg.hop() == n) {
        set_state(ctx, ElectionState::kLeader);
      } else {
        set_state(ctx, ElectionState::kIdle);
      }
      break;
    case ElectionState::kLeader:
      // Stale messages still circulating die here, like at any active node.
      ++purges_;
      break;
  }
}

}  // namespace abe
