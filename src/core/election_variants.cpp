#include "core/election_variants.h"

#include <algorithm>

#include "core/analysis.h"
#include "util/check.h"

namespace abe {

const char* activation_policy_name(ActivationPolicy p) {
  switch (p) {
    case ActivationPolicy::kAdaptive:
      return "adaptive";
    case ActivationPolicy::kConstant:
      return "constant";
    case ActivationPolicy::kLinear:
      return "linear";
  }
  return "?";
}

ActivationPolicy activation_policy_from_name(const std::string& name) {
  if (name == "adaptive") return ActivationPolicy::kAdaptive;
  if (name == "constant") return ActivationPolicy::kConstant;
  if (name == "linear") return ActivationPolicy::kLinear;
  ABE_CHECK(false) << "unknown activation policy '" << name << "'";
  return ActivationPolicy::kAdaptive;
}

double activation_probability_for(ActivationPolicy policy, double a0,
                                  std::uint64_t d) {
  ABE_CHECK_GT(a0, 0.0);
  ABE_CHECK_LT(a0, 1.0);
  ABE_CHECK_GE(d, 1u);
  switch (policy) {
    case ActivationPolicy::kAdaptive:
      return activation_probability(a0, d);
    case ActivationPolicy::kConstant:
      return a0;
    case ActivationPolicy::kLinear:
      return std::min(1.0, a0 * static_cast<double>(d));
  }
  return a0;
}

}  // namespace abe
