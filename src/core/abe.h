// The ABE network model (Definition 1 of the paper).
//
// An ABE network is an asynchronous network together with three *known*
// bounds:
//   δ      — bound on the expected message delay,
//   s_low, s_high — bounds on local clock speed,
//   γ      — bound on the expected local event-processing time.
// Nothing about worst cases is assumed: every asynchronous execution is an
// ABE execution, but executions with very long delays are improbable.
//
// AbeParams packages those knowns; abe_params_of(Network) derives them from
// a configured network (what a deployment would measure/specify), and
// is_abd(Network) detects the stricter classic ABD case.
#pragma once

#include <string>

#include "clock/local_clock.h"

namespace abe {

class Network;

// The knowledge an ABE algorithm is allowed to use.
struct AbeParams {
  double delta = 1.0;   // bound on expected message delay
  ClockBounds clocks{};  // s_low, s_high
  double gamma = 0.0;   // bound on expected processing time

  // Aborts unless δ > 0, γ >= 0 and the clock bounds are sane.
  void validate() const;

  std::string to_string() const;
};

// Extracts the ABE parameters a deployment of `net` would advertise: δ is
// the max per-channel mean delay, the clock bounds come from the config, γ
// from the processing model.
AbeParams abe_params_of(const Network& net);

// True when the network additionally satisfies the ABD model: all channel
// delay models are bounded (a worst-case delay exists surely).
bool is_abd(const Network& net);

}  // namespace abe
