// Experiment harness for the ring election.
//
// One place that builds the unidirectional ring environment per the
// experiment spec, runs the election to completion, verifies the safety
// postconditions (exactly one leader, everyone else passive, no in-flight
// messages), and returns the measurements every bench and test consumes.
//
// Since the Runtime redesign this is a thin shim: the election's execution
// logic lives in the ring AlgorithmDriver (make_ring_election_driver), which
// runs unchanged on the simulator AND the real-thread runtime via
// run_algorithm_trial (runtime/runtime.h). run_election pins the simulator
// so every seeded result stays bit-identical to the pre-Runtime harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/election.h"
#include "net/network.h"
#include "runtime/runtime.h"
#include "stats/summary.h"

namespace abe {

struct ElectionExperiment {
  std::size_t n = 8;
  ElectionOptions election{};
  // Delay model by factory name (net/delay.h) with the given mean, or an
  // explicit model in `delay` which then takes precedence.
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  DelayModelPtr delay;
  ChannelOrdering ordering = ChannelOrdering::kArbitrary;
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  // Per-attempt silent message drop (failure injection; scenario engine).
  // The ABE model itself requires reliable delivery, so the default is 0;
  // lossy runs report robustness, not the paper's regime.
  double loss_probability = 0.0;
  // Set by the scenario engine when behavior profiles or an adversarial
  // delay policy are injected (src/adversary/). Relaxes the HONEST-RING
  // environment postconditions (exactly n-1 passives, zero in-flight at
  // quiescence — crashed nodes are never knocked out, equivocated tokens
  // may still circulate) while keeping the actual safety property probed
  // under attack: exactly one leader, and never two leaders ever.
  bool adversarial = false;
  std::uint64_t seed = 1;
  // Event-queue backend (pure perf knob; results are bit-identical).
  EqueueBackend equeue = EqueueBackend::kAuto;
  // Give up (and report failure) past this simulated time.
  SimTime deadline = 1e7;
  // Extra simulated time after the election used to confirm stability
  // (no second leader can appear; the network stays quiet).
  SimTime settle_time = 0.0;
  // Enable trace recording (tests only; slows large runs).
  bool trace = false;
};

struct ElectionRunResult {
  bool elected = false;
  // Refinement of !elected: the run went quiescent with no leader AND no
  // way to make progress (no message in flight, no idle node left to
  // activate) — the ring's rare all-passive deadlock under loss — rather
  // than still working when the deadline hit.
  bool stalled = false;
  std::size_t leader_index = 0;
  SimTime election_time = 0.0;     // real time at which the leader appeared
  std::uint64_t messages = 0;      // messages sent up to the election moment
  std::uint64_t messages_total = 0;  // including the settle window
  std::uint64_t ticks = 0;         // clock ticks fired up to the election
  std::uint64_t activations = 0;   // activations summed over nodes
  std::uint64_t purges = 0;        // knockout purges summed over nodes
  std::uint64_t max_leaders_ever = 0;  // safety: must never exceed 1
  bool safety_ok = false;          // postcondition bundle (see .cpp)
  std::string safety_detail;       // human-readable failure reason
};

// Runs one election. Aborts only on internal invariant violations; model
// level safety results are reported in the result for tests to assert on.
ElectionRunResult run_election(const ElectionExperiment& experiment);

// The experiment's environment as a runtime-agnostic RuntimeConfig
// (topology, delay, clocks, loss, seed, deadline; the driver enables ticks).
RuntimeConfig election_runtime_config(const ElectionExperiment& experiment);

// The ring election as an AlgorithmDriver for run_algorithm_trial: node
// factory (ElectionNode per slot, shared options + leader observer),
// done-predicate (a leader exists), settle window, and extraction of the
// full ElectionRunResult into `*sink`. One driver instance per trial.
std::unique_ptr<AlgorithmDriver> make_ring_election_driver(
    const ElectionExperiment& experiment, ElectionRunResult* sink);

struct ElectionAggregate {
  Summary messages;      // per-trial messages until election
  Summary time;          // per-trial election_time
  Summary ticks;
  Summary activations;
  Summary purges;
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;  // trials that missed the deadline
  std::uint64_t safety_violations = 0;

  // Folds another aggregate in (parallel Welford combination per Summary).
  // Merge order matters for floating-point bit-exactness; callers that need
  // reproducibility must merge in a deterministic order.
  void merge(const ElectionAggregate& other);
};

// Runs `trials` independent elections with seeds seed_base, seed_base+1, ….
//
// Per-trial seeds make trials embarrassingly parallel: with `threads` > 1
// they are distributed over a thread pool. Statistics are accumulated over
// fixed-size seed chunks and the per-chunk aggregates are merged in seed
// order, so the returned aggregate is bit-identical for EVERY thread count
// (including 1). `threads` == 0 resolves to the ABE_TRIAL_THREADS
// environment variable when set (a count, or "all" for every hardware
// thread), else to 1 — parallelism is an explicit opt-in so ctest -j and
// bench sweeps don't oversubscribe the host.
ElectionAggregate run_election_trials(ElectionExperiment experiment,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base = 1,
                                      unsigned threads = 0);

}  // namespace abe
