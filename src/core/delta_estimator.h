// Online estimation of the expected-delay bound δ.
//
// The paper argues (Section 2) for assuming a *bound* on the expected delay
// rather than the expectation itself: real link parameters wander over time
// and can only be bracketed. This module is the operational side of that
// argument — a deployment measures delays (e.g. through acked probes) and
// maintains a defensible upper bound on the current expected delay:
//
//   * a windowed EWMA tracks the drifting mean,
//   * a confidence-style margin (based on the observed dispersion) turns
//     the point estimate into an upper bound,
//   * the reported δ̂ only ever tightens slowly but widens immediately,
//     the safe direction for a bound.
//
// Tests verify the bracketing property on stationary and regime-switching
// delay streams; the sensor example uses it to pick the election's
// parameters without being told δ.
#pragma once

#include <cstdint>

namespace abe {

struct DeltaEstimatorOptions {
  // EWMA smoothing factor per sample, in (0, 1]; smaller = smoother.
  double alpha = 0.05;
  // Multiplier on the EWMA mean absolute deviation added as safety margin.
  double margin_factor = 3.0;
  // Widening is immediate; tightening is limited to this fraction per
  // sample (keeps the bound conservative through quiet spells).
  double max_tighten_rate = 0.01;
};

class DeltaEstimator {
 public:
  explicit DeltaEstimator(DeltaEstimatorOptions options = {});

  // Feed one observed delay (>= 0).
  void observe(double delay);

  // Current point estimate of the expected delay (EWMA).
  double mean_estimate() const { return mean_; }

  // Current upper bound δ̂ — what an ABE deployment would advertise.
  double upper_bound() const { return bound_; }

  // EWMA mean absolute deviation (dispersion proxy).
  double deviation_estimate() const { return deviation_; }

  std::uint64_t samples() const { return samples_; }

 private:
  DeltaEstimatorOptions options_;
  double mean_ = 0.0;
  double deviation_ = 0.0;
  double bound_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace abe
