#include "core/harness.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "core/abe.h"
#include "net/topology.h"
#include "util/check.h"

namespace abe {

namespace {

// Watches state changes via the node counters; the run loop polls this
// through the cheap leader_count below rather than scanning all nodes.
struct LeaderWatch : ElectionObserver {
  std::uint64_t leader_count = 0;
  std::uint64_t max_simultaneous = 0;
  std::size_t last_leader = 0;

  void on_state_change(NodeId node, ElectionState /*from*/, ElectionState to,
                       SimTime /*when*/) override {
    if (to == ElectionState::kLeader) {
      ++leader_count;
      max_simultaneous = std::max(max_simultaneous, leader_count);
      last_leader = static_cast<std::size_t>(node.value());
    }
  }
};

}  // namespace

ElectionRunResult run_election(const ElectionExperiment& experiment) {
  ABE_CHECK_GE(experiment.n, 1u);

  NetworkConfig config;
  config.topology = unidirectional_ring(experiment.n);
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.enable_ticks = true;
  config.seed = experiment.seed;

  Network net(std::move(config));
  if (experiment.trace) net.trace().enable();

  LeaderWatch watch;
  ElectionOptions options = experiment.election;
  options.observer = &watch;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();

  ElectionRunResult result;
  const bool elected = net.run_until(
      [&] { return watch.leader_count > 0; }, experiment.deadline);

  if (!elected) {
    result.elected = false;
    result.safety_ok = false;
    result.safety_detail = "no leader before deadline";
    return result;
  }

  result.elected = true;
  result.leader_index = watch.last_leader;
  result.election_time = net.now();
  result.messages = net.metrics().messages_sent;
  result.ticks = net.metrics().ticks_fired;

  // Let the network settle to show no second leader appears and nothing
  // keeps circulating.
  if (experiment.settle_time > 0.0) {
    net.run_until([] { return false; }, net.now() + experiment.settle_time);
  }
  result.messages_total = net.metrics().messages_sent;
  result.max_leaders_ever = watch.max_simultaneous;

  // --- safety postconditions -------------------------------------------
  std::ostringstream detail;
  bool ok = true;
  std::size_t leaders = 0;
  std::size_t passives = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const ElectionNode&>(net.node(i));
    result.activations += node.activations();
    result.purges += node.purges();
    switch (node.state()) {
      case ElectionState::kLeader:
        ++leaders;
        break;
      case ElectionState::kPassive:
        ++passives;
        break;
      default:
        break;
    }
  }
  if (leaders != 1) {
    ok = false;
    detail << "expected exactly 1 leader, found " << leaders << "; ";
  }
  if (watch.max_simultaneous > 1) {
    ok = false;
    detail << "more than one leader was ever elected; ";
  }
  if (passives != net.size() - 1) {
    ok = false;
    detail << "expected " << net.size() - 1 << " passive nodes, found "
           << passives << "; ";
  }
  if (net.metrics().in_flight() != 0) {
    ok = false;
    detail << net.metrics().in_flight() << " messages still in flight; ";
  }
  result.safety_ok = ok;
  result.safety_detail = detail.str();
  return result;
}

void ElectionAggregate::merge(const ElectionAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  ticks.merge(other.ticks);
  activations.merge(other.activations);
  purges.merge(other.purges);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

namespace {

// Aggregation chunk size. Fixed — never derived from the thread count — so
// the merge tree, and with it every floating-point bit of the result, is
// identical no matter how many workers ran the trials.
constexpr std::uint64_t kTrialChunk = 8;

unsigned resolve_trial_threads(unsigned threads) {
  if (threads != 0) return threads;
  if (const char* env = std::getenv("ABE_TRIAL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
    if (std::string_view(env) == "all") {
      const unsigned hw = std::thread::hardware_concurrency();
      return hw == 0 ? 1 : hw;
    }
  }
  // Default is serial: many callers (ctest -j, bench sweeps) already run
  // processes in parallel, and grabbing every core per call would
  // oversubscribe them. Parallelism is an explicit opt-in.
  return 1;
}

// Runs trials with seeds [seed_lo, seed_hi) sequentially into `out`.
void run_trial_chunk(const ElectionExperiment& base, std::uint64_t seed_lo,
                     std::uint64_t seed_hi, ElectionAggregate& out) {
  ElectionExperiment e = base;
  for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
    e.seed = s;
    const ElectionRunResult run = run_election(e);
    ++out.trials;
    if (!run.elected) {
      ++out.failures;
      continue;
    }
    if (!run.safety_ok) {
      ++out.safety_violations;
    }
    out.messages.add(static_cast<double>(run.messages));
    out.time.add(run.election_time);
    out.ticks.add(static_cast<double>(run.ticks));
    out.activations.add(static_cast<double>(run.activations));
    out.purges.add(static_cast<double>(run.purges));
  }
}

}  // namespace

ElectionAggregate run_election_trials(ElectionExperiment experiment,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base,
                                      unsigned threads) {
  ABE_CHECK_GT(trials, 0u);
  const std::uint64_t chunks = (trials + kTrialChunk - 1) / kTrialChunk;
  const auto run_chunk = [&](std::uint64_t c, ElectionAggregate& out) {
    const std::uint64_t lo = seed_base + c * kTrialChunk;
    const std::uint64_t hi =
        seed_base + std::min(trials, (c + 1) * kTrialChunk);
    run_trial_chunk(experiment, lo, hi, out);
  };

  const unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
      resolve_trial_threads(threads), chunks));
  if (workers <= 1) {
    // Chunks complete in order, so each one can merge into the result as
    // soon as it finishes — the exact merge sequence the parallel path
    // performs below, in O(1) memory instead of O(chunks).
    ElectionAggregate agg;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      ElectionAggregate chunk;
      run_chunk(c, chunk);
      agg.merge(chunk);
    }
    return agg;
  }

  std::vector<ElectionAggregate> partial(chunks);
  {
    // Each Network/Scheduler lives entirely inside its trial, so workers
    // share nothing but the read-only experiment spec (DelayModel::sample
    // is const and stateless — the rng lives in the network).
    std::atomic<std::uint64_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::uint64_t c = next.fetch_add(1); c < chunks;
             c = next.fetch_add(1)) {
          run_chunk(c, partial[c]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // Merge in seed (chunk) order: the only source of nondeterminism in the
  // parallel run is which worker ran a chunk, and that cannot reach the
  // result through an order-fixed merge.
  ElectionAggregate agg;
  for (const auto& p : partial) agg.merge(p);
  return agg;
}

}  // namespace abe
