#include "core/harness.h"

#include <algorithm>
#include <sstream>

#include "core/abe.h"
#include "core/trial_pool.h"
#include "net/topology.h"
#include "util/check.h"

namespace abe {

namespace {

// Watches state changes via the node counters; the run loop polls this
// through the cheap leader_count below rather than scanning all nodes.
struct LeaderWatch : ElectionObserver {
  std::uint64_t leader_count = 0;
  std::uint64_t max_simultaneous = 0;
  std::size_t last_leader = 0;

  void on_state_change(NodeId node, ElectionState /*from*/, ElectionState to,
                       SimTime /*when*/) override {
    if (to == ElectionState::kLeader) {
      ++leader_count;
      max_simultaneous = std::max(max_simultaneous, leader_count);
      last_leader = static_cast<std::size_t>(node.value());
    }
  }
};

}  // namespace

ElectionRunResult run_election(const ElectionExperiment& experiment) {
  ABE_CHECK_GE(experiment.n, 1u);

  NetworkConfig config;
  config.topology = unidirectional_ring(experiment.n);
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.enable_ticks = true;
  config.loss_probability = experiment.loss_probability;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;

  Network net(std::move(config));
  if (experiment.trace) net.trace().enable();

  LeaderWatch watch;
  ElectionOptions options = experiment.election;
  options.observer = &watch;
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ElectionNode>(options);
  });
  net.start();

  ElectionRunResult result;
  const bool elected = net.run_until(
      [&] { return watch.leader_count > 0; }, experiment.deadline);

  if (!elected) {
    result.elected = false;
    result.safety_ok = false;
    result.safety_detail = "no leader before deadline";
    return result;
  }

  result.elected = true;
  result.leader_index = watch.last_leader;
  result.election_time = net.now();
  result.messages = net.metrics().messages_sent;
  result.ticks = net.metrics().ticks_fired;

  // Let the network settle to show no second leader appears and nothing
  // keeps circulating.
  if (experiment.settle_time > 0.0) {
    net.run_until([] { return false; }, net.now() + experiment.settle_time);
  }
  result.messages_total = net.metrics().messages_sent;
  result.max_leaders_ever = watch.max_simultaneous;

  // --- safety postconditions -------------------------------------------
  std::ostringstream detail;
  bool ok = true;
  std::size_t leaders = 0;
  std::size_t passives = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const ElectionNode&>(net.node(i));
    result.activations += node.activations();
    result.purges += node.purges();
    switch (node.state()) {
      case ElectionState::kLeader:
        ++leaders;
        break;
      case ElectionState::kPassive:
        ++passives;
        break;
      default:
        break;
    }
  }
  if (leaders != 1) {
    ok = false;
    detail << "expected exactly 1 leader, found " << leaders << "; ";
  }
  if (watch.max_simultaneous > 1) {
    ok = false;
    detail << "more than one leader was ever elected; ";
  }
  if (passives != net.size() - 1) {
    ok = false;
    detail << "expected " << net.size() - 1 << " passive nodes, found "
           << passives << "; ";
  }
  // Dropped messages mean a token died in the channel — with failure
  // injection the run can still elect by luck, but quiescence is no longer
  // token conservation, so only require in-flight == 0 on lossless runs.
  if (experiment.loss_probability == 0.0 && net.metrics().in_flight() != 0) {
    ok = false;
    detail << net.metrics().in_flight() << " messages still in flight; ";
  }
  result.safety_ok = ok;
  result.safety_detail = detail.str();
  return result;
}

void ElectionAggregate::merge(const ElectionAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  ticks.merge(other.ticks);
  activations.merge(other.activations);
  purges.merge(other.purges);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

ElectionAggregate run_election_trials(ElectionExperiment experiment,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base,
                                      unsigned threads) {
  // Each Network/Scheduler lives entirely inside its trial, so chunk
  // workers share nothing but the read-only experiment spec
  // (DelayModel::sample is const and stateless — the rng lives in the
  // network).
  return run_seed_chunked_trials<ElectionAggregate>(
      trials, seed_base, threads,
      [&experiment](std::uint64_t seed_lo, std::uint64_t seed_hi,
                    ElectionAggregate& out) {
        ElectionExperiment e = experiment;
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          e.seed = s;
          const ElectionRunResult run = run_election(e);
          ++out.trials;
          if (!run.elected) {
            ++out.failures;
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.election_time);
          out.ticks.add(static_cast<double>(run.ticks));
          out.activations.add(static_cast<double>(run.activations));
          out.purges.add(static_cast<double>(run.purges));
        }
      });
}

}  // namespace abe
