#include "core/harness.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/abe.h"
#include "core/trial_pool.h"
#include "net/topology.h"
#include "util/check.h"

namespace abe {

namespace {

// Watches state changes via the node counters; the run loop polls this
// through the cheap leader_count below rather than scanning all nodes.
// Atomics because on the thread runtime on_state_change fires concurrently
// from node threads; on the simulator the values are identical to the old
// plain-integer watch. leader_count never decrements, so it doubles as
// "leaders ever elected" (the max_leaders_ever safety figure). Lock-free by
// design — a driver observer runs inside node event handlers, so a mutex
// here would serialise the runtime; any future non-atomic observer state
// must move behind an AnnotatedMutex with GUARDED_BY annotations
// (util/thread_annotations.h) to keep the TSan job and -Wthread-safety
// meaningful.
struct LeaderWatch final : ElectionObserver {
  std::atomic<std::uint64_t> leader_count{0};
  std::atomic<std::uint64_t> last_leader{0};

  void on_state_change(NodeId node, ElectionState /*from*/, ElectionState to,
                       SimTime /*when*/) override {
    if (to == ElectionState::kLeader) {
      last_leader.store(static_cast<std::uint64_t>(node.value()),
                        std::memory_order_relaxed);
      leader_count.fetch_add(1, std::memory_order_release);
    }
  }
};

class RingElectionDriver final : public AlgorithmDriver {
 public:
  RingElectionDriver(const ElectionExperiment& experiment,
                     ElectionRunResult* sink)
      : options_(experiment.election),
        settle_time_(experiment.settle_time),
        loss_probability_(experiment.loss_probability),
        adversarial_(experiment.adversarial),
        sink_(sink) {
    ABE_CHECK(sink_ != nullptr);
    options_.observer = &watch_;
  }

  void configure(RuntimeConfig& config) override {
    config.enable_ticks = true;
  }

  NodePtr make_node(std::size_t /*index*/) override {
    return std::make_unique<ElectionNode>(options_);
  }

  bool done(const Runtime& /*rt*/) override {
    return watch_.leader_count.load(std::memory_order_acquire) > 0;
  }

  void on_complete(Runtime& rt) override {
    const RunStats stats = rt.stats();
    sink_->elected = true;
    sink_->leader_index = static_cast<std::size_t>(
        watch_.last_leader.load(std::memory_order_relaxed));
    sink_->election_time = rt.now();
    sink_->messages = stats.messages_sent;
    sink_->ticks = stats.ticks_fired;
  }

  void settle(Runtime& rt, bool completed) override {
    // Extra time after the election confirms stability: no second leader
    // can appear and the network goes quiet.
    if (completed && settle_time_ > 0.0) rt.run_for(settle_time_);
  }

  TrialOutcome extract(Runtime& rt, bool completed) override {
    TrialOutcome out;
    if (!completed) {
      sink_->elected = false;
      sink_->safety_ok = false;
      sink_->safety_detail = "no leader before deadline";
      // Distinguish the all-passive deadlock (noted in PR 3, possible under
      // loss: every token died in a channel and every node was knocked out)
      // from a run that was still working at the deadline. Quiescent + no
      // idle node left means no future activation is possible — the trial
      // STALLED rather than timed out. Simulator-only: thread runs freeze
      // mid-flight, so their in_flight snapshot cannot prove quiescence.
      if (rt.kind() == RuntimeKind::kSim) {
        const RunStats stats = rt.stats();
        std::size_t can_activate = 0;
        for (std::size_t i = 0; i < rt.size(); ++i) {
          const Node& node = rt.node(i);
          const auto& inner =
              static_cast<const ElectionNode&>(node.algorithm_node());
          if (inner.state() == ElectionState::kIdle &&
              !node.is_terminated()) {
            ++can_activate;
          }
        }
        if (stats.in_flight() == 0 && can_activate == 0) {
          sink_->stalled = true;
          sink_->safety_detail =
              "stalled: quiescent with no leader and no idle node left";
          out.stalled = true;
          out.safety_detail = sink_->safety_detail;
          return out;
        }
      }
      if (rt.kind() == RuntimeKind::kThread) {
        // Wall-clock timeouts are diagnosed post mortem ("how far did it
        // get before the budget expired?"), so report the progress
        // counters; the simulator keeps the historical zeros — failed
        // trials never feed aggregates there.
        const RunStats stats = rt.stats();
        sink_->messages = stats.messages_sent;
        sink_->messages_total = stats.messages_sent;
        sink_->ticks = stats.ticks_fired;
        sink_->election_time = stats.now;
      }
      out.safety_detail = sink_->safety_detail;
      return out;
    }

    const RunStats stats = rt.stats();
    sink_->messages_total = stats.messages_sent;
    sink_->max_leaders_ever =
        watch_.leader_count.load(std::memory_order_acquire);

    // --- safety postconditions ------------------------------------------
    std::ostringstream detail;
    bool ok = true;
    std::size_t leaders = 0;
    std::size_t passives = 0;
    for (std::size_t i = 0; i < rt.size(); ++i) {
      // algorithm_node() sees through a FaultyNode decorator when the
      // scenario engine injected behavior profiles.
      const auto& node =
          static_cast<const ElectionNode&>(rt.node(i).algorithm_node());
      sink_->activations += node.activations();
      sink_->purges += node.purges();
      switch (node.state()) {
        case ElectionState::kLeader:
          ++leaders;
          break;
        case ElectionState::kPassive:
          ++passives;
          break;
        default:
          break;
      }
    }
    if (leaders != 1) {
      ok = false;
      detail << "expected exactly 1 leader, found " << leaders << "; ";
    }
    if (sink_->max_leaders_ever > 1) {
      ok = false;
      detail << "more than one leader was ever elected; ";
    }
    // The passive-count and in-flight postconditions describe the HONEST
    // ring environment: crashed nodes are never knocked out, and
    // equivocated tokens may still circulate at quiescence. Under injected
    // behavior profiles or adversarial delays only the actual safety
    // property remains — exactly one leader, never two leaders ever.
    if (!adversarial_ && passives != rt.size() - 1) {
      ok = false;
      detail << "expected " << rt.size() - 1 << " passive nodes, found "
             << passives << "; ";
    }
    // Dropped messages mean a token died in the channel — with failure
    // injection the run can still elect by luck, but quiescence is no
    // longer token conservation, so only require in-flight == 0 on
    // lossless runs. Wall-clock runs freeze mid-flight by design, so the
    // check is simulator-only.
    if (!adversarial_ && rt.kind() == RuntimeKind::kSim &&
        loss_probability_ == 0.0 && stats.in_flight() != 0) {
      ok = false;
      detail << stats.in_flight() << " messages still in flight; ";
    }
    sink_->safety_ok = ok;
    sink_->safety_detail = detail.str();

    out.completed = true;
    out.safety_ok = sink_->safety_ok;
    out.safety_detail = sink_->safety_detail;
    out.time = sink_->election_time;
    out.messages = sink_->messages;
    // The leader's becoming-leader event terminates the trial's causal
    // chain (obs/causal.h): the trial loop extracts the critical path
    // ending at this node at election_time.
    out.decision_node = static_cast<std::int64_t>(sink_->leader_index);
    return out;
  }

 private:
  LeaderWatch watch_;
  ElectionOptions options_;
  SimTime settle_time_;
  double loss_probability_;
  bool adversarial_;
  ElectionRunResult* sink_;
};

}  // namespace

RuntimeConfig election_runtime_config(const ElectionExperiment& experiment) {
  ABE_CHECK_GE(experiment.n, 1u);
  RuntimeConfig config;
  config.topology = unidirectional_ring(experiment.n);
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.loss_probability = experiment.loss_probability;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;
  config.deadline = experiment.deadline;
  config.trace = experiment.trace;
  return config;
}

std::unique_ptr<AlgorithmDriver> make_ring_election_driver(
    const ElectionExperiment& experiment, ElectionRunResult* sink) {
  return std::make_unique<RingElectionDriver>(experiment, sink);
}

ElectionRunResult run_election(const ElectionExperiment& experiment) {
  ElectionRunResult result;
  const auto driver = make_ring_election_driver(experiment, &result);
  run_algorithm_trial(RuntimeKind::kSim,
                      election_runtime_config(experiment), *driver);
  return result;
}

void ElectionAggregate::merge(const ElectionAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  ticks.merge(other.ticks);
  activations.merge(other.activations);
  purges.merge(other.purges);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

ElectionAggregate run_election_trials(ElectionExperiment experiment,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base,
                                      unsigned threads) {
  // Each runtime/scheduler lives entirely inside its trial, so chunk
  // workers share nothing but the read-only experiment spec
  // (DelayModel::sample is const and stateless — the rng lives in the
  // network).
  return run_seed_chunked_trials<ElectionAggregate>(
      trials, seed_base, threads,
      [&experiment](std::uint64_t seed_lo, std::uint64_t seed_hi,
                    ElectionAggregate& out) {
        ElectionExperiment e = experiment;
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          e.seed = s;
          const ElectionRunResult run = run_election(e);
          ++out.trials;
          if (!run.elected) {
            ++out.failures;
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.election_time);
          out.ticks.add(static_cast<double>(run.ticks));
          out.activations.add(static_cast<double>(run.activations));
          out.purges.add(static_cast<double>(run.purges));
        }
      });
}

}  // namespace abe
