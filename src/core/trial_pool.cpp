#include "core/trial_pool.h"

#include <cstdlib>
#include <string_view>

namespace abe {

unsigned resolve_trial_threads(unsigned threads) {
  if (threads != 0) return threads;
  // Config plumbing (allowlisted in tools/lint/abe_lint.py): read once on
  // the caller's thread before any worker spawns, never concurrently with
  // setenv. NOLINT: concurrency-mt-unsafe flags getenv wholesale.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("ABE_TRIAL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
    if (std::string_view(env) == "all") {
      const unsigned hw = std::thread::hardware_concurrency();
      return hw == 0 ? 1 : hw;
    }
  }
  // Default is serial: many callers (ctest -j, bench sweeps) already run
  // processes in parallel, and grabbing every core per call would
  // oversubscribe them. Parallelism is an explicit opt-in.
  return 1;
}

}  // namespace abe
