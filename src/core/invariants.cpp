#include "core/invariants.h"

#include <sstream>

#include "util/check.h"

namespace abe {

ElectionInvariantChecker::ElectionInvariantChecker(std::size_t n)
    : n_(n), state_(n, ElectionState::kIdle) {}

void ElectionInvariantChecker::violate(const std::string& what,
                                       SimTime when) {
  std::ostringstream os;
  os << "[t=" << when << "] " << what;
  violations_.push_back(os.str());
}

void ElectionInvariantChecker::on_state_change(NodeId node,
                                               ElectionState from,
                                               ElectionState to,
                                               SimTime when) {
  ++transitions_;
  const auto index = static_cast<std::size_t>(node.value());
  ABE_CHECK_LT(index, n_);

  if (state_[index] != from) {
    violate("transition claims from=" +
                std::string(election_state_name(from)) + " but node " +
                std::to_string(index) + " was " +
                election_state_name(state_[index]),
            when);
  }

  // I2: passive is absorbing.
  if (from == ElectionState::kPassive) {
    violate("node " + std::to_string(index) + " left the passive state",
            when);
  }
  // Leader is terminal too.
  if (from == ElectionState::kLeader) {
    violate("node " + std::to_string(index) + " left the leader state",
            when);
  }

  // Book-keeping.
  auto count_of = [&](ElectionState s) -> std::size_t& {
    switch (s) {
      case ElectionState::kLeader:
        return leaders_;
      case ElectionState::kPassive:
        return passives_;
      case ElectionState::kActive:
        return actives_;
      default: {
        static std::size_t dummy;
        dummy = 0;
        return dummy;
      }
    }
  };
  if (from != ElectionState::kIdle) --count_of(from);
  state_[index] = to;
  if (to != ElectionState::kIdle) ++count_of(to);

  // I1: never two leaders.
  if (leaders_ > 1) {
    violate("two leaders alive simultaneously", when);
  }
  // I4 (partial, online): once a leader exists everyone else is passive.
  if (to == ElectionState::kLeader && passives_ != n_ - 1) {
    violate("leader elected with only " + std::to_string(passives_) +
                " passive nodes (expected " + std::to_string(n_ - 1) + ")",
            when);
  }
}

void ElectionInvariantChecker::check_token_conservation(
    std::uint64_t tokens_minted, std::uint64_t tokens_retired,
    std::uint64_t in_flight) {
  // I3: minted = retired + alive; alive tokens must equal active nodes
  // (counting the leader's just-consumed token as retired).
  if (tokens_minted != tokens_retired + in_flight) {
    violate("token conservation broken: minted=" +
                std::to_string(tokens_minted) +
                " retired=" + std::to_string(tokens_retired) +
                " in_flight=" + std::to_string(in_flight),
            -1.0);
  }
  if (in_flight != actives_) {
    violate("live tokens (" + std::to_string(in_flight) +
                ") != active nodes (" + std::to_string(actives_) + ")",
            -1.0);
  }
}

std::string ElectionInvariantChecker::report() const {
  if (violations_.empty()) {
    return "all invariants held (" + std::to_string(transitions_) +
           " transitions observed)";
  }
  std::ostringstream os;
  os << violations_.size() << " violation(s):\n";
  for (const auto& v : violations_) os << "  " << v << "\n";
  return os.str();
}

}  // namespace abe
