#include "core/delta_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace abe {

DeltaEstimator::DeltaEstimator(DeltaEstimatorOptions options)
    : options_(options) {
  ABE_CHECK_GT(options_.alpha, 0.0);
  ABE_CHECK_LE(options_.alpha, 1.0);
  ABE_CHECK_GE(options_.margin_factor, 0.0);
  ABE_CHECK_GT(options_.max_tighten_rate, 0.0);
}

void DeltaEstimator::observe(double delay) {
  ABE_CHECK_GE(delay, 0.0);
  ++samples_;
  if (samples_ == 1) {
    mean_ = delay;
    deviation_ = delay / 2.0;
    bound_ = mean_ + options_.margin_factor * deviation_;
    return;
  }
  const double a = options_.alpha;
  deviation_ = (1.0 - a) * deviation_ + a * std::abs(delay - mean_);
  mean_ = (1.0 - a) * mean_ + a * delay;

  const double candidate = mean_ + options_.margin_factor * deviation_;
  if (candidate >= bound_) {
    bound_ = candidate;  // widen immediately — the safe direction
  } else {
    // Tighten gently so a brief lull cannot collapse the bound.
    bound_ = std::max(candidate,
                      bound_ * (1.0 - options_.max_tighten_rate));
  }
}

}  // namespace abe
