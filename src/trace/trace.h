// Structured event tracing.
//
// Tests assert on exact event sequences of small scenarios; examples can dump
// a readable run transcript. Tracing is off by default and has near-zero cost
// when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace abe {

enum class TraceKind : std::uint8_t {
  kSend,
  kDeliver,
  kDrop,
  kTick,
  kTimer,
  kStateChange,
  kRoundStart,
  kCustom,
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  SimTime time = 0.0;
  TraceKind kind = TraceKind::kCustom;
  NodeId node;          // primary node involved (receiver for deliveries)
  std::string detail;   // free-form, e.g. "hop=3" or "idle->passive"

  std::string to_string() const;
};

class Trace {
 public:
  // Disabled by default; enable() before the run to record.
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(SimTime time, TraceKind kind, NodeId node, std::string detail);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // All events of one kind, in order.
  std::vector<TraceEvent> filter(TraceKind kind) const;

  // All events touching one node, in order.
  std::vector<TraceEvent> for_node(NodeId node) const;

  // Number of recorded events of `kind`.
  std::size_t count(TraceKind kind) const;

  // Full transcript, one event per line.
  std::string to_string() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace abe
