// Structured event tracing: a bounded ring-buffer flight recorder.
//
// The trace is ALWAYS on at a small capacity (kFlightCapacity): every
// runtime keeps the most recent events of each trial, so a stalled or
// safety-violating trial can dump its recent history without anyone having
// pre-enabled tracing (run_algorithm_trial attaches the tail to the
// TrialOutcome). enable() switches to full mode — a much larger ring plus
// the free-form detail strings replay transcripts are made of.
//
// Cost model: in flight mode records carry only POD fields plus a numeric
// `arg` (edge index, timer tag, tick number…); callers must not format
// detail strings unless enabled() says full mode. Per-kind counts are
// maintained incrementally, so count() is O(1) and monotonic since the
// last clear() — it keeps counting events the ring has already evicted.
//
// Causality: every record() returns the new event's id (its position in the
// recorded-since-clear() sequence), and events may carry the id of the event
// that caused them — the SEND that produced a DELIVER, the handler that
// issued a SEND, the schedule site of a TIMER/TICK fire. Ids are dense, so
// as long as the causing event is still retained it sits at
// `id - events().front().id` in the linearized ring; obs/causal.h rebuilds
// the happens-before chain from exactly that. All causal fields are POD —
// the lite flight-recorder mode stays allocation-free.
//
// Thread safety: none here. The simulator records single-threaded; the
// thread runtime wraps its Trace in an AnnotatedMutex (runtime/thread_net.h)
// and stamps records with mailbox delivery time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace abe {

enum class TraceKind : std::uint8_t {
  kSend,
  kDeliver,
  kDrop,
  kTick,
  kTimer,
  kStateChange,
  kRoundStart,
  kCustom,
};

inline constexpr std::size_t kTraceKindCount = 8;

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  SimTime time = 0.0;
  TraceKind kind = TraceKind::kCustom;
  NodeId node;          // primary node involved (receiver for deliveries)
  std::int64_t arg = -1;  // cheap numeric context (edge, tag, …); -1 = none
  std::int64_t id = -1;     // dense record index since clear(); set by push()
  std::int64_t cause = -1;  // id of the event that caused this one; -1 = root
  double delay = 0.0;  // DELIVER: channel-delay share of (time - cause.time)
  double work = 0.0;   // DELIVER: processing-time share; rest is queueing
  std::string detail;  // free-form, e.g. "hop=3"; full mode only

  std::string to_string() const;
};

class Trace {
 public:
  // Always-on flight-recorder ring: large enough to reconstruct the last
  // few protocol rounds of a small cell, small enough to be free.
  static constexpr std::size_t kFlightCapacity = 256;
  // Full-mode ring: effectively unbounded for test-sized runs, bounded for
  // everything else (the old Trace grew a vector without limit).
  static constexpr std::size_t kFullCapacity = std::size_t{1} << 20;

  Trace() { ring_.reserve(16); }

  // Full mode: grows the ring to kFullCapacity and keeps detail strings.
  void enable() {
    enabled_ = true;
    if (capacity_ < kFullCapacity) set_capacity(kFullCapacity);
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Ring capacity (>= 1). Shrinking drops the oldest events.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  // Records an event and returns its id (dense since clear(), survives ring
  // eviction). The detail overload is for full-mode call sites (and log(),
  // whose payload IS the string); hot paths should pass numeric args only
  // unless enabled(). `cause` is the id of the causing event (-1 = root);
  // `delay`/`work` attribute a DELIVER's latency to channel and processing.
  std::int64_t record(SimTime time, TraceKind kind, NodeId node,
                      std::int64_t arg = -1, std::int64_t cause = -1,
                      double delay = 0.0, double work = 0.0);
  std::int64_t record(SimTime time, TraceKind kind, NodeId node,
                      std::string detail, std::int64_t arg = -1,
                      std::int64_t cause = -1, double delay = 0.0,
                      double work = 0.0);
  // Id the next record() will return; usable as a "current event" sentinel.
  std::int64_t next_id() const { return static_cast<std::int64_t>(recorded_); }

  // Events still held by the ring, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const { return ring_.size(); }
  void clear();

  // Retained events of one kind / touching one node, in order. O(retained),
  // which the ring bounds by capacity().
  std::vector<TraceEvent> filter(TraceKind kind) const;
  std::vector<TraceEvent> for_node(NodeId node) const;

  // Number of events of `kind` recorded since clear(), INCLUDING events the
  // ring has evicted. O(1) — maintained incrementally at record time.
  std::uint64_t count(TraceKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  // All events recorded since clear() / evicted from the ring.
  std::uint64_t total_recorded() const { return recorded_; }
  std::uint64_t evicted() const { return recorded_ - ring_.size(); }

  // Transcript of the retained events, one per line.
  std::string to_string() const;

 private:
  std::int64_t push(TraceEvent event);

  bool enabled_ = false;
  std::size_t capacity_ = kFlightCapacity;
  // Ring storage: grows to capacity_, then wraps; head_ indexes the oldest
  // retained event once full.
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  // Backing store of count(kind) and the "trace.recorded" snapshot row:
  // monotonic per-kind totals including evicted events, so count() is O(1)
  // regardless of ring wraparound.
  // abe-lint: allow(no-adhoc-counters)
  std::uint64_t counts_[kTraceKindCount] = {};
  std::uint64_t recorded_ = 0;
};

}  // namespace abe
