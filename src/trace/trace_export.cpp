#include "trace/trace_export.h"

#include <cstdio>
#include <iomanip>
#include <limits>

namespace abe {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  const auto flags = os.flags();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  // Dense ids (trace.h): the retained window is contiguous, so a cause is
  // present exactly when it lies in [first_id, first_id + size).
  const std::int64_t first_id = events.empty() ? 0 : events.front().id;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": ";
    write_json_string(os, trace_kind_name(e.kind));
    os << ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": "
       << e.node.value() << ", \"ts\": " << e.time * 1e6 << ", \"args\": {";
    os << "\"arg\": " << e.arg << ", \"id\": " << e.id
       << ", \"cause\": " << e.cause;
    if (!e.detail.empty()) {
      os << ", \"detail\": ";
      write_json_string(os, e.detail);
    }
    os << "}}";
    // The happens-before link as a flow arrow: start at the cause, finish
    // at the effect. The effect's id is the arrow's id — unique per link
    // even when one cause fans out to many effects — and `bp: "e"` binds
    // each endpoint to the instant emitted at the same (tid, ts).
    if (e.cause >= first_id && e.cause < e.id) {
      const TraceEvent& c = events[static_cast<std::size_t>(e.cause - first_id)];
      os << ",\n  {\"name\": \"causal\", \"cat\": \"causal\", \"ph\": \"s\","
         << " \"id\": " << e.id << ", \"pid\": 0, \"tid\": "
         << c.node.value() << ", \"ts\": " << c.time * 1e6 << "}";
      os << ",\n  {\"name\": \"causal\", \"cat\": \"causal\", \"ph\": \"f\","
         << " \"bp\": \"e\", \"id\": " << e.id << ", \"pid\": 0, \"tid\": "
         << e.node.value() << ", \"ts\": " << e.time * 1e6 << "}";
    }
  }
  os << "\n]\n";
  os.flags(flags);
}

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  const auto flags = os.flags();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const TraceEvent& e : events) {
    os << "{\"t\": " << e.time << ", \"kind\": ";
    write_json_string(os, trace_kind_name(e.kind));
    os << ", \"node\": " << e.node.value() << ", \"arg\": " << e.arg
       << ", \"id\": " << e.id << ", \"cause\": " << e.cause;
    if (e.delay != 0.0 || e.work != 0.0) {
      os << ", \"delay\": " << e.delay << ", \"work\": " << e.work;
    }
    if (!e.detail.empty()) {
      os << ", \"detail\": ";
      write_json_string(os, e.detail);
    }
    os << "}\n";
  }
  os.flags(flags);
}

}  // namespace abe
