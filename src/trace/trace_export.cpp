#include "trace/trace_export.h"

#include <cstdio>
#include <iomanip>
#include <limits>

namespace abe {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  const auto flags = os.flags();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": ";
    write_json_string(os, trace_kind_name(e.kind));
    os << ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": "
       << e.node.value() << ", \"ts\": " << e.time * 1e6 << ", \"args\": {";
    os << "\"arg\": " << e.arg;
    if (!e.detail.empty()) {
      os << ", \"detail\": ";
      write_json_string(os, e.detail);
    }
    os << "}}";
  }
  os << "\n]\n";
  os.flags(flags);
}

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  const auto flags = os.flags();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const TraceEvent& e : events) {
    os << "{\"t\": " << e.time << ", \"kind\": ";
    write_json_string(os, trace_kind_name(e.kind));
    os << ", \"node\": " << e.node.value() << ", \"arg\": " << e.arg;
    if (!e.detail.empty()) {
      os << ", \"detail\": ";
      write_json_string(os, e.detail);
    }
    os << "}\n";
  }
  os.flags(flags);
}

}  // namespace abe
