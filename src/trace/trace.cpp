#include "trace/trace.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace abe {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "SEND";
    case TraceKind::kDeliver:
      return "DELIVER";
    case TraceKind::kDrop:
      return "DROP";
    case TraceKind::kTick:
      return "TICK";
    case TraceKind::kTimer:
      return "TIMER";
    case TraceKind::kStateChange:
      return "STATE";
    case TraceKind::kRoundStart:
      return "ROUND";
    case TraceKind::kCustom:
      return "CUSTOM";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "[t=" << time << "] " << trace_kind_name(kind) << " node=" << node;
  if (!detail.empty()) {
    os << " " << detail;
  } else if (arg >= 0) {
    os << " arg=" << arg;
  }
  if (cause >= 0) os << " <-#" << cause;
  return os.str();
}

void Trace::set_capacity(std::size_t capacity) {
  ABE_CHECK_GE(capacity, std::size_t{1});
  if (capacity == capacity_) return;
  // Re-linearize so the invariants (head_ = oldest, append at head_ when
  // full) hold for the new capacity; keeps the newest events on shrink.
  std::vector<TraceEvent> kept = events();
  if (kept.size() > capacity) {
    kept.erase(kept.begin(),
               kept.begin() + static_cast<std::ptrdiff_t>(kept.size() -
                                                          capacity));
  }
  ring_ = std::move(kept);
  head_ = 0;
  capacity_ = capacity;
}

std::int64_t Trace::record(SimTime time, TraceKind kind, NodeId node,
                           std::int64_t arg, std::int64_t cause, double delay,
                           double work) {
  TraceEvent event;
  event.time = time;
  event.kind = kind;
  event.node = node;
  event.arg = arg;
  event.cause = cause;
  event.delay = delay;
  event.work = work;
  return push(std::move(event));
}

std::int64_t Trace::record(SimTime time, TraceKind kind, NodeId node,
                           std::string detail, std::int64_t arg,
                           std::int64_t cause, double delay, double work) {
  TraceEvent event;
  event.time = time;
  event.kind = kind;
  event.node = node;
  event.arg = arg;
  event.cause = cause;
  event.delay = delay;
  event.work = work;
  event.detail = std::move(detail);
  return push(std::move(event));
}

std::int64_t Trace::push(TraceEvent event) {
  counts_[static_cast<std::size_t>(event.kind)] += 1;
  const std::int64_t id = static_cast<std::int64_t>(recorded_);
  event.id = id;
  recorded_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return id;
  }
  ring_[head_] = std::move(event);
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  return id;
}

std::vector<TraceEvent> Trace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Trace::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  std::fill(std::begin(counts_), std::end(counts_), 0);
}

std::vector<TraceEvent> Trace::filter(TraceKind kind) const {
  std::vector<TraceEvent> out;
  // The per-kind count includes evicted events, so the retained ring size
  // caps it; reserving the min avoids every regrowth copy without ever
  // over-allocating past the ring.
  out.reserve(std::min<std::size_t>(
      counts_[static_cast<std::size_t>(kind)], ring_.size()));
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = ring_[(head_ + i) % ring_.size()];
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::for_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& e = ring_[(head_ + i) % ring_.size()];
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    os << ring_[(head_ + i) % ring_.size()].to_string() << "\n";
  }
  return os.str();
}

}  // namespace abe
