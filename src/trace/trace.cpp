#include "trace/trace.h"

#include <sstream>

namespace abe {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "SEND";
    case TraceKind::kDeliver:
      return "DELIVER";
    case TraceKind::kDrop:
      return "DROP";
    case TraceKind::kTick:
      return "TICK";
    case TraceKind::kTimer:
      return "TIMER";
    case TraceKind::kStateChange:
      return "STATE";
    case TraceKind::kRoundStart:
      return "ROUND";
    case TraceKind::kCustom:
      return "CUSTOM";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "[t=" << time << "] " << trace_kind_name(kind) << " node=" << node
     << " " << detail;
  return os.str();
}

void Trace::record(SimTime time, TraceKind kind, NodeId node,
                   std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, kind, node, std::move(detail)});
}

std::vector<TraceEvent> Trace::filter(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::for_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::size_t Trace::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.to_string() << "\n";
  }
  return os.str();
}

}  // namespace abe
