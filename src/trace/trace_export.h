// Trace exporters: Chrome trace-event JSON and JSONL.
//
// write_chrome_trace emits the Trace Event Format's JSON-array flavor
// (instant events, one Chrome "thread" per node), loadable in
// chrome://tracing / Perfetto — `abe_scenarios trace --chrome` turns a
// replayed violation seed into a timeline. One sim time unit maps to one
// second, so `ts` (microseconds) = time × 1e6. Causal links (TraceEvent::
// cause, obs/causal.h) additionally become flow events — a `ph: "s"` at
// the cause and a matching `ph: "f"` at the effect, sharing name/cat/id —
// which the viewers draw as arrows between the two timeline rows; links
// whose cause left the retained ring are skipped.
//
// write_trace_jsonl emits one JSON object per line ({"t", "kind", "node",
// "arg", "id", "cause", "delay", "work", "detail"}) for jq-style ad-hoc
// analysis.
#pragma once

#include <ostream>
#include <vector>

#include "trace/trace.h"

namespace abe {

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events);

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events);

}  // namespace abe
