// Itai–Rodeh probabilistic leader election for anonymous unidirectional
// rings of known size n (Itai & Rodeh, Inf. Comput. 1990 — reference [4] of
// the paper), in the round-numbered asynchronous formulation.
//
// This is the baseline the paper positions its ABE election against: IR has
// expected O(n log n) messages (O(log n) rounds of up-to-n-hop tokens),
// whereas the ABE election achieves expected O(n) messages by exploiting the
// known bound on the expected delay. Bench E2 overlays the two curves.
//
// Algorithm sketch (per candidate):
//   each round: draw id ∈ {1..R}, send token (round, id, hop=1, clean=true);
//   on receiving (round', id', hop, clean):
//     own token back (round'=round, id'=id, hop=n): clean ? leader
//                                                         : next round;
//     (round', id') > (round, id) lexicographically: become passive, forward;
//     (round', id') < (round, id): purge;
//     equal but hop < n (tie): forward with clean=false.
//   passive nodes forward every token with hop+1.
//
// Channels should be FIFO (the classic setting); the round numbers make the
// algorithm robust in practice and tests also exercise arbitrary order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"
#include "net/node.h"
#include "stats/summary.h"

namespace abe {

class IrToken final : public Payload {
 public:
  IrToken(std::uint64_t round, std::uint64_t id, std::uint64_t hop,
          bool clean)
      : round_(round), id_(id), hop_(hop), clean_(clean) {}
  std::uint64_t round() const { return round_; }
  std::uint64_t id() const { return id_; }
  std::uint64_t hop() const { return hop_; }
  bool clean() const { return clean_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<IrToken>(round_, id_, hop_, clean_);
  }
  std::string describe() const override;

 private:
  std::uint64_t round_;
  std::uint64_t id_;
  std::uint64_t hop_;
  bool clean_;
};

struct IrOptions {
  // Ids are drawn uniformly from {1..id_range}; 0 means "use n".
  std::uint64_t id_range = 0;
  // Invoked once when this node becomes leader.
  std::function<void(NodeId, SimTime)> on_leader;
};

class ItaiRodehNode final : public Node {
 public:
  explicit ItaiRodehNode(IrOptions options);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;
  bool is_terminated() const override { return leader_; }

  bool is_leader() const { return leader_; }
  bool is_passive() const { return passive_; }
  std::uint64_t round() const { return round_; }

 private:
  void start_round(Context& ctx);

  IrOptions options_;
  bool passive_ = false;
  bool leader_ = false;
  std::uint64_t round_ = 0;
  std::uint64_t id_ = 0;
};

struct IrExperiment {
  std::size_t n = 8;
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  ChannelOrdering ordering = ChannelOrdering::kFifo;
  std::uint64_t seed = 1;
  SimTime deadline = 1e7;
};

struct IrResult {
  bool elected = false;
  std::size_t leader_index = 0;
  SimTime election_time = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;  // rounds reached by the eventual leader
  bool safety_ok = false;
};

IrResult run_itai_rodeh(const IrExperiment& experiment);

struct IrAggregate {
  Summary messages;
  Summary time;
  Summary rounds;
  std::uint64_t failures = 0;
  std::uint64_t safety_violations = 0;
};

IrAggregate run_itai_rodeh_trials(IrExperiment experiment,
                                  std::uint64_t trials,
                                  std::uint64_t seed_base = 1);

}  // namespace abe
