#include "algo/chang_roberts.h"

#include <sstream>
#include <utility>

#include "net/topology.h"
#include "util/check.h"

namespace abe {

ChangRobertsNode::ChangRobertsNode(
    std::uint64_t id, std::function<void(NodeId, SimTime)> on_leader)
    : id_(id), on_leader_(std::move(on_leader)) {}

void ChangRobertsNode::on_start(Context& ctx) {
  if (ctx.network_size() == 1) {
    leader_ = true;
    if (on_leader_) on_leader_(ctx.self(), ctx.real_now());
    return;
  }
  ctx.send(0, std::make_unique<CrToken>(id_));
}

void ChangRobertsNode::on_message(Context& ctx, std::size_t /*in_index*/,
                                  const Payload& payload) {
  const auto& token = payload_as<CrToken>(payload);
  if (leader_) return;  // nothing can still be circulating legitimately
  if (token.id() == id_) {
    // Our id survived a full circle: every other id was smaller.
    leader_ = true;
    if (on_leader_) on_leader_(ctx.self(), ctx.real_now());
    return;
  }
  if (token.id() > id_) {
    passive_ = true;  // a bigger id is out there; stop competing
    ctx.send(0, std::make_unique<CrToken>(token.id()));
  }
  // Smaller id: purge.
}

std::string ChangRobertsNode::state_string() const {
  std::ostringstream os;
  if (leader_) {
    os << "leader id=" << id_;
  } else {
    os << (passive_ ? "passive" : "candidate") << " id=" << id_;
  }
  return os.str();
}

CrResult run_chang_roberts(const CrExperiment& experiment) {
  ABE_CHECK_GE(experiment.n, 1u);
  NetworkConfig config;
  config.topology = unidirectional_ring(experiment.n);
  config.delay = make_delay_model(experiment.delay_name,
                                  experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.seed = experiment.seed;

  Network net(std::move(config));
  struct {
    bool elected = false;
    std::size_t index = 0;
    SimTime when = 0.0;
  } leader;

  // Random id assignment: permutation of {1..n}.
  Rng id_rng = Rng(experiment.seed).substream("cr-ids");
  const std::vector<std::size_t> perm = id_rng.permutation(experiment.n);

  net.build_nodes([&](std::size_t i) -> NodePtr {
    return std::make_unique<ChangRobertsNode>(
        static_cast<std::uint64_t>(perm[i] + 1),
        [&leader](NodeId node, SimTime when) {
          if (!leader.elected) {
            leader.elected = true;
            leader.index = static_cast<std::size_t>(node.value());
            leader.when = when;
          }
        });
  });
  net.start();

  CrResult result;
  const bool elected =
      net.run_until([&] { return leader.elected; }, experiment.deadline);
  if (!elected) return result;

  result.elected = true;
  result.leader_index = leader.index;
  result.election_time = leader.when;
  result.messages = net.metrics().messages_sent;

  net.run_until_quiescent(net.now() + 64.0 * experiment.mean_delay *
                                          static_cast<double>(experiment.n));
  std::size_t leaders = 0;
  std::uint64_t max_id = 0;
  std::size_t max_index = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const ChangRobertsNode&>(net.node(i));
    if (node.is_leader()) ++leaders;
    if (node.id() > max_id) {
      max_id = node.id();
      max_index = i;
    }
  }
  // Chang–Roberts must elect exactly the maximum id.
  result.safety_ok = leaders == 1 && max_index == leader.index;
  return result;
}

CrAggregate run_chang_roberts_trials(CrExperiment experiment,
                                     std::uint64_t trials,
                                     std::uint64_t seed_base) {
  ABE_CHECK_GT(trials, 0u);
  CrAggregate agg;
  for (std::uint64_t t = 0; t < trials; ++t) {
    experiment.seed = seed_base + t;
    const CrResult run = run_chang_roberts(experiment);
    if (!run.elected) {
      ++agg.failures;
      continue;
    }
    if (!run.safety_ok) ++agg.safety_violations;
    agg.messages.add(static_cast<double>(run.messages));
    agg.time.add(run.election_time);
  }
  return agg;
}

}  // namespace abe
