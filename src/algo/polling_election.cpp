#include "algo/polling_election.h"

#include <algorithm>
#include <sstream>

#include "core/trial_pool.h"
#include "util/check.h"

namespace abe {

const char* polling_state_name(PollingState s) {
  switch (s) {
    case PollingState::kAsleep:
      return "asleep";
    case PollingState::kPolled:
      return "polled";
    case PollingState::kPassive:
      return "passive";
    case PollingState::kLeader:
      return "leader";
  }
  return "?";
}

std::string PollPayload::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kWake:
      os << "Wake(r=" << round_ << ")";
      break;
    case Kind::kEcho:
      os << "Echo(r=" << round_ << ", best=" << id_ << ", count=" << count_
         << ")";
      break;
    case Kind::kResult:
      os << "Result(r=" << round_ << ", winner=" << id_ << ")";
      break;
  }
  return os.str();
}

std::vector<PollingWiring> build_polling_wiring(const Topology& topology,
                                                std::size_t root) {
  const SpanningTree tree = bfs_spanning_tree(topology, root);
  const auto chan = out_channel_to_neighbor(topology);
  std::vector<PollingWiring> wiring(topology.n);
  for (std::size_t i = 0; i < topology.n; ++i) {
    wiring[i].is_root = (i == root);
    if (i != root) {
      const std::size_t up = chan[i][tree.parent[i]];
      ABE_CHECK_NE(up, SIZE_MAX) << "tree edge lacks a reverse channel";
      wiring[i].parent_out = up;
    }
    for (std::size_t c : tree.children[i]) {
      const std::size_t down = chan[i][c];
      ABE_CHECK_NE(down, SIZE_MAX);
      wiring[i].children_out.push_back(down);
    }
  }
  return wiring;
}

PollingElectionNode::PollingElectionNode(PollingWiring wiring,
                                         PollingOptions options)
    : wiring_(std::move(wiring)), options_(std::move(options)) {
  ABE_CHECK_GE(options_.id_bits, 1u);
  ABE_CHECK_LE(options_.id_bits, 64u);
}

std::uint64_t PollingElectionNode::draw_id(Context& ctx) {
  if (options_.id_bits == 64) return ctx.rng().next_u64();
  return ctx.rng().uniform_int(std::uint64_t{1} << options_.id_bits);
}

void PollingElectionNode::on_start(Context& ctx) {
  if (wiring_.is_root) begin_round(ctx, 0);
}

void PollingElectionNode::begin_round(Context& ctx, std::uint64_t round) {
  woken_ = true;
  state_ = PollingState::kPolled;
  round_ = round;
  id_ = draw_id(ctx);
  best_ = id_;
  best_count_ = 1;
  children_reported_ = 0;
  for (std::size_t out : wiring_.children_out) {
    ctx.send(out, std::make_unique<PollPayload>(PollPayload::Kind::kWake,
                                                round, 0, 0));
  }
  if (wiring_.children_out.empty()) report_or_decide(ctx);
}

void PollingElectionNode::on_message(Context& ctx, std::size_t /*in_index*/,
                                     const Payload& payload) {
  const auto& msg = payload_as<PollPayload>(payload);
  switch (msg.kind()) {
    case PollPayload::Kind::kWake:
      // Rounds are strictly sequenced by the convergecast: a parent only
      // starts r+1 after every child echoed r, so no Wake can skip ahead.
      ABE_CHECK_EQ(msg.round(), woken_ ? round_ + 1 : 0u);
      begin_round(ctx, msg.round());
      break;
    case PollPayload::Kind::kEcho: {
      ABE_CHECK_EQ(msg.round(), round_);
      // Extinction: only the largest id's wave survives the combine.
      if (msg.id() > best_) {
        best_ = msg.id();
        best_count_ = msg.count();
      } else if (msg.id() == best_) {
        best_count_ += msg.count();
      }
      ++children_reported_;
      if (children_reported_ == wiring_.children_out.size()) {
        report_or_decide(ctx);
      }
      break;
    }
    case PollPayload::Kind::kResult:
      ABE_CHECK_EQ(msg.round(), round_);
      finish(ctx, msg.id());
      break;
  }
}

void PollingElectionNode::report_or_decide(Context& ctx) {
  if (!wiring_.is_root) {
    ctx.send(wiring_.parent_out,
             std::make_unique<PollPayload>(PollPayload::Kind::kEcho, round_,
                                           best_, best_count_));
    return;
  }
  if (best_count_ == 1) {
    finish(ctx, best_);
  } else {
    // Tie among best_count_ nodes: poll everyone again with fresh ids.
    begin_round(ctx, round_ + 1);
  }
}

void PollingElectionNode::finish(Context& ctx, std::uint64_t winner) {
  for (std::size_t out : wiring_.children_out) {
    ctx.send(out, std::make_unique<PollPayload>(PollPayload::Kind::kResult,
                                                round_, winner, 0));
  }
  if (id_ == winner) {
    state_ = PollingState::kLeader;
    if (options_.on_leader) options_.on_leader(ctx.self(), ctx.real_now());
  } else {
    state_ = PollingState::kPassive;
  }
}

PollingRunResult run_polling_election(const PollingExperiment& experiment) {
  validate_topology(experiment.topology);

  NetworkConfig config;
  config.topology = experiment.topology;
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.loss_probability = experiment.loss_probability;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;

  struct Watch {
    std::uint64_t leader_count = 0;
    std::size_t last_leader = 0;
    SimTime when = 0.0;
  } watch;

  const std::vector<PollingWiring> wiring =
      build_polling_wiring(experiment.topology);

  Network net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    PollingOptions options;
    options.id_bits = experiment.id_bits;
    options.on_leader = [&watch](NodeId node, SimTime when) {
      ++watch.leader_count;
      watch.last_leader = static_cast<std::size_t>(node.value());
      watch.when = when;
    };
    return std::make_unique<PollingElectionNode>(wiring[i],
                                                 std::move(options));
  });
  net.start();

  PollingRunResult result;
  const bool elected = net.run_until(
      [&] { return watch.leader_count > 0; }, experiment.deadline);
  if (!elected) {
    result.safety_detail = "no leader before deadline";
    return result;
  }

  result.elected = true;
  result.leader_index = watch.last_leader;
  result.election_time = net.now();
  result.messages = net.metrics().messages_sent;

  // Let the RESULT broadcast drain so the terminal configuration (and any
  // second leader a bug would produce) is observable. The protocol has no
  // tick generators and the broadcast sends a bounded message count, so the
  // queue always drains — no settle window to tune (a timed window would
  // truncate deep trees: the RESULT descends depth-many channels in
  // sequence, an Erlang-depth tail).
  net.run_until_quiescent();
  result.messages_total = net.metrics().messages_sent;
  result.max_leaders_ever = watch.leader_count;

  std::ostringstream detail;
  std::size_t leaders = 0;
  std::size_t passives = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const PollingElectionNode&>(net.node(i));
    if (node.woken()) ++result.woken;
    if (node.state() == PollingState::kLeader) {
      ++leaders;
      result.rounds = node.round() + 1;
    } else if (node.state() == PollingState::kPassive) {
      ++passives;
    }
  }

  // Safety proper: the protocol must never mint two leaders, lossy or not
  // (a RESULT names one winner id and only its holder leads).
  bool safe = true;
  if (leaders > 1 || watch.leader_count > 1) {
    safe = false;
    detail << "more than one leader (" << leaders << " now, "
           << watch.leader_count << " ever); ";
  }

  // Termination completeness: guaranteed on reliable channels; loss can
  // strand kPolled nodes behind a dropped RESULT (or unwoken ones behind a
  // dropped WAKE), which is the injected failure, not an algorithm bug.
  bool terminated = true;
  if (leaders != 1) {
    terminated = false;
    detail << "expected exactly 1 leader, found " << leaders << "; ";
  }
  if (passives != net.size() - 1) {
    terminated = false;
    detail << "expected " << net.size() - 1 << " passive nodes, found "
           << passives << "; ";
  }
  if (result.woken != net.size()) {
    terminated = false;
    detail << "polling incomplete: only " << result.woken << " of "
           << net.size() << " nodes were woken; ";
  }
  if (net.metrics().in_flight() != 0) {
    terminated = false;
    detail << net.metrics().in_flight() << " messages still in flight; ";
  }

  result.terminated = terminated;
  result.safety_ok =
      experiment.loss_probability == 0.0 ? safe && terminated : safe;
  result.safety_detail = detail.str();
  return result;
}

void PollingAggregate::merge(const PollingAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  rounds.merge(other.rounds);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

PollingAggregate run_polling_trials(PollingExperiment experiment,
                                    std::uint64_t trials,
                                    std::uint64_t seed_base,
                                    unsigned threads) {
  return run_seed_chunked_trials<PollingAggregate>(
      trials, seed_base, threads,
      [&experiment](std::uint64_t seed_lo, std::uint64_t seed_hi,
                    PollingAggregate& out) {
        PollingExperiment e = experiment;
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          e.seed = s;
          const PollingRunResult run = run_polling_election(e);
          ++out.trials;
          // A run that elected but could not finish its broadcast (loss
          // injection) is a failed trial, not a safety violation.
          if (!run.elected || !run.terminated) {
            ++out.failures;
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.election_time);
          out.rounds.add(static_cast<double>(run.rounds));
        }
      });
}

}  // namespace abe
