#include "algo/polling_election.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/trial_pool.h"
#include "util/check.h"

namespace abe {

const char* polling_state_name(PollingState s) {
  switch (s) {
    case PollingState::kAsleep:
      return "asleep";
    case PollingState::kPolled:
      return "polled";
    case PollingState::kPassive:
      return "passive";
    case PollingState::kLeader:
      return "leader";
  }
  return "?";
}

std::string PollPayload::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kWake:
      os << "Wake(r=" << round_ << ")";
      break;
    case Kind::kEcho:
      os << "Echo(r=" << round_ << ", best=" << id_ << ", count=" << count_
         << ")";
      break;
    case Kind::kResult:
      os << "Result(r=" << round_ << ", winner=" << id_ << ")";
      break;
  }
  return os.str();
}

std::vector<PollingWiring> build_polling_wiring(const Topology& topology,
                                                std::size_t root) {
  const SpanningTree tree = bfs_spanning_tree(topology, root);
  const auto chan = out_channel_to_neighbor(topology);
  std::vector<PollingWiring> wiring(topology.n);
  for (std::size_t i = 0; i < topology.n; ++i) {
    wiring[i].is_root = (i == root);
    if (i != root) {
      const std::size_t up = chan[i][tree.parent[i]];
      ABE_CHECK_NE(up, SIZE_MAX) << "tree edge lacks a reverse channel";
      wiring[i].parent_out = up;
    }
    for (std::size_t c : tree.children[i]) {
      const std::size_t down = chan[i][c];
      ABE_CHECK_NE(down, SIZE_MAX);
      wiring[i].children_out.push_back(down);
    }
  }
  return wiring;
}

PollingElectionNode::PollingElectionNode(PollingWiring wiring,
                                         PollingOptions options)
    : wiring_(std::move(wiring)), options_(std::move(options)) {
  ABE_CHECK_GE(options_.id_bits, 1u);
  ABE_CHECK_LE(options_.id_bits, 64u);
}

std::uint64_t PollingElectionNode::draw_id(Context& ctx) {
  if (options_.id_bits == 64) return ctx.rng().next_u64();
  return ctx.rng().uniform_int(std::uint64_t{1} << options_.id_bits);
}

void PollingElectionNode::on_start(Context& ctx) {
  if (wiring_.is_root) begin_round(ctx, 0);
}

void PollingElectionNode::begin_round(Context& ctx, std::uint64_t round) {
  woken_ = true;
  state_ = PollingState::kPolled;
  round_ = round;
  id_ = draw_id(ctx);
  best_ = id_;
  best_count_ = 1;
  children_reported_ = 0;
  for (std::size_t out : wiring_.children_out) {
    ctx.send(out, std::make_unique<PollPayload>(PollPayload::Kind::kWake,
                                                round, 0, 0));
  }
  if (wiring_.children_out.empty()) report_or_decide(ctx);
}

void PollingElectionNode::on_message(Context& ctx, std::size_t /*in_index*/,
                                     const Payload& payload) {
  const auto& msg = payload_as<PollPayload>(payload);
  switch (msg.kind()) {
    case PollPayload::Kind::kWake:
      // Rounds are strictly sequenced by the convergecast: a parent only
      // starts r+1 after every child echoed r, so no Wake can skip ahead.
      ABE_CHECK_EQ(msg.round(), woken_ ? round_ + 1 : 0u);
      begin_round(ctx, msg.round());
      break;
    case PollPayload::Kind::kEcho: {
      ABE_CHECK_EQ(msg.round(), round_);
      // Extinction: only the largest id's wave survives the combine.
      if (msg.id() > best_) {
        best_ = msg.id();
        best_count_ = msg.count();
      } else if (msg.id() == best_) {
        best_count_ += msg.count();
      }
      ++children_reported_;
      if (children_reported_ == wiring_.children_out.size()) {
        report_or_decide(ctx);
      }
      break;
    }
    case PollPayload::Kind::kResult:
      ABE_CHECK_EQ(msg.round(), round_);
      finish(ctx, msg.id());
      break;
  }
}

void PollingElectionNode::report_or_decide(Context& ctx) {
  if (!wiring_.is_root) {
    ctx.send(wiring_.parent_out,
             std::make_unique<PollPayload>(PollPayload::Kind::kEcho, round_,
                                           best_, best_count_));
    return;
  }
  if (best_count_ == 1) {
    finish(ctx, best_);
  } else {
    // Tie among best_count_ nodes: poll everyone again with fresh ids.
    begin_round(ctx, round_ + 1);
  }
}

void PollingElectionNode::finish(Context& ctx, std::uint64_t winner) {
  for (std::size_t out : wiring_.children_out) {
    ctx.send(out, std::make_unique<PollPayload>(PollPayload::Kind::kResult,
                                                round_, winner, 0));
  }
  if (id_ == winner) {
    state_ = PollingState::kLeader;
    if (options_.on_leader) options_.on_leader(ctx.self(), ctx.real_now());
  } else {
    state_ = PollingState::kPassive;
  }
}

namespace {

// Leader observation shared between nodes and the run loop; atomics because
// on the thread runtime on_leader fires concurrently from node threads. On
// the simulator the values are identical to the old plain-integer watch.
struct PollingWatch {
  std::atomic<std::uint64_t> leader_count{0};
  std::atomic<std::uint64_t> last_leader{0};
};

class PollingDriver final : public AlgorithmDriver {
 public:
  PollingDriver(const PollingExperiment& experiment, PollingRunResult* sink)
      : id_bits_(experiment.id_bits),
        loss_probability_(experiment.loss_probability),
        sink_(sink) {
    ABE_CHECK(sink_ != nullptr);
  }

  void configure(RuntimeConfig& config) override {
    // Coordination structure is infrastructure, not anonymous algorithm
    // state: the tree is precomputed from the topology (cf. BetaWiring).
    wiring_ = build_polling_wiring(config.topology);
  }

  NodePtr make_node(std::size_t index) override {
    PollingOptions options;
    options.id_bits = id_bits_;
    PollingWatch* watch = &watch_;
    options.on_leader = [watch](NodeId node, SimTime /*when*/) {
      watch->last_leader.store(static_cast<std::uint64_t>(node.value()),
                               std::memory_order_relaxed);
      watch->leader_count.fetch_add(1, std::memory_order_release);
    };
    return std::make_unique<PollingElectionNode>(wiring_[index],
                                                 std::move(options));
  }

  bool done(const Runtime& /*rt*/) override {
    return watch_.leader_count.load(std::memory_order_acquire) > 0;
  }

  void on_complete(Runtime& rt) override {
    sink_->elected = true;
    sink_->leader_index = static_cast<std::size_t>(
        watch_.last_leader.load(std::memory_order_relaxed));
    sink_->election_time = rt.now();
    sink_->messages = rt.stats().messages_sent;
  }

  void settle(Runtime& rt, bool completed) override {
    // Let the RESULT broadcast drain so the terminal configuration (and
    // any second leader a bug would produce) is observable. The protocol
    // has no tick generators and the broadcast sends a bounded message
    // count, so the queue always drains — no settle window to tune (a
    // timed window would truncate deep trees: the RESULT descends
    // depth-many channels in sequence, an Erlang-depth tail). On the
    // thread runtime the drain is bounded by the trial's wall budget.
    if (completed) rt.drain(kTimeInfinity);
  }

  TrialOutcome extract(Runtime& rt, bool completed) override {
    TrialOutcome out;
    if (!completed) {
      sink_->safety_detail = "no leader before deadline";
      out.safety_detail = sink_->safety_detail;
      return out;
    }

    const RunStats stats = rt.stats();
    sink_->messages_total = stats.messages_sent;
    sink_->max_leaders_ever =
        watch_.leader_count.load(std::memory_order_acquire);

    std::ostringstream detail;
    std::size_t leaders = 0;
    std::size_t passives = 0;
    for (std::size_t i = 0; i < rt.size(); ++i) {
      const auto& node = static_cast<const PollingElectionNode&>(
          rt.node(i).algorithm_node());
      if (node.woken()) ++sink_->woken;
      if (node.state() == PollingState::kLeader) {
        ++leaders;
        sink_->rounds = node.round() + 1;
      } else if (node.state() == PollingState::kPassive) {
        ++passives;
      }
    }

    // Safety proper: the protocol must never mint two leaders, lossy or
    // not (a RESULT names one winner id and only its holder leads).
    bool safe = true;
    if (leaders > 1 || sink_->max_leaders_ever > 1) {
      safe = false;
      detail << "more than one leader (" << leaders << " now, "
             << sink_->max_leaders_ever << " ever); ";
    }

    // Termination completeness: guaranteed on reliable channels; loss can
    // strand kPolled nodes behind a dropped RESULT (or unwoken ones behind
    // a dropped WAKE), which is the injected failure, not an algorithm bug.
    bool terminated = true;
    if (leaders != 1) {
      terminated = false;
      detail << "expected exactly 1 leader, found " << leaders << "; ";
    }
    if (passives != rt.size() - 1) {
      terminated = false;
      detail << "expected " << rt.size() - 1 << " passive nodes, found "
             << passives << "; ";
    }
    if (sink_->woken != rt.size()) {
      terminated = false;
      detail << "polling incomplete: only " << sink_->woken << " of "
             << rt.size() << " nodes were woken; ";
    }
    if (stats.in_flight() != 0) {
      terminated = false;
      detail << stats.in_flight() << " messages still in flight; ";
    }

    sink_->terminated = terminated;
    sink_->safety_ok =
        loss_probability_ == 0.0 ? safe && terminated : safe;
    sink_->safety_detail = detail.str();

    out.completed = true;
    out.safety_ok = sink_->safety_ok;
    out.safety_detail = sink_->safety_detail;
    out.time = sink_->election_time;
    out.messages = sink_->messages;
    // Critical-path anchor (obs/causal.h): the winner's becoming-leader
    // handler at election_time terminates the causal chain.
    out.decision_node = static_cast<std::int64_t>(sink_->leader_index);
    return out;
  }

 private:
  unsigned id_bits_;
  double loss_probability_;
  PollingRunResult* sink_;
  PollingWatch watch_;
  std::vector<PollingWiring> wiring_;
};

}  // namespace

RuntimeConfig polling_runtime_config(const PollingExperiment& experiment) {
  validate_topology(experiment.topology);
  RuntimeConfig config;
  config.topology = experiment.topology;
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.loss_probability = experiment.loss_probability;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;
  config.deadline = experiment.deadline;
  return config;
}

std::unique_ptr<AlgorithmDriver> make_polling_driver(
    const PollingExperiment& experiment, PollingRunResult* sink) {
  return std::make_unique<PollingDriver>(experiment, sink);
}

PollingRunResult run_polling_election(const PollingExperiment& experiment) {
  PollingRunResult result;
  const auto driver = make_polling_driver(experiment, &result);
  run_algorithm_trial(RuntimeKind::kSim,
                      polling_runtime_config(experiment), *driver);
  return result;
}

void PollingAggregate::merge(const PollingAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  rounds.merge(other.rounds);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

PollingAggregate run_polling_trials(PollingExperiment experiment,
                                    std::uint64_t trials,
                                    std::uint64_t seed_base,
                                    unsigned threads) {
  return run_seed_chunked_trials<PollingAggregate>(
      trials, seed_base, threads,
      [&experiment](std::uint64_t seed_lo, std::uint64_t seed_hi,
                    PollingAggregate& out) {
        PollingExperiment e = experiment;
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          e.seed = s;
          const PollingRunResult run = run_polling_election(e);
          ++out.trials;
          // A run that elected but could not finish its broadcast (loss
          // injection) is a failed trial, not a safety violation.
          if (!run.elected || !run.terminated) {
            ++out.failures;
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.election_time);
          out.rounds.add(static_cast<double>(run.rounds));
        }
      });
}

}  // namespace abe
