// Polling leader election for anonymous ABE networks over general graphs.
//
// The paper proves that every *deterministic* election algorithm possible in
// an anonymous ABE network is a polling algorithm: each node must be woken
// explicitly before the leader may announce, because with unbounded delays
// silence never certifies anything. This file makes that theorem runnable as
// a baseline: a spanning-tree broadcast/echo wake-up layer (the polling
// skeleton — deterministic, every node explicitly woken) composed with an
// extinction-style election (the symmetry breaker — random draws, which no
// deterministic anonymous algorithm can avoid needing).
//
// Protocol, per round r (tree precomputed offline from the topology, like
// the β-synchronizer: coordination structure is infrastructure, not
// anonymous algorithm state):
//   WAKE(r)  — broadcast down the tree; every node is explicitly polled and
//              draws a fresh random id for round r;
//   ECHO(r)  — convergecast up the tree carrying (best id seen, count of
//              nodes holding it); waves from smaller ids are extinguished
//              by the max-combine on the way up;
//   RESULT(r) — the root learns the global maximum and its multiplicity;
//              a unique maximum is broadcast down and its holder becomes
//              the leader; a tie (count > 1) starts round r+1 instead.
//
// Message cost is (2r+1)(n−1) tree messages for r rounds; with 64-bit ids a
// tie is a ~n²/2⁶⁴ event, so the expected cost is Θ(n) — the price of the
// polling structure the theorem forces, paid on EVERY run, where the
// paper's probabilistic ring algorithm wakes most nodes implicitly. The
// scenario engine (src/scenario) sweeps the two against each other.
//
// Requires a bidirectional topology (every tree edge needs its reverse for
// the echo), i.e. every builder in net/topology.h except the unidirectional
// ring.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "net/spanning_tree.h"
#include "runtime/runtime.h"
#include "stats/summary.h"

namespace abe {

enum class PollingState : std::uint8_t {
  kAsleep,   // not yet polled
  kPolled,   // woken, awaiting the round outcome
  kPassive,  // polled and lost the final round
  kLeader,   // terminal winner
};

const char* polling_state_name(PollingState s);

// Wire message of the polling protocol.
class PollPayload final : public Payload {
 public:
  enum class Kind : std::uint8_t { kWake, kEcho, kResult };
  PollPayload(Kind kind, std::uint64_t round, std::uint64_t id,
              std::uint64_t count)
      : kind_(kind), round_(round), id_(id), count_(count) {}
  Kind kind() const { return kind_; }
  std::uint64_t round() const { return round_; }
  std::uint64_t id() const { return id_; }
  std::uint64_t count() const { return count_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<PollPayload>(kind_, round_, id_, count_);
  }
  std::string describe() const override;

 private:
  Kind kind_;
  std::uint64_t round_;
  std::uint64_t id_;
  std::uint64_t count_;
};

// Static per-node wiring derived from the spanning tree (cf. BetaWiring).
struct PollingWiring {
  bool is_root = false;
  std::size_t parent_out = 0;  // out-channel toward the parent (non-root)
  std::vector<std::size_t> children_out;
};

// Builds the wiring for every node from a BFS tree rooted at `root`.
// Requires every tree edge to have a reverse channel.
std::vector<PollingWiring> build_polling_wiring(const Topology& topology,
                                                std::size_t root = 0);

struct PollingOptions {
  // Ids are drawn uniformly from [0, 2^id_bits). 64 makes ties negligible;
  // tests shrink it to force multi-round extinction.
  unsigned id_bits = 64;
  // Invoked once when a node becomes leader.
  std::function<void(NodeId, SimTime)> on_leader;
};

class PollingElectionNode final : public Node {
 public:
  PollingElectionNode(PollingWiring wiring, PollingOptions options);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override {
    return polling_state_name(state_);
  }
  bool is_terminated() const override {
    return state_ == PollingState::kLeader ||
           state_ == PollingState::kPassive;
  }

  // --- observable state (tests & metrics) --------------------------------
  PollingState state() const { return state_; }
  bool woken() const { return woken_; }  // the polling postcondition
  std::uint64_t round() const { return round_; }

 private:
  std::uint64_t draw_id(Context& ctx);
  void begin_round(Context& ctx, std::uint64_t round);
  void report_or_decide(Context& ctx);
  void finish(Context& ctx, std::uint64_t winner);

  PollingWiring wiring_;
  PollingOptions options_;
  PollingState state_ = PollingState::kAsleep;
  bool woken_ = false;
  std::uint64_t round_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t best_ = 0;
  std::uint64_t best_count_ = 0;
  std::size_t children_reported_ = 0;
};

struct PollingExperiment {
  Topology topology;                    // bidirectional, strongly connected
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  DelayModelPtr delay;                  // takes precedence when set
  ChannelOrdering ordering = ChannelOrdering::kArbitrary;
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  double loss_probability = 0.0;        // failure injection
  unsigned id_bits = 64;
  std::uint64_t seed = 1;
  // Event-queue backend (pure perf knob; results are bit-identical).
  EqueueBackend equeue = EqueueBackend::kAuto;
  SimTime deadline = 1e7;
  // No settle knob: the protocol is purely message-driven, so after the
  // election the runner simply drains the queue to quiescence.
};

struct PollingRunResult {
  bool elected = false;
  std::size_t leader_index = 0;
  SimTime election_time = 0.0;
  std::uint64_t messages = 0;        // sent up to the election moment
  std::uint64_t messages_total = 0;  // including the settle window
  std::uint64_t rounds = 0;          // rounds the winner needed (1 = no tie)
  std::uint64_t woken = 0;           // nodes explicitly polled (must be n)
  std::uint64_t max_leaders_ever = 0;
  // Full termination: one leader, n−1 passive, every node woken, nothing
  // in flight. Guaranteed on reliable channels; under loss injection a
  // dropped WAKE/ECHO/RESULT legitimately leaves this false (the
  // robustness measurement), which callers count as a failure — never as
  // a safety violation.
  bool terminated = false;
  // Safety proper: at most one leader, ever. On reliable channels this
  // also folds in `terminated` (an incomplete lossless run IS a bug).
  bool safety_ok = false;
  std::string safety_detail;
};

// Runs one polling election on the simulator. Safety postconditions mirror
// core/harness.h: exactly one leader, everyone else passive, every node
// woken (the theorem's polling requirement), no messages in flight.
// (Thin shim over the polling AlgorithmDriver below; seeded results are
// bit-identical to the pre-Runtime runner.)
PollingRunResult run_polling_election(const PollingExperiment& experiment);

// The experiment's environment as a runtime-agnostic RuntimeConfig.
RuntimeConfig polling_runtime_config(const PollingExperiment& experiment);

// The polling election as an AlgorithmDriver (runtime/runtime.h): tree
// wiring derived from config.topology in configure(), done once a leader
// exists, post-completion drain to quiescence, full PollingRunResult into
// `*sink`. One driver instance per trial.
std::unique_ptr<AlgorithmDriver> make_polling_driver(
    const PollingExperiment& experiment, PollingRunResult* sink);

struct PollingAggregate {
  Summary messages;
  Summary time;
  Summary rounds;
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  std::uint64_t safety_violations = 0;

  void merge(const PollingAggregate& other);
};

// Seed-ordered, bit-identical parallel trials (see core/trial_pool.h).
PollingAggregate run_polling_trials(PollingExperiment experiment,
                                    std::uint64_t trials,
                                    std::uint64_t seed_base = 1,
                                    unsigned threads = 0);

}  // namespace abe
