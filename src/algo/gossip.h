// Push gossip (epidemic broadcast) on arbitrary ABE graphs.
//
// The paper motivates ABE with sensor and ad-hoc networks; rumor spreading
// is the canonical workload there. Each informed node, at every local clock
// tick, pushes the rumor to one uniformly random out-neighbour. On an ABE
// network the time to full dissemination is governed by the *expected*
// delay bound — another algorithm whose analysis needs exactly the
// knowledge Definition 1 grants (and nothing more). Exercises ticks, drift
// and delay models on non-ring topologies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/network.h"
#include "net/node.h"
#include "runtime/runtime.h"
#include "stats/summary.h"

namespace abe {

class RumorPayload final : public Payload {
 public:
  RumorPayload() = default;
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<RumorPayload>();
  }
  std::string describe() const override { return "Rumor"; }
};

class GossipNode final : public Node {
 public:
  // `initially_informed`: the rumor source(s). `on_informed` fires once,
  // at the transition to informed (never for an initially informed node) —
  // on the thread runtime it runs on the node's thread, so observers must
  // be atomic. It lets run loops watch dissemination without scanning node
  // state, which would race with node threads.
  explicit GossipNode(bool initially_informed,
                      std::function<void()> on_informed = nullptr);

  void on_tick(Context& ctx, std::uint64_t tick) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;

  bool informed() const { return informed_; }
  SimTime informed_at() const { return informed_at_; }
  std::uint64_t pushes() const { return pushes_; }

 private:
  bool informed_;
  std::function<void()> on_informed_;
  SimTime informed_at_ = 0.0;
  std::uint64_t pushes_ = 0;
};

struct GossipExperiment {
  Topology topology;
  std::size_t source = 0;
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  DelayModelPtr delay;  // takes precedence over delay_name when set
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  // Per-attempt silent push drop (failure injection). Gossip keeps pushing
  // every tick, so lost rumors delay — not prevent — dissemination.
  double loss_probability = 0.0;
  std::uint64_t seed = 1;
  // Event-queue backend (pure perf knob; results are bit-identical).
  EqueueBackend equeue = EqueueBackend::kAuto;
  SimTime deadline = 1e6;
};

struct GossipResult {
  bool all_informed = false;
  SimTime spread_time = 0.0;      // until the last node learned the rumor
  std::uint64_t messages = 0;     // total pushes
  double mean_inform_time = 0.0;  // averaged over nodes
};

// Runs one gossip spread on the simulator. (Thin shim over the gossip
// AlgorithmDriver below; seeded results are bit-identical to the
// pre-Runtime runner.)
GossipResult run_gossip(const GossipExperiment& experiment);

// The experiment's environment as a runtime-agnostic RuntimeConfig (the
// driver enables ticks — gossip pushes on the local clock).
RuntimeConfig gossip_runtime_config(const GossipExperiment& experiment);

// Push gossip as an AlgorithmDriver (runtime/runtime.h): done once every
// node is informed (atomic counter fed by on_informed), full GossipResult
// into `*sink`. One driver instance per trial.
std::unique_ptr<AlgorithmDriver> make_gossip_driver(
    const GossipExperiment& experiment, GossipResult* sink);

}  // namespace abe
