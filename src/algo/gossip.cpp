#include "algo/gossip.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "util/check.h"

namespace abe {

GossipNode::GossipNode(bool initially_informed,
                       std::function<void()> on_informed)
    : informed_(initially_informed), on_informed_(std::move(on_informed)) {}

void GossipNode::on_tick(Context& ctx, std::uint64_t /*tick*/) {
  if (!informed_ || ctx.out_degree() == 0) return;
  const std::size_t target = ctx.rng().uniform_int(ctx.out_degree());
  ++pushes_;
  ctx.send(target, std::make_unique<RumorPayload>());
}

void GossipNode::on_message(Context& ctx, std::size_t /*in_index*/,
                            const Payload& payload) {
  payload_as<RumorPayload>(payload);  // type check
  if (!informed_) {
    informed_ = true;
    informed_at_ = ctx.real_now();
    if (on_informed_) on_informed_();
  }
}

std::string GossipNode::state_string() const {
  std::ostringstream os;
  os << (informed_ ? "informed" : "susceptible") << " pushes=" << pushes_;
  return os.str();
}

namespace {

class GossipDriver final : public AlgorithmDriver {
 public:
  GossipDriver(const GossipExperiment& experiment, GossipResult* sink)
      : source_(experiment.source), sink_(sink) {
    ABE_CHECK(sink_ != nullptr);
  }

  void configure(RuntimeConfig& config) override {
    ABE_CHECK_LT(source_, config.topology.n);
    n_ = config.topology.n;
    config.enable_ticks = true;  // informed nodes push on local ticks
  }

  NodePtr make_node(std::size_t index) override {
    const bool informed = index == source_;
    if (informed) {
      // The source never transitions; count it here so the done predicate
      // tracks exactly "nodes informed so far".
      informed_count_.fetch_add(1, std::memory_order_relaxed);
      return std::make_unique<GossipNode>(true);
    }
    std::atomic<std::size_t>* count = &informed_count_;
    return std::make_unique<GossipNode>(false, [count] {
      count->fetch_add(1, std::memory_order_release);
    });
  }

  bool done(const Runtime& /*rt*/) override {
    return informed_count_.load(std::memory_order_acquire) >= n_;
  }

  TrialOutcome extract(Runtime& rt, bool completed) override {
    const RunStats stats = rt.stats();
    sink_->all_informed = completed;
    sink_->messages = stats.messages_sent;

    TrialOutcome out;
    out.messages = sink_->messages;
    if (!completed) {
      out.safety_detail = "rumor did not reach everyone";
      return out;
    }

    Summary inform_times;
    SimTime last = 0.0;
    for (std::size_t i = 0; i < rt.size(); ++i) {
      const auto& node =
          static_cast<const GossipNode&>(rt.node(i).algorithm_node());
      inform_times.add(node.informed_at());
      last = std::max(last, node.informed_at());
    }
    sink_->spread_time = last;
    sink_->mean_inform_time = inform_times.mean();

    out.completed = true;
    // Gossip's safety postcondition is total dissemination itself.
    out.safety_ok = true;
    out.time = sink_->spread_time;
    return out;
  }

 private:
  std::size_t source_;
  GossipResult* sink_;
  std::size_t n_ = 0;
  std::atomic<std::size_t> informed_count_{0};
};

}  // namespace

RuntimeConfig gossip_runtime_config(const GossipExperiment& experiment) {
  validate_topology(experiment.topology);
  RuntimeConfig config;
  config.topology = experiment.topology;
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.loss_probability = experiment.loss_probability;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;
  config.deadline = experiment.deadline;
  return config;
}

std::unique_ptr<AlgorithmDriver> make_gossip_driver(
    const GossipExperiment& experiment, GossipResult* sink) {
  return std::make_unique<GossipDriver>(experiment, sink);
}

GossipResult run_gossip(const GossipExperiment& experiment) {
  GossipResult result;
  const auto driver = make_gossip_driver(experiment, &result);
  run_algorithm_trial(RuntimeKind::kSim, gossip_runtime_config(experiment),
                      *driver);
  return result;
}

}  // namespace abe
