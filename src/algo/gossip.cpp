#include "algo/gossip.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace abe {

GossipNode::GossipNode(bool initially_informed)
    : informed_(initially_informed) {}

void GossipNode::on_tick(Context& ctx, std::uint64_t /*tick*/) {
  if (!informed_ || ctx.out_degree() == 0) return;
  const std::size_t target = ctx.rng().uniform_int(ctx.out_degree());
  ++pushes_;
  ctx.send(target, std::make_unique<RumorPayload>());
}

void GossipNode::on_message(Context& ctx, std::size_t /*in_index*/,
                            const Payload& payload) {
  payload_as<RumorPayload>(payload);  // type check
  if (!informed_) {
    informed_ = true;
    informed_at_ = ctx.real_now();
  }
}

std::string GossipNode::state_string() const {
  std::ostringstream os;
  os << (informed_ ? "informed" : "susceptible") << " pushes=" << pushes_;
  return os.str();
}

GossipResult run_gossip(const GossipExperiment& experiment) {
  validate_topology(experiment.topology);
  ABE_CHECK_LT(experiment.source, experiment.topology.n);

  NetworkConfig config;
  config.topology = experiment.topology;
  config.delay = experiment.delay
                     ? experiment.delay
                     : make_delay_model(experiment.delay_name,
                                        experiment.mean_delay);
  config.clock_bounds = experiment.clock_bounds;
  config.drift = experiment.drift;
  config.processing = experiment.processing;
  config.loss_probability = experiment.loss_probability;
  config.enable_ticks = true;
  config.seed = experiment.seed;
  config.equeue = experiment.equeue;

  Network net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    return std::make_unique<GossipNode>(i == experiment.source);
  });
  net.start();

  auto all_informed = [&] {
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (!static_cast<const GossipNode&>(net.node(i)).informed()) {
        return false;
      }
    }
    return true;
  };
  GossipResult result;
  result.all_informed = net.run_until(all_informed, experiment.deadline);
  result.messages = net.metrics().messages_sent;
  if (!result.all_informed) return result;

  Summary inform_times;
  SimTime last = 0.0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const GossipNode&>(net.node(i));
    inform_times.add(node.informed_at());
    last = std::max(last, node.informed_at());
  }
  result.spread_time = last;
  result.mean_inform_time = inform_times.mean();
  return result;
}

}  // namespace abe
