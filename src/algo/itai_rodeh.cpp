#include "algo/itai_rodeh.h"

#include <sstream>

#include "net/topology.h"
#include "util/check.h"

namespace abe {

std::string IrToken::describe() const {
  std::ostringstream os;
  os << "IR(r=" << round_ << ",id=" << id_ << ",hop=" << hop_
     << (clean_ ? ",clean" : ",dirty") << ")";
  return os.str();
}

ItaiRodehNode::ItaiRodehNode(IrOptions options)
    : options_(std::move(options)) {}

void ItaiRodehNode::on_start(Context& ctx) {
  if (ctx.network_size() == 1) {
    leader_ = true;
    if (options_.on_leader) options_.on_leader(ctx.self(), ctx.real_now());
    return;
  }
  start_round(ctx);
}

void ItaiRodehNode::start_round(Context& ctx) {
  ++round_;
  const std::uint64_t range =
      options_.id_range == 0 ? ctx.network_size() : options_.id_range;
  id_ = 1 + ctx.rng().uniform_int(range);
  ctx.send(0, std::make_unique<IrToken>(round_, id_, 1, true));
}

void ItaiRodehNode::on_message(Context& ctx, std::size_t /*in_index*/,
                               const Payload& payload) {
  const auto& token = payload_as<IrToken>(payload);
  const std::uint64_t n = ctx.network_size();

  if (passive_) {
    // Relay unchanged except for the hop count.
    ctx.send(0, std::make_unique<IrToken>(token.round(), token.id(),
                                          token.hop() + 1, token.clean()));
    return;
  }
  if (leader_) {
    return;  // stale tokens die at the leader
  }

  // Candidate: compare (round, id) lexicographically.
  const bool own_pair = token.round() == round_ && token.id() == id_;
  if (own_pair && token.hop() == n) {
    // Our token made it all the way around.
    if (token.clean()) {
      leader_ = true;
      if (options_.on_leader) options_.on_leader(ctx.self(), ctx.real_now());
    } else {
      start_round(ctx);  // tie this round; redraw
    }
    return;
  }
  const bool greater = token.round() > round_ ||
                       (token.round() == round_ && token.id() > id_);
  if (greater) {
    passive_ = true;
    ctx.send(0, std::make_unique<IrToken>(token.round(), token.id(),
                                          token.hop() + 1, token.clean()));
    return;
  }
  if (own_pair) {
    // Same (round, id) but hop < n: another candidate drew our id. Dirty the
    // token so its originator (and ours, symmetrically) redraws.
    ctx.send(0, std::make_unique<IrToken>(token.round(), token.id(),
                                          token.hop() + 1, false));
    return;
  }
  // Strictly smaller (round, id): purge.
}

std::string ItaiRodehNode::state_string() const {
  std::ostringstream os;
  if (leader_) {
    os << "leader";
  } else if (passive_) {
    os << "passive";
  } else {
    os << "candidate r=" << round_ << " id=" << id_;
  }
  return os.str();
}

IrResult run_itai_rodeh(const IrExperiment& experiment) {
  ABE_CHECK_GE(experiment.n, 1u);
  NetworkConfig config;
  config.topology = unidirectional_ring(experiment.n);
  config.delay = make_delay_model(experiment.delay_name,
                                  experiment.mean_delay);
  config.ordering = experiment.ordering;
  config.seed = experiment.seed;

  Network net(std::move(config));
  struct {
    bool elected = false;
    std::size_t index = 0;
    SimTime when = 0.0;
    std::uint64_t count = 0;
  } leader;

  IrOptions options;
  options.on_leader = [&leader](NodeId node, SimTime when) {
    if (!leader.elected) {
      leader.elected = true;
      leader.index = static_cast<std::size_t>(node.value());
      leader.when = when;
    }
    ++leader.count;
  };
  net.build_nodes([&](std::size_t) -> NodePtr {
    return std::make_unique<ItaiRodehNode>(options);
  });
  net.start();

  IrResult result;
  const bool elected =
      net.run_until([&] { return leader.elected; }, experiment.deadline);
  if (!elected) return result;

  result.elected = true;
  result.leader_index = leader.index;
  result.election_time = leader.when;
  result.messages = net.metrics().messages_sent;
  result.rounds = static_cast<const ItaiRodehNode&>(net.node(leader.index))
                      .round();

  // Drain stale tokens, then check the terminal configuration.
  net.run_until_quiescent(net.now() + 64.0 * experiment.mean_delay *
                                          static_cast<double>(experiment.n));
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const ItaiRodehNode&>(net.node(i));
    if (node.is_leader()) ++leaders;
  }
  result.safety_ok = leaders == 1 && leader.count == 1;
  return result;
}

IrAggregate run_itai_rodeh_trials(IrExperiment experiment,
                                  std::uint64_t trials,
                                  std::uint64_t seed_base) {
  ABE_CHECK_GT(trials, 0u);
  IrAggregate agg;
  for (std::uint64_t t = 0; t < trials; ++t) {
    experiment.seed = seed_base + t;
    const IrResult run = run_itai_rodeh(experiment);
    if (!run.elected) {
      ++agg.failures;
      continue;
    }
    if (!run.safety_ok) ++agg.safety_violations;
    agg.messages.add(static_cast<double>(run.messages));
    agg.time.add(run.election_time);
    agg.rounds.add(static_cast<double>(run.rounds));
  }
  return agg;
}

}  // namespace abe
