// Chang–Roberts leader election for unidirectional rings with unique ids.
//
// The classic non-anonymous baseline: every node sends its id; a node
// forwards ids larger than its own, purges smaller ones, and is elected when
// its own id returns. Average message complexity Θ(n log n), worst case
// Θ(n²). It contrasts the paper's anonymous ABE election on two axes at
// once: it needs unique identities (which the ABE model does not grant) and
// it still pays the super-linear message bill.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.h"
#include "net/node.h"
#include "stats/summary.h"

namespace abe {

class CrToken final : public Payload {
 public:
  explicit CrToken(std::uint64_t id) : id_(id) {}
  std::uint64_t id() const { return id_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<CrToken>(id_);
  }
  std::string describe() const override {
    return "CR(" + std::to_string(id_) + ")";
  }

 private:
  std::uint64_t id_;
};

class ChangRobertsNode final : public Node {
 public:
  // `id` must be unique in the ring.
  ChangRobertsNode(std::uint64_t id,
                   std::function<void(NodeId, SimTime)> on_leader);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;
  bool is_terminated() const override { return leader_; }

  bool is_leader() const { return leader_; }
  std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_;
  std::function<void(NodeId, SimTime)> on_leader_;
  bool passive_ = false;
  bool leader_ = false;
};

struct CrExperiment {
  std::size_t n = 8;
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  ChannelOrdering ordering = ChannelOrdering::kArbitrary;
  // Ids are a random permutation of {1..n} (the average-case assumption
  // behind the Θ(n log n) bound).
  std::uint64_t seed = 1;
  SimTime deadline = 1e7;
};

struct CrResult {
  bool elected = false;
  std::size_t leader_index = 0;
  SimTime election_time = 0.0;
  std::uint64_t messages = 0;
  bool safety_ok = false;
};

CrResult run_chang_roberts(const CrExperiment& experiment);

struct CrAggregate {
  Summary messages;
  Summary time;
  std::uint64_t failures = 0;
  std::uint64_t safety_violations = 0;
};

CrAggregate run_chang_roberts_trials(CrExperiment experiment,
                                     std::uint64_t trials,
                                     std::uint64_t seed_base = 1);

}  // namespace abe
