// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, sequence, closure) triples processed in nondecreasing
// time order; ties break by insertion sequence so runs are deterministic.
//
// Layout: a slab of event records (slot-indexed, free-listed, so the
// allocation high-water mark tracks the peak number of simultaneously live
// events) under a 4-ary min-heap of (time, seq, slot) entries. Records keep
// their heap position, so cancel() removes the entry directly in O(log n) —
// no lazy-deletion tombstones accumulate under schedule/cancel churn (ARQ
// retransmission timers cancel nearly every event they schedule). EventIds
// carry the slot's generation count, so a handle to an event that already
// ran or was cancelled can never touch the slot's next occupant. Actions are
// stored inline in the record (InlineAction) — scheduling allocates nothing
// once the slab has grown to the workload's live size.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/inline_action.h"
#include "sim/time.h"
#include "util/ids.h"

namespace abe {

class Scheduler {
 public:
  using Action = InlineAction;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `action` at absolute time `when` (>= now). Returns a handle
  // usable with cancel().
  EventId schedule_at(SimTime when, Action action);

  // Schedules `action` after `delay` (>= 0) from now.
  EventId schedule_in(SimTime delay, Action action);

  // The handle the next schedule_at/schedule_in call will return. Lets a
  // caller capture the event's own id inside its action (timers do this) —
  // valid only until the next scheduler mutation.
  EventId peek_next_id() const;

  // Cancels a pending event. Returns false when the event already ran,
  // was cancelled before, or never existed — even if its record slot has
  // been reused by a newer event (generation counted).
  bool cancel(EventId id);

  // Runs events until the queue drains or stop is requested. Returns the
  // number of events processed by this call.
  std::uint64_t run();

  // Runs events with time <= deadline. Advances now() to `deadline` when no
  // live event at or before it remains (queue drained, or all pending events
  // are later); after request_stop() with such events still pending, now()
  // stays at the last processed event so they remain runnable. Returns the
  // number processed.
  std::uint64_t run_until(SimTime deadline);

  // Runs at most `max_events` events. Returns the number processed.
  std::uint64_t run_steps(std::uint64_t max_events);

  // Requests run()/run_until() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  // True when no live (non-cancelled) events remain.
  bool idle() const { return heap_.empty(); }

  // Time of the next live event, or +inf when idle. O(1).
  SimTime next_event_time() const {
    return heap_.empty() ? kTimeInfinity : bits_to_time(heap_[0].time_bits);
  }

  // Number of live pending events.
  std::uint64_t live_count() const { return heap_.size(); }

  // Total events processed over the scheduler's lifetime (for metrics).
  std::uint64_t processed_count() const { return processed_; }

  // Number of event records ever allocated: the high-water mark of
  // simultaneously live events, NOT of schedules. Tests assert this stays
  // bounded under schedule/cancel churn (the lazy-deletion design leaked a
  // tombstone per cancel).
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  // Event times are non-negative doubles, whose IEEE-754 bit patterns order
  // identically to their values; storing the bits lets the (time, seq) key
  // compare as one wide unsigned integer instead of two branchy FP tests.
  // The one non-negative value whose bits break that ordering is -0.0
  // (sign bit only — it would sort after +inf), and it does pass the
  // `when >= now_` guard, so canonicalize it to +0.0.
  static std::uint64_t time_to_bits(SimTime t) {
    std::uint64_t bits;
    std::memcpy(&bits, &t, sizeof(bits));
    return bits == (std::uint64_t{1} << 63) ? 0 : bits;
  }
  static SimTime bits_to_time(std::uint64_t bits) {
    SimTime t;
    std::memcpy(&t, &bits, sizeof(t));
    return t;
  }

  struct HeapEntry {
    std::uint64_t time_bits;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNullPos;
    Action action;
  };
  static constexpr std::uint32_t kNullPos = 0xffffffffu;
  // Generations are clipped to 31 bits when encoded so EventId values stay
  // non-negative (TaggedId reserves negatives for "invalid").
  static constexpr std::uint32_t kGenMask = 0x7fffffffu;

  static std::int64_t encode(std::uint32_t slot, std::uint32_t gen) {
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(gen & kGenMask) << 32) | slot);
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
#if defined(__SIZEOF_INT128__)
    using U128 = unsigned __int128;
    return ((U128(a.time_bits) << 64) | a.seq) <
           ((U128(b.time_bits) << 64) | b.seq);
#else
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    return a.seq < b.seq;  // FIFO among simultaneous events
#endif
  }

  // Places `e` at heap position `pos`, bubbling it rootward as needed —
  // the single implementation behind sift_up and the pop path.
  void place_up(HeapEntry e, std::uint32_t pos);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  // Leafward sift specialised for the pop path (see .cpp).
  void sift_down_from_root();
  // Removes the heap entry at `pos`, restoring the heap property.
  void heap_erase(std::uint32_t pos);
  // Returns the record slot at heap position `pos` to the free list.
  void release_slot(std::uint32_t slot);
  // Pops and executes the root event. Pre: !heap_.empty().
  void run_top();

  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;

  std::vector<HeapEntry> heap_;  // 4-ary min-heap over (when, seq)
  std::vector<Slot> slots_;      // slab of event records
  std::vector<std::uint32_t> free_;  // recycled record slots
};

}  // namespace abe
