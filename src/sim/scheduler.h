// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, sequence, closure) triples processed in nondecreasing
// time order; ties break by insertion sequence so runs are deterministic.
// Cancellation uses lazy deletion: the heap entry stays, the action is
// dropped, and the entry is skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace abe {

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `action` at absolute time `when` (>= now). Returns a handle
  // usable with cancel().
  EventId schedule_at(SimTime when, Action action);

  // Schedules `action` after `delay` (>= 0) from now.
  EventId schedule_in(SimTime delay, Action action);

  // Cancels a pending event. Returns false when the event already ran,
  // was cancelled before, or never existed.
  bool cancel(EventId id);

  // Runs events until the queue drains or stop is requested. Returns the
  // number of events processed by this call.
  std::uint64_t run();

  // Runs events with time <= deadline. Advances now() to `deadline` when no
  // live event at or before it remains (queue drained, or all pending events
  // are later); after request_stop() with such events still pending, now()
  // stays at the last processed event so they remain runnable. Returns the
  // number processed.
  std::uint64_t run_until(SimTime deadline);

  // Runs at most `max_events` events. Returns the number processed.
  std::uint64_t run_steps(std::uint64_t max_events);

  // Requests run()/run_until() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  // True when no live (non-cancelled) events remain.
  bool idle() const { return actions_.empty(); }

  // Time of the next live event, or +inf when idle. Prunes lazily-cancelled
  // entries from the head of the queue.
  SimTime next_event_time();

  // Number of live pending events.
  std::uint64_t live_count() const { return actions_.size(); }

  // Total events processed over the scheduler's lifetime (for metrics).
  std::uint64_t processed_count() const { return processed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::int64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  // Pops the next live event into `out` and moves its action into
  // `out_action`. Returns false when no live events remain.
  bool pop_next(Entry& out, Action& out_action);

  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_map<std::int64_t, Action> actions_;
};

}  // namespace abe
