// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, sequence, closure) triples processed in nondecreasing
// time order; ties break by insertion sequence so runs are deterministic.
//
// Since the equeue subsystem landed, the scheduler is a thin policy layer:
// it owns the slab of event records (slot-indexed, free-listed, so the
// allocation high-water mark tracks the peak number of simultaneously live
// events) and delegates the priority structure to a pluggable EventQueue
// backend (sim/equeue/) selected at construction — the extracted 4-ary
// heap, a calendar queue, or a ladder queue. Records are generation
// counted, so a handle to an event that already ran or was cancelled can
// never touch the slot's next occupant, and every backend cancels by slot
// in O(log n) or better — no lazy-deletion tombstones accumulate under
// schedule/cancel churn (ARQ retransmission timers cancel nearly every
// event they schedule). Actions are stored inline in the record
// (InlineAction) — scheduling allocates nothing once the slab has grown to
// the workload's live size.
//
// Backend selection (see sim/equeue/backend.h and README "Event-queue
// backends"): an explicit EqueueBackend constructor argument, overridden
// process-wide by the ABE_EQUEUE environment variable; the default kAuto
// starts on the heap and migrates to the calendar queue once the pending
// set crosses kEqueueAutoThreshold. Pop order — and therefore every seeded
// trial — is bit-identical across backends.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/equeue/backend.h"
#include "sim/equeue/event_queue.h"
#include "sim/equeue/heap_queue.h"
#include "sim/inline_action.h"
#include "sim/time.h"
#include "util/ids.h"

namespace abe {

class Scheduler {
 public:
  using Action = InlineAction;

  // Backend per resolve_equeue_backend(requested): ABE_EQUEUE wins when
  // set, else `requested`. The default is the auto policy.
  explicit Scheduler(EqueueBackend requested = EqueueBackend::kAuto);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `action` at absolute time `when` (>= now). Returns a handle
  // usable with cancel().
  EventId schedule_at(SimTime when, Action action);

  // Schedules `action` after `delay` (>= 0) from now.
  EventId schedule_in(SimTime delay, Action action);

  // The handle the next schedule_at/schedule_in call will return. Lets a
  // caller capture the event's own id inside its action (timers do this) —
  // valid only until the next scheduler mutation.
  EventId peek_next_id() const;

  // Cancels a pending event. Returns false when the event already ran,
  // was cancelled before, or never existed — even if its record slot has
  // been reused by a newer event (generation counted).
  bool cancel(EventId id);

  // Runs events until the queue drains or stop is requested. Returns the
  // number of events processed by this call.
  std::uint64_t run();

  // Runs events with time <= deadline. Advances now() to `deadline` when no
  // live event at or before it remains (queue drained, or all pending events
  // are later); after request_stop() with such events still pending, now()
  // stays at the last processed event so they remain runnable. Returns the
  // number processed.
  std::uint64_t run_until(SimTime deadline);

  // Runs at most `max_events` events. Returns the number processed.
  std::uint64_t run_steps(std::uint64_t max_events);

  // Requests run()/run_until() to return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  // True when no live (non-cancelled) events remain.
  bool idle() const { return q_size() == 0; }

  // Time of the next live event, or +inf when idle. O(1) on the heap
  // backend; amortized O(1) elsewhere. Non-const since the equeue
  // subsystem landed: bucketed backends may reorganize internal storage on
  // peek (the ladder materializes its bottom rung, the calendar caches the
  // minimum — which is also why peek-then-pop loops never pay twice).
  SimTime next_event_time() {
    const QueueEntry* top = q_peek();
    return top == nullptr ? kTimeInfinity : bits_to_time(top->time_bits);
  }

  // Number of live pending events.
  std::uint64_t live_count() const { return q_size(); }

  // Introspection alias for live_count(): the pending-set size, the
  // quantity backend selection keys on.
  std::uint64_t pending() const { return q_size(); }

  // Name of the ACTIVE queue backend: "heap", "calendar" or "ladder".
  // Under kAuto this changes from "heap" to "calendar" when the pending
  // set first crosses kEqueueAutoThreshold.
  const char* backend_name() const { return queue_->name(); }

  // Total events processed over the scheduler's lifetime (for metrics).
  std::uint64_t processed_count() const { return processed_; }

  // Lifetime schedule_at/schedule_in calls and successful cancels; together
  // with processed_count these are the scheduler rows of the obs metrics
  // snapshot (obs/metrics.h). Always-on plain counters: one add (plus one
  // compare for the high-water mark) per schedule is in the noise on
  // bench_e1_scheduler, which gates this file's hot path.
  std::uint64_t scheduled_count() const { return scheduled_; }
  std::uint64_t cancelled_count() const { return cancelled_; }
  // Largest pending-set size ever observed after a push.
  std::uint64_t queue_high_water() const { return queue_high_water_; }

  // Number of event records ever allocated: the high-water mark of
  // simultaneously live events, NOT of schedules. Tests assert this stays
  // bounded under schedule/cancel churn (the lazy-deletion design leaked a
  // tombstone per cancel).
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  // Event times are non-negative doubles, whose IEEE-754 bit patterns order
  // identically to their values; storing the bits lets the (time, seq) key
  // compare as one wide unsigned integer instead of two branchy FP tests.
  // The one non-negative value whose bits break that ordering is -0.0
  // (sign bit only — it would sort after +inf), and it does pass the
  // `when >= now_` guard, so canonicalize it to +0.0.
  static std::uint64_t time_to_bits(SimTime t) {
    std::uint64_t bits;
    std::memcpy(&bits, &t, sizeof(bits));
    return bits == (std::uint64_t{1} << 63) ? 0 : bits;
  }
  static SimTime bits_to_time(std::uint64_t bits) {
    SimTime t;
    std::memcpy(&t, &bits, sizeof(t));
    return t;
  }

  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
    Action action;
  };
  // Generations are clipped to 31 bits when encoded so EventId values stay
  // non-negative (TaggedId reserves negatives for "invalid").
  static constexpr std::uint32_t kGenMask = 0x7fffffffu;
  static constexpr std::uint32_t kMaxSlot = 0xffffffffu;

  static std::int64_t encode(std::uint32_t slot, std::uint32_t gen) {
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(gen & kGenMask) << 32) | slot);
  }

  // Returns the record slot to the free list.
  void release_slot(std::uint32_t slot);
  // Pops and executes the earliest event. Pre: !idle().
  void run_top();
  // kAuto policy: heap -> calendar migration past the threshold.
  void maybe_migrate();

  // Devirtualized queue access: the heap is the default backend of every
  // small simulation (the elections the repo benchmarks live on), so when
  // it is active the run loops go through `fast_heap_` — HeapQueue is
  // final with inline bodies, so these compile to the same code the
  // pre-equeue scheduler had. The branch predicts perfectly (the pointer
  // changes at most once, at auto-migration).
  std::size_t q_size() const {
    return fast_heap_ != nullptr ? fast_heap_->size() : queue_->size();
  }
  const QueueEntry* q_peek() {
    return fast_heap_ != nullptr ? fast_heap_->peek_min()
                                 : queue_->peek_min();
  }
  QueueEntry q_pop() {
    return fast_heap_ != nullptr ? fast_heap_->pop_min()
                                 : queue_->pop_min();
  }
  void q_push(const QueueEntry& entry) {
    if (fast_heap_ != nullptr) {
      fast_heap_->push(entry);
    } else {
      queue_->push(entry);
    }
  }
  bool q_erase(std::uint32_t slot) {
    return fast_heap_ != nullptr ? fast_heap_->erase_slot(slot)
                                 : queue_->erase_slot(slot);
  }

  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t queue_high_water_ = 0;
  bool stop_requested_ = false;
  bool auto_backend_ = false;  // still eligible to migrate

  std::unique_ptr<EventQueue> queue_;
  HeapQueue* fast_heap_ = nullptr;  // == queue_.get() iff the heap is active
  std::vector<Slot> slots_;          // slab of event records
  std::vector<std::uint32_t> free_;  // recycled record slots
};

}  // namespace abe
