// Simulated time.
//
// Real (global) time is a double in abstract "time units"; the paper's
// quantities (expected delay bound δ, processing bound γ, clock rates) are
// all expressed in the same unit. Local clock readings are also doubles but
// live in each node's own timescale (see clock/local_clock.h).
#pragma once

#include <limits>

namespace abe {

using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<double>::infinity();

}  // namespace abe
