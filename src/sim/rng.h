// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64, and
// hand-rolled inverse-transform samplers, instead of <random>, so that every
// experiment is bit-reproducible across standard libraries and platforms.
//
// Streams: experiments derive independent named sub-streams from one root
// seed (`Rng::substream`), so adding a consumer never perturbs the draws seen
// by existing consumers — a prerequisite for clean A/B comparisons.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace abe {

// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

// Deterministic 64-bit hash of a string (FNV-1a), used to name sub-streams.
std::uint64_t hash_name(std::string_view name);

class Rng {
 public:
  // Seeds the four xoshiro words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Derives an independent generator for (this seed, name, index).
  Rng substream(std::string_view name, std::uint64_t index = 0) const;

  // Core generator: uniform 64-bit word.
  std::uint64_t next_u64();

  // Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int_range(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponential with the given mean (inverse transform). Requires mean > 0.
  double exponential(double mean);

  // Number of Bernoulli(p) failures before the first success; support {0,1,…}
  // with mean (1-p)/p. Requires p in (0, 1].
  std::uint64_t geometric_failures(double p);

  // Standard normal via Box–Muller (no caching, stateless draws).
  double normal(double mean, double stddev);

  // Pareto (Lomax) with shape alpha > 1 and scale lambda > 0:
  // P(X > x) = (1 + x/lambda)^(-alpha), mean = lambda / (alpha - 1).
  double lomax(double alpha, double lambda);

  // Sum of k independent exponentials, each with mean `mean_each` (Erlang-k).
  double erlang(unsigned k, double mean_each);

  // Random permutation of {0, …, n-1} (Fisher–Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  // Exposes the seed this generator was created from (for logging).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

}  // namespace abe
