#include "sim/scheduler.h"

#include <utility>

#include "util/check.h"

namespace abe {

Scheduler::Scheduler(EqueueBackend requested) {
  const EqueueBackend resolved = resolve_equeue_backend(requested);
  if (resolved == EqueueBackend::kAuto) {
    auto_backend_ = true;
    queue_ = make_event_queue(EqueueBackend::kHeap);
  } else {
    queue_ = make_event_queue(resolved);
  }
  if (resolved == EqueueBackend::kAuto || resolved == EqueueBackend::kHeap) {
    fast_heap_ = static_cast<HeapQueue*>(queue_.get());
  }
}

void Scheduler::maybe_migrate() {
  if (!auto_backend_ || q_size() <= kEqueueAutoThreshold) return;
  // One-way migration: workloads that grow past the threshold have left the
  // heap's sweet spot for good (shrinking back would thrash on workloads
  // oscillating around the boundary). Pop order is unaffected — the entry
  // set carries over and every backend pops in the same strict key order.
  auto_backend_ = false;
  fast_heap_ = nullptr;
  std::vector<QueueEntry> entries;
  entries.reserve(queue_->size());
  queue_->drain_into(entries);
  queue_ = make_event_queue(EqueueBackend::kCalendar);
  for (const QueueEntry& e : entries) queue_->push(e);
}

EventId Scheduler::schedule_at(SimTime when, Action action) {
  ABE_CHECK_GE(when, now_);
  ABE_CHECK(static_cast<bool>(action)) << "scheduled action must be callable";
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    ABE_CHECK_LT(slots_.size(), static_cast<std::size_t>(kMaxSlot));
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.live = true;
  q_push(QueueEntry{time_to_bits(when), next_seq_, slot});
  ++next_seq_;
  ++scheduled_;
  if (q_size() > queue_high_water_) queue_high_water_ = q_size();
  // Threshold check inline; the out-of-line migration itself runs at most
  // once per scheduler lifetime.
  if (auto_backend_ && q_size() > kEqueueAutoThreshold) maybe_migrate();
  return EventId{encode(slot, s.gen)};
}

EventId Scheduler::schedule_in(SimTime delay, Action action) {
  ABE_CHECK_GE(delay, 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

EventId Scheduler::peek_next_id() const {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    return EventId{encode(slot, slots_[slot].gen)};
  }
  return EventId{encode(static_cast<std::uint32_t>(slots_.size()), 0)};
}

bool Scheduler::cancel(EventId id) {
  const std::int64_t v = id.value();
  if (v < 0) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(v) & 0xffffffffu);
  const std::uint32_t gen =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // !live: the event already ran or was cancelled and the slot is free.
  // Generation mismatch: the slot was reused by a newer event — this
  // handle's event is long gone; never touch the new occupant.
  if (!s.live || (s.gen & kGenMask) != gen) return false;
  ABE_CHECK(q_erase(slot)) << "live slot missing from backend";
  release_slot(slot);
  ++cancelled_;
  return true;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  s.live = false;
  ++s.gen;  // invalidates every outstanding EventId for this slot
  // Generations are encoded in 31 bits; rather than let a slot's counter
  // wrap (after 2^31 reuses a sufficiently stale handle could alias a live
  // event), retire the slot permanently once the encoding saturates. Costs
  // one ~64-byte record per 2^31 events through a slot — nothing.
  if (s.gen < kGenMask) free_.push_back(slot);
}

void Scheduler::run_top() {
  const QueueEntry top = q_pop();
  const SimTime when = bits_to_time(top.time_bits);
  ABE_CHECK_GE(when, now_);
  now_ = when;
  // Move the action out and retire the record *before* invoking: the action
  // may schedule new events, growing the slab under our feet.
  Action action = std::move(slots_[top.slot].action);
  release_slot(top.slot);
  action.invoke_and_reset();
  ++processed_;
}

std::uint64_t Scheduler::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && q_size() != 0) {
    run_top();
    ++n;
  }
  return n;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  ABE_CHECK_GE(deadline, now_);
  const std::uint64_t deadline_bits = time_to_bits(deadline);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_) {
    const QueueEntry* top = q_peek();
    if (top == nullptr || top->time_bits > deadline_bits) break;
    run_top();
    ++n;
  }
  // Fast-forward to the deadline only when no live event remains at or
  // before it. When request_stop() fired with such events still pending,
  // advancing would strand them in the past and abort the next run() on
  // its e.when >= now_ invariant.
  if (now_ < deadline && next_event_time() > deadline) now_ = deadline;
  return n;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stop_requested_ && q_size() != 0) {
    run_top();
    ++n;
  }
  return n;
}

}  // namespace abe
