#include "sim/scheduler.h"

#include <utility>

#include "util/check.h"

namespace abe {

EventId Scheduler::schedule_at(SimTime when, Action action) {
  ABE_CHECK_GE(when, now_);
  ABE_CHECK(static_cast<bool>(action)) << "scheduled action must be callable";
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    ABE_CHECK_LT(slots_.size(), static_cast<std::size_t>(kNullPos));
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{time_to_bits(when), next_seq_, slot});
  ++next_seq_;
  sift_up(s.heap_pos);
  return EventId{encode(slot, s.gen)};
}

EventId Scheduler::schedule_in(SimTime delay, Action action) {
  ABE_CHECK_GE(delay, 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

EventId Scheduler::peek_next_id() const {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    return EventId{encode(slot, slots_[slot].gen)};
  }
  return EventId{encode(static_cast<std::uint32_t>(slots_.size()), 0)};
}

bool Scheduler::cancel(EventId id) {
  const std::int64_t v = id.value();
  if (v < 0) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(v) & 0xffffffffu);
  const std::uint32_t gen =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(v) >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // heap_pos == kNullPos: the event already ran or was cancelled and the
  // slot is free. Generation mismatch: the slot was reused by a newer event
  // — this handle's event is long gone; never touch the new occupant.
  if (s.heap_pos == kNullPos || (s.gen & kGenMask) != gen) return false;
  heap_erase(s.heap_pos);
  release_slot(slot);
  return true;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  s.heap_pos = kNullPos;
  ++s.gen;  // invalidates every outstanding EventId for this slot
  // Generations are encoded in 31 bits; rather than let a slot's counter
  // wrap (after 2^31 reuses a sufficiently stale handle could alias a live
  // event), retire the slot permanently once the encoding saturates. Costs
  // one ~64-byte record per 2^31 events through a slot — nothing.
  if (s.gen < kGenMask) free_.push_back(slot);
}

void Scheduler::place_up(HeapEntry e, std::uint32_t pos) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
}

void Scheduler::sift_up(std::uint32_t pos) { place_up(heap_[pos], pos); }

void Scheduler::sift_down(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first = pos * 4 + 1;
    if (first >= size) break;
    std::uint32_t best = first;
    const std::uint32_t end = first + 4 < size ? first + 4 : size;
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
}

// Pop path: the root hole is refilled with the (late) last entry, which
// almost always sinks back to the bottom. Walking the min-child path to a
// leaf first (3 comparisons per level, none against the moved entry) and
// then sifting up from the leaf beats the textbook sift_down, which pays a
// fourth comparison per level just to discover "keep sinking".
void Scheduler::sift_down_from_root() {
  const HeapEntry e = heap_[0];
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  std::uint32_t pos = 0;
  for (;;) {
    const std::uint32_t first = pos * 4 + 1;
    if (first >= size) break;
    std::uint32_t best = first;
    const std::uint32_t end = first + 4 < size ? first + 4 : size;
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  // e lands at the leaf hole; bubble it back up to its true position
  // (place_up directly — writing e into the hole just to re-read it would
  // cost a measurable fraction of the pop on this path).
  place_up(e, pos);
}

void Scheduler::heap_erase(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos].slot].heap_pos = pos;
    heap_.pop_back();
    // The moved-in entry may violate the heap property in either direction.
    if (pos > 0 && earlier(heap_[pos], heap_[(pos - 1) >> 2])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

void Scheduler::run_top() {
  const HeapEntry top = heap_[0];
  const SimTime when = bits_to_time(top.time_bits);
  ABE_CHECK_GE(when, now_);
  now_ = when;
  // Move the action out and retire the record *before* invoking: the action
  // may schedule new events, growing the slab and heap under our feet.
  Action action = std::move(slots_[top.slot].action);
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (last != 0) {
    heap_[0] = heap_[last];
    slots_[heap_[0].slot].heap_pos = 0;
    heap_.pop_back();
    sift_down_from_root();
  } else {
    heap_.pop_back();
  }
  release_slot(top.slot);
  action.invoke_and_reset();
  ++processed_;
}

std::uint64_t Scheduler::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && !heap_.empty()) {
    run_top();
    ++n;
  }
  return n;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  ABE_CHECK_GE(deadline, now_);
  const std::uint64_t deadline_bits = time_to_bits(deadline);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && !heap_.empty()) {
    if (heap_[0].time_bits > deadline_bits) break;
    run_top();
    ++n;
  }
  // Fast-forward to the deadline only when no live event remains at or
  // before it. When request_stop() fired with such events still pending,
  // advancing would strand them in the past and abort the next run() on
  // its e.when >= now_ invariant.
  if (now_ < deadline && next_event_time() > deadline) now_ = deadline;
  return n;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (n < max_events && !stop_requested_ && !heap_.empty()) {
    run_top();
    ++n;
  }
  return n;
}

}  // namespace abe
