#include "sim/scheduler.h"

#include <utility>

#include "util/check.h"

namespace abe {

EventId Scheduler::schedule_at(SimTime when, Action action) {
  ABE_CHECK_GE(when, now_);
  ABE_CHECK(static_cast<bool>(action)) << "scheduled action must be callable";
  const std::int64_t id = static_cast<std::int64_t>(next_seq_);
  queue_.push(Entry{when, next_seq_, id});
  actions_.emplace(id, std::move(action));
  ++next_seq_;
  return EventId{id};
}

EventId Scheduler::schedule_in(SimTime delay, Action action) {
  ABE_CHECK_GE(delay, 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
  return actions_.erase(id.value()) > 0;
}

bool Scheduler::pop_next(Entry& out, Action& out_action) {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    auto it = actions_.find(top.id);
    if (it == actions_.end()) continue;  // lazily cancelled
    out = top;
    out_action = std::move(it->second);
    actions_.erase(it);
    return true;
  }
  return false;
}

SimTime Scheduler::next_event_time() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (actions_.count(top.id) > 0) return top.when;
    queue_.pop();  // cancelled; discard
  }
  return kTimeInfinity;
}

std::uint64_t Scheduler::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  Entry e;
  Action action;
  while (!stop_requested_ && pop_next(e, action)) {
    ABE_CHECK_GE(e.when, now_);
    now_ = e.when;
    action();
    ++n;
    ++processed_;
  }
  return n;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  ABE_CHECK_GE(deadline, now_);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && !queue_.empty()) {
    // Peek for the next live entry without consuming events past deadline.
    Entry top = queue_.top();
    auto it = actions_.find(top.id);
    if (it == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    queue_.pop();
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = top.when;
    action();
    ++n;
    ++processed_;
  }
  // Fast-forward to the deadline only when no live event remains at or
  // before it. When request_stop() fired with such events still pending,
  // advancing would strand them in the past and abort the next run() on
  // its e.when >= now_ invariant.
  if (now_ < deadline && next_event_time() > deadline) now_ = deadline;
  return n;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  Entry e;
  Action action;
  while (n < max_events && !stop_requested_ && pop_next(e, action)) {
    ABE_CHECK_GE(e.when, now_);
    now_ = e.when;
    action();
    ++n;
    ++processed_;
  }
  return n;
}

}  // namespace abe
