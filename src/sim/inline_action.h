// Small-buffer-optimised move-only callable for scheduler event actions.
//
// Every simulated message, timer and tick is one scheduled closure, so the
// per-event cost of std::function (heap allocation for captures beyond the
// ~16-byte libstdc++ SSO, plus RTTI-driven dispatch) is pure hot-path
// overhead. InlineAction stores captures up to kInlineSize bytes directly in
// the event record — every closure the simulator creates fits — and falls
// back to the heap only for oversized or throwing-move callables.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace abe {

class InlineAction {
 public:
  // Sized for the largest hot-path closure (message delivery captures a
  // shared_ptr payload plus routing fields: 48 bytes).
  static constexpr std::size_t kInlineSize = 48;

  // True when a callable of type F is stored in the inline buffer (no heap
  // allocation). Relocation must not throw because the scheduler's slab
  // moves records on growth.
  template <typename F>
  static constexpr bool stores_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT: implicit like std::function
    using D = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::kOps;
    } else {
      using P = D*;
      ::new (static_cast<void*>(buf_)) P(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Pre: *this holds a callable.
  void operator()() { ops_->invoke(buf_); }

  // Invokes the callable and destroys it in one dispatch (the scheduler's
  // fire path: one fewer indirect call than operator() + ~InlineAction).
  // Pre: *this holds a callable; leaves *this empty. ops_ stays set until
  // the call returns so a throwing callable is still destroyed (exactly
  // once) by ~InlineAction during unwind.
  void invoke_and_reset() {
    ops_->invoke_destroy(buf_);
    ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    void (*invoke_destroy)(void* buf);
    // Move-constructs the payload at dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static D* get(void* buf) { return std::launder(reinterpret_cast<D*>(buf)); }
    static void invoke(void* buf) { (*get(buf))(); }
    static void invoke_destroy(void* buf) {
      D* p = get(buf);
      (*p)();
      p->~D();
    }
    static void relocate(void* dst, void* src) noexcept {
      D* s = get(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* buf) noexcept { get(buf)->~D(); }
    static constexpr Ops kOps{&invoke, &invoke_destroy, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    using P = D*;
    static P& get(void* buf) {
      return *std::launder(reinterpret_cast<P*>(buf));
    }
    static void invoke(void* buf) { (*get(buf))(); }
    static void invoke_destroy(void* buf) {
      P p = get(buf);
      (*p)();
      delete p;
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) P(get(src));
      get(src).~P();
    }
    static void destroy(void* buf) noexcept { delete get(buf); }
    static constexpr Ops kOps{&invoke, &invoke_destroy, &relocate, &destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace abe
