// 4-ary min-heap backend: the scheduler's original priority structure,
// extracted behavior-preserving from the pre-equeue Scheduler.
//
// O(log n) push/pop/erase with a per-slot heap-position index so cancel
// removes its entry directly — no lazy-deletion tombstones accumulate under
// schedule/cancel churn. The 4-ary layout trades a slightly worse
// comparison count for a much better cache profile than the binary heap,
// and the pop path walks the min-child chain to a leaf before bubbling up
// (see sift_down_from_root) — cheapest at the small-to-medium pending sizes
// where this backend wins.
//
// Methods are defined inline in this header on purpose: the heap is the
// default backend for every small simulation (elections at n <= a few
// thousand), and the scheduler's devirtualized fast path (Scheduler's
// fast_heap_) relies on these bodies being visible so pop/push/cancel
// inline into the run loops exactly as they did before the subsystem
// existed. The elections-per-second trajectory is the regression test.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/equeue/event_queue.h"
#include "util/check.h"

namespace abe {

class HeapQueue final : public EventQueue {
 public:
  void push(const QueueEntry& entry) override {
    const auto pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(entry);
    pos_of(entry.slot) = pos;
    place_up(entry, pos);
  }

  const QueueEntry* peek_min() override {
    return heap_.empty() ? nullptr : &heap_[0];
  }

  QueueEntry pop_min() override {
    ABE_CHECK(!heap_.empty());
    // pos_[top.slot] is left stale: erase_slot is only called for live
    // slots (interface precondition), so nobody reads it again before the
    // slot's next push overwrites it.
    const QueueEntry top = heap_[0];
    const auto last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (last != 0) {
      heap_[0] = heap_[last];
      pos_[heap_[0].slot] = 0;
      heap_.pop_back();
      sift_down_from_root();
    } else {
      heap_.pop_back();
    }
    return top;
  }

  bool erase_slot(std::uint32_t slot) override {
    if (slot >= pos_.size() || pos_[slot] == kNullPos) return false;
    heap_erase(pos_[slot]);
    pos_[slot] = kNullPos;
    return true;
  }

  void drain_into(std::vector<QueueEntry>& out) override {
    out.insert(out.end(), heap_.begin(), heap_.end());
    heap_.clear();  // positions go stale; the next push of a slot overwrites
  }

  std::size_t size() const override { return heap_.size(); }
  const char* name() const override { return "heap"; }

 private:
  static constexpr std::uint32_t kNullPos = 0xffffffffu;

  std::uint32_t& pos_of(std::uint32_t slot) {
    if (slot >= pos_.size()) pos_.resize(slot + 1, kNullPos);
    return pos_[slot];
  }

  // Places `e` at heap position `pos`, bubbling it rootward as needed —
  // the single implementation behind sift_up and the pop path.
  void place_up(QueueEntry e, std::uint32_t pos) {
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) >> 2;
      if (!entry_earlier(e, heap_[parent])) break;
      heap_[pos] = heap_[parent];
      pos_[heap_[pos].slot] = pos;
      pos = parent;
    }
    heap_[pos] = e;
    pos_[e.slot] = pos;
  }

  void sift_down(std::uint32_t pos) {
    const QueueEntry e = heap_[pos];
    const auto size = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first = pos * 4 + 1;
      if (first >= size) break;
      std::uint32_t best = first;
      const std::uint32_t end = first + 4 < size ? first + 4 : size;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        if (entry_earlier(heap_[c], heap_[best])) best = c;
      }
      if (!entry_earlier(heap_[best], e)) break;
      heap_[pos] = heap_[best];
      pos_[heap_[pos].slot] = pos;
      pos = best;
    }
    heap_[pos] = e;
    pos_[e.slot] = pos;
  }

  // Leafward sift specialised for the pop path: the root hole is walked
  // down the min-child chain to a leaf (3 comparisons per level, none
  // against the moved entry), then the displaced last entry bubbles up
  // from there — beats the textbook sift_down, which pays a fourth
  // comparison per level just to discover "keep sinking".
  void sift_down_from_root() {
    const QueueEntry e = heap_[0];
    const auto size = static_cast<std::uint32_t>(heap_.size());
    std::uint32_t pos = 0;
    for (;;) {
      const std::uint32_t first = pos * 4 + 1;
      if (first >= size) break;
      std::uint32_t best = first;
      const std::uint32_t end = first + 4 < size ? first + 4 : size;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        if (entry_earlier(heap_[c], heap_[best])) best = c;
      }
      heap_[pos] = heap_[best];
      pos_[heap_[pos].slot] = pos;
      pos = best;
    }
    // e lands at the leaf hole; bubble it back up to its true position
    // (place_up directly — writing e into the hole just to re-read it
    // would cost a measurable fraction of the pop on this path).
    place_up(e, pos);
  }

  void heap_erase(std::uint32_t pos) {
    const auto last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (pos != last) {
      heap_[pos] = heap_[last];
      pos_[heap_[pos].slot] = pos;
      heap_.pop_back();
      // The moved-in entry may violate the heap property either way.
      if (pos > 0 && entry_earlier(heap_[pos], heap_[(pos - 1) >> 2])) {
        place_up(heap_[pos], pos);
      } else {
        sift_down(pos);
      }
    } else {
      heap_.pop_back();
    }
  }

  std::vector<QueueEntry> heap_;
  std::vector<std::uint32_t> pos_;  // slot -> heap position (kNullPos: none)
};

}  // namespace abe
