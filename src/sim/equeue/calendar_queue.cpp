#include "sim/equeue/calendar_queue.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace abe {

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {
  bucket_mask_ = kMinBuckets - 1;
}

std::uint64_t CalendarQueue::virtual_bucket(SimTime t) const {
  const double vb = t * inv_width_;
  if (!(vb < static_cast<double>(kMaxVb))) return kMaxVb;  // inf/NaN too
  return static_cast<std::uint64_t>(vb);
}

CalendarQueue::Locator& CalendarQueue::locator_of(std::uint32_t slot) {
  if (slot >= locators_.size()) locators_.resize(slot + 1);
  return locators_[slot];
}

void CalendarQueue::insert_item(const Item& item) {
  const auto bucket =
      static_cast<std::uint32_t>(item.vb & bucket_mask_);
  auto& day = buckets_[bucket];
  locator_of(item.entry.slot) =
      Locator{bucket, static_cast<std::uint32_t>(day.size())};
  day.push_back(item);
}

void CalendarQueue::push(const QueueEntry& entry) {
  const Item item{entry, virtual_bucket(entry_time(entry))};
  insert_item(item);
  ++size_;
  if (item.vb < cursor_vb_) cursor_vb_ = item.vb;
  if (cached_min_valid_ && entry_earlier(entry, cached_min_)) {
    cached_min_ = entry;
  }
  maybe_resize();
}

void CalendarQueue::remove_at(std::uint32_t bucket, std::uint32_t index) {
  auto& day = buckets_[bucket];
  const std::uint32_t slot = day[index].entry.slot;
  if (index + 1 != day.size()) {
    day[index] = day.back();
    locators_[day[index].entry.slot].index = index;
  }
  day.pop_back();
  // The removed slot's locator goes stale rather than being cleared: the
  // erase_slot precondition (live slots only) makes the write pure cost.
  --size_;
  if (cached_min_valid_ && cached_min_.slot == slot) {
    cached_min_valid_ = false;
  }
}

const QueueEntry* CalendarQueue::find_min() {
  if (cached_min_valid_) return &cached_min_;
  // Cursor scan: walk days forward from cursor_vb_ for at most one year.
  // Entries stored in the same physical bucket for a later year are
  // filtered by their cached virtual day.
  const std::uint64_t nbuckets = bucket_mask_ + 1;
  for (std::uint64_t step = 0; step < nbuckets; ++step) {
    const std::uint64_t vb = cursor_vb_ + step;
    const auto& day = buckets_[static_cast<std::uint32_t>(vb & bucket_mask_)];
    const Item* best = nullptr;
    for (const Item& item : day) {
      if (item.vb != vb) continue;
      if (best == nullptr || entry_earlier(item.entry, best->entry)) {
        best = &item;
      }
    }
    if (best != nullptr) {
      cursor_vb_ = vb;
      cached_min_ = best->entry;
      cached_min_valid_ = true;
      return &cached_min_;
    }
  }
  // Everything lives beyond the cursor's year (a sparse far-future set):
  // one full-wall scan finds the minimum and re-anchors the cursor.
  const Item* best = nullptr;
  for (const auto& day : buckets_) {
    for (const Item& item : day) {
      if (best == nullptr || entry_earlier(item.entry, best->entry)) {
        best = &item;
      }
    }
  }
  ABE_CHECK(best != nullptr);
  cursor_vb_ = best->vb;
  cached_min_ = best->entry;
  cached_min_valid_ = true;
  return &cached_min_;
}

const QueueEntry* CalendarQueue::peek_min() {
  if (size_ == 0) return nullptr;
  return find_min();
}

QueueEntry CalendarQueue::pop_min() {
  ABE_CHECK_GT(size_, 0u);
  const QueueEntry top = *find_min();
  const Locator loc = locators_[top.slot];
  remove_at(loc.bucket, loc.index);
  maybe_resize();
  return top;
}

bool CalendarQueue::erase_slot(std::uint32_t slot) {
  if (slot >= locators_.size() || locators_[slot].bucket == kNullBucket) {
    return false;  // never-pushed slot; stale locators are NOT detected
  }
  const Locator loc = locators_[slot];
  remove_at(loc.bucket, loc.index);
  maybe_resize();
  return true;
}

void CalendarQueue::drain_into(std::vector<QueueEntry>& out) {
  for (auto& day : buckets_) {
    for (const Item& item : day) out.push_back(item.entry);
    day.clear();
  }
  size_ = 0;
  cached_min_valid_ = false;
  cursor_vb_ = 0;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<Item> items;
  items.reserve(size_);
  for (auto& day : buckets_) {
    for (const Item& item : day) items.push_back(item);
    day.clear();
  }

  // Re-tune the width to the mean gap NEAR THE HEAD (see header block):
  // pops always consume the head, and distributions the simulator actually
  // produces (exponential remaining delays) cluster there — a global
  // spread/size estimate would make head days an order of magnitude too
  // full. Brown samples separations of the next events to pop; we get the
  // same measurement from the k smallest live times. Infinite times are
  // excluded but stay representable via the virtual-day clamp.
  std::vector<double> times;
  times.reserve(items.size());
  for (const Item& item : items) {
    const double t = entry_time(item.entry);
    if (std::isfinite(t)) times.push_back(t);
  }
  double width = 1.0;
  if (times.size() >= 2) {
    const std::size_t k = std::min<std::size_t>(times.size() - 1, 64);
    std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k),
                     times.end());
    const double kth = times[k];
    const double lo = *std::min_element(
        times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k));
    const double head_gap = (kth - lo) / static_cast<double>(k);
    width = kEventsPerBucket * head_gap;
    if (!(width > 0.0) || !std::isfinite(width)) {
      // Degenerate head (simultaneous events): fall back to the global
      // spread, then to an arbitrary positive width.
      const double hi = *std::max_element(times.begin(), times.end());
      width = kEventsPerBucket * (hi - lo) / static_cast<double>(times.size());
      if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;
    }
  }
  width_ = width;
  inv_width_ = 1.0 / width;

  buckets_.assign(nbuckets, {});
  bucket_mask_ = nbuckets - 1;
  cursor_vb_ = kMaxVb;
  for (Item& item : items) {
    item.vb = virtual_bucket(entry_time(item.entry));
    cursor_vb_ = std::min(cursor_vb_, item.vb);
    insert_item(item);
  }
  if (items.empty()) cursor_vb_ = 0;
  cached_min_valid_ = false;
}

void CalendarQueue::maybe_resize() {
  const std::size_t nbuckets = bucket_mask_ + 1;
  if (size_ > 8 * nbuckets) {
    rebuild(nbuckets * 2);
  } else if (nbuckets > kMinBuckets && size_ < 2 * nbuckets) {
    rebuild(nbuckets / 2);
  }
}

}  // namespace abe
