#include "sim/equeue/event_queue.h"

#include "sim/equeue/calendar_queue.h"
#include "sim/equeue/heap_queue.h"
#include "sim/equeue/ladder_queue.h"
#include "util/check.h"

namespace abe {

std::unique_ptr<EventQueue> make_event_queue(EqueueBackend backend) {
  switch (backend) {
    case EqueueBackend::kHeap:
      return std::make_unique<HeapQueue>();
    case EqueueBackend::kCalendar:
      return std::make_unique<CalendarQueue>();
    case EqueueBackend::kLadder:
      return std::make_unique<LadderQueue>();
    case EqueueBackend::kAuto:
      break;
  }
  ABE_CHECK(false) << "kAuto is a scheduler policy, not a queue backend";
  return nullptr;
}

}  // namespace abe
