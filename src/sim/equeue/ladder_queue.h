// Ladder queue backend: O(1)-amortized event queue that stays O(1) under
// heavy-tailed and strongly clustered timestamp distributions.
//
// The calendar queue assumes a roughly uniform spread: one global bucket
// width must fit everything. Heavy-tailed delay mixes (the simulator's
// Erlang/exponential/Lomax cells) cluster most events near now() with a
// long sparse tail, and any single width is wrong for one of the two
// regions. The ladder queue [Tang, Goh, Thng, TOMACS 2005] fixes this by
// bucketing lazily and hierarchically:
//
//   * Top: an unsorted bag for far-future events (beyond every structure
//     built so far). Push is O(1) append.
//   * Rungs: when the consumption front reaches the top bag, its events are
//     spread over a rung of buckets sized to THAT bag's min/max span. When
//     a single bucket is reached and still holds too many events, it spawns
//     a deeper rung spanning just that bucket — the bucket width refines
//     itself exactly where events cluster, with no global tuning knob.
//   * Bottom: the current bucket's events, sorted (descending, so pop is a
//     pop_back) once the bucket is small enough. All pops come from here.
//
// Each event is touched a small constant number of times on its way down
// (top -> O(1) rungs -> bottom sort of O(threshold) elements), giving O(1)
// amortized push/pop independent of the timestamp distribution.
//
// Determinism: region boundaries only partition the pending set; pop order
// within bottom is by full packed (time-bits, seq) key and the region
// invariants (bottom < every rung entry < every top entry, with boundary
// ties resolved by seq because later pushes get larger sequence numbers)
// guarantee the global pop sequence is the same strict key order every
// other backend produces.
//
// Cancellation: a per-slot locator (region, bucket, index) gives O(1)
// erase from the top bag and rung buckets (swap-remove) and O(threshold)
// from the sorted bottom (erase + shift).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/equeue/event_queue.h"

namespace abe {

class LadderQueue final : public EventQueue {
 public:
  void push(const QueueEntry& entry) override;
  const QueueEntry* peek_min() override;
  QueueEntry pop_min() override;
  bool erase_slot(std::uint32_t slot) override;
  void drain_into(std::vector<QueueEntry>& out) override;
  std::size_t size() const override { return size_; }
  const char* name() const override { return "ladder"; }

 private:
  // A bucket bigger than this is spread over a deeper rung instead of being
  // sorted into bottom (when depth and width allow).
  static constexpr std::size_t kSortThreshold = 80;
  // Mean bucket occupancy a fresh rung aims for (see spawn_rung).
  static constexpr std::size_t kEventsPerRungBucket = 64;
  // Rung depth backstop: beyond this, buckets are sorted into bottom no
  // matter their size (pathological all-equal-time sets stop refining).
  static constexpr std::size_t kMaxRungs = 10;

  enum class Region : std::uint8_t { kNone, kTop, kRung, kBottom };
  struct Locator {
    Region region = Region::kNone;
    std::uint8_t rung = 0;
    std::uint32_t bucket = 0;
    std::uint32_t index = 0;
  };
  struct Rung {
    double start = 0.0;      // time of bucket 0's left edge
    double width = 1.0;      // bucket span
    double inv_width = 1.0;  // 1/width: a multiply on the push path, not a
                             // divide (worth ~10% of raw push throughput)
    // Exclusive membership bound for new pushes: the right edge of the
    // region this rung refines (+inf for a rung lowered from top). An
    // entry at or beyond `limit` belongs to a SHALLOWER structure —
    // without this bound a push could land here and pop before earlier
    // entries of the parent. Every entry stored in the rung is < limit
    // (spawn invariant), which is what makes the child-limit computation
    // in ensure_bottom airtight.
    double limit = kTimeInfinity;
    std::size_t cur = 0;  // first unconsumed bucket
    std::size_t count = 0;  // live entries in this rung
    // The grid sized at spawn time plus one trailing OVERFLOW bucket
    // covering [grid end, limit) for later pushes past the grid.
    std::vector<std::vector<QueueEntry>> buckets;

    double cur_start() const {
      return start + static_cast<double>(cur) * width;
    }
  };

  Locator& locator_of(std::uint32_t slot);
  void push_top(const QueueEntry& entry);
  void push_rung(std::size_t rung_index, const QueueEntry& entry);
  void push_bottom(const QueueEntry& entry);
  // Spreads `entries` over a fresh deepest rung spanning their min/max,
  // with `limit` as its membership bound. Pre: entries span a positive,
  // finite width.
  void spawn_rung(std::vector<QueueEntry> entries, double limit);
  void sort_into_bottom(std::vector<QueueEntry> entries);
  // Moves events into bottom until it is non-empty (or the queue is empty):
  // advances rung cursors, spawns/sorts buckets, and lowers the top bag
  // into rung 0 when every rung is exhausted.
  void ensure_bottom();
  void reindex_bottom(std::size_t from);

  std::vector<QueueEntry> top_;
  std::uint64_t top_floor_bits_ = 0;  // entries at/above this go to top
  std::vector<Rung> rungs_;
  std::vector<QueueEntry> bottom_;  // sorted descending; back() is the min
  std::vector<Locator> locators_;
  std::size_t size_ = 0;
};

}  // namespace abe
