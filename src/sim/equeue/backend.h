// Event-queue backend selection for the scheduler.
//
// The enum is deliberately separated from the EventQueue interface so model
// layers (NetworkConfig, experiment specs, scenario cells) can carry a
// backend choice without pulling the queue implementations into their
// headers.
//
// Selection rules (see also README "Event-queue backends"):
//   * kAuto (the default) starts on the comparison heap and migrates to the
//     calendar queue once the pending set crosses kEqueueAutoThreshold —
//     small runs keep the heap's cache-tight behaviour, big sweeps get the
//     calendar's O(1) amortized operations.
//   * The ABE_EQUEUE environment variable ("heap", "calendar", "ladder",
//     "auto") overrides EVERY construction-time choice, so a whole sweep
//     binary can be re-run on a different backend without recompiling.
//     Invalid values are ignored (same policy as ABE_TRIAL_THREADS).
//   * Pop order is bit-identical across backends: every queue pops in
//     strict packed (time-bits, seq) order, so backend choice is a pure
//     performance knob — seeded trials produce identical traces.
#pragma once

#include <string>

namespace abe {

enum class EqueueBackend : unsigned char {
  kAuto,      // heap below kEqueueAutoThreshold pending, calendar above
  kHeap,      // 4-ary comparison heap: O(log n), cache-tight at small n
  kCalendar,  // calendar queue: O(1) amortized, needs roughly uniform times
  kLadder,    // ladder queue: O(1) amortized, robust to heavy-tailed mixes
};

// Pending-set size at which kAuto migrates heap -> calendar. Chosen from
// bench_e1/bench_e12: the heap still runs near its peak at 4k pending and
// has clearly bent by 16k, so the switch sits between the two.
inline constexpr std::size_t kEqueueAutoThreshold = 8192;

// "auto", "heap", "calendar", "ladder".
const char* equeue_backend_name(EqueueBackend backend);

// Returns true and sets *backend when `name` is one of the names above;
// returns false (leaving *backend untouched) otherwise — the validation
// boundary for user input (CLI flags), where aborting is rude.
bool equeue_backend_from_name(const std::string& name,
                              EqueueBackend* backend);

// Applies the ABE_EQUEUE override: returns the env backend when the
// variable is set to a valid name, else `requested` unchanged.
EqueueBackend resolve_equeue_backend(EqueueBackend requested);

}  // namespace abe
