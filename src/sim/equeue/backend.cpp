#include "sim/equeue/backend.h"

#include <cstdlib>

namespace abe {

const char* equeue_backend_name(EqueueBackend backend) {
  switch (backend) {
    case EqueueBackend::kAuto:
      return "auto";
    case EqueueBackend::kHeap:
      return "heap";
    case EqueueBackend::kCalendar:
      return "calendar";
    case EqueueBackend::kLadder:
      return "ladder";
  }
  return "?";
}

bool equeue_backend_from_name(const std::string& name,
                              EqueueBackend* backend) {
  for (EqueueBackend b : {EqueueBackend::kAuto, EqueueBackend::kHeap,
                          EqueueBackend::kCalendar, EqueueBackend::kLadder}) {
    if (name == equeue_backend_name(b)) {
      *backend = b;
      return true;
    }
  }
  return false;
}

EqueueBackend resolve_equeue_backend(EqueueBackend requested) {
  // Config plumbing (allowlisted in tools/lint/abe_lint.py): schedulers are
  // constructed before their trial runs, never concurrently with setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("ABE_EQUEUE")) {
    EqueueBackend from_env;
    // Invalid values are ignored, mirroring ABE_TRIAL_THREADS: an env
    // override must never turn a working binary into an aborting one.
    if (equeue_backend_from_name(env, &from_env)) return from_env;
  }
  return requested;
}

}  // namespace abe
