// Calendar queue backend: O(1)-amortized event queue for large pending sets.
//
// ============================================================================
// How a calendar queue works, and how this one tunes its bucket width
// ============================================================================
//
// Think of a wall calendar: `nbuckets` "days" of width `width` time units
// each make up a "year" of nbuckets*width units. An event at time t belongs
// to virtual day vb = floor(t / width); it is stored in physical bucket
// vb mod nbuckets, so every day of every future year has a place on the one
// wall. Pop keeps a cursor on the current day and scans it for the earliest
// entry OF THAT DAY (entries stored for the same physical bucket but a
// later year are skipped); when the day is exhausted the cursor flips to
// the next one. Push drops an entry into its day in O(1). As long as the
// pending set is spread over at least a few days and each day holds O(1)
// events, every operation is O(1) amortized — this is Brown's classic
// calendar queue [CACM 1988], the structure PeerNet-style simulators use
// for large peer populations.
//
// Bucket-width tuning is what makes or breaks the structure:
//
//   * Width too LARGE (many events per day): pop degenerates into a linear
//     scan of a huge day — the queue becomes an unsorted list.
//   * Width too SMALL (days mostly empty): pop spends its time flipping the
//     cursor over empty days; worse, a whole pending set that fits in one
//     year when sized right now spans many years, so each physical bucket
//     mixes events of many years and the scan filters most of them out.
//
// The sweet spot puts a small constant number of events in each occupied
// day — in the region pops actually visit. This implementation retunes on
// every resize by measuring the mean gap NEAR THE QUEUE HEAD (the spacing
// of the 64 smallest live times, Brown's sampling recast over the live
// set) and setting
//
//     width = kEventsPerBucket * head_gap
//
// A global spread/size estimate would be an order of magnitude too wide
// for the distributions the simulator actually produces: exponential
// remaining delays cluster mass near now(), so the head's local density —
// not the average density — is what the pop scan pays for. Degenerate
// heads (simultaneous events) fall back to spread/size, then to width 1.
//
// Meanwhile nbuckets is held in a band around size/4 (grow at
// size > 8*nbuckets, shrink at size < 2*nbuckets): a few temporal days
// share one physical bucket, which keeps the bucket-header array small
// enough to stay cache-resident at 65k pending — at that scale the
// header walk, not the day scan, is the bottleneck. Far-future events
// wrap around the year and mix into near-term physical buckets; the scan
// filters them by each entry's cached virtual day, and the year length
// stays a small multiple of the head region, so the mixing tax is a few
// percent per scan. Re-tuning cost is amortized against the
// doubling/halving that triggered it.
//
// Degenerate inputs stay correct (only slower): zero spread (all events
// simultaneous) pins width to 1 so everything lands on one day and pop
// degrades to a scan of equal-time events; infinite times clamp to the last
// virtual day (monotone, so ordering is preserved); a pending set entirely
// beyond the cursor's current year falls back to a full-wall scan that
// re-anchors the cursor.
//
// Cancellation is O(1): a per-slot locator (bucket, index) lets erase_slot
// swap-remove the entry directly. A one-entry min cache makes the common
// peek-then-pop sequence of the scheduler's run loops cost one day-scan
// instead of two.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/equeue/event_queue.h"

namespace abe {

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(const QueueEntry& entry) override;
  const QueueEntry* peek_min() override;
  QueueEntry pop_min() override;
  bool erase_slot(std::uint32_t slot) override;
  void drain_into(std::vector<QueueEntry>& out) override;
  std::size_t size() const override { return size_; }
  const char* name() const override { return "calendar"; }

 private:
  struct Item {
    QueueEntry entry;
    std::uint64_t vb = 0;  // virtual day, cached so scans never re-divide
  };
  struct Locator {
    std::uint32_t bucket = kNullBucket;
    std::uint32_t index = 0;
  };
  static constexpr std::uint32_t kNullBucket = 0xffffffffu;
  // Target mean occupancy of a day (see tuning block above). 3 is Brown's
  // classic constant: days stay cheap to scan yet mostly non-empty.
  static constexpr double kEventsPerBucket = 3.0;
  static constexpr std::size_t kMinBuckets = 16;
  // Virtual-day clamp: keeps t/width finite-arithmetic safe and leaves
  // room to add nbuckets without overflow. Monotone (applied to the
  // largest times only), so ordering survives the clamp.
  static constexpr std::uint64_t kMaxVb = std::uint64_t{1} << 62;

  std::uint64_t virtual_bucket(SimTime t) const;
  Locator& locator_of(std::uint32_t slot);
  void insert_item(const Item& item);
  void remove_at(std::uint32_t bucket, std::uint32_t index);
  // Finds the minimum-key entry (cursor scan with full-wall fallback) and
  // caches it. Pre: size_ > 0.
  const QueueEntry* find_min();
  // Re-tunes width to the live spread and rebuilds with `nbuckets` days.
  void rebuild(std::size_t nbuckets);
  void maybe_resize();

  std::vector<std::vector<Item>> buckets_;
  std::vector<Locator> locators_;  // slot -> position
  std::size_t size_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;  // 1/width_: multiply, not divide, on every push
  std::uint64_t bucket_mask_ = 0;  // nbuckets - 1 (power of two)
  // No live entry has a virtual day earlier than this cursor.
  std::uint64_t cursor_vb_ = 0;
  QueueEntry cached_min_{};
  bool cached_min_valid_ = false;
};

}  // namespace abe
