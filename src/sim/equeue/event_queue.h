// EventQueue: the pluggable priority structure under the scheduler.
//
// The scheduler owns the event *records* (slab of actions, generation
// counts, EventId encoding — see sim/scheduler.h); an EventQueue owns only
// the priority structure over (time-bits, seq, slot) entries. The split
// keeps every backend oblivious to closures and handle lifetimes, so a
// backend is correct iff it pops entries in strict key order and can remove
// an entry by its slot index.
//
// Ordering contract: entries are popped in nondecreasing packed
// (time_bits, seq) order. `seq` values are unique, so the order is a strict
// total order and EVERY correct backend produces the bit-identical pop
// sequence — backend choice can never change a seeded simulation, only its
// wall-clock speed. The differential test (tests/test_equeue.cpp) drives
// all backends through one schedule/cancel/run trace and asserts exactly
// this.
//
// Key encoding: `time_bits` is the IEEE-754 bit pattern of a non-negative
// SimTime (canonicalized by the scheduler so -0.0 never reaches a backend),
// which orders identically to the double value; backends that need real
// time arithmetic (bucket indexing) convert back via entry_time().
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/equeue/backend.h"
#include "sim/time.h"

namespace abe {

struct QueueEntry {
  std::uint64_t time_bits = 0;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
};

// Strict total order on the packed (time_bits, seq) key.
inline bool entry_earlier(const QueueEntry& a, const QueueEntry& b) {
#if defined(__SIZEOF_INT128__)
  using U128 = unsigned __int128;
  return ((U128(a.time_bits) << 64) | a.seq) <
         ((U128(b.time_bits) << 64) | b.seq);
#else
  if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
  return a.seq < b.seq;  // FIFO among simultaneous events
#endif
}

inline SimTime entry_time(const QueueEntry& e) {
  SimTime t;
  std::memcpy(&t, &e.time_bits, sizeof(t));
  return t;
}

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  // Inserts an entry. Slots are unique among live entries; times are >= the
  // time of the last popped entry (the scheduler's monotonicity guarantee,
  // which bucketed backends rely on for their consumed-prefix cursors).
  virtual void push(const QueueEntry& entry) = 0;

  // Minimum-key entry, or nullptr when empty. The pointer is valid only
  // until the next mutation. Backends may reorganize internal storage here
  // (the ladder queue materializes its bottom rung), so peek is non-const;
  // the entry set is never changed.
  virtual const QueueEntry* peek_min() = 0;

  // Removes and returns the minimum-key entry. Pre: !empty().
  virtual QueueEntry pop_min() = 0;

  // Removes the entry whose slot is `slot` (cancellation). O(log n) or
  // better. Pre: a live entry carries `slot` — the scheduler's slab checks
  // liveness and generation before delegating, which lets backends keep
  // stale per-slot bookkeeping across pops instead of paying a random
  // write to clear it on every pop. Returns false only when the backend
  // can cheaply tell the precondition was violated (a debugging aid, not a
  // contract — a violation may instead corrupt the queue).
  virtual bool erase_slot(std::uint32_t slot) = 0;

  // Moves every entry into `out` (appending, unspecified order) and leaves
  // the queue empty. Used for backend migration (auto heap -> calendar).
  virtual void drain_into(std::vector<QueueEntry>& out) = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Stable backend identifier: "heap", "calendar" or "ladder".
  virtual const char* name() const = 0;
};

// Instantiates a concrete backend. `backend` must not be kAuto — the auto
// policy (threshold + migration) lives in the scheduler, not in a queue.
std::unique_ptr<EventQueue> make_event_queue(EqueueBackend backend);

}  // namespace abe
