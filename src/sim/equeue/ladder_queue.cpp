#include "sim/equeue/ladder_queue.h"

#include <algorithm>
#include <cmath>

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace abe {

namespace {

// Descending key order: back() of a vector sorted with this is the minimum.
bool later(const QueueEntry& a, const QueueEntry& b) {
  return entry_earlier(b, a);
}

}  // namespace

LadderQueue::Locator& LadderQueue::locator_of(std::uint32_t slot) {
  if (slot >= locators_.size()) locators_.resize(slot + 1);
  return locators_[slot];
}

void LadderQueue::push_top(const QueueEntry& entry) {
  locator_of(entry.slot) =
      Locator{Region::kTop, 0, 0, static_cast<std::uint32_t>(top_.size())};
  top_.push_back(entry);
}

void LadderQueue::push_rung(std::size_t rung_index, const QueueEntry& entry) {
  Rung& r = rungs_[rung_index];
  const double t = entry_time(entry);
  double fidx = (t - r.start) * r.inv_width;
  std::size_t idx = (fidx > 0.0 && std::isfinite(fidx))
                        ? static_cast<std::size_t>(fidx)
                        : 0;
  // Float guards: an entry at a bucket edge must never land in the consumed
  // prefix (< cur) or past the last bucket.
  idx = std::max(idx, r.cur);
  idx = std::min(idx, r.buckets.size() - 1);
  auto& bucket = r.buckets[idx];
  // One allocation at the target occupancy instead of the doubling chain
  // (1, 2, 4, …) — buckets are filled to ~kEventsPerRungBucket and then
  // consumed whole, so the realloc copies would be pure churn.
  if (bucket.capacity() == 0) {
    bucket.reserve(kEventsPerRungBucket + kEventsPerRungBucket / 2);
  }
  locator_of(entry.slot) =
      Locator{Region::kRung, static_cast<std::uint8_t>(rung_index),
              static_cast<std::uint32_t>(idx),
              static_cast<std::uint32_t>(bucket.size())};
  bucket.push_back(entry);
  ++r.count;
}

void LadderQueue::reindex_bottom(std::size_t from) {
  for (std::size_t i = from; i < bottom_.size(); ++i) {
    // locator_of, not locators_[...]: a slot whose FIRST push lands
    // directly in bottom has no locator entry yet.
    locator_of(bottom_[i].slot) =
        Locator{Region::kBottom, 0, 0, static_cast<std::uint32_t>(i)};
  }
}

void LadderQueue::push_bottom(const QueueEntry& entry) {
  const auto pos =
      std::lower_bound(bottom_.begin(), bottom_.end(), entry, later);
  const auto at = static_cast<std::size_t>(pos - bottom_.begin());
  bottom_.insert(pos, entry);
  reindex_bottom(at);
}

void LadderQueue::push(const QueueEntry& entry) {
  ++size_;
  if (entry.time_bits >= top_floor_bits_) {
    push_top(entry);
    return;
  }
  const double t = entry_time(entry);
  for (std::size_t i = rungs_.size(); i-- > 0;) {
    const Rung& r = rungs_[i];
    // A fully consumed rung (cur past the last bucket, waiting to be
    // dropped) must reject membership even for t < limit: the idx clamp
    // would otherwise file the entry BEHIND the cursor, where consumption
    // can never reach it again.
    if (r.cur < r.buckets.size() && t >= r.cur_start() && t < r.limit) {
      push_rung(i, entry);
      return;
    }
  }
  // Below every rung's unconsumed range: the event belongs to the region
  // currently being drained.
  push_bottom(entry);
}

void LadderQueue::spawn_rung(std::vector<QueueEntry> entries, double limit) {
  double lo = kTimeInfinity;
  double hi = -kTimeInfinity;
  for (const QueueEntry& e : entries) {
    const double t = entry_time(e);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  // ~kEventsPerRungBucket events per bucket on average: one event per
  // bucket (the textbook choice) makes the bucket-header array itself the
  // cache bottleneck at large n, and the batched bottom sort absorbs
  // several events per bucket for free.
  const std::size_t nbuckets = entries.size() / kEventsPerRungBucket + 2;
  const double width = (hi - lo) / static_cast<double>(nbuckets - 1);
  Rung r;
  r.start = lo;
  r.width = width;
  r.inv_width = 1.0 / width;
  r.limit = limit;
  // nbuckets grid buckets + one OVERFLOW bucket (the idx clamp in
  // push_rung files anything past the grid there). The grid is sized to
  // the entries present at spawn time, but the rung's membership range
  // extends to `limit` — later pushes in [grid end, limit) must land in
  // this rung (every deeper rung's limit is <= the grid region they
  // refine), and giving them a dedicated last bucket keeps the invariant
  // that a bucket's entries never exceed the boundary its spawn-time
  // child-limit is computed from.
  r.buckets.resize(nbuckets + 1);
  rungs_.push_back(std::move(r));
  const std::size_t rung_index = rungs_.size() - 1;
  for (const QueueEntry& e : entries) push_rung(rung_index, e);
}

void LadderQueue::sort_into_bottom(std::vector<QueueEntry> entries) {
  ABE_CHECK(bottom_.empty());
  std::sort(entries.begin(), entries.end(), later);
  bottom_ = std::move(entries);
  reindex_bottom(0);
}

void LadderQueue::ensure_bottom() {
  while (bottom_.empty() && size_ > 0) {
    if (rungs_.empty()) {
      // Lower the far-future bag: spread it over rung 0 (or straight into
      // bottom when it cannot be refined). Later pushes at or beyond the
      // bag's old maximum go back to the (now empty) top.
      ABE_CHECK(!top_.empty());
      std::vector<QueueEntry> entries = std::move(top_);
      top_.clear();
      std::uint64_t max_bits = 0;
      double lo = kTimeInfinity, hi = -kTimeInfinity;
      for (const QueueEntry& e : entries) {
        max_bits = std::max(max_bits, e.time_bits);
        const double t = entry_time(e);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      top_floor_bits_ = max_bits;
      const double width = (hi - lo) / static_cast<double>(entries.size());
      if (entries.size() > kSortThreshold && width > 0.0 &&
          std::isfinite(width)) {
        // Membership below top_floor is already guaranteed by the bits
        // check in push(), so the lowered rung is unbounded above.
        spawn_rung(std::move(entries), kTimeInfinity);
      } else {
        sort_into_bottom(std::move(entries));
      }
      continue;
    }
    Rung& r = rungs_.back();
    if (r.count == 0) {
      rungs_.pop_back();
      continue;
    }
    while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) ++r.cur;
    ABE_CHECK_LT(r.cur, r.buckets.size())
        << "rung count positive but every bucket consumed";
    std::vector<QueueEntry> bucket = std::move(r.buckets[r.cur]);
    r.count -= bucket.size();
    const bool was_overflow = r.cur + 1 == r.buckets.size();
    ++r.cur;  // consumed: later pushes into this range belong deeper
    // A child spawned from a grid bucket may only accept pushes below that
    // bucket's right edge (== the parent's new cur_start), clipped by the
    // parent's own bound; one spawned from the overflow bucket covers the
    // whole remainder of the parent's range, so it inherits the parent's
    // limit outright — min(cur_start, limit) would cut a hole between the
    // two out of which pushes would fall into bottom ABOVE pending rung
    // entries.
    const double child_limit =
        was_overflow ? r.limit : std::min(r.cur_start(), r.limit);
    double lo = kTimeInfinity, hi = -kTimeInfinity;
    for (const QueueEntry& e : bucket) {
      const double t = entry_time(e);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    const double width = (hi - lo) / static_cast<double>(bucket.size());
    if (bucket.size() > kSortThreshold && rungs_.size() < kMaxRungs &&
        width > 0.0 && std::isfinite(width)) {
      spawn_rung(std::move(bucket), child_limit);
    } else {
      sort_into_bottom(std::move(bucket));
    }
  }
}

const QueueEntry* LadderQueue::peek_min() {
  if (size_ == 0) return nullptr;
  ensure_bottom();
  return &bottom_.back();
}

QueueEntry LadderQueue::pop_min() {
  ABE_CHECK_GT(size_, 0u);
  ensure_bottom();
#ifdef ABE_EQUEUE_VALIDATE
  // Full-scan order validation is O(live) per pop: exhaustive at small
  // sizes, sampled past 4096 live so sanitizer runs of 10^5-event suites
  // stay inside their timeouts.
  // thread_local: ladder queues pop concurrently on trial-pool workers,
  // and a shared counter would be a data race (the cadence is per-thread
  // sampling state, not shared program state).
  thread_local std::uint64_t validate_tick = 0;
  if (size_ <= 4096 || (++validate_tick & 255u) == 0u) {
    const QueueEntry cand = bottom_.back();
    const QueueEntry* best = nullptr;
    const char* where = "";
    std::size_t wrung = 0, wbucket = 0;
    for (const QueueEntry& e : top_) if (!best || entry_earlier(e, *best)) { best = &e; where = "top"; }
    for (std::size_t ri = 0; ri < rungs_.size(); ++ri)
      for (std::size_t bi = 0; bi < rungs_[ri].buckets.size(); ++bi)
        for (const QueueEntry& e : rungs_[ri].buckets[bi])
          if (!best || entry_earlier(e, *best)) { best = &e; where = "rung"; wrung = ri; wbucket = bi; }
    for (const QueueEntry& e : bottom_) if (!best || entry_earlier(e, *best)) { best = &e; where = "bottom"; }
    if (best && entry_earlier(*best, cand)) {
      std::fprintf(stderr, "LADDER ORDER BUG: cand t=%.17g seq=%llu; true min t=%.17g seq=%llu in %s",
        entry_time(cand), (unsigned long long)cand.seq, entry_time(*best), (unsigned long long)best->seq, where);
      if (where[0]=='r') {
        const Rung& r = rungs_[wrung];
        std::fprintf(stderr, " (rung %zu/%zu bucket %zu cur %zu nb %zu start=%.17g width=%.17g limit=%.17g count=%zu)",
          wrung, rungs_.size(), wbucket, r.cur, r.buckets.size(), r.start, r.width, r.limit, r.count);
      }
      std::fprintf(stderr, "\n");
      std::abort();
    }
  }
#endif
  const QueueEntry top = bottom_.back();
  bottom_.pop_back();
  // The popped slot's locator goes stale (erase_slot precondition: live
  // slots only) — clearing it would cost a random write per pop.
  --size_;
  if (size_ == 0) {
    rungs_.clear();
    top_floor_bits_ = 0;
  }
  return top;
}

bool LadderQueue::erase_slot(std::uint32_t slot) {
  if (slot >= locators_.size()) return false;
  const Locator loc = locators_[slot];
  switch (loc.region) {
    case Region::kNone:
      return false;
    case Region::kTop:
      if (loc.index + 1 != top_.size()) {
        top_[loc.index] = top_.back();
        locators_[top_[loc.index].slot].index = loc.index;
      }
      top_.pop_back();
      break;
    case Region::kRung: {
      Rung& r = rungs_[loc.rung];
      auto& bucket = r.buckets[loc.bucket];
      if (loc.index + 1 != bucket.size()) {
        bucket[loc.index] = bucket.back();
        locators_[bucket[loc.index].slot].index = loc.index;
      }
      bucket.pop_back();
      --r.count;
      break;
    }
    case Region::kBottom:
      bottom_.erase(bottom_.begin() +
                    static_cast<std::ptrdiff_t>(loc.index));
      reindex_bottom(loc.index);
      break;
  }
  locators_[slot].region = Region::kNone;
  --size_;
  if (size_ == 0) {
    rungs_.clear();
    bottom_.clear();
    top_.clear();
    top_floor_bits_ = 0;
  }
  return true;
}

void LadderQueue::drain_into(std::vector<QueueEntry>& out) {
  out.insert(out.end(), top_.begin(), top_.end());
  top_.clear();
  for (Rung& r : rungs_) {
    for (auto& bucket : r.buckets) {
      out.insert(out.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
  }
  rungs_.clear();
  out.insert(out.end(), bottom_.begin(), bottom_.end());
  bottom_.clear();
  size_ = 0;
  top_floor_bits_ = 0;
}

}  // namespace abe
