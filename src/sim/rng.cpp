#include "sim/rng.h"

#include <cmath>

#include "util/check.h"

namespace abe {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro requires a nonzero state; splitmix output of any seed gives one
  // with overwhelming probability, but guard against the degenerate case.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

Rng Rng::substream(std::string_view name, std::uint64_t index) const {
  // Mix (seed, name-hash, index) through SplitMix64 into a fresh seed.
  std::uint64_t sm = seed_ ^ rotl(hash_name(name), 17) ^ (index * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  std::uint64_t derived = splitmix64(sm);
  derived ^= splitmix64(sm);
  return Rng(derived);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ABE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  ABE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int_range(std::int64_t lo, std::int64_t hi) {
  ABE_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  ABE_CHECK_GT(mean, 0.0);
  // Inverse transform; 1 - u in (0,1] avoids log(0).
  return -mean * std::log1p(-uniform01());
}

std::uint64_t Rng::geometric_failures(double p) {
  ABE_CHECK_GT(p, 0.0);
  ABE_CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  // Inverse transform: floor(log(1-u) / log(1-p)).
  const double u = uniform01();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

double Rng::normal(double mean, double stddev) {
  ABE_CHECK_GE(stddev, 0.0);
  double u1 = uniform01();
  while (u1 == 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lomax(double alpha, double lambda) {
  ABE_CHECK_GT(alpha, 1.0) << "finite mean requires alpha > 1";
  ABE_CHECK_GT(lambda, 0.0);
  const double u = uniform01();
  // Inverse of CDF F(x) = 1 - (1 + x/lambda)^(-alpha).
  return lambda * (std::pow(1.0 - u, -1.0 / alpha) - 1.0);
}

double Rng::erlang(unsigned k, double mean_each) {
  ABE_CHECK_GT(k, 0u);
  double sum = 0.0;
  for (unsigned i = 0; i < k; ++i) {
    sum += exponential(mean_each);
  }
  return sum;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace abe
