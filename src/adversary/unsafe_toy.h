// A deliberately UNSAFE toy "election" used to prove the safety-probe layer
// actually catches violations (and that captured seeds replay).
//
// Protocol (broken by construction): the initiator declares itself leader on
// start and sends a token; EVERY receiver of the token also declares itself
// leader and forwards it once. Two or more leaders are guaranteed on any
// connected topology with >= 2 nodes, so a probe that fails to flag this
// run is itself broken.
//
// This algorithm must NEVER be registered as a scenario preset — the
// registry invariant is that every registered scenario's smoke trial is
// safe. Tests and the safety-probe demonstration build it ad hoc.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "runtime/runtime.h"

namespace abe {

class UnsafeToyNode final : public Node {
 public:
  // `leaders` is the driver's shared count of self-declared leaders;
  // atomic because the thread runtime declares from node threads.
  UnsafeToyNode(bool initiator, std::atomic<std::uint64_t>* leaders)
      : initiator_(initiator), leaders_(leaders) {}

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override {
    return leader_ ? "leader" : "follower";
  }
  bool is_terminated() const override { return leader_; }
  bool is_leader() const { return leader_; }

 private:
  void declare(Context& ctx);

  const bool initiator_;
  std::atomic<std::uint64_t>* const leaders_;
  bool leader_ = false;
  bool forwarded_ = false;
};

// AlgorithmDriver for run_algorithm_trial: done when >= 2 nodes have
// declared themselves leader (which the broken protocol guarantees).
// extract() reports completed=true, safety_ok=false with a detail naming
// the leader count — the shape the safety-probe layer must catch.
std::unique_ptr<AlgorithmDriver> make_unsafe_toy_driver();

}  // namespace abe
