// Bounded adversarial delay policies: ABE-legal worst-case scheduling.
//
// The ABE model (Definition 1) bounds only the EXPECTED delay of each
// channel — any individual delay may be arbitrarily large as long as the
// channel's running mean stays within the bound. That freedom is exactly
// what an adversary exploits: deliver a channel's messages instantly to
// bank delay budget, then spend the entire bank on one targeted stall.
//
// make_bounded_adversary is the ONLY sanctioned constructor: it wraps a
// proposed-delay schedule in per-channel accounting that clips every grant
// so the empirical mean can never exceed the bound, and ABE_CHECKs that
// invariant after each grant. abe_lint's adversary-delay rule forbids
// src/adversary/ code from constructing DelayModels directly (which would
// bypass this accounting).
//
// Policies are deterministic — they draw no randomness — so honest cells
// (policy == nullptr) and adversarial cells consume identical RNG streams,
// preserving the repo's bit-identity story for everything non-adversarial.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/delay.h"

namespace abe {

// A proposed delay for the `index`-th message (0-based) on channel
// from -> to. The wrapper clips the proposal into the channel's remaining
// budget; schedules may therefore over-ask (e.g. propose bound*k stalls)
// and rely on the clip.
using DelaySchedule = std::function<double(
    std::size_t from, std::size_t to, std::uint64_t index)>;

// The sanctioned policy constructor (see file comment). Per-channel
// accounting is guarded by an internal mutex: next_delay is called
// concurrently from node threads on the thread runtime.
AdversaryPolicyPtr make_bounded_adversary(std::string name, double bound,
                                          DelaySchedule schedule);

// Targeted slowdown of one node: the victim's outbound channels deliver
// `period`-1 messages instantly, then stall one message for the whole
// banked budget (period * bound); every other channel runs at exactly the
// bound. The strongest single-target schedule the ABE bound admits.
AdversaryPolicyPtr targeted_slowdown(double bound, std::size_t victim,
                                     std::uint64_t period = 8);

// Burst-then-stall on every channel: `burst` instant deliveries, then one
// maximal stall of (burst+1) * bound, repeating. Global jitter attack.
AdversaryPolicyPtr burst_then_stall(double bound, std::uint64_t burst = 4);

// Named construction for the scenario axis / CLI: "none" (or "") returns
// nullptr (honest), "targeted" and "burst-stall" build the policies above
// with their default parameters and victim 0. Unknown names return nullptr
// with *ok set false when `ok` is provided.
AdversaryPolicyPtr make_named_adversary(const std::string& name, double bound,
                                        bool* ok = nullptr);

// Names accepted by make_named_adversary (excluding "none").
const std::vector<std::string>& adversary_policy_names();

}  // namespace abe
