// FaultyNode: the Node-wrapping decorator realising behavior profiles.
//
// Wraps an algorithm node and intercepts both directions of its interface —
// inbound delivery (on_message/on_tick/on_timer) and outbound sends (via a
// Context shim) — so crash, equivocation and reordering faults are injected
// WITHOUT touching algorithm or runtime code. Because the decorator is just
// another Node, it runs identically on SimRuntime and ThreadRuntime.
//
// Thread-safety: all FaultyNode state is confined to the node's own thread
// (the runtime delivers every callback of one node sequentially, on the
// simulator trivially and on the thread runtime on the node's own thread),
// so no locks are needed — same discipline as algorithm node state.
//
// Result extraction sees through the decorator via Node::algorithm_node():
// drivers downcast rt.node(i).algorithm_node(), never rt.node(i) itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/behavior.h"
#include "net/node.h"

namespace abe {

class FaultyNode final : public Node {
 public:
  // `crash_time` is the sim time at which the node dies (crash profiles
  // only; the caller draws it for kCrashRandom). `reorder_window` is the
  // inbound buffer size for kReorder (>= 1). Irrelevant parameters are
  // ignored.
  FaultyNode(NodePtr inner, BehaviorProfile profile, double crash_time,
             std::size_t reorder_window);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;
  void on_tick(Context& ctx, std::uint64_t tick) override;
  void on_timer(Context& ctx, TimerId id, std::uint64_t tag) override;

  std::string state_string() const override;
  // A crashed node is terminal (runtimes stop its tick train); otherwise
  // the inner node decides.
  bool is_terminated() const override;

  Node& algorithm_node() override { return inner_->algorithm_node(); }
  const Node& algorithm_node() const override {
    return inner_->algorithm_node();
  }

  // Fault-injection accounting, for tests and probes.
  bool crashed() const { return crashed_; }
  std::uint64_t duplicated_sends() const { return duplicated_sends_; }
  std::uint64_t reordered_deliveries() const { return reordered_deliveries_; }

 private:
  class EquivocatingContext;

  // Flips `crashed_` once the crash time has passed. Returns true when the
  // node is (now) dead and the event must be swallowed.
  bool check_crashed(Context& ctx);
  // Releases the reorder buffer to the inner node in reverse arrival order.
  void flush_reordered(Context& ctx);
  // Dispatches one delivery to the inner node, equivocating if configured.
  void deliver_inner(Context& ctx, std::size_t in_index,
                     const Payload& payload);

  NodePtr inner_;
  BehaviorProfile profile_;
  double crash_time_;
  std::size_t reorder_window_;
  bool crashed_ = false;
  std::uint64_t duplicated_sends_ = 0;
  std::uint64_t reordered_deliveries_ = 0;
  struct Buffered {
    std::size_t in_index;
    std::shared_ptr<const Payload> payload;
  };
  std::vector<Buffered> reorder_buffer_;
};

// Convenience for driver decoration: wraps `inner` per `spec` when node
// `index` is afflicted, else returns it unchanged. `crash_time` as above.
NodePtr maybe_wrap_faulty(NodePtr inner, const BehaviorSpec& spec,
                          std::size_t index, std::size_t n,
                          double crash_time);

}  // namespace abe
