#include "adversary/unsafe_toy.h"

#include <sstream>

#include "util/check.h"

namespace abe {

namespace {

class ToyTokenPayload final : public Payload {
 public:
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<ToyTokenPayload>();
  }
  std::string describe() const override { return "ToyToken"; }
};

class UnsafeToyDriver final : public AlgorithmDriver {
 public:
  void configure(RuntimeConfig& /*config*/) override {}

  NodePtr make_node(std::size_t index) override {
    return std::make_unique<UnsafeToyNode>(index == 0, &leaders_);
  }

  bool done(const Runtime& /*rt*/) override {
    return leaders_.load(std::memory_order_acquire) >= 2;
  }

  void on_complete(Runtime& rt) override { completion_time_ = rt.now(); }

  void settle(Runtime& /*rt*/, bool /*completed*/) override {}

  TrialOutcome extract(Runtime& rt, bool completed) override {
    TrialOutcome out;
    const std::uint64_t leaders =
        leaders_.load(std::memory_order_acquire);
    if (!completed) {
      std::ostringstream detail;
      detail << "unsafe toy missed the deadline with " << leaders
             << " leader(s)";
      out.safety_detail = detail.str();
      return out;
    }
    out.completed = true;
    out.time = completion_time_;
    out.messages = rt.stats().messages_sent;
    // The whole point: the run COMPLETED but safety does not hold.
    out.safety_ok = leaders <= 1;
    if (!out.safety_ok) {
      std::ostringstream detail;
      detail << "SAFETY-VIOLATION: " << leaders
             << " nodes declared themselves leader";
      out.safety_detail = detail.str();
    }
    return out;
  }

 private:
  std::atomic<std::uint64_t> leaders_{0};
  SimTime completion_time_ = 0.0;
};

}  // namespace

void UnsafeToyNode::declare(Context& ctx) {
  if (leader_) return;
  leader_ = true;
  ctx.log("declared leader");
  leaders_->fetch_add(1, std::memory_order_release);
}

void UnsafeToyNode::on_start(Context& ctx) {
  if (!initiator_) return;
  declare(ctx);
  if (ctx.out_degree() > 0) {
    forwarded_ = true;
    ctx.send(0, std::make_unique<ToyTokenPayload>());
  }
}

void UnsafeToyNode::on_message(Context& ctx, std::size_t /*in_index*/,
                               const Payload& payload) {
  payload_as<ToyTokenPayload>(payload);
  declare(ctx);
  // Forward once so the token keeps infecting the ring, then let it die.
  if (!forwarded_ && ctx.out_degree() > 0) {
    forwarded_ = true;
    ctx.send(0, std::make_unique<ToyTokenPayload>());
  }
}

std::unique_ptr<AlgorithmDriver> make_unsafe_toy_driver() {
  return std::make_unique<UnsafeToyDriver>();
}

}  // namespace abe
