#include "adversary/delay_policy.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace abe {

namespace {

// The bound-enforcing wrapper. Every channel keeps (count, total); a grant
// for message `count` may use at most bound*(count+1) - total, which is
// always >= bound (induction: total <= bound*count after every grant), so
// the schedule can never be starved below the honest per-message budget.
class BoundedAdversary final : public AdversarialDelayPolicy {
 public:
  BoundedAdversary(std::string name, double bound, DelaySchedule schedule)
      : name_(std::move(name)), bound_(bound),
        schedule_(std::move(schedule)) {
    ABE_CHECK_GT(bound_, 0.0);
    ABE_CHECK(static_cast<bool>(schedule_));
  }

  double next_delay(std::size_t from, std::size_t to) override
      EXCLUDES(mutex_) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(from) << 32) |
        static_cast<std::uint64_t>(to);
    MutexLock lock(mutex_);
    EdgeAccount& account = accounts_[key];
    const double proposed =
        std::max(0.0, schedule_(from, to, account.count));
    const double budget =
        bound_ * static_cast<double>(account.count + 1) - account.total;
    const double grant = std::min(proposed, budget);
    account.total += grant;
    ++account.count;
    // The runtime assertion the ISSUE demands: empirical per-channel mean
    // must stay within the configured ABE bound (epsilon for fp rounding).
    ABE_CHECK_LE(account.total,
                 bound_ * static_cast<double>(account.count) + 1e-9)
        << name_ << " exceeded the ABE bound on channel " << from << "->"
        << to;
    return grant;
  }

  double bound() const override { return bound_; }
  std::string name() const override { return name_; }

 private:
  struct EdgeAccount {
    std::uint64_t count = 0;
    double total = 0.0;
  };

  const std::string name_;
  const double bound_;
  const DelaySchedule schedule_;
  mutable AnnotatedMutex mutex_;
  // Ordered map: deterministic, and never iterated into an aggregate.
  std::map<std::uint64_t, EdgeAccount> accounts_ GUARDED_BY(mutex_);
};

}  // namespace

AdversaryPolicyPtr make_bounded_adversary(std::string name, double bound,
                                          DelaySchedule schedule) {
  return std::make_shared<BoundedAdversary>(std::move(name), bound,
                                            std::move(schedule));
}

AdversaryPolicyPtr targeted_slowdown(double bound, std::size_t victim,
                                     std::uint64_t period) {
  ABE_CHECK_GE(period, 2u);
  return make_bounded_adversary(
      "targeted", bound,
      [victim, period, bound](std::size_t from, std::size_t /*to*/,
                              std::uint64_t index) {
        if (from != victim) return bound;
        // Bank (period-1) instant deliveries, then spend the whole budget.
        return index % period == period - 1
                   ? bound * static_cast<double>(period)
                   : 0.0;
      });
}

AdversaryPolicyPtr burst_then_stall(double bound, std::uint64_t burst) {
  ABE_CHECK_GE(burst, 1u);
  return make_bounded_adversary(
      "burst-stall", bound,
      [burst, bound](std::size_t /*from*/, std::size_t /*to*/,
                     std::uint64_t index) {
        const std::uint64_t cycle = burst + 1;
        return index % cycle == burst ? bound * static_cast<double>(cycle)
                                      : 0.0;
      });
}

AdversaryPolicyPtr make_named_adversary(const std::string& name, double bound,
                                        bool* ok) {
  if (ok != nullptr) *ok = true;
  if (name.empty() || name == "none") return nullptr;
  if (name == "targeted") return targeted_slowdown(bound, /*victim=*/0);
  if (name == "burst-stall") return burst_then_stall(bound);
  if (ok != nullptr) *ok = false;
  return nullptr;
}

const std::vector<std::string>& adversary_policy_names() {
  static const std::vector<std::string> names = {"targeted", "burst-stall"};
  return names;
}

}  // namespace abe
