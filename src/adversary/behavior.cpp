#include "adversary/behavior.h"

#include <cstdlib>
#include <sstream>

namespace abe {

const char* behavior_profile_name(BehaviorProfile profile) {
  switch (profile) {
    case BehaviorProfile::kHonest:
      return "honest";
    case BehaviorProfile::kCrashAtT:
      return "crash";
    case BehaviorProfile::kCrashRandom:
      return "crash-rand";
    case BehaviorProfile::kEquivocate:
      return "equivocate";
    case BehaviorProfile::kReorder:
      return "reorder";
  }
  return "?";
}

std::string BehaviorSpec::describe() const {
  if (is_honest()) return "honest";
  std::ostringstream os;
  switch (profile) {
    case BehaviorProfile::kHonest:
      break;  // unreachable: is_honest() handled above
    case BehaviorProfile::kCrashAtT:
      os << "crash-" << count << "@" << param;
      break;
    case BehaviorProfile::kCrashRandom:
      os << "crash-rand-" << count;
      break;
    case BehaviorProfile::kEquivocate:
      os << "equivocate-" << count;
      break;
    case BehaviorProfile::kReorder:
      os << "reorder-" << count << "x"
         << static_cast<std::uint64_t>(param);
      break;
  }
  return os.str();
}

std::string BehaviorSpec::problem(std::size_t n) const {
  if (is_honest()) return "";
  if (count >= n) {
    std::ostringstream os;
    os << count << " faulty node(s) leave no honest node in a network of "
       << n;
    return os.str();
  }
  if (profile == BehaviorProfile::kCrashAtT && param < 0.0) {
    return "crash time must be >= 0";
  }
  if (profile == BehaviorProfile::kReorder && param < 1.0) {
    return "reorder window must be >= 1";
  }
  return "";
}

namespace {

// Parses a nonnegative number, consuming the longest valid prefix of
// `text` from `pos`. Returns false when nothing was consumed.
bool parse_number(const std::string& text, std::size_t* pos, double* out) {
  const char* begin = text.c_str() + *pos;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || value < 0.0) return false;
  *pos += static_cast<std::size_t>(end - begin);
  *out = value;
  return true;
}

// Matches `prefix` at `pos`, advancing past it on success.
bool consume(const std::string& text, std::size_t* pos,
             const std::string& prefix) {
  if (text.compare(*pos, prefix.size(), prefix) != 0) return false;
  *pos += prefix.size();
  return true;
}

}  // namespace

bool behavior_spec_from_name(const std::string& name, BehaviorSpec* out) {
  *out = BehaviorSpec{};
  if (name == "honest") return true;

  std::size_t pos = 0;
  double count = 0.0;
  // Order matters: "crash-rand-" must be tried before the "crash-" form.
  if (consume(name, &pos, "crash-rand-")) {
    if (!parse_number(name, &pos, &count) || pos != name.size()) return false;
    out->profile = BehaviorProfile::kCrashRandom;
  } else if (consume(name, &pos, "crash-")) {
    double at = 0.0;
    if (!parse_number(name, &pos, &count)) return false;
    if (!consume(name, &pos, "@")) return false;
    if (!parse_number(name, &pos, &at) || pos != name.size()) return false;
    out->profile = BehaviorProfile::kCrashAtT;
    out->param = at;
  } else if (consume(name, &pos, "equivocate-")) {
    if (!parse_number(name, &pos, &count) || pos != name.size()) return false;
    out->profile = BehaviorProfile::kEquivocate;
  } else if (consume(name, &pos, "reorder-")) {
    double window = 0.0;
    if (!parse_number(name, &pos, &count)) return false;
    if (!consume(name, &pos, "x")) return false;
    if (!parse_number(name, &pos, &window) || pos != name.size()) {
      return false;
    }
    if (window < 1.0) return false;
    out->profile = BehaviorProfile::kReorder;
    out->param = window;
  } else {
    return false;
  }
  if (count < 1.0 || count != static_cast<double>(
                                  static_cast<std::size_t>(count))) {
    return false;
  }
  out->count = static_cast<std::size_t>(count);
  return true;
}

}  // namespace abe
