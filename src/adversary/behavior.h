// Per-node behavior profiles: the fault axis of the scenario engine.
//
// A BehaviorSpec names a profile and how many nodes it afflicts; the
// scenario engine realises it by wrapping the afflicted nodes' algorithm
// objects in a FaultyNode decorator (adversary/faulty_node.h), so the same
// profile runs unchanged on the simulator and the real-thread runtime.
// Faulty nodes are taken from the TOP of the index range (n-1 downward):
// several algorithms give node 0 a distinguished role (gossip source,
// unsafe-toy initiator), and crashing the initiator measures nothing.
//
// Profiles:
//   honest       no wrapping at all (the default; byte-identical runs)
//   crash-at-T   the node dies at sim time T: every later event is
//                swallowed, is_terminated() turns true
//   crash-random the crash time is drawn per node from the trial seed
//                (deterministic given the seed), uniform in [0, deadline/4]
//   equivocate   every outbound send is duplicated (the message and a
//                clone) — the cheapest Byzantine behaviour that injects
//                conflicting protocol state
//   reorder      inbound messages are buffered up to a window of k and
//                released in reverse order (adversarial reordering beyond
//                what kArbitrary channels produce)
#pragma once

#include <cstdint>
#include <string>

namespace abe {

enum class BehaviorProfile : std::uint8_t {
  kHonest,
  kCrashAtT,
  kCrashRandom,
  kEquivocate,
  kReorder,
};

const char* behavior_profile_name(BehaviorProfile profile);

struct BehaviorSpec {
  BehaviorProfile profile = BehaviorProfile::kHonest;
  // Number of afflicted nodes (taken from index n-1 downward). 0 means
  // honest regardless of profile.
  std::size_t count = 0;
  // Profile parameter: crash time T (kCrashAtT) or reorder window k
  // (kReorder, >= 1). Unused otherwise.
  double param = 0.0;

  bool is_honest() const {
    return profile == BehaviorProfile::kHonest || count == 0;
  }

  // True when node `index` of an n-node network carries the profile.
  bool afflicts(std::size_t index, std::size_t n) const {
    return !is_honest() && index < n && index + count >= n;
  }

  // Round-trippable cell-id token:
  //   "honest" | "crash-<c>@<T>" | "crash-rand-<c>" | "equivocate-<c>" |
  //   "reorder-<c>x<k>"
  std::string describe() const;

  // Structural validation against a network of size n; empty when fine.
  std::string problem(std::size_t n) const;
};

// Non-aborting inverse of BehaviorSpec::describe (the CLI validation
// boundary). Returns false on unknown input; *out is then unspecified.
bool behavior_spec_from_name(const std::string& name, BehaviorSpec* out);

}  // namespace abe
