#include "adversary/faulty_node.h"

#include <utility>

#include "util/check.h"

namespace abe {

// Context shim that duplicates every outbound send: the original payload
// goes out, then a clone on the same channel. Everything else forwards.
// Stack-constructed per callback (stateless beyond the two pointers), so it
// needs no lifetime management and inherits the wrapped Context's thread
// confinement.
class FaultyNode::EquivocatingContext final : public Context {
 public:
  EquivocatingContext(Context& wrapped, std::uint64_t* duplicated)
      : wrapped_(wrapped), duplicated_(duplicated) {}

  NodeId self() const override { return wrapped_.self(); }
  std::size_t out_degree() const override { return wrapped_.out_degree(); }
  std::size_t in_degree() const override { return wrapped_.in_degree(); }
  std::size_t network_size() const override {
    return wrapped_.network_size();
  }

  void send(std::size_t out_index, PayloadPtr payload) override {
    PayloadPtr duplicate = payload->clone();
    wrapped_.send(out_index, std::move(payload));
    wrapped_.send(out_index, std::move(duplicate));
    ++*duplicated_;
  }

  double local_now() override { return wrapped_.local_now(); }
  SimTime real_now() const override { return wrapped_.real_now(); }
  TimerId set_timer_local(double local_delay, std::uint64_t tag) override {
    return wrapped_.set_timer_local(local_delay, tag);
  }
  bool cancel_timer(TimerId id) override { return wrapped_.cancel_timer(id); }
  Rng& rng() override { return wrapped_.rng(); }
  void log(const std::string& detail) override { wrapped_.log(detail); }

 private:
  Context& wrapped_;
  std::uint64_t* duplicated_;
};

FaultyNode::FaultyNode(NodePtr inner, BehaviorProfile profile,
                       double crash_time, std::size_t reorder_window)
    : inner_(std::move(inner)),
      profile_(profile),
      crash_time_(crash_time),
      reorder_window_(reorder_window) {
  ABE_CHECK(static_cast<bool>(inner_));
  ABE_CHECK_NE(static_cast<int>(profile),
               static_cast<int>(BehaviorProfile::kHonest))
      << "honest nodes are not wrapped";
  if (profile == BehaviorProfile::kCrashAtT ||
      profile == BehaviorProfile::kCrashRandom) {
    ABE_CHECK_GE(crash_time_, 0.0);
  }
  if (profile == BehaviorProfile::kReorder) {
    ABE_CHECK_GE(reorder_window_, 1u);
    reorder_buffer_.reserve(reorder_window_);
  }
}

bool FaultyNode::check_crashed(Context& ctx) {
  if (crashed_) return true;
  if ((profile_ == BehaviorProfile::kCrashAtT ||
       profile_ == BehaviorProfile::kCrashRandom) &&
      ctx.real_now() >= crash_time_) {
    crashed_ = true;
  }
  return crashed_;
}

void FaultyNode::deliver_inner(Context& ctx, std::size_t in_index,
                               const Payload& payload) {
  if (profile_ == BehaviorProfile::kEquivocate) {
    EquivocatingContext equivocating(ctx, &duplicated_sends_);
    inner_->on_message(equivocating, in_index, payload);
  } else {
    inner_->on_message(ctx, in_index, payload);
  }
}

void FaultyNode::flush_reordered(Context& ctx) {
  // Reverse arrival order: the freshest message is delivered first. The
  // buffer is drained via a local move so a delivery that re-enters
  // on_message (impossible today, cheap to guard) cannot corrupt it.
  std::vector<Buffered> pending = std::move(reorder_buffer_);
  reorder_buffer_.clear();
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    ++reordered_deliveries_;
    deliver_inner(ctx, it->in_index, *it->payload);
  }
}

void FaultyNode::on_start(Context& ctx) {
  if (check_crashed(ctx)) return;
  if (profile_ == BehaviorProfile::kEquivocate) {
    EquivocatingContext equivocating(ctx, &duplicated_sends_);
    inner_->on_start(equivocating);
  } else {
    inner_->on_start(ctx);
  }
}

void FaultyNode::on_message(Context& ctx, std::size_t in_index,
                            const Payload& payload) {
  if (check_crashed(ctx)) return;
  if (profile_ == BehaviorProfile::kReorder) {
    reorder_buffer_.push_back({in_index, payload.clone()});
    if (reorder_buffer_.size() >= reorder_window_) flush_reordered(ctx);
    return;
  }
  deliver_inner(ctx, in_index, payload);
}

void FaultyNode::on_tick(Context& ctx, std::uint64_t tick) {
  if (check_crashed(ctx)) return;
  // A partially-filled reorder buffer drains on the next tick so buffered
  // messages cannot be withheld forever (ticks are the liveness source the
  // afflicted algorithms already rely on).
  if (profile_ == BehaviorProfile::kReorder && !reorder_buffer_.empty()) {
    flush_reordered(ctx);
  }
  if (profile_ == BehaviorProfile::kEquivocate) {
    EquivocatingContext equivocating(ctx, &duplicated_sends_);
    inner_->on_tick(equivocating, tick);
  } else {
    inner_->on_tick(ctx, tick);
  }
}

void FaultyNode::on_timer(Context& ctx, TimerId id, std::uint64_t tag) {
  if (check_crashed(ctx)) return;
  if (profile_ == BehaviorProfile::kEquivocate) {
    EquivocatingContext equivocating(ctx, &duplicated_sends_);
    inner_->on_timer(equivocating, id, tag);
  } else {
    inner_->on_timer(ctx, id, tag);
  }
}

std::string FaultyNode::state_string() const {
  if (crashed_) return "crashed";
  return inner_->state_string();
}

bool FaultyNode::is_terminated() const {
  return crashed_ || inner_->is_terminated();
}

NodePtr maybe_wrap_faulty(NodePtr inner, const BehaviorSpec& spec,
                          std::size_t index, std::size_t n,
                          double crash_time) {
  if (!spec.afflicts(index, n)) return inner;
  const std::size_t window =
      spec.profile == BehaviorProfile::kReorder
          ? static_cast<std::size_t>(spec.param)
          : 0;
  const double when =
      spec.profile == BehaviorProfile::kCrashAtT ? spec.param : crash_time;
  return std::make_unique<FaultyNode>(std::move(inner), spec.profile, when,
                                      window);
}

}  // namespace abe
