#include "scenario/scenario.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "adversary/delay_policy.h"
#include "core/election.h"
#include "util/check.h"

namespace abe {

// ---------------------------------------------------------------------------
// Topology axis

const char* topology_family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kRingUni:
      return "ring-uni";
    case TopologyFamily::kRingBi:
      return "ring-bi";
    case TopologyFamily::kLine:
      return "line";
    case TopologyFamily::kStar:
      return "star";
    case TopologyFamily::kComplete:
      return "complete";
    case TopologyFamily::kGrid:
      return "grid";
    case TopologyFamily::kTorus:
      return "torus";
    case TopologyFamily::kHypercube:
      return "hypercube";
    case TopologyFamily::kGnp:
      return "gnp";
    case TopologyFamily::kGeometric:
      return "rgg";
  }
  return "?";
}

TopologyFamily topology_family_from_name(const std::string& name) {
  for (TopologyFamily f :
       {TopologyFamily::kRingUni, TopologyFamily::kRingBi,
        TopologyFamily::kLine, TopologyFamily::kStar,
        TopologyFamily::kComplete, TopologyFamily::kGrid,
        TopologyFamily::kTorus, TopologyFamily::kHypercube,
        TopologyFamily::kGnp, TopologyFamily::kGeometric}) {
    if (name == topology_family_name(f)) return f;
  }
  ABE_CHECK(false) << "unknown topology family '" << name << "'";
  return TopologyFamily::kRingUni;
}

namespace {

// Near-square factoring for grid/torus sizes: the largest rows <= sqrt(n)
// dividing n. Prime sizes degrade to 1×n (rejected for the torus, which
// needs both sides >= 2).
void near_square(std::size_t n, std::size_t& rows, std::size_t& cols) {
  ABE_CHECK_GE(n, 1u);
  rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  while (rows > 1 && n % rows != 0) --rows;
  cols = n / rows;
}

std::size_t log2_exact(std::size_t n) {
  std::size_t dim = 0;
  while ((std::size_t{1} << dim) < n) ++dim;
  ABE_CHECK_EQ(std::size_t{1} << dim, n)
      << "hypercube size must be a power of two";
  return dim;
}

}  // namespace

Topology TopologySpec::build(Rng& rng) const {
  ABE_CHECK_GE(n, 1u);
  switch (family) {
    case TopologyFamily::kRingUni:
      return unidirectional_ring(n);
    case TopologyFamily::kRingBi:
      return bidirectional_ring(n);
    case TopologyFamily::kLine:
      return line(n);
    case TopologyFamily::kStar:
      return star(n);
    case TopologyFamily::kComplete:
      return complete(n);
    case TopologyFamily::kGrid: {
      std::size_t rows = 0, cols = 0;
      near_square(n, rows, cols);
      return grid(rows, cols);
    }
    case TopologyFamily::kTorus: {
      std::size_t rows = 0, cols = 0;
      near_square(n, rows, cols);
      return torus(rows, cols);
    }
    case TopologyFamily::kHypercube:
      return hypercube(log2_exact(n));
    case TopologyFamily::kGnp: {
      // Default density: comfortably above the ln(n)/n connectivity
      // threshold so the resample loop rarely iterates.
      const double log_n =
          std::log(static_cast<double>(n < 2 ? 2 : n));
      const double p =
          param > 0.0
              ? param
              : std::min(1.0, 2.0 * log_n / static_cast<double>(n));
      return random_connected(n, p, rng);
    }
    case TopologyFamily::kGeometric: {
      // Default radius: just above the sqrt(ln n / (π n)) connectivity
      // threshold; random_geometric grows it further if the draw is unlucky.
      const double r =
          param > 0.0
              ? param
              : std::sqrt(2.0 * std::log(static_cast<double>(n < 2 ? 2 : n)) /
                          (3.14159265358979323846 * static_cast<double>(n)));
      return random_geometric(n, r, rng);
    }
  }
  ABE_CHECK(false) << "unhandled topology family";
  return Topology{};
}

std::string TopologySpec::problem() const {
  if (n < 1) return "topology size must be >= 1";
  switch (family) {
    case TopologyFamily::kHypercube: {
      if ((n & (n - 1)) != 0) {
        return "hypercube size must be a power of two, got " +
               std::to_string(n);
      }
      return "";
    }
    case TopologyFamily::kTorus: {
      std::size_t rows = 0, cols = 0;
      near_square(n, rows, cols);
      if (rows < 2) {
        return "torus size must factor into rows x cols with both >= 2, "
               "got " +
               std::to_string(n);
      }
      return "";
    }
    case TopologyFamily::kGnp:
      if (param > 1.0) return "gnp edge probability must be <= 1";
      return "";
    default:
      return "";
  }
}

std::string TopologySpec::describe() const {
  std::ostringstream os;
  os << topology_family_name(family) << "-" << n;
  if (param > 0.0 &&
      (family == TopologyFamily::kGnp ||
       family == TopologyFamily::kGeometric)) {
    os << (family == TopologyFamily::kGnp ? "(p=" : "(r=") << param << ")";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Failure-injection axis

FailureProfile FailureProfile::loss(double p) {
  ABE_CHECK_GE(p, 0.0);
  ABE_CHECK_LT(p, 1.0);
  FailureProfile f;
  f.kind = Kind::kLoss;
  f.loss_probability = p;
  return f;
}

FailureProfile FailureProfile::degrade(double probability, double factor) {
  ABE_CHECK_GE(probability, 0.0);
  ABE_CHECK_LE(probability, 1.0);
  ABE_CHECK_GE(factor, 1.0);
  FailureProfile f;
  f.kind = Kind::kDegrade;
  f.degrade_probability = probability;
  f.degrade_factor = factor;
  return f;
}

namespace {

// Congestion events as a delay transform: with probability q a message's
// sampled delay is stretched by `factor`. Still an admissible ABE delay —
// the advertised mean degrades by the same transform, so algorithms that
// only rely on the expected bound keep their guarantees (the point of the
// failure axis).
class DegradedDelay final : public DelayModel {
 public:
  DegradedDelay(DelayModelPtr base, double probability, double factor)
      : base_(std::move(base)), probability_(probability), factor_(factor) {}

  double sample(Rng& rng) const override {
    const double d = base_->sample(rng);
    return rng.bernoulli(probability_) ? d * factor_ : d;
  }
  double mean_delay() const override {
    return base_->mean_delay() *
           (1.0 + probability_ * (factor_ - 1.0));
  }
  bool bounded() const override { return base_->bounded(); }
  double worst_case() const override {
    return base_->worst_case() * factor_;
  }
  std::string name() const override {
    return base_->name() + "+degrade";
  }

 private:
  DelayModelPtr base_;
  double probability_;
  double factor_;
};

}  // namespace

DelayModelPtr FailureProfile::apply(DelayModelPtr base) const {
  if (kind != Kind::kDegrade || degrade_probability == 0.0 ||
      degrade_factor == 1.0) {
    return base;
  }
  return std::make_shared<DegradedDelay>(std::move(base),
                                         degrade_probability,
                                         degrade_factor);
}

namespace {

// Longest-prefix double parse; returns false when nothing was consumed or
// the value is negative (no failure knob is). strtod would happily consume
// hexadecimal floats ("0x1" -> 1.0), but this grammar uses 'x' as a field
// separator ("degrade-<q>x<f>"), so the scan stops at the first 'x'.
bool parse_failure_number(const char* text, double* value,
                          const char** rest) {
  std::string token(text);
  const std::size_t cut = token.find_first_of("xX");
  if (cut != std::string::npos) token.resize(cut);
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || parsed < 0.0) return false;
  *value = parsed;
  *rest = text + (end - token.c_str());
  return true;
}

}  // namespace

bool FailureProfile::parse(const std::string& text, FailureProfile* out) {
  ABE_CHECK(out != nullptr);
  if (text == "none") {
    *out = FailureProfile::none();
    return true;
  }
  if (text.rfind("loss-", 0) == 0) {
    double p = 0.0;
    const char* rest = nullptr;
    if (!parse_failure_number(text.c_str() + 5, &p, &rest)) return false;
    if (*rest != '\0' || p > 1.0) return false;
    // Direct field construction, not the loss() factory: the factory
    // rejects p = 1 (an everything-lost sweep cell is useless), but
    // describe()/parse() must round-trip any profile that already exists —
    // the network layer accepts the full closed interval.
    FailureProfile f;
    f.kind = Kind::kLoss;
    f.loss_probability = p;
    *out = f;
    return true;
  }
  if (text.rfind("degrade-", 0) == 0) {
    double q = 0.0, factor = 0.0;
    const char* rest = nullptr;
    if (!parse_failure_number(text.c_str() + 8, &q, &rest)) return false;
    if (*rest != 'x' || q > 1.0) return false;
    if (!parse_failure_number(rest + 1, &factor, &rest)) return false;
    if (*rest != '\0' || factor < 1.0) return false;
    FailureProfile f;
    f.kind = Kind::kDegrade;
    f.degrade_probability = q;
    f.degrade_factor = factor;
    *out = f;
    return true;
  }
  return false;
}

std::string FailureProfile::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kLoss:
      os << "loss-" << loss_probability;
      return os.str();
    case Kind::kDegrade:
      os << "degrade-" << degrade_probability << "x" << degrade_factor;
      return os.str();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Algorithm axis

const char* scenario_algorithm_name(ScenarioAlgorithm algorithm) {
  switch (algorithm) {
    case ScenarioAlgorithm::kRingElection:
      return "abe-ring";
    case ScenarioAlgorithm::kPollingElection:
      return "polling";
    case ScenarioAlgorithm::kGossip:
      return "gossip";
    case ScenarioAlgorithm::kBetaSync:
      return "beta-sync";
    case ScenarioAlgorithm::kUnsafeToy:
      return "unsafe-toy";
  }
  return "?";
}

ScenarioAlgorithm scenario_algorithm_from_name(const std::string& name) {
  for (ScenarioAlgorithm a :
       {ScenarioAlgorithm::kRingElection, ScenarioAlgorithm::kPollingElection,
        ScenarioAlgorithm::kGossip, ScenarioAlgorithm::kBetaSync,
        ScenarioAlgorithm::kUnsafeToy}) {
    if (name == scenario_algorithm_name(a)) return a;
  }
  ABE_CHECK(false) << "unknown scenario algorithm '" << name << "'";
  return ScenarioAlgorithm::kRingElection;
}

bool scenario_algorithm_supports(ScenarioAlgorithm algorithm,
                                 TopologyFamily family) {
  switch (algorithm) {
    case ScenarioAlgorithm::kRingElection:
      // The paper's election forwards on a node's single out-channel.
      return family == TopologyFamily::kRingUni;
    case ScenarioAlgorithm::kPollingElection:
      // The tree echo needs a reverse channel per tree edge; every builder
      // except the unidirectional ring emits both directions.
      return family != TopologyFamily::kRingUni;
    case ScenarioAlgorithm::kGossip:
      return true;
    case ScenarioAlgorithm::kBetaSync:
      // β acks every app message and talks both ways along its tree.
      return family != TopologyFamily::kRingUni;
    case ScenarioAlgorithm::kUnsafeToy:
      // Pinned to the paper's topology: the toy exists to exercise the
      // ring safety probe, not to be a real algorithm.
      return family == TopologyFamily::kRingUni;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Spec rendering

std::string DriftBand::describe() const {
  if (model == DriftModel::kNone) return "ideal";
  std::ostringstream os;
  os << drift_model_name(model) << "[" << bounds.s_low << "," << bounds.s_high
     << "]";
  return os.str();
}

std::string ScenarioSpec::cell_id() const {
  std::ostringstream os;
  os << scenario_algorithm_name(algorithm) << "/" << topology.describe()
     << "/" << delay_name << "/" << DriftBand{clock_bounds, drift}.describe()
     << "/" << failure.describe();
  if (equeue != EqueueBackend::kAuto) {
    os << "/eq-" << equeue_backend_name(equeue);
  }
  if (runtime != RuntimeKind::kSim) {
    os << "/rt-" << runtime_kind_name(runtime);
    // ARQ reliable mode changes what a udp cell measures (goodput under
    // retransmission vs raw loss), so it re-keys the cell.
    if (runtime == RuntimeKind::kUdp && udp_reliable) os << "/arq";
  }
  if (!behavior.is_honest()) {
    os << "/beh-" << behavior.describe();
  }
  if (!adversary.empty()) {
    os << "/adv-" << adversary;
  }
  return os.str();
}

std::string behavior_cell_problem(const ScenarioSpec& spec) {
  if (!spec.behavior.is_honest()) {
    const std::string problem = spec.behavior.problem(spec.topology.n);
    if (!problem.empty()) return problem;
    if (spec.algorithm != ScenarioAlgorithm::kRingElection &&
        spec.algorithm != ScenarioAlgorithm::kUnsafeToy) {
      return std::string("behavior profiles are realised for the ring "
                         "election only; ") +
             scenario_algorithm_name(spec.algorithm) +
             " keeps honest-run invariants as hard checks";
    }
  }
  if (!spec.adversary.empty()) {
    bool known = false;
    make_named_adversary(spec.adversary, /*bound=*/1.0, &known);
    if (!known) {
      return "unknown adversary policy '" + spec.adversary +
             "' (known: targeted, burst-stall)";
    }
  }
  return "";
}

std::string runtime_cell_problem(const ScenarioSpec& spec) {
  if (spec.runtime == RuntimeKind::kSim) return "";
  const bool udp = spec.runtime == RuntimeKind::kUdp;
  if (spec.drift == DriftModel::kPiecewiseRandom) {
    if (udp) {
      return "udp runtime realises clocks as scaled wall time; "
             "piecewise-random drift is impossible there (use kNone or "
             "kFixedRandomRate)";
    }
    return "thread runtime realises clocks as scaled wall time; "
           "piecewise-random drift is impossible there (use kNone or "
           "kFixedRandomRate)";
  }
  if (spec.equeue != EqueueBackend::kAuto) {
    if (udp) {
      return "the event-queue backend is a simulator scheduler knob; udp "
             "cells must keep equeue=auto";
    }
    return "the event-queue backend is a simulator scheduler knob; thread "
           "cells must keep equeue=auto";
  }
  if (udp) {
    if (spec.topology.n > kMaxUdpRuntimeNodes) {
      return "n=" + std::to_string(spec.topology.n) +
             " exceeds the per-node socket/port budget (max " +
             std::to_string(kMaxUdpRuntimeNodes) +
             ": one loopback socket and two OS threads per node)";
    }
  } else if (spec.topology.n > kMaxThreadRuntimeNodes) {
    return "n=" + std::to_string(spec.topology.n) +
           " exceeds the one-OS-thread-per-node budget (max " +
           std::to_string(kMaxThreadRuntimeNodes) + ")";
  }
  if (spec.thread_time_scale_us <= 0.0 || spec.thread_wall_timeout_ms <= 0.0) {
    return "thread_time_scale_us and thread_wall_timeout_ms must be > 0";
  }
  return "";
}

std::string ScenarioSpec::describe() const {
  std::ostringstream os;
  os << "scenario : " << (name.empty() ? cell_id() : name) << "\n";
  if (!description.empty()) os << "about    : " << description << "\n";
  os << "cell     : " << cell_id() << "\n"
     << "algorithm: " << scenario_algorithm_name(algorithm) << "\n"
     << "topology : " << topology.describe() << "\n"
     << "delay    : " << delay_name << " (mean " << mean_delay << ")\n"
     << "clocks   : " << DriftBand{clock_bounds, drift}.describe() << "\n"
     << "process  : gamma=" << processing.mean << "\n"
     << "failure  : " << failure.describe() << "\n"
     << "behavior : " << behavior.describe() << "\n"
     << "adversary: " << (adversary.empty() ? "none" : adversary) << "\n";
  if (algorithm == ScenarioAlgorithm::kRingElection) {
    os << "a0       : "
       << (a0 > 0.0 ? std::to_string(a0)
                    : "calibrated c/n^2 (linear regime)")
       << "\n";
  }
  os << "equeue   : " << equeue_backend_name(equeue) << "\n"
     << "runtime  : " << runtime_kind_name(runtime)
     << (runtime == RuntimeKind::kUdp && udp_reliable ? " (arq reliable)" : "")
     << "\n";
  // Structural runtime compatibility, mirroring the algorithm×topology
  // filter: say up front why a thread or udp run of this cell would be
  // rejected instead of letting the user hit a bare error.
  {
    ScenarioSpec threaded = *this;
    threaded.runtime = RuntimeKind::kThread;
    const std::string problem = runtime_cell_problem(threaded);
    os << "thread?  : "
       << (problem.empty() ? "ok (--runtime thread)" : "rejected — " + problem)
       << "\n";
  }
  {
    ScenarioSpec udp = *this;
    udp.runtime = RuntimeKind::kUdp;
    const std::string problem = runtime_cell_problem(udp);
    os << "udp?     : "
       << (problem.empty() ? "ok (--runtime udp)" : "rejected — " + problem)
       << "\n";
  }
  os << "trials   : " << default_trials << " (default)\n"
     << "deadline : " << deadline << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registry

namespace {

ScenarioSpec make_spec(std::string name, std::string description,
                       ScenarioAlgorithm algorithm, TopologySpec topology) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.algorithm = algorithm;
  s.topology = topology;
  return s;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> reg;

  // The paper's baseline: probabilistic election on the anonymous ring.
  reg.push_back(make_spec(
      "ring-election",
      "paper Section 3: probabilistic election, anonymous uni ring",
      ScenarioAlgorithm::kRingElection,
      TopologySpec{TopologyFamily::kRingUni, 16, 0.0}));

  // Migrated from examples/sensor_network.cpp: lossy-radio MAC (geometric
  // retransmission delay), drifting oscillators, slow CPUs.
  {
    ScenarioSpec s = make_spec(
        "sensor-network",
        "migrated example: election over a lossy-MAC ring (case iii)",
        ScenarioAlgorithm::kRingElection,
        TopologySpec{TopologyFamily::kRingUni, 32, 0.0});
    s.delay_name = "georetx";
    s.mean_delay = 1.0 / 0.6;  // slot/p with p = 0.6
    s.clock_bounds = ClockBounds{1.0 / 1.5, 1.5};
    s.drift = DriftModel::kPiecewiseRandom;
    s.processing = ProcessingModel::exponential(0.05);
    s.settle_time = 50.0;
    reg.push_back(std::move(s));
  }

  // Migrated from examples/adhoc_field.cpp: rumor spreading over a random
  // sensor field with heavy-ish wireless retry delays.
  {
    ScenarioSpec s = make_spec(
        "adhoc-field",
        "migrated example: push gossip over a random geometric field",
        ScenarioAlgorithm::kGossip,
        TopologySpec{TopologyFamily::kGeometric, 36, 0.25});
    s.delay_name = "weibull";
    s.clock_bounds = ClockBounds{0.8, 1.25};
    s.drift = DriftModel::kPiecewiseRandom;
    s.deadline = 1e6;
    reg.push_back(std::move(s));
  }

  // The polling baseline across the general-graph families.
  reg.push_back(make_spec(
      "polling-ring",
      "polling election (broadcast/echo + extinction) on the bi ring",
      ScenarioAlgorithm::kPollingElection,
      TopologySpec{TopologyFamily::kRingBi, 16, 0.0}));
  reg.push_back(make_spec(
      "polling-torus", "polling election on an 8x8 torus",
      ScenarioAlgorithm::kPollingElection,
      TopologySpec{TopologyFamily::kTorus, 64, 0.0}));
  reg.push_back(make_spec(
      "polling-hypercube", "polling election on the 6-cube",
      ScenarioAlgorithm::kPollingElection,
      TopologySpec{TopologyFamily::kHypercube, 64, 0.0}));
  reg.push_back(make_spec(
      "polling-rgg", "polling election on a random geometric graph",
      ScenarioAlgorithm::kPollingElection,
      TopologySpec{TopologyFamily::kGeometric, 64, 0.0}));
  {
    ScenarioSpec s = make_spec(
        "polling-heavytail",
        "polling election under Lomax (infinite-variance) delays",
        ScenarioAlgorithm::kPollingElection,
        TopologySpec{TopologyFamily::kTorus, 64, 0.0});
    s.delay_name = "lomax";
    reg.push_back(std::move(s));
  }

  // Synchronizer workload: β-coordinated max consensus on a mesh — the
  // Theorem 1 cost floor (≥ n messages per round) as a sweepable cell.
  reg.push_back(make_spec(
      "beta-sync-torus",
      "beta-synchronized max consensus, diameter rounds on a 4x4 torus",
      ScenarioAlgorithm::kBetaSync,
      TopologySpec{TopologyFamily::kTorus, 16, 0.0}));

  // Robustness single: the ring election self-recovers from message loss
  // (a lost token only delays the next activation), unlike polling.
  {
    ScenarioSpec s = make_spec(
        "ring-lossy", "ring election surviving silent message loss",
        ScenarioAlgorithm::kRingElection,
        TopologySpec{TopologyFamily::kRingUni, 16, 0.0});
    s.failure = FailureProfile::loss(0.005);
    // Loss opens a deadlock corner (every node passive, every token lost),
    // so stuck trials must fail fast: elections normally finish by t ≈ 50,
    // and a deadline in the 1e7 default would burn ~1e8 tick events.
    s.deadline = 2e4;
    reg.push_back(std::move(s));
  }

  return reg;
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> kRegistry = build_registry();
  return kRegistry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : scenario_registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Matrix

std::vector<ScenarioSpec> ScenarioMatrix::expand() const {
  ABE_CHECK(!algorithms.empty());
  ABE_CHECK(!topologies.empty());
  ABE_CHECK(!delays.empty());
  std::vector<DriftBand> drift_axis = drifts;
  if (drift_axis.empty()) drift_axis.push_back(DriftBand{});
  std::vector<FailureProfile> failure_axis = failures;
  if (failure_axis.empty()) failure_axis.push_back(FailureProfile::none());
  std::vector<EqueueBackend> equeue_axis = equeues;
  if (equeue_axis.empty()) equeue_axis.push_back(base.equeue);
  std::vector<RuntimeKind> runtime_axis = runtimes;
  if (runtime_axis.empty()) runtime_axis.push_back(base.runtime);
  std::vector<BehaviorSpec> behavior_axis = behaviors;
  if (behavior_axis.empty()) behavior_axis.push_back(base.behavior);
  std::vector<std::string> adversary_axis = adversaries;
  if (adversary_axis.empty()) adversary_axis.push_back(base.adversary);

  std::vector<ScenarioSpec> cells;
  for (ScenarioAlgorithm algorithm : algorithms) {
    for (const TopologySpec& topology : topologies) {
      if (!scenario_algorithm_supports(algorithm, topology.family)) continue;
      for (const auto& [delay_name, mean] : delays) {
        for (const DriftBand& drift : drift_axis) {
          for (const FailureProfile& failure : failure_axis) {
            for (EqueueBackend equeue : equeue_axis) {
              for (RuntimeKind runtime : runtime_axis) {
                for (const BehaviorSpec& behavior : behavior_axis) {
                  for (const std::string& adversary : adversary_axis) {
                    ScenarioSpec cell = base;
                    cell.name.clear();
                    cell.description = description;
                    cell.algorithm = algorithm;
                    cell.topology = topology;
                    cell.delay_name = delay_name;
                    cell.mean_delay = mean;
                    cell.clock_bounds = drift.bounds;
                    cell.drift = drift.model;
                    cell.failure = failure;
                    cell.equeue = equeue;
                    cell.runtime = runtime;
                    cell.behavior = behavior;
                    cell.adversary = adversary;
                    // Same silent-filter policy as algorithm×topology: a
                    // broad {sim, thread} axis keeps only its realisable
                    // half, and a behavior axis keeps only the algorithms
                    // that realise the profile.
                    if (!runtime_cell_problem(cell).empty()) continue;
                    if (!behavior_cell_problem(cell).empty()) continue;
                    cells.push_back(std::move(cell));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

namespace {

std::vector<ScenarioMatrix> build_sweeps() {
  std::vector<ScenarioMatrix> sweeps;

  // The headline sweep: both elections across the four graph families and
  // the bounded/memoryless/heavy-tailed delay triple (ISSUE 3 acceptance).
  {
    ScenarioMatrix m;
    m.name = "robustness";
    m.description =
        "ring + polling elections x {ring, torus, hypercube, rgg} x "
        "{fixed, exponential, lomax} delays";
    m.algorithms = {ScenarioAlgorithm::kRingElection,
                    ScenarioAlgorithm::kPollingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 16, 0.0},
                    TopologySpec{TopologyFamily::kRingBi, 16, 0.0},
                    TopologySpec{TopologyFamily::kTorus, 16, 0.0},
                    TopologySpec{TopologyFamily::kHypercube, 16, 0.0},
                    TopologySpec{TopologyFamily::kGeometric, 16, 0.0}};
    m.delays = {{"fixed", 1.0}, {"exponential", 1.0}, {"lomax", 1.0}};
    sweeps.push_back(std::move(m));
  }

  // Clock-drift band sweep (Definition 1(2) axis).
  {
    ScenarioMatrix m;
    m.name = "drift";
    m.description = "elections under ideal, fixed-rate and wandering clocks";
    m.algorithms = {ScenarioAlgorithm::kRingElection,
                    ScenarioAlgorithm::kPollingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 16, 0.0},
                    TopologySpec{TopologyFamily::kTorus, 16, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.drifts = {DriftBand{},
                DriftBand{ClockBounds{0.8, 1.25},
                          DriftModel::kFixedRandomRate},
                DriftBand{ClockBounds{2.0 / 3.0, 1.5},
                          DriftModel::kPiecewiseRandom}};
    sweeps.push_back(std::move(m));
  }

  // Failure-injection sweep: the ring election recovers from loss (idle
  // nodes keep re-activating), the polling tree does not (a lost WAKE or
  // ECHO stalls the convergecast) — the robustness contrast in one matrix.
  {
    ScenarioMatrix m;
    m.name = "failure";
    m.description =
        "elections under silent loss and congestion-degraded delays";
    m.algorithms = {ScenarioAlgorithm::kRingElection,
                    ScenarioAlgorithm::kPollingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 16, 0.0},
                    TopologySpec{TopologyFamily::kTorus, 16, 0.0},
                    TopologySpec{TopologyFamily::kGeometric, 16, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.failures = {FailureProfile::none(), FailureProfile::loss(0.005),
                  FailureProfile::degrade(0.1, 20.0)};
    // Same fail-fast deadline as the ring-lossy scenario: lossy cells can
    // deadlock, and a stuck ring trial ticks until the deadline.
    m.base.deadline = 2e4;
    sweeps.push_back(std::move(m));
  }

  // Cross-runtime fidelity sweep: the same election cells on the
  // deterministic simulator AND on real threads (one OS thread per node,
  // wall-clock delays), reliable and lossy. The ABE model's claim to sit
  // between pure asynchrony and real networks is only credible if the two
  // substrates agree at the model level — leader uniqueness, completion,
  // message counts in the same regime (bit-level agreement is impossible:
  // wall-clock runs are nondeterministic by design).
  {
    ScenarioMatrix m;
    m.name = "cross-runtime";
    m.description =
        "ring + polling elections x {reliable, lossy} x {sim, thread}";
    m.algorithms = {ScenarioAlgorithm::kRingElection,
                    ScenarioAlgorithm::kPollingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 8, 0.0},
                    TopologySpec{TopologyFamily::kTorus, 9, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.failures = {FailureProfile::none(), FailureProfile::loss(0.01)};
    m.runtimes = {RuntimeKind::kSim, RuntimeKind::kThread};
    // Lossy cells can stall (see the failure sweep); fail fast on both
    // substrates — the sim deadline scales to a ~4 s wall budget per
    // thread trial, under the 10 s hard cap.
    m.base.default_trials = 4;
    m.base.deadline = 2e4;
    m.base.thread_wall_timeout_ms = 10000.0;
    sweeps.push_back(std::move(m));
  }

  // Real-socket sweep (ISSUE 10 acceptance): ring election over actual
  // loopback UDP datagrams, reliable channels and injected per-attempt
  // loss. The whole sweep runs in ARQ reliable mode, so the lossy cell
  // degrades into retransmissions (goodput loss, arq.rtt inflation)
  // instead of dropped messages — every cell must classify completed, and
  // every per-cell metrics block carries the measured udp.transit_us delay
  // histogram that the calibration path (fit_udp_calibration) feeds back
  // into DelayModel parameters.
  {
    ScenarioMatrix m;
    m.name = "udp-loopback";
    m.description =
        "ring election over real loopback datagrams, ARQ reliable, "
        "{no-loss, loss-0.05}";
    m.algorithms = {ScenarioAlgorithm::kRingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 8, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.failures = {FailureProfile::none(), FailureProfile::loss(0.05)};
    m.runtimes = {RuntimeKind::kUdp};
    m.base.udp_reliable = true;
    // Same fail-fast budgets as the cross-runtime sweep: the sim deadline
    // scales to a ~4 s wall budget per trial, under the 10 s hard cap.
    m.base.default_trials = 4;
    m.base.deadline = 2e4;
    m.base.thread_wall_timeout_ms = 10000.0;
    sweeps.push_back(std::move(m));
  }

  // Adversarial sweep: the ring election under node misbehavior (one
  // crashing / equivocating / reordering node) combined with a
  // bound-respecting targeted delay adversary, on both substrates. The
  // safety probe classifies every trial as completed-safe, stalled (a
  // crashed node kills token circulation — the ring goes quiescent with no
  // leader), failed, or SAFETY-VIOLATION; violations record replayable
  // seeds in the sweep JSON. Crash cells must show zero violations —
  // crashing is the benign fault the election's knockout logic already
  // absorbs; the Byzantine profiles are the probe's reason to exist.
  {
    ScenarioMatrix m;
    m.name = "adversary";
    m.description =
        "ring election x {crash, equivocate, reorder} x targeted-delay "
        "adversary x {sim, thread}";
    m.algorithms = {ScenarioAlgorithm::kRingElection};
    m.topologies = {TopologySpec{TopologyFamily::kRingUni, 8, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.behaviors = {BehaviorSpec{BehaviorProfile::kCrashAtT, 1, 50.0},
                   BehaviorSpec{BehaviorProfile::kEquivocate, 1, 0.0},
                   BehaviorSpec{BehaviorProfile::kReorder, 1, 4.0}};
    m.adversaries = {"targeted"};
    m.runtimes = {RuntimeKind::kSim, RuntimeKind::kThread};
    // Crash cells can stall (tokens die at the crashed node until no idle
    // node is left); fail fast on both substrates, same budget rationale
    // as the cross-runtime sweep.
    m.base.default_trials = 4;
    m.base.deadline = 2e4;
    m.base.thread_wall_timeout_ms = 10000.0;
    sweeps.push_back(std::move(m));
  }

  // Scale sweep (ISSUE 4 acceptance): the n >= 10^4 cells the ROADMAP
  // deferred until an O(1) event queue existed. Polling election on big
  // tori, crossed with every equeue backend: the aggregates must be
  // bit-identical across the backend axis (and across thread counts —
  // test_scenario asserts both), so the axis measures pure scheduler
  // throughput on a workload whose pending set actually reaches the
  // calendar/ladder regime.
  {
    ScenarioMatrix m;
    m.name = "scale";
    m.description =
        "polling election at n in {10^4, 3x10^4} x every equeue backend";
    m.algorithms = {ScenarioAlgorithm::kPollingElection};
    m.topologies = {TopologySpec{TopologyFamily::kTorus, 10000, 0.0},
                    TopologySpec{TopologyFamily::kTorus, 30000, 0.0}};
    m.delays = {{"exponential", 1.0}};
    m.equeues = {EqueueBackend::kHeap, EqueueBackend::kCalendar,
                 EqueueBackend::kLadder};
    m.base.default_trials = 4;
    sweeps.push_back(std::move(m));
  }

  return sweeps;
}

}  // namespace

const std::vector<ScenarioMatrix>& sweep_registry() {
  static const std::vector<ScenarioMatrix> kSweeps = build_sweeps();
  return kSweeps;
}

const ScenarioMatrix* find_sweep(const std::string& name) {
  for (const ScenarioMatrix& m : sweep_registry()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace abe
