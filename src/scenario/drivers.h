// Scenario-level algorithm drivers: one registry from ScenarioAlgorithm to
// the AlgorithmDriver (runtime/runtime.h) that executes a trial of it on
// EITHER runtime — the simulator or the real-thread substrate.
//
// Each registered binding contributes:
//   * the driver — node factory + done-predicate + settle/drain + result
//     extraction, built from the spec and the trial's materialised
//     topology (the driver factories live next to their algorithms:
//     core/harness.h, algo/polling_election.h, algo/gossip.h,
//     syncr/beta.h);
//   * the projection — folds the algorithm-specific sink result into the
//     uniform ScenarioTrialResult the sweep aggregates (what "completed"
//     means is per-algorithm: a polling election that elected but could
//     not finish its broadcast under loss is a failed trial, e.g.).
//
// run_scenario_trial is the only entry the sweep driver needs; it makes the
// same simulator calls the pre-Runtime per-algorithm runners made, so
// seeded simulator aggregates are bit-identical across the redesign.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/runtime.h"
#include "scenario/scenario.h"

namespace abe {

// One trial's driver binding (see file comment). `driver` runs the trial;
// `project` converts the outcome after run_algorithm_trial returns.
struct ScenarioTrialDriver {
  std::unique_ptr<AlgorithmDriver> driver;
  std::function<TrialOutcome(const TrialOutcome&)> project;
};

// Builds the binding for one trial of `spec` on the already-materialised
// `topology`. Aborts on structurally unsupported (algorithm, topology)
// pairs — expand() and the CLI filter those earlier. Non-honest behavior
// profiles wrap the afflicted nodes in FaultyNode decorators; `seed` feeds
// the crash-random profile's per-node crash-time draws (a substream, so
// honest randomness is untouched).
ScenarioTrialDriver make_scenario_driver(const ScenarioSpec& spec,
                                         const Topology& topology,
                                         std::uint64_t seed);

// Re-runs one trial of `spec` on the DETERMINISTIC simulator with
// full-detail trace recording enabled and copies the flight recorder to
// *trace_out — how a safety-violation seed captured in a sweep JSON is
// replayed and inspected. The structured Trace renders to text
// (Trace::to_string), Chrome trace JSON, or JSONL (trace/trace_export.h).
// Aborts when the spec's runtime is not the simulator (thread trials are
// wall-clock nondeterministic; their seeds are not replayable by
// construction).
TrialOutcome replay_scenario_trial(const ScenarioSpec& spec,
                                   std::uint64_t seed, Trace* trace_out);

// The spec's environment as a runtime-agnostic RuntimeConfig for the given
// trial seed (failure-degrade wrapping applied to the delay model, channel
// loss extracted, thread realisation knobs forwarded).
RuntimeConfig scenario_runtime_config(const ScenarioSpec& spec,
                                      const Topology& topology,
                                      std::uint64_t seed);

}  // namespace abe
