#include "scenario/drivers.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "adversary/delay_policy.h"
#include "adversary/faulty_node.h"
#include "adversary/unsafe_toy.h"
#include "algo/gossip.h"
#include "algo/polling_election.h"
#include "core/election.h"
#include "core/harness.h"
#include "scenario/sweep.h"
#include "syncr/apps.h"
#include "syncr/beta.h"
#include "util/check.h"

namespace abe {

namespace {

DelayModelPtr build_delay(const ScenarioSpec& spec) {
  return spec.failure.apply(
      make_delay_model(spec.delay_name, spec.mean_delay));
}

// Random topology families re-draw per trial; the substream keeps the graph
// draw independent of the network's own randomness for the same seed.
Topology build_trial_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  Rng rng = Rng(seed).substream("scenario-topology");
  return spec.topology.build(rng);
}

bool spec_is_adversarial(const ScenarioSpec& spec) {
  return !spec.behavior.is_honest() || !spec.adversary.empty();
}

ScenarioTrialDriver make_ring_binding(const ScenarioSpec& spec) {
  ElectionExperiment e;
  e.n = spec.topology.n;
  e.election.a0 =
      spec.a0 > 0.0 ? spec.a0 : linear_regime_a0(spec.topology.n);
  e.loss_probability = spec.failure.channel_loss();
  e.settle_time = spec.settle_time;
  if (spec_is_adversarial(spec)) {
    // Equivocated tokens legally violate the honest ring's hop/d
    // invariants; drop them instead of aborting, and relax the honest-
    // environment postconditions (core/harness.h) so the probe measures
    // leader uniqueness, not decoration side effects.
    e.election.tolerate_protocol_violation = true;
    e.adversarial = true;
  }

  auto sink = std::make_shared<ElectionRunResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_ring_election_driver(e, sink.get());
  // The ring driver's outcome already IS its scenario semantics (completed
  // == elected); the sink capture keeps the result the driver writes into
  // alive for the driver's lifetime.
  binding.project = [sink](const TrialOutcome& outcome) { return outcome; };
  return binding;
}

ScenarioTrialDriver make_unsafe_toy_binding() {
  ScenarioTrialDriver binding;
  binding.driver = make_unsafe_toy_driver();
  binding.project = [](const TrialOutcome& outcome) { return outcome; };
  return binding;
}

// Decorates another driver's nodes with FaultyNode wrappers per the
// behavior spec; everything else delegates. The decoration is runtime-
// agnostic — FaultyNode is just another Node, so the thread runtime gives
// it a thread like any other.
class BehaviorDecoratedDriver final : public AlgorithmDriver {
 public:
  BehaviorDecoratedDriver(std::unique_ptr<AlgorithmDriver> inner,
                          BehaviorSpec behavior, std::size_t n,
                          std::uint64_t seed, SimTime deadline)
      : inner_(std::move(inner)), behavior_(behavior), n_(n), seed_(seed),
        deadline_(deadline) {
    ABE_CHECK(inner_ != nullptr);
  }

  void configure(RuntimeConfig& config) override { inner_->configure(config); }

  NodePtr make_node(std::size_t index) override {
    double crash_time = behavior_.param;
    if (behavior_.profile == BehaviorProfile::kCrashRandom &&
        behavior_.afflicts(index, n_)) {
      // Deterministic per (seed, index); a substream so the honest
      // randomness (topology, channels, clocks) is untouched. Early in the
      // run (first quarter of the deadline) — a crash the trial never
      // reaches measures nothing.
      crash_time = Rng(seed_)
                       .substream("adversary-crash", index)
                       .uniform(0.0, deadline_ / 4.0);
    }
    return maybe_wrap_faulty(inner_->make_node(index), behavior_, index, n_,
                             crash_time);
  }

  bool done(const Runtime& rt) override { return inner_->done(rt); }
  void on_complete(Runtime& rt) override { inner_->on_complete(rt); }
  void settle(Runtime& rt, bool completed) override {
    inner_->settle(rt, completed);
  }
  TrialOutcome extract(Runtime& rt, bool completed) override {
    return inner_->extract(rt, completed);
  }

 private:
  std::unique_ptr<AlgorithmDriver> inner_;
  const BehaviorSpec behavior_;
  const std::size_t n_;
  const std::uint64_t seed_;
  const SimTime deadline_;
};

ScenarioTrialDriver make_polling_binding(const ScenarioSpec& spec,
                                         const Topology& topology) {
  PollingExperiment e;
  e.topology = topology;
  e.loss_probability = spec.failure.channel_loss();

  auto sink = std::make_shared<PollingRunResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_polling_driver(e, sink.get());
  binding.project = [sink](const TrialOutcome& outcome) {
    TrialOutcome out = outcome;
    // Election alone is not completion: under loss a stranded RESULT
    // leaves the poll unfinished, and that counts as the injected failure.
    out.completed = sink->elected && sink->terminated;
    out.time = sink->election_time;
    out.messages = sink->messages;
    return out;
  };
  return binding;
}

ScenarioTrialDriver make_gossip_binding(const ScenarioSpec& spec,
                                        const Topology& topology) {
  GossipExperiment e;
  e.topology = topology;
  e.loss_probability = spec.failure.channel_loss();

  auto sink = std::make_shared<GossipResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_gossip_driver(e, sink.get());
  // Gossip's driver outcome already IS its scenario semantics: completion
  // and safety are both total dissemination, time is the spread time.
  binding.project = [sink](const TrialOutcome& outcome) { return outcome; };
  return binding;
}

ScenarioTrialDriver make_beta_sync_binding(const Topology& topology) {
  // Max consensus with values 0…n−1 converges once the maximum's wavefront
  // crosses the graph: diameter-many β rounds suffice (≥ 1 for n = 1).
  const std::uint64_t rounds =
      std::max<std::size_t>(diameter(topology), 1);
  std::vector<std::int64_t> values(topology.n);
  for (std::size_t i = 0; i < topology.n; ++i) {
    values[i] = static_cast<std::int64_t>(i);
  }

  // The factory must outlive the driver, which holds it by reference.
  auto factory =
      std::make_shared<SyncAppFactory>(max_app_factory(std::move(values)));
  auto sink = std::make_shared<BetaRunResult>();
  const std::size_t n = topology.n;

  ScenarioTrialDriver binding;
  binding.driver = make_beta_sync_driver(*factory, rounds, sink.get());
  binding.project = [sink, factory, rounds,
                     n](const TrialOutcome& outcome) {
    TrialOutcome out;
    // Preserve the trial loop's observability harvest: this projection
    // rebuilds the outcome from the sink, but metrics/wall/flight-tail
    // belong to the run, not the algorithm.
    out.has_metrics = outcome.has_metrics;
    out.metrics = outcome.metrics;
    out.wall = outcome.wall;
    out.flight_tail = outcome.flight_tail;
    out.decision_node = outcome.decision_node;
    out.has_critical_path = outcome.has_critical_path;
    out.critical_path = outcome.critical_path;
    out.has_timeseries = outcome.has_timeseries;
    out.timeseries = outcome.timeseries;
    out.completed = sink->completed;
    out.time = sink->completion_time;
    out.messages = sink->messages_total;
    if (!sink->completed) return out;
    const auto target = static_cast<std::int64_t>(n - 1);
    std::size_t converged = 0;
    for (std::int64_t output : sink->outputs) {
      if (output == target) ++converged;
    }
    out.safety_ok = converged == n;
    if (!out.safety_ok) {
      std::ostringstream detail;
      detail << "only " << converged << " of " << n
             << " nodes reached the global maximum after " << rounds
             << " rounds";
      out.safety_detail = detail.str();
    }
    return out;
  };
  return binding;
}

}  // namespace

ScenarioTrialDriver make_scenario_driver(const ScenarioSpec& spec,
                                         const Topology& topology,
                                         std::uint64_t seed) {
  ABE_CHECK(scenario_algorithm_supports(spec.algorithm, spec.topology.family))
      << scenario_algorithm_name(spec.algorithm) << " cannot run on "
      << topology_family_name(spec.topology.family);
  const std::string behavior_problem = behavior_cell_problem(spec);
  ABE_CHECK(behavior_problem.empty())
      << spec.cell_id() << ": " << behavior_problem;
  ScenarioTrialDriver binding;
  switch (spec.algorithm) {
    case ScenarioAlgorithm::kRingElection:
      binding = make_ring_binding(spec);
      break;
    case ScenarioAlgorithm::kPollingElection:
      binding = make_polling_binding(spec, topology);
      break;
    case ScenarioAlgorithm::kGossip:
      binding = make_gossip_binding(spec, topology);
      break;
    case ScenarioAlgorithm::kBetaSync:
      binding = make_beta_sync_binding(topology);
      break;
    case ScenarioAlgorithm::kUnsafeToy:
      binding = make_unsafe_toy_binding();
      break;
  }
  ABE_CHECK(binding.driver != nullptr) << "unhandled algorithm";
  if (!spec.behavior.is_honest()) {
    binding.driver = std::make_unique<BehaviorDecoratedDriver>(
        std::move(binding.driver), spec.behavior, spec.topology.n, seed,
        spec.deadline);
  }
  return binding;
}

RuntimeConfig scenario_runtime_config(const ScenarioSpec& spec,
                                      const Topology& topology,
                                      std::uint64_t seed) {
  RuntimeConfig config;
  config.topology = topology;
  config.delay = build_delay(spec);
  config.clock_bounds = spec.clock_bounds;
  config.drift = spec.drift;
  config.processing = spec.processing;
  config.loss_probability = spec.failure.channel_loss();
  config.seed = seed;
  config.equeue = spec.equeue;
  config.deadline = spec.deadline;
  config.time_scale_us = spec.thread_time_scale_us;
  config.wall_timeout_ms = spec.thread_wall_timeout_ms;
  config.udp_reliable = spec.udp_reliable;
  // Scenario trials always harvest metrics: recording consumes no RNG, so
  // seeded aggregates stay bit-identical with the flag on (test_obs pins
  // this), and every sweep cell gets its metrics block for free.
  config.metrics = true;
  config.causal_history = spec.causal_history;
  config.timeseries_interval =
      spec.runtime == RuntimeKind::kSim ? spec.timeseries_interval : 0.0;
  if (!spec.adversary.empty()) {
    // Fresh policy per trial: the per-channel delay accounts are trial
    // state. The bound is the (failure-degraded) model's advertised mean —
    // the δ the ABE contract lets the algorithm rely on.
    bool known = false;
    config.adversary_delay = make_named_adversary(
        spec.adversary, config.delay->mean_delay(), &known);
    ABE_CHECK(known) << "unknown adversary policy '" << spec.adversary
                     << "'";
  }
  return config;
}

ScenarioTrialResult run_scenario_trial(const ScenarioSpec& spec,
                                       std::uint64_t seed) {
  const std::string problem = runtime_cell_problem(spec);
  ABE_CHECK(problem.empty())
      << spec.cell_id() << " cannot run on the "
      << runtime_kind_name(spec.runtime) << " runtime: " << problem;

  // The ring election runs on the unidirectional ring its spec names; all
  // other algorithms take the materialised (possibly random) graph.
  const Topology topology = build_trial_topology(spec, seed);
  ScenarioTrialDriver binding = make_scenario_driver(spec, topology, seed);
  const TrialOutcome outcome = run_algorithm_trial(
      spec.runtime, scenario_runtime_config(spec, topology, seed),
      *binding.driver);
  return binding.project(outcome);
}

TrialOutcome replay_scenario_trial(const ScenarioSpec& spec,
                                   std::uint64_t seed, Trace* trace_out) {
  ABE_CHECK(trace_out != nullptr);
  ABE_CHECK(spec.runtime == RuntimeKind::kSim)
      << "only simulator trials are replayable (thread trials are "
         "wall-clock nondeterministic)";

  const Topology topology = build_trial_topology(spec, seed);
  ScenarioTrialDriver binding = make_scenario_driver(spec, topology, seed);
  RuntimeConfig config = scenario_runtime_config(spec, topology, seed);
  config.trace = true;

  // run_algorithm_trial's exact lifecycle, inlined on a concrete
  // SimRuntime so the trace can be harvested before the runtime dies.
  // Trace recording observes event order without consuming randomness, so
  // the replayed outcome is bit-identical to the original trial's.
  binding.driver->configure(config);
  const SimTime deadline = config.deadline;
  SimRuntime rt(std::move(config));
  rt.build_nodes(
      [&](std::size_t i) { return binding.driver->make_node(i); });
  rt.start();
  const bool completed = rt.run_until_done(
      [&] { return binding.driver->done(rt); }, deadline);
  if (completed) binding.driver->on_complete(rt);
  binding.driver->settle(rt, completed);
  rt.stop();
  TrialOutcome outcome = binding.driver->extract(rt, completed);
  outcome.metrics = rt.metrics_snapshot();
  outcome.has_metrics = true;
  *trace_out = rt.network().trace();
  return binding.project(outcome);
}

}  // namespace abe
