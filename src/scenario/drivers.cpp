#include "scenario/drivers.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "algo/gossip.h"
#include "algo/polling_election.h"
#include "core/election.h"
#include "core/harness.h"
#include "scenario/sweep.h"
#include "syncr/apps.h"
#include "syncr/beta.h"
#include "util/check.h"

namespace abe {

namespace {

DelayModelPtr build_delay(const ScenarioSpec& spec) {
  return spec.failure.apply(
      make_delay_model(spec.delay_name, spec.mean_delay));
}

// Random topology families re-draw per trial; the substream keeps the graph
// draw independent of the network's own randomness for the same seed.
Topology build_trial_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  Rng rng = Rng(seed).substream("scenario-topology");
  return spec.topology.build(rng);
}

ScenarioTrialDriver make_ring_binding(const ScenarioSpec& spec) {
  ElectionExperiment e;
  e.n = spec.topology.n;
  e.election.a0 =
      spec.a0 > 0.0 ? spec.a0 : linear_regime_a0(spec.topology.n);
  e.loss_probability = spec.failure.channel_loss();
  e.settle_time = spec.settle_time;

  auto sink = std::make_shared<ElectionRunResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_ring_election_driver(e, sink.get());
  // The ring driver's outcome already IS its scenario semantics (completed
  // == elected); the sink capture keeps the result the driver writes into
  // alive for the driver's lifetime.
  binding.project = [sink](const TrialOutcome& outcome) { return outcome; };
  return binding;
}

ScenarioTrialDriver make_polling_binding(const ScenarioSpec& spec,
                                         const Topology& topology) {
  PollingExperiment e;
  e.topology = topology;
  e.loss_probability = spec.failure.channel_loss();

  auto sink = std::make_shared<PollingRunResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_polling_driver(e, sink.get());
  binding.project = [sink](const TrialOutcome& outcome) {
    TrialOutcome out = outcome;
    // Election alone is not completion: under loss a stranded RESULT
    // leaves the poll unfinished, and that counts as the injected failure.
    out.completed = sink->elected && sink->terminated;
    out.time = sink->election_time;
    out.messages = sink->messages;
    return out;
  };
  return binding;
}

ScenarioTrialDriver make_gossip_binding(const ScenarioSpec& spec,
                                        const Topology& topology) {
  GossipExperiment e;
  e.topology = topology;
  e.loss_probability = spec.failure.channel_loss();

  auto sink = std::make_shared<GossipResult>();
  ScenarioTrialDriver binding;
  binding.driver = make_gossip_driver(e, sink.get());
  // Gossip's driver outcome already IS its scenario semantics: completion
  // and safety are both total dissemination, time is the spread time.
  binding.project = [sink](const TrialOutcome& outcome) { return outcome; };
  return binding;
}

ScenarioTrialDriver make_beta_sync_binding(const Topology& topology) {
  // Max consensus with values 0…n−1 converges once the maximum's wavefront
  // crosses the graph: diameter-many β rounds suffice (≥ 1 for n = 1).
  const std::uint64_t rounds =
      std::max<std::size_t>(diameter(topology), 1);
  std::vector<std::int64_t> values(topology.n);
  for (std::size_t i = 0; i < topology.n; ++i) {
    values[i] = static_cast<std::int64_t>(i);
  }

  // The factory must outlive the driver, which holds it by reference.
  auto factory =
      std::make_shared<SyncAppFactory>(max_app_factory(std::move(values)));
  auto sink = std::make_shared<BetaRunResult>();
  const std::size_t n = topology.n;

  ScenarioTrialDriver binding;
  binding.driver = make_beta_sync_driver(*factory, rounds, sink.get());
  binding.project = [sink, factory, rounds,
                     n](const TrialOutcome& /*outcome*/) {
    TrialOutcome out;
    out.completed = sink->completed;
    out.time = sink->completion_time;
    out.messages = sink->messages_total;
    if (!sink->completed) return out;
    const auto target = static_cast<std::int64_t>(n - 1);
    std::size_t converged = 0;
    for (std::int64_t output : sink->outputs) {
      if (output == target) ++converged;
    }
    out.safety_ok = converged == n;
    if (!out.safety_ok) {
      std::ostringstream detail;
      detail << "only " << converged << " of " << n
             << " nodes reached the global maximum after " << rounds
             << " rounds";
      out.safety_detail = detail.str();
    }
    return out;
  };
  return binding;
}

}  // namespace

ScenarioTrialDriver make_scenario_driver(const ScenarioSpec& spec,
                                         const Topology& topology) {
  ABE_CHECK(scenario_algorithm_supports(spec.algorithm, spec.topology.family))
      << scenario_algorithm_name(spec.algorithm) << " cannot run on "
      << topology_family_name(spec.topology.family);
  switch (spec.algorithm) {
    case ScenarioAlgorithm::kRingElection:
      return make_ring_binding(spec);
    case ScenarioAlgorithm::kPollingElection:
      return make_polling_binding(spec, topology);
    case ScenarioAlgorithm::kGossip:
      return make_gossip_binding(spec, topology);
    case ScenarioAlgorithm::kBetaSync:
      return make_beta_sync_binding(topology);
  }
  ABE_CHECK(false) << "unhandled algorithm";
  return {};
}

RuntimeConfig scenario_runtime_config(const ScenarioSpec& spec,
                                      const Topology& topology,
                                      std::uint64_t seed) {
  RuntimeConfig config;
  config.topology = topology;
  config.delay = build_delay(spec);
  config.clock_bounds = spec.clock_bounds;
  config.drift = spec.drift;
  config.processing = spec.processing;
  config.loss_probability = spec.failure.channel_loss();
  config.seed = seed;
  config.equeue = spec.equeue;
  config.deadline = spec.deadline;
  config.time_scale_us = spec.thread_time_scale_us;
  config.wall_timeout_ms = spec.thread_wall_timeout_ms;
  return config;
}

ScenarioTrialResult run_scenario_trial(const ScenarioSpec& spec,
                                       std::uint64_t seed) {
  const std::string problem = runtime_cell_problem(spec);
  ABE_CHECK(problem.empty())
      << spec.cell_id() << " cannot run on the "
      << runtime_kind_name(spec.runtime) << " runtime: " << problem;

  // The ring election runs on the unidirectional ring its spec names; all
  // other algorithms take the materialised (possibly random) graph.
  const Topology topology = build_trial_topology(spec, seed);
  ScenarioTrialDriver binding = make_scenario_driver(spec, topology);
  const TrialOutcome outcome = run_algorithm_trial(
      spec.runtime, scenario_runtime_config(spec, topology, seed),
      *binding.driver);
  return binding.project(outcome);
}

}  // namespace abe
