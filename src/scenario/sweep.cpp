#include "scenario/sweep.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "algo/gossip.h"
#include "algo/polling_election.h"
#include "core/election.h"
#include "core/harness.h"
#include "core/trial_pool.h"
#include "stats/table.h"
#include "syncr/apps.h"
#include "syncr/beta.h"
#include "util/check.h"

namespace abe {

namespace {

DelayModelPtr build_delay(const ScenarioSpec& spec) {
  return spec.failure.apply(
      make_delay_model(spec.delay_name, spec.mean_delay));
}

// Random topology families re-draw per trial; the substream keeps the graph
// draw independent of the network's own randomness for the same seed.
Topology build_trial_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  Rng rng = Rng(seed).substream("scenario-topology");
  return spec.topology.build(rng);
}

ScenarioTrialResult run_ring_trial(const ScenarioSpec& spec,
                                   std::uint64_t seed) {
  ElectionExperiment e;
  e.n = spec.topology.n;
  e.delay = build_delay(spec);
  e.clock_bounds = spec.clock_bounds;
  e.drift = spec.drift;
  e.processing = spec.processing;
  e.loss_probability = spec.failure.channel_loss();
  e.election.a0 =
      spec.a0 > 0.0 ? spec.a0 : linear_regime_a0(spec.topology.n);
  e.seed = seed;
  e.equeue = spec.equeue;
  e.deadline = spec.deadline;
  e.settle_time = spec.settle_time;

  const ElectionRunResult run = run_election(e);
  ScenarioTrialResult out;
  out.completed = run.elected;
  out.safety_ok = run.safety_ok;
  out.safety_detail = run.safety_detail;
  out.time = run.election_time;
  out.messages = run.messages;
  return out;
}

ScenarioTrialResult run_polling_trial(const ScenarioSpec& spec,
                                      std::uint64_t seed) {
  PollingExperiment e;
  e.topology = build_trial_topology(spec, seed);
  e.delay = build_delay(spec);
  e.clock_bounds = spec.clock_bounds;
  e.drift = spec.drift;
  e.processing = spec.processing;
  e.loss_probability = spec.failure.channel_loss();
  e.seed = seed;
  e.equeue = spec.equeue;
  e.deadline = spec.deadline;

  const PollingRunResult run = run_polling_election(e);
  ScenarioTrialResult out;
  // Election alone is not completion: under loss a stranded RESULT leaves
  // the poll unfinished, and that counts as the injected failure.
  out.completed = run.elected && run.terminated;
  out.safety_ok = run.safety_ok;
  out.safety_detail = run.safety_detail;
  out.time = run.election_time;
  out.messages = run.messages;
  return out;
}

ScenarioTrialResult run_gossip_trial(const ScenarioSpec& spec,
                                     std::uint64_t seed) {
  GossipExperiment e;
  e.topology = build_trial_topology(spec, seed);
  e.delay = build_delay(spec);
  e.clock_bounds = spec.clock_bounds;
  e.drift = spec.drift;
  e.processing = spec.processing;
  e.loss_probability = spec.failure.channel_loss();
  e.seed = seed;
  e.equeue = spec.equeue;
  e.deadline = spec.deadline;

  const GossipResult run = run_gossip(e);
  ScenarioTrialResult out;
  out.completed = run.all_informed;
  // Gossip's safety postcondition is total dissemination itself.
  out.safety_ok = run.all_informed;
  if (!run.all_informed) out.safety_detail = "rumor did not reach everyone";
  out.time = run.spread_time;
  out.messages = run.messages;
  return out;
}

ScenarioTrialResult run_beta_sync_trial(const ScenarioSpec& spec,
                                        std::uint64_t seed) {
  const Topology topology = build_trial_topology(spec, seed);
  // Max consensus with values 0…n−1 converges once the maximum's wavefront
  // crosses the graph: diameter-many β rounds suffice (≥ 1 for n = 1).
  const std::uint64_t rounds =
      std::max<std::size_t>(diameter(topology), 1);
  std::vector<std::int64_t> values(topology.n);
  for (std::size_t i = 0; i < topology.n; ++i) {
    values[i] = static_cast<std::int64_t>(i);
  }

  BetaEnvironment environment;
  environment.clock_bounds = spec.clock_bounds;
  environment.drift = spec.drift;
  environment.processing = spec.processing;
  environment.loss_probability = spec.failure.channel_loss();
  environment.equeue = spec.equeue;
  const BetaRunResult run = run_beta_synchronizer(
      topology, max_app_factory(std::move(values)), rounds,
      build_delay(spec), seed, spec.deadline, environment);

  ScenarioTrialResult out;
  out.completed = run.completed;
  out.time = run.completion_time;
  out.messages = run.messages_total;
  if (!run.completed) return out;
  const auto target = static_cast<std::int64_t>(topology.n - 1);
  std::size_t converged = 0;
  for (std::int64_t output : run.outputs) {
    if (output == target) ++converged;
  }
  out.safety_ok = converged == topology.n;
  if (!out.safety_ok) {
    std::ostringstream detail;
    detail << "only " << converged << " of " << topology.n
           << " nodes reached the global maximum after " << rounds
           << " rounds";
    out.safety_detail = detail.str();
  }
  return out;
}

}  // namespace

ScenarioTrialResult run_scenario_trial(const ScenarioSpec& spec,
                                       std::uint64_t seed) {
  ABE_CHECK(scenario_algorithm_supports(spec.algorithm, spec.topology.family))
      << scenario_algorithm_name(spec.algorithm) << " cannot run on "
      << topology_family_name(spec.topology.family);
  switch (spec.algorithm) {
    case ScenarioAlgorithm::kRingElection:
      return run_ring_trial(spec, seed);
    case ScenarioAlgorithm::kPollingElection:
      return run_polling_trial(spec, seed);
    case ScenarioAlgorithm::kGossip:
      return run_gossip_trial(spec, seed);
    case ScenarioAlgorithm::kBetaSync:
      return run_beta_sync_trial(spec, seed);
  }
  ABE_CHECK(false) << "unhandled algorithm";
  return ScenarioTrialResult{};
}

void ScenarioAggregate::merge(const ScenarioAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  trials += other.trials;
  failures += other.failures;
  safety_violations += other.safety_violations;
}

ScenarioAggregate run_scenario_trials(const ScenarioSpec& spec,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base,
                                      unsigned threads) {
  return run_seed_chunked_trials<ScenarioAggregate>(
      trials, seed_base, threads,
      [&spec](std::uint64_t seed_lo, std::uint64_t seed_hi,
              ScenarioAggregate& out) {
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          const ScenarioTrialResult run = run_scenario_trial(spec, s);
          ++out.trials;
          if (!run.completed) {
            ++out.failures;
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.time);
        }
      });
}

std::vector<SweepCellOutcome> run_sweep(
    const std::vector<ScenarioSpec>& cells, std::uint64_t trials,
    std::uint64_t seed_base, unsigned threads,
    const SweepProgressFn& progress) {
  std::vector<SweepCellOutcome> outcomes;
  outcomes.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioSpec& spec = cells[i];
    const std::uint64_t cell_trials =
        trials > 0 ? trials : spec.default_trials;
    SweepCellOutcome outcome;
    outcome.spec = spec;
    outcome.aggregate =
        run_scenario_trials(spec, cell_trials, seed_base, threads);
    outcomes.push_back(std::move(outcome));
    if (progress) progress(i, cells.size(), outcomes.back());
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// JSON

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepRunMetadata& metadata,
                      const std::vector<SweepCellOutcome>& outcomes) {
  os << "{\n"
     << "  \"schema\": \"abe-scenario-sweep-v2\",\n"
     << "  \"metadata\": {\n"
     << "    \"git_sha\": \"" << json_escape(metadata.git_sha) << "\",\n"
     << "    \"compiler\": \"" << json_escape(metadata.compiler) << "\",\n"
     << "    \"build_type\": \"" << json_escape(metadata.build_type)
     << "\",\n"
     << "    \"equeue\": \"" << json_escape(metadata.equeue) << "\",\n"
     << "    \"trial_threads\": " << metadata.threads << ",\n"
     << "    \"trials\": " << metadata.trials << ",\n"
     << "    \"seed_base\": " << metadata.seed_base << "\n"
     << "  },\n"
     << "  \"cells\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioSpec& spec = outcomes[i].spec;
    const ScenarioAggregate& agg = outcomes[i].aggregate;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n"
       << "      \"cell\": \"" << json_escape(spec.cell_id()) << "\",\n"
       << "      \"scenario\": \"" << json_escape(spec.name) << "\",\n"
       << "      \"algorithm\": \""
       << scenario_algorithm_name(spec.algorithm) << "\",\n"
       << "      \"topology\": {\"family\": \""
       << topology_family_name(spec.topology.family)
       << "\", \"n\": " << spec.topology.n
       << ", \"param\": " << spec.topology.param << "},\n"
       << "      \"delay\": {\"model\": \"" << json_escape(spec.delay_name)
       << "\", \"mean\": " << spec.mean_delay << "},\n"
       << "      \"clock\": {\"s_low\": " << spec.clock_bounds.s_low
       << ", \"s_high\": " << spec.clock_bounds.s_high << ", \"drift\": \""
       << drift_model_name(spec.drift) << "\"},\n"
       << "      \"failure\": \"" << json_escape(spec.failure.describe())
       << "\",\n"
       << "      \"equeue\": \""
       << equeue_backend_name(spec.equeue) << "\",\n"
       << "      \"trials\": " << agg.trials << ",\n"
       << "      \"failures\": " << agg.failures << ",\n"
       << "      \"safety_violations\": " << agg.safety_violations << ",\n"
       << "      \"messages\": " << agg.messages.to_json() << ",\n"
       << "      \"time\": " << agg.time.to_json() << "\n    }";
  }
  os << "\n  ]\n}\n";
}

std::string render_sweep_table(
    const std::vector<SweepCellOutcome>& outcomes) {
  Table table({"cell", "trials", "ok", "fail", "unsafe", "messages",
               "time"});
  for (const SweepCellOutcome& outcome : outcomes) {
    const ScenarioAggregate& agg = outcome.aggregate;
    // ok = completed AND safe, so ok + fail + unsafe == trials.
    const std::uint64_t ok =
        agg.messages.count() - agg.safety_violations;
    table.add_row(
        {outcome.spec.cell_id(),
         Table::fmt_int(static_cast<std::int64_t>(agg.trials)),
         Table::fmt_int(static_cast<std::int64_t>(ok)),
         Table::fmt_int(static_cast<std::int64_t>(agg.failures)),
         Table::fmt_int(static_cast<std::int64_t>(agg.safety_violations)),
         Table::fmt(agg.messages.mean(), 1), Table::fmt(agg.time.mean(), 1)});
  }
  return table.render();
}

}  // namespace abe
