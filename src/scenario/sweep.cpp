#include "scenario/sweep.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/trial_pool.h"
#include "scenario/drivers.h"
#include "stats/table.h"
#include "util/check.h"

namespace abe {

void ScenarioAggregate::merge(const ScenarioAggregate& other) {
  messages.merge(other.messages);
  time.merge(other.time);
  trials += other.trials;
  failures += other.failures;
  stalled += other.stalled;
  safety_violations += other.safety_violations;
  // Seed-ordered: chunks are merged in seed order (trial_pool contract)
  // and each chunk appends its seeds ascending.
  violation_seeds.insert(violation_seeds.end(),
                         other.violation_seeds.begin(),
                         other.violation_seeds.end());
  // Commutative by construction (sum / max / bucket-sum), so the chunk
  // tree's merge order cannot change the result.
  metrics.merge(other.metrics);
  wall += other.wall;
  critical_path.merge(other.critical_path);
  timeseries.merge(other.timeseries);
}

ScenarioAggregate run_scenario_trials(const ScenarioSpec& spec,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base,
                                      unsigned threads) {
  return run_seed_chunked_trials<ScenarioAggregate>(
      trials, seed_base, threads,
      [&spec](std::uint64_t seed_lo, std::uint64_t seed_hi,
              ScenarioAggregate& out) {
        for (std::uint64_t s = seed_lo; s < seed_hi; ++s) {
          const ScenarioTrialResult run = run_scenario_trial(spec, s);
          ++out.trials;
          // Harvest observability from every trial, failed ones included —
          // the metrics of a stalled cell are exactly what report exists
          // to show.
          if (run.has_metrics) out.metrics.merge(run.metrics);
          out.wall += run.wall;
          if (run.has_critical_path) out.critical_path.add(run.critical_path, s);
          if (run.has_timeseries) out.timeseries.merge(run.timeseries);
          if (!run.completed) {
            if (run.stalled) {
              ++out.stalled;
            } else {
              ++out.failures;
            }
            continue;
          }
          if (!run.safety_ok) {
            ++out.safety_violations;
            // The capture that makes a violation actionable: replay this
            // seed via replay_scenario_trial (or `abe_scenarios replay`)
            // to get the full event trace.
            out.violation_seeds.push_back(s);
          }
          out.messages.add(static_cast<double>(run.messages));
          out.time.add(run.time);
        }
      });
}

std::vector<SweepCellOutcome> run_sweep(
    const std::vector<ScenarioSpec>& cells, std::uint64_t trials,
    std::uint64_t seed_base, unsigned threads,
    const SweepProgressFn& progress) {
  std::vector<SweepCellOutcome> outcomes;
  outcomes.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioSpec& spec = cells[i];
    const std::uint64_t cell_trials =
        trials > 0 ? trials : spec.default_trials;
    SweepCellOutcome outcome;
    outcome.spec = spec;
    outcome.aggregate =
        run_scenario_trials(spec, cell_trials, seed_base, threads);
    outcomes.push_back(std::move(outcome));
    if (progress) progress(i, cells.size(), outcomes.back());
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// JSON

namespace {

// Same number style as MetricsSnapshot::append_json: integers bare,
// everything else at max_digits10 so a byte-equal document means
// bit-equal values.
std::string json_number(double v) {
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<long long>(r);
    return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void append_critical_path_json(const CriticalPathAggregate& aggregate,
                               std::string* out) {
  ABE_CHECK(out != nullptr);
  std::string& s = *out;
  s += "{\"considered\": ";
  s += json_number(static_cast<double>(aggregate.considered));
  s += ", \"found\": ";
  s += json_number(static_cast<double>(aggregate.found));
  s += ", \"truncated\": ";
  s += json_number(static_cast<double>(aggregate.truncated));
  s += ", \"hops\": " + aggregate.hops.to_json();
  s += ", \"span\": " + aggregate.span.to_json();
  s += ", \"channel_delay\": " + aggregate.channel_delay.to_json();
  s += ", \"processing\": " + aggregate.processing.to_json();
  s += ", \"queueing\": " + aggregate.queueing.to_json();
  s += ", \"waiting\": " + aggregate.waiting.to_json();
  s += ", \"top_channels\": [";
  // A large cell has O(n) channels; the heaviest few are what a reader can
  // act on, and the per-hop Summary above already carries the totals.
  constexpr std::size_t kTopChannels = 8;
  const std::vector<EdgeShare> top = aggregate.top_channels(kTopChannels);
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i > 0) s += ", ";
    s += "{\"edge\": " + json_number(static_cast<double>(top[i].edge));
    s += ", \"hops\": " + json_number(static_cast<double>(top[i].hops));
    s += ", \"delay\": " + json_number(top[i].delay) + "}";
  }
  s += "]";
  if (aggregate.has_worst) {
    s += ", \"worst\": {\"seed\": ";
    s += json_number(static_cast<double>(aggregate.worst_seed));
    s += ", \"span\": " + json_number(aggregate.worst_span) + "}";
  }
  s += "}";
}

void write_sweep_json(std::ostream& os, const SweepRunMetadata& metadata,
                      const std::vector<SweepCellOutcome>& outcomes) {
  os << "{\n"
     << "  \"schema\": \"abe-scenario-sweep-v7\",\n"
     << "  \"metadata\": {\n"
     << "    \"git_sha\": \"" << json_escape(metadata.git_sha) << "\",\n"
     << "    \"compiler\": \"" << json_escape(metadata.compiler) << "\",\n"
     << "    \"build_type\": \"" << json_escape(metadata.build_type)
     << "\",\n"
     << "    \"equeue\": \"" << json_escape(metadata.equeue) << "\",\n"
     << "    \"runtime\": \"" << json_escape(metadata.runtime) << "\",\n"
     << "    \"trial_threads\": " << metadata.threads << ",\n"
     << "    \"trials\": " << metadata.trials << ",\n"
     << "    \"seed_base\": " << metadata.seed_base << "\n"
     << "  },\n"
     << "  \"cells\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioSpec& spec = outcomes[i].spec;
    const ScenarioAggregate& agg = outcomes[i].aggregate;
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n"
       << "      \"cell\": \"" << json_escape(spec.cell_id()) << "\",\n"
       << "      \"scenario\": \"" << json_escape(spec.name) << "\",\n"
       << "      \"algorithm\": \""
       << scenario_algorithm_name(spec.algorithm) << "\",\n"
       << "      \"topology\": {\"family\": \""
       << topology_family_name(spec.topology.family)
       << "\", \"n\": " << spec.topology.n
       << ", \"param\": " << spec.topology.param << "},\n"
       << "      \"delay\": {\"model\": \"" << json_escape(spec.delay_name)
       << "\", \"mean\": " << spec.mean_delay << "},\n"
       << "      \"clock\": {\"s_low\": " << spec.clock_bounds.s_low
       << ", \"s_high\": " << spec.clock_bounds.s_high << ", \"drift\": \""
       << drift_model_name(spec.drift) << "\"},\n"
       << "      \"failure\": \"" << json_escape(spec.failure.describe())
       << "\",\n"
       << "      \"behavior\": \"" << json_escape(spec.behavior.describe())
       << "\",\n"
       << "      \"adversary\": \""
       << json_escape(spec.adversary.empty() ? "none" : spec.adversary)
       << "\",\n"
       << "      \"equeue\": \""
       << equeue_backend_name(spec.equeue) << "\",\n"
       << "      \"runtime\": \""
       << runtime_kind_name(spec.runtime) << "\",\n"
       << "      \"trials\": " << agg.trials << ",\n"
       << "      \"failures\": " << agg.failures << ",\n"
       << "      \"stalled\": " << agg.stalled << ",\n"
       << "      \"safety_violations\": " << agg.safety_violations << ",\n"
       << "      \"violation_seeds\": [";
    // Cap the emitted list: the count above is authoritative, the seeds
    // are a replay convenience — a pathological cell must not bloat the
    // document.
    constexpr std::size_t kMaxSeeds = 16;
    const std::size_t emit =
        std::min(agg.violation_seeds.size(), kMaxSeeds);
    for (std::size_t k = 0; k < emit; ++k) {
      os << (k == 0 ? "" : ", ") << agg.violation_seeds[k];
    }
    std::string metrics_json;
    agg.metrics.append_json(&metrics_json);
    std::string critical_path_json;
    append_critical_path_json(agg.critical_path, &critical_path_json);
    os << "],\n"
       << "      \"messages\": " << agg.messages.to_json() << ",\n"
       << "      \"time\": " << agg.time.to_json() << ",\n"
       << "      \"metrics\": " << metrics_json << ",\n"
       << "      \"critical_path\": " << critical_path_json << ",\n";
    if (agg.timeseries.enabled()) {
      std::string timeseries_json;
      agg.timeseries.append_json(&timeseries_json);
      // append_json emits a `"timeseries": {...}` key-value pair.
      os << "      " << timeseries_json << ",\n";
    }
    os << "      \"wall\": {\"build_ms\": " << agg.wall.build_ms
       << ", \"run_ms\": " << agg.wall.run_ms
       << ", \"settle_ms\": " << agg.wall.settle_ms
       << ", \"total_ms\": " << agg.wall.total_ms << "}\n    }";
  }
  os << "\n  ]\n}\n";
}

std::string render_sweep_table(
    const std::vector<SweepCellOutcome>& outcomes) {
  Table table({"cell", "trials", "ok", "fail", "stall", "unsafe",
               "messages", "time"});
  for (const SweepCellOutcome& outcome : outcomes) {
    const ScenarioAggregate& agg = outcome.aggregate;
    // ok = completed AND safe, so ok + fail + stall + unsafe == trials.
    const std::uint64_t ok =
        agg.messages.count() - agg.safety_violations;
    table.add_row(
        {outcome.spec.cell_id(),
         Table::fmt_int(static_cast<std::int64_t>(agg.trials)),
         Table::fmt_int(static_cast<std::int64_t>(ok)),
         Table::fmt_int(static_cast<std::int64_t>(agg.failures)),
         Table::fmt_int(static_cast<std::int64_t>(agg.stalled)),
         Table::fmt_int(static_cast<std::int64_t>(agg.safety_violations)),
         Table::fmt(agg.messages.mean(), 1), Table::fmt(agg.time.mean(), 1)});
  }
  return table.render();
}

std::string render_metrics_report(
    const std::vector<SweepCellOutcome>& outcomes) {
  std::ostringstream os;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioAggregate& agg = outcomes[i].aggregate;
    if (i > 0) os << "\n";
    os << "=== " << outcomes[i].spec.cell_id() << " ===\n";
    os << "trials: " << agg.trials << "  wall: build "
       << agg.wall.build_ms << " ms, run " << agg.wall.run_ms
       << " ms, settle " << agg.wall.settle_ms << " ms, total "
       << agg.wall.total_ms << " ms\n";
    if (agg.metrics.empty()) {
      os << "(no metrics harvested)\n";
    } else {
      os << agg.metrics.render();
    }
  }
  return os.str();
}

}  // namespace abe
