// Declarative scenario engine: named, sweepable experiment specifications.
//
// A ScenarioSpec pins down one cell of the experiment space the paper's
// claims live in — topology family × size × delay model × clock-drift band
// × failure-injection profile × algorithm — as plain data. Cells come from
// three places:
//   * the built-in registry (scenario_registry()): named, documented
//     deployments, including the migrated adhoc_field / sensor_network
//     examples, each runnable as a tier-1 test cell so it can never rot;
//   * a ScenarioMatrix (sweep_registry()): axes that expand() multiplies
//     into the compatible subset of cells — the sweep driver in sweep.h
//     runs them with seed-ordered, bit-identical aggregation;
//   * ad-hoc construction in tests and benches.
//
// Algorithms: the paper's probabilistic ring election (core/election),
// the polling general-graph election the impossibility theorem forces
// (algo/polling_election), and push gossip (algo/gossip) for broadcast
// workloads. Compatibility is structural: the ring election needs the
// unidirectional ring, the polling election needs reverse channels for its
// tree echo, gossip runs anywhere strongly connected; expand() filters
// silently-impossible combinations out so a matrix can name broad axes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/behavior.h"
#include "clock/local_clock.h"
#include "net/delay.h"
#include "net/network.h"
#include "net/topology.h"
#include "runtime/runtime.h"
#include "sim/equeue/backend.h"
#include "sim/time.h"

namespace abe {

// ---------------------------------------------------------------------------
// Topology axis

enum class TopologyFamily : std::uint8_t {
  kRingUni,     // the paper's setting
  kRingBi,
  kLine,
  kStar,
  kComplete,
  kGrid,        // near-square rows×cols
  kTorus,       // near-square rows×cols with wraparound
  kHypercube,   // n must be a power of two
  kGnp,         // Erdős–Rényi, param = edge probability
  kGeometric,   // random geometric graph, param = radius
};

const char* topology_family_name(TopologyFamily family);
// Parses the names printed by topology_family_name; aborts on unknown.
TopologyFamily topology_family_from_name(const std::string& name);

struct TopologySpec {
  TopologyFamily family = TopologyFamily::kRingUni;
  std::size_t n = 8;
  // gnp: edge probability; geometric: radius; ignored elsewhere.
  double param = 0.0;

  // Materialises the topology. `rng` feeds the random families only, so
  // fixed families are deterministic regardless of it; random families are
  // deterministic given the rng state. Grid/torus sizes must factor into
  // rows*cols (near-square, see .cpp); hypercube sizes must be powers of 2.
  // Aborts on size constraint violations — gate user-supplied sizes with
  // problem() first.
  Topology build(Rng& rng) const;

  // Empty when build() would succeed; otherwise a human-readable reason
  // (non-power-of-two hypercube, prime torus size, …). The validation
  // boundary for user input (CLI overrides), where aborting is rude.
  std::string problem() const;

  std::string describe() const;  // "torus-64", "rgg-36(r=0.25)", …
};

// ---------------------------------------------------------------------------
// Failure-injection axis

struct FailureProfile {
  enum class Kind : std::uint8_t {
    kNone,     // the paper's reliable-channel regime
    kLoss,     // each send attempt silently dropped with `loss_probability`
    kDegrade,  // each message, with `degrade_probability`, takes
               // `degrade_factor` × the sampled delay (congestion events)
  };
  Kind kind = Kind::kNone;
  double loss_probability = 0.0;
  double degrade_probability = 0.0;
  double degrade_factor = 1.0;

  static FailureProfile none() { return {}; }
  static FailureProfile loss(double p);
  static FailureProfile degrade(double probability, double factor);

  // Parses the strings describe() prints ("none", "loss-0.01",
  // "degrade-0.1x20"); returns false on anything else. The inverse of
  // describe(): parse(describe()) == *this, including the p = 1 edge the
  // loss() factory rejects (a sweep should never construct the everything-
  // lost regime, but a CLI round-trip of an existing profile must not
  // abort). The validation boundary for user input (--failure).
  static bool parse(const std::string& text, FailureProfile* out);

  bool operator==(const FailureProfile& other) const {
    return kind == other.kind &&
           loss_probability == other.loss_probability &&
           degrade_probability == other.degrade_probability &&
           degrade_factor == other.degrade_factor;
  }

  // Channel-level loss handed to the runtime (kLoss only).
  double channel_loss() const {
    return kind == Kind::kLoss ? loss_probability : 0.0;
  }
  // Wraps the delay model for kDegrade; other kinds return `base`. The
  // wrapper inflates mean_delay() accordingly — the δ the algorithm is
  // allowed to know degrades along with the network.
  DelayModelPtr apply(DelayModelPtr base) const;

  std::string describe() const;  // "none", "loss-0.01", "degrade-0.1x20"
};

// ---------------------------------------------------------------------------
// Algorithm axis

enum class ScenarioAlgorithm : std::uint8_t {
  kRingElection,     // paper Section 3 (core/election via core/harness)
  kPollingElection,  // the polling baseline (algo/polling_election)
  kGossip,           // push gossip broadcast (algo/gossip)
  kBetaSync,         // β-synchronized max consensus (syncr/beta): runs
                     // diameter-many rounds; safe when every node outputs
                     // the global maximum
  kUnsafeToy,        // deliberately-broken election (adversary/unsafe_toy)
                     // that elects >= 2 leaders by construction. Exists to
                     // prove the safety-probe layer catches violations;
                     // MUST never be registered as a scenario preset (the
                     // registry invariant is that every preset's smoke
                     // trial is safe)
};

const char* scenario_algorithm_name(ScenarioAlgorithm algorithm);
ScenarioAlgorithm scenario_algorithm_from_name(const std::string& name);

// Structural compatibility (see file comment).
bool scenario_algorithm_supports(ScenarioAlgorithm algorithm,
                                 TopologyFamily family);

// ---------------------------------------------------------------------------
// The spec

struct ScenarioSpec {
  std::string name;         // registry key; empty for matrix cells
  std::string description;  // one-liner for `abe_scenarios list`

  TopologySpec topology;
  ScenarioAlgorithm algorithm = ScenarioAlgorithm::kRingElection;
  std::string delay_name = "exponential";
  double mean_delay = 1.0;
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  FailureProfile failure{};

  // Byzantine/crash behavior axis (adversary/behavior.h): which nodes run
  // behind a FaultyNode decorator and how they misbehave. Honest by
  // default; non-honest profiles are realised for the ring election only —
  // gate with behavior_cell_problem() before running.
  BehaviorSpec behavior{};
  // Adversarial delay policy by name (adversary/delay_policy.h:
  // make_named_adversary — "targeted", "burst-stall"); empty means the
  // spec's honest stochastic delay model. The policy's expected-delay
  // bound is the (failure-degraded) delay model's mean, so the adversary
  // stays inside the ABE contract the algorithm was promised.
  std::string adversary;

  // Ring election only: base activation parameter; 0 means the calibrated
  // linear regime A0 = c/n² (core/election.h).
  double a0 = 0.0;
  std::uint64_t default_trials = 8;
  SimTime deadline = 1e7;
  SimTime settle_time = 10.0;
  // Scheduler event-queue backend for every trial of this cell. A pure
  // performance knob: aggregates are bit-identical across backends, which
  // the scale sweep asserts by running the same cell on all three.
  EqueueBackend equeue = EqueueBackend::kAuto;

  // Execution substrate (runtime/runtime.h): the deterministic simulator
  // (default) or one OS thread per node with wall-clock delays. Not every
  // cell is thread-realisable — gate with runtime_cell_problem() before
  // running; matrix expansion filters structurally impossible combinations
  // the same way it filters algorithm×topology.
  RuntimeKind runtime = RuntimeKind::kSim;
  // Thread/udp-runtime realisation: wall microseconds per sim unit, and
  // the hard per-trial wall budget (wall-clock runs must not inherit
  // simulator deadlines like 1e7 units verbatim).
  double thread_time_scale_us = 200.0;
  double thread_wall_timeout_ms = 30000.0;
  // Udp cells only: per-channel ARQ reliable mode (runtime/udp_runtime.h —
  // sequence numbers, ACKs, timeout retransmission, receiver dedup), so
  // injected loss degrades goodput instead of dropping messages. Part of
  // cell_id() ("/arq") because it changes what the cell measures.
  bool udp_reliable = false;

  // Observation-only knobs — deliberately NOT part of cell_id(): turning
  // them on must not re-key a cell, and neither consumes RNG nor reorders
  // events, so seeded aggregates stay bit-identical either way.
  // causal_history widens the flight ring to full capacity so critical-
  // path chains (obs/causal.h) reach their roots instead of truncating at
  // the 256-event lite window. A positive timeseries_interval samples the
  // pending/in-flight/live gauges on the sim-time grid (obs/timeseries.h;
  // simulator cells only — wall-clock sampling would be nondeterministic).
  bool causal_history = false;
  double timeseries_interval = 0.0;

  // Stable identifier of this cell within a sweep:
  // "<algorithm>/<topology>/<delay>/<drift>/<failure>", plus a trailing
  // "/eq-<backend>" when a non-default event queue is pinned (so a
  // backend-swept matrix keeps unique ids without disturbing existing
  // auto-backend ids), plus "/rt-thread" or "/rt-udp" when the cell runs
  // on a non-simulator substrate (simulator cells keep their
  // pre-runtime-axis ids; udp cells in ARQ reliable mode add "/arq"), plus
  // "/beh-<behavior>" and "/adv-<policy>" when the adversary axes are
  // non-default (honest cells keep their pre-adversary ids).
  std::string cell_id() const;
  // Multi-line human rendering for `abe_scenarios describe`.
  std::string describe() const;
};

// Why this cell cannot run on its selected runtime — empty when it can.
// Simulator cells always can; thread cells are rejected for piecewise
// drift (wall clocks can only realise fixed rates), pinned event-queue
// backends (a simulator-only knob), or n beyond the one-OS-thread-per-node
// budget (kMaxThreadRuntimeNodes). Udp cells share the drift and equeue
// rejections and have the tighter per-node socket/port budget
// (kMaxUdpRuntimeNodes: one loopback socket + two OS threads per node).
// The validation boundary for user input (CLI --runtime), where aborting
// is rude; mirrors TopologySpec::problem.
std::string runtime_cell_problem(const ScenarioSpec& spec);

// Why this cell's adversary axes are invalid — empty when they are fine.
// Rejects malformed behavior specs (BehaviorSpec::problem), non-honest
// behavior on algorithms other than the ring election / unsafe toy (their
// drivers keep honest-run invariants as hard checks), and unknown
// adversary policy names. Same validation-boundary role as
// runtime_cell_problem; expand() filters violating combinations silently.
std::string behavior_cell_problem(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// Registry

// All built-in named scenarios, in registration order.
const std::vector<ScenarioSpec>& scenario_registry();
// nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

// ---------------------------------------------------------------------------
// Matrix

struct DriftBand {
  ClockBounds bounds{};
  DriftModel model = DriftModel::kNone;
  std::string describe() const;  // "ideal", "fixed[0.80,1.25]", …
};

struct ScenarioMatrix {
  std::string name;
  std::string description;
  // Template for non-axis fields (trials, deadline, a0, …).
  ScenarioSpec base;
  std::vector<ScenarioAlgorithm> algorithms;
  std::vector<TopologySpec> topologies;
  std::vector<std::pair<std::string, double>> delays;  // (name, mean)
  std::vector<DriftBand> drifts;
  std::vector<FailureProfile> failures;
  // Event-queue backends; empty means {base.equeue}. The scale sweep uses
  // this axis to cross-check bit-identical aggregates at n >= 10^4.
  std::vector<EqueueBackend> equeues;
  // Execution substrates; empty means {base.runtime}. A {kSim, kThread}
  // axis runs every realisable cell on both — the cross-runtime fidelity
  // check the ABE model positions itself for.
  std::vector<RuntimeKind> runtimes;
  // Node behavior profiles; empty means {base.behavior} (honest). Only
  // cells whose algorithm realises the profile survive expansion
  // (behavior_cell_problem).
  std::vector<BehaviorSpec> behaviors;
  // Adversarial delay policies by name; empty means {base.adversary}.
  std::vector<std::string> adversaries;

  // The cross product, minus structurally impossible (algorithm, topology)
  // pairs, thread cells the thread runtime cannot realise
  // (runtime_cell_problem), and adversary combinations the drivers cannot
  // realise (behavior_cell_problem). Every returned spec carries a unique
  // cell_id().
  std::vector<ScenarioSpec> expand() const;
};

// All built-in named sweeps, in registration order.
const std::vector<ScenarioMatrix>& sweep_registry();
const ScenarioMatrix* find_sweep(const std::string& name);

}  // namespace abe
