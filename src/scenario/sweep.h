// Sweep driver: runs ScenarioSpec cells through the seed-chunked trial pool
// and renders the outcomes as tables and structured JSON.
//
// Reproducibility contract (same as core/harness.h): trials are seeded
// seed_base, seed_base+1, …; aggregation is chunked over fixed seed ranges
// and merged in seed order, so every aggregate — and therefore every number
// in the emitted JSON — is bit-identical for every thread count. Random
// topology families (gnp, rgg) re-draw the graph per trial from a substream
// of the trial seed, so graph randomness is part of the Monte-Carlo estimate
// and equally reproducible.
//
// The JSON document (schema "abe-scenario-sweep-v7") carries the same
// provenance metadata as the BENCH_*.json perf trajectory — git sha,
// compiler, build type, thread count, the event-queue backend, plus the
// execution runtime — so sweep results are attributable to a commit,
// toolchain, scheduler and substrate; bench/validate_scenarios.py checks
// the structure (v2..v6 documents, which predate the runtime axis, the
// adversary axes, the observability block, the causal block, and the udp
// substrate respectively, are still accepted there). v4 added the
// safety-probe fields: per-cell stalled counts, behavior/adversary axis
// values, and the replayable seeds behind any safety violations. v5 added
// the observability block: a per-cell "metrics" array (the merged
// MetricsSnapshot, deterministic on simulator cells) and a "wall" object
// (summed wall-clock phase times, never deterministic). v6 added the
// causal block: a per-cell "critical_path" object (obs/causal.h —
// decision-chain length, per-component attribution summaries, heaviest
// channels and the worst replayable trial) plus an optional "timeseries"
// object when the cell sampled the sim-time grid (obs/timeseries.h).
// v7 admits "udp" as a runtime value (metadata + cells) and adds
// "total_ms" to the wall object, measured between the same chained clock
// reads as the phases so build + run + settle == total.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/causal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "runtime/runtime.h"
#include "scenario/scenario.h"
#include "stats/summary.h"

namespace abe {

// Outcome of one trial of one cell: the runtime layer's uniform trial
// currency (completed / safety / time / messages), produced by the
// registered AlgorithmDriver bindings in scenario/drivers.h.
using ScenarioTrialResult = TrialOutcome;

// Runs a single trial of `spec` with the given seed, on the spec's
// runtime (simulator or real threads). Aborts only on internal invariant
// violations — including a spec whose runtime_cell_problem is non-empty;
// gate user input first. Model-level outcomes are reported in the result.
// Random topologies are drawn from a substream of `seed`.
ScenarioTrialResult run_scenario_trial(const ScenarioSpec& spec,
                                       std::uint64_t seed);

struct ScenarioAggregate {
  Summary messages;  // per-trial messages over completed trials
  Summary time;      // per-trial completion time
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;           // missed the deadline
  // Refinement split out of `failures`: went quiescent with no way to make
  // progress (TrialOutcome::stalled — e.g. the ring's all-passive deadlock
  // under loss, or a crash-severed ring) rather than still working at the
  // deadline. trials == completed + failures + stalled.
  std::uint64_t stalled = 0;
  std::uint64_t safety_violations = 0;  // completed but safety_ok == false
  // The trial seeds behind safety_violations, in seed order (merge
  // preserves it) — each replayable via replay_scenario_trial on
  // simulator cells. The JSON emitter caps the list it prints.
  std::vector<std::uint64_t> violation_seeds;
  // Merged metrics snapshot over ALL trials (failed ones included —
  // observability exists for the failures). The merge is commutative and
  // associative (counters sum, gauges max, histogram buckets sum), so the
  // trial pool's chunk tree yields the same snapshot for every thread
  // count; on simulator cells it is bit-identical for a fixed seed base.
  MetricsSnapshot metrics;
  // Summed wall-clock phase times over all trials. Real elapsed time,
  // never deterministic; reported for profiling, excluded from any
  // bit-identity comparison.
  WallPhaseTimes wall;
  // Critical-path roll-up over decided trials (obs/causal.h). Same
  // order-commutative merge discipline as `metrics`: bit-identical for
  // every thread count on simulator cells.
  CriticalPathAggregate critical_path;
  // Sim-time-grid telemetry, summed across trials (obs/timeseries.h).
  // Empty unless the spec set a positive timeseries_interval.
  TimeSeries timeseries;

  void merge(const ScenarioAggregate& other);
};

// `trials` independent trials with seeds seed_base…; bit-identical for
// every thread count (core/trial_pool.h semantics, including the
// ABE_TRIAL_THREADS resolution of threads == 0).
ScenarioAggregate run_scenario_trials(const ScenarioSpec& spec,
                                      std::uint64_t trials,
                                      std::uint64_t seed_base = 1,
                                      unsigned threads = 0);

// One sweep cell: the spec plus its aggregate.
struct SweepCellOutcome {
  ScenarioSpec spec;
  ScenarioAggregate aggregate;
};

// Provenance block mirrored from the BENCH_*.json context (bench_util.h).
struct SweepRunMetadata {
  std::string git_sha = "unknown";
  std::string compiler = "unknown";
  std::string build_type = "unknown";
  // CLI-level --equeue selection ("auto" unless overridden); each cell
  // additionally records its own effective backend.
  std::string equeue = "auto";
  // CLI-level --runtime selection ("sim" unless overridden); each cell
  // additionally records its own effective runtime.
  std::string runtime = "sim";
  unsigned threads = 1;         // resolved trial-pool width
  std::uint64_t trials = 0;     // trials per cell (0 = per-spec default)
  std::uint64_t seed_base = 1;
};

// Runs every cell (trials == 0 uses each spec's default_trials). The
// optional progress callback fires after each finished cell with
// (index, total, outcome).
using SweepProgressFn =
    std::function<void(std::size_t, std::size_t, const SweepCellOutcome&)>;
std::vector<SweepCellOutcome> run_sweep(
    const std::vector<ScenarioSpec>& cells, std::uint64_t trials,
    std::uint64_t seed_base = 1, unsigned threads = 0,
    const SweepProgressFn& progress = nullptr);

// Structured per-cell JSON, schema "abe-scenario-sweep-v7".
void write_sweep_json(std::ostream& os, const SweepRunMetadata& metadata,
                      const std::vector<SweepCellOutcome>& outcomes);

// Serialises one cell's critical-path aggregate as the JSON object the v6
// "critical_path" field carries. Exposed (rather than folded into
// write_sweep_json) so the golden test can pin the byte-exact rendering of
// a fixed-seed cell across event-queue backends and thread counts.
void append_critical_path_json(const CriticalPathAggregate& aggregate,
                               std::string* out);

// Aligned ASCII table of the outcomes (one row per cell).
std::string render_sweep_table(const std::vector<SweepCellOutcome>& outcomes);

// Per-cell metrics report: one block per cell with its merged metrics
// table and summed wall-phase times (`abe_scenarios report`).
std::string render_metrics_report(
    const std::vector<SweepCellOutcome>& outcomes);

}  // namespace abe
