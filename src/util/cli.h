// Minimal command-line flag parser for the example binaries.
//
// Supports `--flag=value`, `--flag value` and boolean `--flag`. Examples use
// this so every scenario is tweakable without recompiling; the parser is
// deliberately tiny (no external dependencies are permitted in this repo).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace abe {

class CliFlags {
 public:
  // Parses argv; unknown flags are retained and reported by unknown_flags().
  CliFlags(int argc, char** argv);

  // Typed getters with defaults. A flag present without value reads as "true"
  // for get_bool and is an error for numeric getters.
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  // Flags that were passed but never queried through the getters above —
  // almost always typos. Call after all known flags have been read (the
  // getters record which names the program recognises), e.g.:
  //   for (const auto& f : flags.unknown_flags()) warn(f);
  std::vector<std::string> unknown_flags() const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  // Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Names the program asked about; mutable so the const getters can record.
  mutable std::set<std::string> queried_;
};

}  // namespace abe
