#include "util/cli.h"

#include <cstdlib>

#include "util/check.h"

namespace abe {

CliFlags::CliFlags(int argc, char** argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value` form: consume the next token when it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";  // bare boolean flag
    }
  }
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& def) const {
  queried_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t def) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  ABE_CHECK(!it->second.empty()) << "flag --" << name << " needs a value";
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double def) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  ABE_CHECK(!it->second.empty()) << "flag --" << name << " needs a value";
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  queried_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  ABE_CHECK(false) << "flag --" << name << " has non-boolean value '" << v
                   << "'";
  return def;
}

bool CliFlags::has(const std::string& name) const {
  queried_.insert(name);
  return values_.count(name) > 0;
}

std::vector<std::string> CliFlags::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (queried_.count(name) == 0) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace abe
