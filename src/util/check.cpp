#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace abe {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::fprintf(stderr, "ABE_CHECK failed at %s:%d: %s", file, line, expr);
  if (!msg.empty()) {
    std::fprintf(stderr, " — %s", msg.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace abe
