// Strong identifier types shared across the library.
//
// NodeId / ChannelId are plain integers at runtime but distinct C++ types, so
// a channel index can never be passed where a node index is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace abe {

namespace detail {

// CRTP-free tagged integer. Tag makes each instantiation a distinct type.
template <typename Tag>
class TaggedId {
 public:
  using value_type = std::int64_t;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(value_type v) : value_(v) {}

  constexpr value_type value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(TaggedId a, TaggedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TaggedId a, TaggedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TaggedId a, TaggedId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(TaggedId a, TaggedId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(TaggedId a, TaggedId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(TaggedId a, TaggedId b) {
    return a.value_ >= b.value_;
  }
  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value_;
  }

 private:
  value_type value_ = -1;
};

}  // namespace detail

struct NodeIdTag {};
struct ChannelIdTag {};
struct TimerIdTag {};
struct EventIdTag {};

// Index of a node within one network instance.
using NodeId = detail::TaggedId<NodeIdTag>;
// Index of a directed channel within one network instance.
using ChannelId = detail::TaggedId<ChannelIdTag>;
// Handle for a pending timer; cancellable.
using TimerId = detail::TaggedId<TimerIdTag>;
// Handle for a scheduled simulator event; cancellable.
using EventId = detail::TaggedId<EventIdTag>;

constexpr NodeId kInvalidNode{};
constexpr ChannelId kInvalidChannel{};

}  // namespace abe

namespace std {
template <typename Tag>
struct hash<abe::detail::TaggedId<Tag>> {
  size_t operator()(abe::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
