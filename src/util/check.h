// Checked assertions that stay enabled in release builds.
//
// The simulator is a measurement instrument: a silently-violated invariant
// would corrupt every experiment downstream, so contract checks abort with a
// useful message instead of compiling away under NDEBUG.
#pragma once

#include <sstream>
#include <string>

namespace abe {

// Aborts the process after printing `msg` with source location.
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

namespace detail {

// Collects the streamed context message, then aborts in its destructor (the
// end of the full expression), so `ABE_CHECK(x) << "why"` includes "why".
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailure() { check_failed(file_, line_, expr_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace abe

// ABE_CHECK(cond) << "context";  -- aborts with message when cond is false.
#define ABE_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::abe::detail::CheckFailure(__FILE__, __LINE__, #cond).stream()

// Comparison forms that show both operands on failure.
#define ABE_CHECK_OP(op, a, b)                                           \
  if ((a)op(b)) {                                                        \
  } else                                                                 \
    ::abe::detail::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b)   \
            .stream()                                                    \
        << "lhs=" << (a) << " rhs=" << (b) << " "

#define ABE_CHECK_EQ(a, b) ABE_CHECK_OP(==, a, b)
#define ABE_CHECK_NE(a, b) ABE_CHECK_OP(!=, a, b)
#define ABE_CHECK_LT(a, b) ABE_CHECK_OP(<, a, b)
#define ABE_CHECK_LE(a, b) ABE_CHECK_OP(<=, a, b)
#define ABE_CHECK_GT(a, b) ABE_CHECK_OP(>, a, b)
#define ABE_CHECK_GE(a, b) ABE_CHECK_OP(>=, a, b)
