// Clang thread-safety annotations and capability-annotated sync primitives.
//
// The ABE reproduction's concurrency guarantees — the thread runtime is
// data-race-free, the trial pool shares nothing mutable — are enforced
// mechanically, not socially: every mutex in the repo is an AnnotatedMutex,
// every field it guards carries GUARDED_BY, and clang builds compile with
// -Wthread-safety -Werror=thread-safety (CMakeLists.txt adds the flags for
// clang; cmake/CheckThreadSafety.cmake proves at configure time that an
// unlocked access to a GUARDED_BY field really fails to compile). Under
// gcc every macro expands to nothing and the wrappers are zero-cost
// forwarding shims, so the portable build is unchanged.
//
// Idiom (the only locking patterns the repo uses):
//
//   mutable AnnotatedMutex mutex_;
//   AnnotatedCondVar cv_;
//   std::uint64_t counter_ GUARDED_BY(mutex_) = 0;
//
//   void bump() EXCLUDES(mutex_) {
//     MutexLock lock(mutex_);   // never std::lock_guard: the analysis
//     ++counter_;               // only understands the annotated scope
//     cv_.notify_one();         // notify needs no lock
//   }
//
// std::lock_guard / std::unique_lock on an AnnotatedMutex will not compile
// a guarded access cleanly under clang (the analysis cannot see through
// them); use MutexLock, and pass the AnnotatedMutex itself to
// AnnotatedCondVar waits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define ABE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ABE_THREAD_ANNOTATION(x)  // no-op: gcc has no thread-safety analysis
#endif

// A type that represents a lockable capability (mutexes).
#define CAPABILITY(x) ABE_THREAD_ANNOTATION(capability(x))
// RAII types that acquire in the constructor and release in the destructor.
#define SCOPED_CAPABILITY ABE_THREAD_ANNOTATION(scoped_lockable)
// Data members readable/writable only while holding the named capability.
#define GUARDED_BY(x) ABE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) ABE_THREAD_ANNOTATION(pt_guarded_by(x))
// Function contracts: caller must hold / must not hold the capability.
#define REQUIRES(...) ABE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) ABE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions that take or drop the capability themselves.
#define ACQUIRE(...) ABE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) ABE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  ABE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Runtime assertion that the capability is held (fact injection).
#define ASSERT_CAPABILITY(x) ABE_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) ABE_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for code the analysis cannot model. Every use must carry a
// comment explaining the manual argument for safety.
#define NO_THREAD_SAFETY_ANALYSIS \
  ABE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace abe {

// std::mutex with the capability annotation, so GUARDED_BY(mutex_) fields
// and REQUIRES/EXCLUDES contracts are compiler-checked under clang.
class CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock the analysis understands (std::lock_guard is opaque to it).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

// Condition variable that waits on an AnnotatedMutex directly. Built on
// condition_variable_any (which waits on any BasicLockable, so the annotated
// mutex needs no unwrapping); the wait methods carry REQUIRES(mu) so a wait
// without the lock held is a compile error, and the internal unlock/relock
// happens inside the (system-header, unanalysed) wait implementation.
class AnnotatedCondVar {
 public:
  AnnotatedCondVar() = default;
  AnnotatedCondVar(const AnnotatedCondVar&) = delete;
  AnnotatedCondVar& operator=(const AnnotatedCondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(AnnotatedMutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void wait(AnnotatedMutex& mu, Pred pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      AnnotatedMutex& mu,
      const std::chrono::time_point<Clock, Duration>& deadline) REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(AnnotatedMutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace abe
