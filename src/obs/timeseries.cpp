#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace abe {

namespace {

// Same number style as the rest of the sweep JSON (metrics.cpp,
// Summary::to_json): integers bare, everything else round-trip precision.
std::string json_number(double v) {
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<long long>(r);
    return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

void TimeSeries::merge(const TimeSeries& other) {
  if (other.trials == 0 && other.samples.empty()) return;
  if (trials == 0 && samples.empty()) {
    *this = other;
    return;
  }
  ABE_CHECK_EQ(interval, other.interval)
      << "time-series merge across different grids";
  trials += other.trials;
  const std::size_t shared = std::min(samples.size(), other.samples.size());
  for (std::size_t i = 0; i < shared; ++i) {
    samples[i].pending += other.samples[i].pending;
    samples[i].in_flight += other.samples[i].in_flight;
    samples[i].live += other.samples[i].live;
  }
  for (std::size_t i = shared; i < other.samples.size(); ++i) {
    samples.push_back(other.samples[i]);
  }
}

void TimeSeries::append_json(std::string* out) const {
  ABE_CHECK(out != nullptr);
  const double denom = trials == 0 ? 1.0 : static_cast<double>(trials);
  *out += "\"timeseries\": {\"interval\": " + json_number(interval) +
          ", \"trials\": " + json_number(static_cast<double>(trials)) +
          ", \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) *out += ", ";
    const TimeSeriesSample& s = samples[i];
    *out += "{\"t\": " + json_number(s.t) +
            ", \"pending\": " + json_number(s.pending / denom) +
            ", \"in_flight\": " + json_number(s.in_flight / denom) +
            ", \"live\": " + json_number(s.live / denom) + "}";
  }
  *out += "]}";
}

}  // namespace abe
