#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace abe {

namespace {

// Counters serialize as integers, everything else with round-trip
// precision (mirrors stats::Summary::to_json so sweep JSON has one number
// style throughout).
std::string json_number(double v) {
  const double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::ostringstream os;
    os << static_cast<long long>(r);
    return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void Gauge::update_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  ABE_CHECK(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    ABE_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void FixedHistogram::record(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> FixedHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t FixedHistogram::total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    sum += buckets_[i].load(std::memory_order_relaxed);
  }
  return sum;
}

double FixedHistogram::quantile(double q) const {
  return quantile_of(bounds_, bucket_counts(), q);
}

std::vector<double> FixedHistogram::log2_bounds(double center, int below,
                                                int above) {
  ABE_CHECK_GT(center, 0.0);
  ABE_CHECK_GE(above, -below);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(above + below + 1));
  for (int k = -below; k <= above; ++k) {
    bounds.push_back(center * std::ldexp(1.0, k));
  }
  return bounds;
}

double FixedHistogram::quantile_of(const std::vector<double>& bounds,
                                   const std::vector<std::uint64_t>& counts,
                                   double q) {
  ABE_CHECK_EQ(counts.size(), bounds.size() + 1);
  q = std::min(1.0, std::max(0.0, q));
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // Overflow bucket has no finite upper edge; clamp to the last bound.
      const double hi = i < bounds.size() ? bounds[i] : bounds.back();
      const double fraction =
          std::max(0.0, target - cum) / static_cast<double>(counts[i]);
      return lo + fraction * (hi - lo);
    }
    cum = next;
  }
  return bounds.back();
}

void MetricsSnapshot::add_counter(const std::string& name, double value) {
  upsert(name, MetricKind::kCounter).value += value;
}

void MetricsSnapshot::add_gauge(const std::string& name, double value) {
  MetricValue& entry = upsert(name, MetricKind::kGauge);
  entry.value = std::max(entry.value, value);
}

void MetricsSnapshot::add_histogram(const std::string& name,
                                    std::vector<double> bounds,
                                    std::vector<std::uint64_t> buckets) {
  ABE_CHECK_EQ(buckets.size(), bounds.size() + 1);
  MetricValue& entry = upsert(name, MetricKind::kHistogram);
  if (entry.bounds.empty()) {
    entry.bounds = std::move(bounds);
    entry.buckets = std::move(buckets);
    return;
  }
  ABE_CHECK(entry.bounds == bounds);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    entry.buckets[i] += buckets[i];
  }
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricValue& entry : other.entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        add_counter(entry.name, entry.value);
        break;
      case MetricKind::kGauge:
        add_gauge(entry.name, entry.value);
        break;
      case MetricKind::kHistogram:
        add_histogram(entry.name, entry.bounds, entry.buckets);
        break;
    }
  }
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const MetricValue& e, const std::string& n) { return e.name < n; });
  if (it == entries_.end() || it->name != name) return nullptr;
  return &*it;
}

double MetricsSnapshot::value_of(const std::string& name) const {
  const MetricValue* entry = find(name);
  return entry != nullptr ? entry->value : 0.0;
}

MetricValue& MetricsSnapshot::upsert(const std::string& name,
                                     MetricKind kind) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const MetricValue& e, const std::string& n) { return e.name < n; });
  if (it == entries_.end() || it->name != name) {
    MetricValue entry;
    entry.name = name;
    entry.kind = kind;
    it = entries_.insert(it, std::move(entry));
  }
  ABE_CHECK(it->kind == kind);
  return *it;
}

std::string MetricsSnapshot::render() const {
  std::size_t width = 6;
  for (const MetricValue& entry : entries_) {
    width = std::max(width, entry.name.size());
  }
  std::ostringstream os;
  for (const MetricValue& entry : entries_) {
    os << "  " << std::left << std::setw(static_cast<int>(width + 2))
       << entry.name << std::right << std::setw(9)
       << metric_kind_name(entry.kind) << "  ";
    if (entry.kind == MetricKind::kHistogram) {
      std::uint64_t total = 0;
      for (const std::uint64_t c : entry.buckets) total += c;
      os << "n=" << total;
      for (const double q : {0.5, 0.9, 0.99}) {
        os << "  p" << static_cast<int>(q * 100) << "="
           << json_number(FixedHistogram::quantile_of(entry.bounds,
                                                      entry.buckets, q));
      }
    } else {
      os << json_number(entry.value);
    }
    os << "\n";
  }
  return os.str();
}

void MetricsSnapshot::append_json(std::string* out) const {
  out->push_back('[');
  bool first = true;
  for (const MetricValue& entry : entries_) {
    if (!first) out->append(", ");
    first = false;
    out->append("{\"name\": \"");
    out->append(entry.name);  // names are code-controlled identifiers
    out->append("\", \"kind\": \"");
    out->append(metric_kind_name(entry.kind));
    out->append("\"");
    if (entry.kind == MetricKind::kHistogram) {
      out->append(", \"bounds\": [");
      for (std::size_t i = 0; i < entry.bounds.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(json_number(entry.bounds[i]));
      }
      out->append("], \"counts\": [");
      for (std::size_t i = 0; i < entry.buckets.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(json_number(static_cast<double>(entry.buckets[i])));
      }
      out->append("]");
    } else {
      out->append(", \"value\": ");
      out->append(json_number(entry.value));
    }
    out->push_back('}');
  }
  out->push_back(']');
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<FixedHistogram>(std::move(bounds));
  } else {
    ABE_CHECK(slot->bounds() == bounds);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.add_counter(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.add_gauge(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.add_histogram(name, histogram->bounds(), histogram->bucket_counts());
  }
  return snap;
}

}  // namespace abe
