// Per-trial time-series telemetry: periodic gauge snapshots over sim time.
//
// The simulator samples a small set of load gauges (pending events,
// in-flight messages, live candidates) every `interval` units of SIM time —
// never wall time and never per-event, so sampling consumes no randomness,
// schedules nothing, and cannot perturb any aggregate (the same contract as
// obs/metrics.h). Samples from many trials of one sweep cell merge
// element-wise on the shared grid; the stored values are SUMS across the
// contributing trials and consumers divide by `trials` for means.
//
// The thread runtime does not sample: its gauges would be wall-clock
// artefacts of the host machine, not properties of the model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace abe {

struct TimeSeriesSample {
  SimTime t = 0.0;       // grid label k * interval (sim time)
  double pending = 0.0;  // scheduler pending events
  double in_flight = 0.0;  // sent - delivered - dropped
  double live = 0.0;       // nodes not yet terminated (candidates)
};

struct TimeSeries {
  // Grid cap: bounds per-trial memory and sweep JSON size no matter how
  // long a trial runs; past it, sampling simply stops.
  static constexpr std::size_t kMaxSamples = 512;

  double interval = 0.0;  // sim-time grid step; 0 = disabled
  std::uint64_t trials = 0;
  std::vector<TimeSeriesSample> samples;  // sums across `trials` trials

  bool enabled() const { return interval > 0.0; }

  // Element-wise sum on the shared grid (trials with different lifetimes
  // contribute prefixes of different lengths; the union is kept). Applied in
  // the trial pool's fixed-chunk seed order, so results are independent of
  // thread count like every other aggregate.
  void merge(const TimeSeries& other);

  // Appends `"timeseries": {...}` (no trailing comma) to `out`: grid
  // metadata plus per-sample MEANS at round-trip float precision.
  void append_json(std::string* out) const;
};

}  // namespace abe
