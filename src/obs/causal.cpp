#include "obs/causal.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace abe {

namespace {

bool is_handler_kind(TraceKind kind) {
  return kind == TraceKind::kDeliver || kind == TraceKind::kTimer ||
         kind == TraceKind::kTick;
}

}  // namespace

std::vector<EdgeShare> CriticalPath::edge_shares() const {
  std::map<std::int64_t, EdgeShare> by_edge;
  for (const CriticalPathHop& hop : chain) {
    if (hop.kind != TraceKind::kDeliver || hop.arg < 0) continue;
    EdgeShare& share = by_edge[hop.arg];
    share.edge = hop.arg;
    share.hops += 1;
    share.delay += hop.delay;
  }
  std::vector<EdgeShare> out;
  out.reserve(by_edge.size());
  for (const auto& entry : by_edge) out.push_back(entry.second);
  return out;
}

std::string CriticalPath::render() const {
  std::ostringstream os;
  os.precision(6);
  if (!found) {
    os << "no critical path (decision event not retained)\n";
    return os.str();
  }
  os << "critical path: " << hops << " hop(s), span " << span
     << (truncated ? " (TRUNCATED: chain left the flight ring)" : "") << "\n"
     << "  attribution: waiting " << waiting << " + channel " << channel_delay
     << " + processing " << processing << " + queueing " << queueing << "\n";
  for (const CriticalPathHop& hop : chain) {
    os << "  #" << hop.id << " t=" << hop.time << " "
       << trace_kind_name(hop.kind) << " node=" << hop.node;
    if (hop.arg >= 0) os << " arg=" << hop.arg;
    if (hop.kind == TraceKind::kDeliver) {
      os << " gap=" << hop.gap << " (delay " << hop.delay << ", work "
         << hop.work << ", queue " << hop.queue << ")";
    } else if (hop.gap > 0.0 || hop.wait > 0.0) {
      os << " wait=" << hop.wait;
    }
    os << "\n";
  }
  return os.str();
}

CriticalPath extract_critical_path(const std::vector<TraceEvent>& events,
                                   NodeId decision_node,
                                   SimTime decision_time) {
  CriticalPath path;
  if (events.empty()) return path;
  // Ids are dense since clear(), so the retained window maps to indices by
  // subtracting the oldest retained id.
  const std::int64_t first_id = events.front().id;

  // The decision event: last DELIVER/TIMER record at the decision node at
  // or before the decision instant — decisions fire inside message or timer
  // handlers. Periodic TICK activations only anchor when no such handler
  // exists (a node that decided on pure self-activation): on the thread
  // runtime a background tick already in the mailbox can pop between the
  // deciding DELIVER and the wall-clock decision_time read, and preferring
  // it would yield a hop-free tick chain. Settle-phase traffic recorded
  // after the decision sits later in the ring and is skipped by the time
  // filter either way.
  std::size_t decision_index = events.size();
  std::size_t tick_index = events.size();
  for (std::size_t i = events.size(); i-- > 0;) {
    const TraceEvent& e = events[i];
    if (e.node != decision_node || !is_handler_kind(e.kind) ||
        e.time > decision_time) {
      continue;
    }
    if (e.kind == TraceKind::kTick) {
      if (tick_index == events.size()) tick_index = i;
      continue;
    }
    decision_index = i;
    break;
  }
  if (decision_index == events.size()) decision_index = tick_index;
  if (decision_index == events.size()) return path;

  // Walk cause links back to a root (cause == -1) or out of the ring.
  std::vector<CriticalPathHop> reversed;
  std::size_t index = decision_index;
  for (;;) {
    const TraceEvent& e = events[index];
    CriticalPathHop hop;
    hop.id = e.id;
    hop.kind = e.kind;
    hop.node = e.node;
    hop.arg = e.arg;
    hop.time = e.time;
    hop.delay = e.delay;
    hop.work = e.work;
    reversed.push_back(hop);
    if (e.cause < 0) break;  // a true root
    if (e.cause < first_id || e.cause >= e.id) {
      path.truncated = true;  // evicted parent (or malformed link)
      break;
    }
    index = static_cast<std::size_t>(e.cause - first_id);
  }

  path.found = true;
  path.chain.assign(reversed.rbegin(), reversed.rend());

  // Attribute each gap. The chain telescopes, so summing the four components
  // reproduces the decision time exactly when the root was reached (the
  // root's own lead-in from t = 0 counts as waiting).
  for (std::size_t i = 0; i < path.chain.size(); ++i) {
    CriticalPathHop& hop = path.chain[i];
    double gap;
    if (i == 0) {
      gap = path.truncated ? 0.0 : hop.time;
    } else {
      gap = hop.time - path.chain[i - 1].time;
      // Real-thread timestamps can jitter by clock granularity; the
      // simulator never produces a negative gap.
      if (gap < 0.0) gap = 0.0;
    }
    hop.gap = gap;
    if (i > 0 && hop.kind == TraceKind::kDeliver) {
      hop.delay = std::min(hop.delay, gap);
      hop.work = std::min(hop.work, gap - hop.delay);
      hop.queue = gap - hop.delay - hop.work;
      hop.wait = 0.0;
      path.hops += 1;
      path.channel_delay += hop.delay;
      path.processing += hop.work;
      path.queueing += hop.queue;
    } else {
      hop.delay = 0.0;
      hop.work = 0.0;
      hop.queue = 0.0;
      hop.wait = gap;
      path.waiting += gap;
    }
  }
  const CriticalPathHop& last = path.chain.back();
  path.span = path.truncated ? last.time - path.chain.front().time : last.time;
  return path;
}

CriticalPath extract_critical_path(const Trace& trace, NodeId decision_node,
                                   SimTime decision_time) {
  return extract_critical_path(trace.events(), decision_node, decision_time);
}

CriticalPathStats CriticalPathStats::from_path(const CriticalPath& path) {
  CriticalPathStats stats;
  stats.found = path.found;
  stats.truncated = path.truncated;
  stats.hops = path.hops;
  stats.span = path.span;
  stats.channel_delay = path.channel_delay;
  stats.processing = path.processing;
  stats.queueing = path.queueing;
  stats.waiting = path.waiting;
  stats.edges = path.edge_shares();
  return stats;
}

void CriticalPathAggregate::add(const CriticalPathStats& stats,
                                std::uint64_t seed) {
  ++considered;
  if (!stats.found) return;
  ++found;
  if (stats.truncated) ++truncated;
  hops.add(static_cast<double>(stats.hops));
  span.add(stats.span);
  channel_delay.add(stats.channel_delay);
  processing.add(stats.processing);
  queueing.add(stats.queueing);
  waiting.add(stats.waiting);
  for (const EdgeShare& share : stats.edges) {
    EdgeShare& slot = channels[share.edge];
    slot.edge = share.edge;
    slot.hops += share.hops;
    slot.delay += share.delay;
  }
  if (!has_worst || stats.span > worst_span ||
      (stats.span == worst_span && seed < worst_seed)) {
    has_worst = true;
    worst_span = stats.span;
    worst_seed = seed;
  }
}

void CriticalPathAggregate::merge(const CriticalPathAggregate& other) {
  considered += other.considered;
  found += other.found;
  truncated += other.truncated;
  hops.merge(other.hops);
  span.merge(other.span);
  channel_delay.merge(other.channel_delay);
  processing.merge(other.processing);
  queueing.merge(other.queueing);
  waiting.merge(other.waiting);
  for (const auto& entry : other.channels) {
    EdgeShare& slot = channels[entry.first];
    slot.edge = entry.second.edge;
    slot.hops += entry.second.hops;
    slot.delay += entry.second.delay;
  }
  if (other.has_worst &&
      (!has_worst || other.worst_span > worst_span ||
       (other.worst_span == worst_span && other.worst_seed < worst_seed))) {
    has_worst = true;
    worst_span = other.worst_span;
    worst_seed = other.worst_seed;
  }
}

std::vector<EdgeShare> CriticalPathAggregate::top_channels(
    std::size_t k) const {
  std::vector<EdgeShare> out;
  out.reserve(channels.size());
  for (const auto& entry : channels) out.push_back(entry.second);
  std::sort(out.begin(), out.end(), [](const EdgeShare& a, const EdgeShare& b) {
    if (a.delay != b.delay) return a.delay > b.delay;
    return a.edge < b.edge;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace abe
