// Happens-before reconstruction and critical-path profiling.
//
// Every TraceEvent may carry the id of the event that caused it (trace.h):
// the SEND behind a DELIVER, the handler behind a SEND, the schedule site
// behind a TIMER/TICK fire. Those links form the trial's happens-before DAG,
// and the chain that ends at the DECISION event — the delivery or tick on
// which the algorithm decided (election won, consensus reached) — is the
// measured counterpart of the ABE paper's analysis: time complexity there is
// derived from chains of dependent deliveries, each bounded in EXPECTED
// delay. extract_critical_path() walks that chain backwards and attributes
// its sim-time extent to four exhaustive, non-overlapping components:
//
//   waiting       — activation gaps (tick/timer lead-in, including the
//                   root's distance from t = 0)
//   channel delay — the sampled transit time of each DELIVER hop
//   processing    — Definition 1(3) handling time of each DELIVER hop
//   queueing      — the rest of each DELIVER gap (FIFO floors, busy nodes)
//
// The four sum EXACTLY to the decision time on the simulator (pure
// telescoping of the chain's gaps; no new float error sources), which is the
// invariant tests/test_causal.cpp pins. Chains that left the flight
// recorder's 256-event ring before reaching a root are flagged `truncated` —
// RuntimeConfig::causal_history widens the ring (without enabling detail
// strings) when complete chains are wanted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/summary.h"
#include "trace/trace.h"
#include "util/ids.h"

namespace abe {

// One event on the reconstructed chain, root first.
struct CriticalPathHop {
  std::int64_t id = -1;
  TraceKind kind = TraceKind::kCustom;
  NodeId node;
  std::int64_t arg = -1;  // edge index for SEND/DELIVER, tag/tick otherwise
  SimTime time = 0.0;
  double gap = 0.0;    // time since the previous hop (root: since t = 0)
  double delay = 0.0;  // channel share of the gap (DELIVER hops)
  double work = 0.0;   // processing share of the gap (DELIVER hops)
  double queue = 0.0;  // gap - delay - work on DELIVER hops
  double wait = 0.0;   // the whole gap on non-DELIVER hops
};

// Per-channel share of one chain (and, summed, of a whole cell).
struct EdgeShare {
  std::int64_t edge = -1;
  std::uint64_t hops = 0;
  double delay = 0.0;
};

// The decision-terminated causal chain of one trial.
struct CriticalPath {
  bool found = false;
  bool truncated = false;  // walk left the retained ring before a root
  std::uint64_t hops = 0;  // DELIVER links (message hops) with a known gap
  SimTime span = 0.0;      // decision time, or the chain's extent if truncated
  double channel_delay = 0.0;
  double processing = 0.0;
  double queueing = 0.0;
  double waiting = 0.0;
  std::vector<CriticalPathHop> chain;  // root first, decision event last

  // Per-edge shares of this chain, ascending by edge id.
  std::vector<EdgeShare> edge_shares() const;
  // Human-readable chain dump (one hop per line) for the CLI.
  std::string render() const;
};

// Reconstructs the chain ending at the decision event: the last DELIVER or
// TIMER event recorded at `decision_node` no later than `decision_time`
// (decisions fire inside message/timer handlers; a TICK anchors only when no
// such handler exists, so background ticks popping between the deciding
// DELIVER and a wall-clock decision_time read cannot hijack the anchor).
// `events` is a Trace linearization (oldest first, dense ids) — pass
// trace.events(). Returns found = false when the decision event itself has
// already been evicted.
CriticalPath extract_critical_path(const std::vector<TraceEvent>& events,
                                   NodeId decision_node, SimTime decision_time);
CriticalPath extract_critical_path(const Trace& trace, NodeId decision_node,
                                   SimTime decision_time);

// POD per-trial roll-up carried on TrialOutcome into the sweep.
struct CriticalPathStats {
  bool found = false;
  bool truncated = false;
  std::uint64_t hops = 0;
  double span = 0.0;
  double channel_delay = 0.0;
  double processing = 0.0;
  double queueing = 0.0;
  double waiting = 0.0;
  std::vector<EdgeShare> edges;  // ascending by edge id

  static CriticalPathStats from_path(const CriticalPath& path);
};

// Order-commutative per-cell aggregate, merged through the trial pool's
// fixed-chunk scheme exactly like MetricsSnapshot: counts and edge shares
// sum, Summaries combine in seed order, the worst trial is the max by
// (span, then smaller seed) — all independent of thread count.
struct CriticalPathAggregate {
  std::uint64_t considered = 0;  // decided trials that looked for a path
  std::uint64_t found = 0;
  std::uint64_t truncated = 0;
  Summary hops;
  Summary span;
  Summary channel_delay;
  Summary processing;
  Summary queueing;
  Summary waiting;
  std::map<std::int64_t, EdgeShare> channels;  // edge -> summed share
  bool has_worst = false;
  double worst_span = 0.0;
  std::uint64_t worst_seed = 0;

  void add(const CriticalPathStats& stats, std::uint64_t seed);
  void merge(const CriticalPathAggregate& other);

  // Heaviest channels by summed delay (ties: smaller edge id first).
  std::vector<EdgeShare> top_channels(std::size_t k) const;
};

}  // namespace abe
