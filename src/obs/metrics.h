// Metrics registry: counters, gauges, and fixed-bucket histograms with a
// deterministic snapshot order.
//
// Design contract (every instrumented layer relies on it):
//
//  * Near-zero disabled cost. Instruments are plain atomics bumped with
//    relaxed operations; hot paths cache a raw pointer to their instrument
//    and pay one predictable null test when the owning component has
//    metrics disabled. Nothing allocates, locks, or formats on the record
//    path — the registry mutex is touched only at create and snapshot time.
//
//  * Determinism. Recording a metric never consumes randomness and never
//    reorders simulation events, so honest sweep aggregates stay
//    bit-identical whether metrics are on or off. Snapshots list entries
//    sorted by name, and MetricsSnapshot::merge is order-commutative
//    (counter = sum, gauge = max, histogram = bucket-wise sum) — merged
//    through the trial pool's fixed chunk tree the result is bit-identical
//    for every thread count, which tests/test_obs.cpp asserts.
//
//  * Bounded memory. FixedHistogram takes its bucket bounds up front
//    (stats/histogram.h keeps raw samples for exact quantiles — right for
//    offline analysis, wrong for an always-on instrument), so per-trial
//    metric state is O(instruments), not O(events).
//
// Hand-rolled tally fields outside src/obs/ are rejected by the
// `no-adhoc-counters` lint rule (tools/lint/abe_lint.py); legacy aggregate
// surfaces that predate the registry carry explicit allow-file pragmas.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace abe {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// "counter" | "gauge" | "histogram" — the strings the sweep JSON emits.
const char* metric_kind_name(MetricKind kind);

// Monotonic event count. Relaxed increments: per-instrument totals are
// exact, cross-instrument ordering is unobservable by design.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Point-in-time level. Snapshots and merges take the maximum, so a gauge
// reads as the high-water mark of whatever it tracks (queue depth, mailbox
// backlog) — the quantity the ROADMAP's capacity questions ask about.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  // Lock-free max: lost CAS races retry, so the final value is the true
  // maximum over all update_max calls.
  void update_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Histogram over fixed bucket upper bounds (strictly increasing), plus an
// implicit overflow bucket — bucket_counts() has bounds().size() + 1
// entries. Sample x lands in the first bucket whose bound is >= x.
class FixedHistogram {
 public:
  // `upper_bounds` must be non-empty and strictly increasing.
  explicit FixedHistogram(std::vector<double> upper_bounds);
  FixedHistogram(const FixedHistogram&) = delete;
  FixedHistogram& operator=(const FixedHistogram&) = delete;

  void record(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t total() const;

  // Approximate q-quantile (q in [0, 1]) by linear interpolation inside the
  // containing bucket, assuming nonnegative samples (the first bucket's
  // lower edge is 0). Overflow-bucket quantiles clamp to the last bound.
  double quantile(double q) const;

  // Geometric bounds center·2^k for k in [-below, above] — the right shape
  // for delay-like quantities whose scale is known (the ABE δ) but whose
  // tail is the interesting part. center must be > 0.
  static std::vector<double> log2_bounds(double center, int below, int above);

  // quantile() over already-harvested (bounds, counts) pairs, used by
  // MetricsSnapshot rendering after merges.
  static double quantile_of(const std::vector<double>& bounds,
                            const std::vector<std::uint64_t>& counts,
                            double q);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

// One harvested instrument. Counters and gauges carry `value`; histograms
// carry (bounds, buckets) with buckets.size() == bounds.size() + 1.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;

  bool operator==(const MetricValue& other) const {
    return name == other.name && kind == other.kind && value == other.value &&
           bounds == other.bounds && buckets == other.buckets;
  }
};

// A point-in-time harvest: entries sorted by name (the deterministic
// serialization order the schema-v5 validator checks), merged across trials
// with order-commutative semantics.
class MetricsSnapshot {
 public:
  // add_* upserts: a counter accumulates, a gauge keeps the max, a
  // histogram sums buckets. Registering the same name under two different
  // kinds (or two bound vectors) is a caller bug and aborts.
  void add_counter(const std::string& name, double value);
  void add_gauge(const std::string& name, double value);
  void add_histogram(const std::string& name, std::vector<double> bounds,
                     std::vector<std::uint64_t> buckets);

  void merge(const MetricsSnapshot& other);

  const std::vector<MetricValue>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  // nullptr when absent.
  const MetricValue* find(const std::string& name) const;
  // 0 when absent — convenient in tests and table rendering.
  double value_of(const std::string& name) const;

  // Aligned human-readable table (histograms render count + p50/p90/p99).
  std::string render() const;
  // Deterministic JSON array of {name, kind, value | bounds+counts},
  // appended to `out`; the per-cell "metrics" block of sweep schema v5.
  void append_json(std::string* out) const;

  bool operator==(const MetricsSnapshot& other) const {
    return entries_ == other.entries_;
  }
  bool operator!=(const MetricsSnapshot& other) const {
    return !(*this == other);
  }

 private:
  MetricValue& upsert(const std::string& name, MetricKind kind);
  std::vector<MetricValue> entries_;  // sorted by name
};

// Owner of live instruments. Create/lookup is mutex-guarded; the returned
// references are stable for the registry's lifetime (instruments live
// behind unique_ptr), so components resolve their instruments once at
// setup and record through cached pointers ever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) EXCLUDES(mutex_);
  // Re-registering an existing histogram name requires identical bounds.
  FixedHistogram& histogram(const std::string& name,
                            std::vector<double> bounds) EXCLUDES(mutex_);

  // Harvest every instrument, sorted by name.
  MetricsSnapshot snapshot() const EXCLUDES(mutex_);

 private:
  mutable AnnotatedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace abe
