// Awerbuch's α-synchronizer on an asynchronous/ABE network.
//
// Every node, every round, sends exactly one envelope on every outgoing
// channel — the app's message when it has one, an explicit null marker
// otherwise — and advances to round r+1 only after receiving a round-r
// envelope on every incoming channel. This is the "every node sends a
// message every round" regime of Theorem 1: on a strongly connected digraph
// each node has out-degree >= 1, so at least n messages cross the network
// per round; on a unidirectional ring the α-synchronizer meets the paper's
// lower bound with equality (exactly n messages per round).
//
// Correctness needs no delay bound at all — it works on any asynchronous
// network, ABE included, trading messages for robustness.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "syncr/sync_app.h"

namespace abe {

class AlphaSyncNode final : public Node {
 public:
  // Runs `max_rounds` app rounds, then stops emitting (all nodes share the
  // same horizon, so no peer blocks).
  AlphaSyncNode(std::unique_ptr<SyncApp> app, std::uint64_t max_rounds);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;
  bool is_terminated() const override { return finished_; }

  std::uint64_t rounds_completed() const { return rounds_completed_; }
  const SyncApp& app() const { return *app_; }

 private:
  void emit_round(Context& ctx, std::uint64_t round,
                  std::vector<SyncOutgoing> app_msgs);
  void try_advance(Context& ctx);

  std::unique_ptr<SyncApp> app_;
  std::uint64_t max_rounds_;
  std::uint64_t current_round_ = 1;  // round whose inbox we are collecting
  std::uint64_t rounds_completed_ = 0;
  bool finished_ = false;
  SyncAppContext app_ctx_{};
  // round -> (in_index -> envelope); out-of-order rounds buffer here.
  std::map<std::uint64_t, std::vector<std::shared_ptr<const SyncEnvelope>>>
      pending_;
  std::map<std::uint64_t, std::size_t> pending_count_;
};

struct AlphaRunResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages_total = 0;
  double messages_per_round = 0.0;
  SimTime completion_time = 0.0;
  std::vector<std::int64_t> outputs;
  bool completed = false;
};

// Runs the app under the α-synchronizer on `topology` over a network with
// the given delay model. The result's outputs are comparable with
// run_synchronous (same factory, same seed contract).
AlphaRunResult run_alpha_synchronizer(const Topology& topology,
                                      const SyncAppFactory& factory,
                                      std::uint64_t rounds,
                                      const DelayModelPtr& delay,
                                      std::uint64_t seed = 1,
                                      SimTime deadline = 1e9);

}  // namespace abe
