#include "syncr/beta.h"

#include <limits>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace abe {

std::string BetaControl::describe() const {
  const char* name = kind_ == Kind::kAck    ? "ACK"
                     : kind_ == Kind::kSafe ? "SAFE"
                                            : "GO";
  std::ostringstream os;
  os << "Beta" << name << "(r=" << round_ << ")";
  return os.str();
}

std::vector<BetaWiring> build_beta_wiring(const Topology& topology,
                                          const SpanningTree& tree) {
  const auto in_adj = in_adjacency(topology);
  const auto to_nbr = out_channel_to_neighbor(topology);
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  std::vector<BetaWiring> wiring(topology.n);
  for (std::size_t v = 0; v < topology.n; ++v) {
    BetaWiring& w = wiring[v];
    w.is_root = v == tree.root;
    if (!w.is_root) {
      w.parent_out = to_nbr[v][tree.parent[v]];
      ABE_CHECK(w.parent_out != kNone)
          << "no channel from " << v << " to parent " << tree.parent[v];
    }
    for (std::size_t child : tree.children[v]) {
      const std::size_t out = to_nbr[v][child];
      ABE_CHECK(out != kNone)
          << "no channel from " << v << " to child " << child;
      w.children_out.push_back(out);
    }
    // Ack routes: for each incoming channel, the channel back to its sender.
    w.reverse_of_in.resize(in_adj[v].size());
    for (std::size_t k = 0; k < in_adj[v].size(); ++k) {
      const std::size_t sender = topology.edges[in_adj[v][k]].from;
      const std::size_t back = to_nbr[v][sender];
      ABE_CHECK(back != kNone) << "edge " << sender << "->" << v
                               << " lacks the reverse ack channel";
      w.reverse_of_in[k] = back;
    }
  }
  return wiring;
}

BetaSyncNode::BetaSyncNode(std::unique_ptr<SyncApp> app,
                           std::uint64_t max_rounds, BetaWiring wiring)
    : app_(std::move(app)),
      max_rounds_(max_rounds),
      wiring_(std::move(wiring)) {
  ABE_CHECK(static_cast<bool>(app_));
  ABE_CHECK_GT(max_rounds, 0u);
}

void BetaSyncNode::on_start(Context& ctx) {
  app_ctx_ = SyncAppContext{static_cast<std::size_t>(ctx.self().value()),
                            ctx.out_degree(), ctx.in_degree(),
                            ctx.network_size(), &ctx.rng()};
  round_ = 1;
  safe_reported_ = false;
  children_safe_ = 0;
  auto msgs = app_->on_init(app_ctx_);
  unacked_ = msgs.size();
  for (auto& m : msgs) {
    ABE_CHECK_LT(m.out_index, ctx.out_degree());
    ABE_CHECK(static_cast<bool>(m.payload));
    ctx.send(m.out_index,
             std::make_unique<SyncEnvelope>(round_, std::move(m.payload)));
  }
  maybe_report_safe(ctx);
}

void BetaSyncNode::begin_round(Context& ctx, std::uint64_t round) {
  round_ = round;
  safe_reported_ = false;
  // SAFE/ACK cannot outrun our own round start (we forward GO before
  // beginning), so the counters start clean.
  children_safe_ = 0;
  auto msgs = std::move(pending_sends_);
  pending_sends_.clear();
  unacked_ = msgs.size();
  for (auto& m : msgs) {
    ctx.send(m.out_index,
             std::make_unique<SyncEnvelope>(round_, std::move(m.payload)));
  }
  // Buffered app messages that raced ahead of our GO.
  auto it = buffered_.find(round_);
  if (it != buffered_.end()) {
    for (auto& incoming : it->second) inbox_.push_back(std::move(incoming));
    buffered_.erase(it);
  }
  maybe_report_safe(ctx);
}

void BetaSyncNode::maybe_report_safe(Context& ctx) {
  if (finished_ || safe_reported_) return;
  if (unacked_ != 0) return;
  if (children_safe_ != wiring_.children_out.size()) return;
  safe_reported_ = true;
  if (wiring_.is_root) {
    advance(ctx);  // the whole tree is safe: move to the next round
  } else {
    ctx.send(wiring_.parent_out,
             std::make_unique<BetaControl>(BetaControl::Kind::kSafe, round_));
  }
}

void BetaSyncNode::advance(Context& ctx) {
  // Release the subtree first so deeper nodes overlap with our compute.
  const std::uint64_t next = round_ + 1;
  for (std::size_t out : wiring_.children_out) {
    ctx.send(out, std::make_unique<BetaControl>(BetaControl::Kind::kGo,
                                                next));
  }
  std::vector<SyncIncoming> inbox;
  inbox.swap(inbox_);
  auto msgs = app_->on_round(app_ctx_, round_, inbox);
  ++rounds_completed_;
  if (rounds_completed_ >= max_rounds_) {
    finished_ = true;
    return;
  }
  pending_sends_ = std::move(msgs);
  begin_round(ctx, next);
}

void BetaSyncNode::on_message(Context& ctx, std::size_t in_index,
                              const Payload& payload) {
  if (const auto* env = payload_cast<SyncEnvelope>(payload)) {
    // Ack on receipt, regardless of the round relationship: acks certify
    // delivery, which is all the sender's safety needs.
    ctx.send(wiring_.reverse_of_in[in_index],
             std::make_unique<BetaControl>(BetaControl::Kind::kAck,
                                           env->round()));
    if (!env->has_app()) return;
    if (env->round() == round_ && !finished_) {
      inbox_.push_back(SyncIncoming{in_index, env->app()});
    } else {
      ABE_CHECK_EQ(env->round(), round_ + 1)
          << "app message from an impossible round";
      buffered_[env->round()].push_back(SyncIncoming{in_index, env->app()});
    }
    return;
  }

  const auto& ctl = payload_as<BetaControl>(payload);
  switch (ctl.kind()) {
    case BetaControl::Kind::kAck:
      if (finished_) return;
      ABE_CHECK_EQ(ctl.round(), round_) << "stray ack";
      ABE_CHECK_GT(unacked_, 0u);
      --unacked_;
      maybe_report_safe(ctx);
      return;
    case BetaControl::Kind::kSafe:
      if (finished_) return;
      ABE_CHECK_EQ(ctl.round(), round_) << "SAFE outran its round";
      ++children_safe_;
      maybe_report_safe(ctx);
      return;
    case BetaControl::Kind::kGo:
      if (finished_) return;
      ABE_CHECK_EQ(ctl.round(), round_ + 1) << "GO for an impossible round";
      advance(ctx);
      return;
  }
}

std::string BetaSyncNode::state_string() const {
  std::ostringstream os;
  os << "beta r=" << round_ << (safe_reported_ ? " safe" : "")
     << (finished_ ? " done" : "");
  return os.str();
}

namespace {

class BetaSyncDriver final : public AlgorithmDriver {
 public:
  BetaSyncDriver(const SyncAppFactory& factory, std::uint64_t rounds,
                 BetaRunResult* sink)
      : factory_(factory), rounds_(rounds), sink_(sink) {
    ABE_CHECK(sink_ != nullptr);
    ABE_CHECK(static_cast<bool>(factory_));
  }

  void configure(RuntimeConfig& config) override {
    const SpanningTree tree = bfs_spanning_tree(config.topology, 0);
    wiring_ = build_beta_wiring(config.topology, tree);
  }

  NodePtr make_node(std::size_t index) override {
    return std::make_unique<BetaSyncNode>(factory_(index), rounds_,
                                          wiring_[index]);
  }

  bool done(const Runtime& rt) override {
    for (std::size_t i = 0; i < rt.size(); ++i) {
      if (!rt.terminated(i)) return false;
    }
    return true;
  }

  TrialOutcome extract(Runtime& rt, bool completed) override {
    const RunStats stats = rt.stats();
    sink_->completed = completed;
    sink_->rounds = rounds_;
    sink_->messages_total = stats.messages_sent;
    sink_->messages_per_round =
        static_cast<double>(sink_->messages_total) /
        static_cast<double>(rounds_);
    sink_->completion_time = rt.now();
    sink_->outputs.resize(rt.size());
    for (std::size_t i = 0; i < rt.size(); ++i) {
      sink_->outputs[i] =
          static_cast<const BetaSyncNode&>(rt.node(i).algorithm_node())
              .app()
              .output();
    }

    TrialOutcome out;
    out.completed = completed;
    // The synchronizer itself has no terminal safety predicate; what the
    // outputs must satisfy is the app's business (callers check them).
    out.safety_ok = completed;
    out.time = sink_->completion_time;
    out.messages = sink_->messages_total;
    return out;
  }

 private:
  const SyncAppFactory& factory_;
  std::uint64_t rounds_;
  BetaRunResult* sink_;
  std::vector<BetaWiring> wiring_;
};

}  // namespace

RuntimeConfig beta_runtime_config(const Topology& topology,
                                  const DelayModelPtr& delay,
                                  std::uint64_t seed, SimTime deadline,
                                  const BetaEnvironment& environment) {
  RuntimeConfig config;
  config.topology = topology;
  config.delay = delay;
  config.ordering = ChannelOrdering::kArbitrary;
  config.clock_bounds = environment.clock_bounds;
  config.drift = environment.drift;
  config.processing = environment.processing;
  config.loss_probability = environment.loss_probability;
  config.seed = seed;
  config.equeue = environment.equeue;
  config.deadline = deadline;
  return config;
}

std::unique_ptr<AlgorithmDriver> make_beta_sync_driver(
    const SyncAppFactory& factory, std::uint64_t rounds,
    BetaRunResult* sink) {
  return std::make_unique<BetaSyncDriver>(factory, rounds, sink);
}

BetaRunResult run_beta_synchronizer(const Topology& topology,
                                    const SyncAppFactory& factory,
                                    std::uint64_t rounds,
                                    const DelayModelPtr& delay,
                                    std::uint64_t seed, SimTime deadline,
                                    const BetaEnvironment& environment) {
  BetaRunResult result;
  const auto driver = make_beta_sync_driver(factory, rounds, &result);
  run_algorithm_trial(
      RuntimeKind::kSim,
      beta_runtime_config(topology, delay, seed, deadline, environment),
      *driver);
  return result;
}

}  // namespace abe
