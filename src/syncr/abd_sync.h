// Timeout-based ABD synchronizer (after Tel, Korach & Zaks, IEEE/ACM ToN
// 1994: "Synchronizing ABD networks").
//
// On an ABD network a sure bound Δ on the message delay is known, so rounds
// can be driven purely by local clocks: node starts round r at local time
// (r−1)·P and closes it at r·P. With ideal clocks and P > Δ every round-r
// message arrives inside round r, no acknowledgement or null message is ever
// needed — ZERO synchronization overhead, far below Theorem 1's n-per-round
// bound. That is legal for ABD because ABD networks are a strictly smaller
// class than ABE/asynchronous ones.
//
// On an ABE network no such Δ exists: whatever period P = c·δ is chosen, a
// message overshoots its round with positive probability (e.g. e^{-c} for
// exponential delays), and the synchronizer silently corrupts the simulated
// synchronous execution. This module *detects and counts* those violations
// (late envelopes, dropped from their round) — bench E6 sweeps c and the
// delay law to chart the failure probability the paper's Theorem 1 warns
// about. Clock drift (Definition 1(2)) breaks it too: local round windows
// slide apart; the bench includes that row as well.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "syncr/sync_app.h"

namespace abe {

class AbdSyncNode final : public Node {
 public:
  // `period_local` is P in local-clock units.
  AbdSyncNode(std::unique_ptr<SyncApp> app, std::uint64_t max_rounds,
              double period_local);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;
  void on_timer(Context& ctx, TimerId id, std::uint64_t tag) override;

  std::string state_string() const override;
  bool is_terminated() const override { return finished_; }

  std::uint64_t rounds_completed() const { return rounds_completed_; }
  std::uint64_t late_messages() const { return late_; }
  const SyncApp& app() const { return *app_; }

 private:
  void emit_round(Context& ctx, std::uint64_t round,
                  std::vector<SyncOutgoing> app_msgs);

  std::unique_ptr<SyncApp> app_;
  std::uint64_t max_rounds_;
  double period_local_;
  std::uint64_t closed_rounds_ = 0;  // rounds whose window has ended
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t late_ = 0;
  bool finished_ = false;
  SyncAppContext app_ctx_{};
  std::map<std::uint64_t, std::vector<SyncIncoming>> inbox_;
};

struct AbdRunResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages_total = 0;  // app messages only; no sync overhead
  double messages_per_round = 0.0;
  std::uint64_t late_messages = 0;   // envelopes missing their round window
  double late_fraction = 0.0;        // late / delivered app messages
  std::vector<std::int64_t> outputs;
  bool outputs_match_reference = false;
  bool completed = false;
};

// Runs the app under the ABD synchronizer with round period
// `period = multiplier × delay->mean_delay()` and compares the outputs with
// the lock-step reference execution.
AbdRunResult run_abd_synchronizer(const Topology& topology,
                                  const SyncAppFactory& factory,
                                  std::uint64_t rounds,
                                  const DelayModelPtr& delay,
                                  double period_multiplier,
                                  std::uint64_t seed = 1,
                                  ClockBounds clock_bounds = {},
                                  DriftModel drift = DriftModel::kNone);

}  // namespace abe
