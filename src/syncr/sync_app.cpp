#include "syncr/sync_app.h"

#include <sstream>

namespace abe {

SyncEnvelope::SyncEnvelope(std::uint64_t round, PayloadPtr app)
    : round_(round), app_(app.release()) {}

std::unique_ptr<Payload> SyncEnvelope::clone() const {
  auto copy = std::make_unique<SyncEnvelope>(round_);
  copy->app_ = app_;  // immutable payloads share safely
  return copy;
}

std::string SyncEnvelope::describe() const {
  std::ostringstream os;
  os << "Sync(r=" << round_ << ", "
     << (app_ ? app_->describe() : std::string("null")) << ")";
  return os.str();
}

}  // namespace abe
