// Awerbuch's β-synchronizer on an asynchronous/ABE network.
//
// Where α floods a (possibly null) envelope on every channel every round,
// β concentrates the coordination on a spanning tree:
//   1. app messages of round r are sent and individually ACKed;
//   2. a node is *safe* for round r once all its messages are acked;
//   3. safety is convergecast up the tree (SAFE) and the root broadcasts
//      GO(r+1) down (each node then processes its complete round-r inbox).
// Overhead per round: one ack per app message + 2(n−1) tree messages —
// still ≥ n per round for n ≥ 2, as Theorem 1 demands of anything that
// synchronises an ABE network, but far below α's |E| on dense graphs.
// Latency per round grows with the tree height (the classic α/β trade-off,
// charted in bench E6's companion table and test_beta.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "net/spanning_tree.h"
#include "runtime/runtime.h"
#include "syncr/sync_app.h"

namespace abe {

// Wire messages of the β protocol. App payloads ride in SyncEnvelope (from
// sync_app.h); the control messages are below.
class BetaControl final : public Payload {
 public:
  enum class Kind : std::uint8_t { kAck, kSafe, kGo };
  BetaControl(Kind kind, std::uint64_t round) : kind_(kind), round_(round) {}
  Kind kind() const { return kind_; }
  std::uint64_t round() const { return round_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<BetaControl>(kind_, round_);
  }
  std::string describe() const override;

 private:
  Kind kind_;
  std::uint64_t round_;
};

// Static per-node wiring derived from the topology and the spanning tree.
struct BetaWiring {
  bool is_root = false;
  // Out-channel toward the parent (unused for the root).
  std::size_t parent_out = 0;
  // Out-channels toward each child.
  std::vector<std::size_t> children_out;
  // For each in-channel, the out-channel back to that sender (ack route).
  std::vector<std::size_t> reverse_of_in;
};

// Builds the wiring for every node. Requires every edge to have a reverse.
std::vector<BetaWiring> build_beta_wiring(const Topology& topology,
                                          const SpanningTree& tree);

class BetaSyncNode final : public Node {
 public:
  BetaSyncNode(std::unique_ptr<SyncApp> app, std::uint64_t max_rounds,
               BetaWiring wiring);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;

  std::string state_string() const override;
  bool is_terminated() const override { return finished_; }

  std::uint64_t rounds_completed() const { return rounds_completed_; }
  const SyncApp& app() const { return *app_; }

 private:
  void begin_round(Context& ctx, std::uint64_t round);
  void maybe_report_safe(Context& ctx);
  void advance(Context& ctx);  // root: all safe -> GO; others: on GO

  std::unique_ptr<SyncApp> app_;
  std::uint64_t max_rounds_;
  BetaWiring wiring_;
  SyncAppContext app_ctx_{};

  std::uint64_t round_ = 0;  // round currently being exchanged
  std::uint64_t rounds_completed_ = 0;
  bool finished_ = false;
  bool safe_reported_ = false;

  std::size_t unacked_ = 0;          // our round-r messages not yet acked
  std::size_t children_safe_ = 0;    // SAFE(r) received from children
  std::vector<SyncIncoming> inbox_;  // round-r app messages received
  // App messages computed for the next round, sent by begin_round.
  std::vector<SyncOutgoing> pending_sends_;
  // App messages that raced ahead of our GO (at most one round ahead).
  std::map<std::uint64_t, std::vector<SyncIncoming>> buffered_;
};

struct BetaRunResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages_total = 0;  // app + acks + tree control
  double messages_per_round = 0.0;
  SimTime completion_time = 0.0;
  std::vector<std::int64_t> outputs;
  bool completed = false;
};

// Environment knobs beyond the delay model, so scenario sweeps can run the
// synchronizer under the full ABE matrix (drift bands, processing time,
// failure injection). β is message-driven, so drift only matters through
// processing-time scaling; loss stalls the ack/convergecast machinery —
// the run then fails by deadline, which is the measurement.
struct BetaEnvironment {
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  ProcessingModel processing = ProcessingModel::zero();
  double loss_probability = 0.0;
  // Event-queue backend (pure perf knob; results are bit-identical).
  EqueueBackend equeue = EqueueBackend::kAuto;
};

// Runs the app under the β-synchronizer (tree rooted at node 0). (Thin
// shim over the β AlgorithmDriver below; seeded results are bit-identical
// to the pre-Runtime runner.)
BetaRunResult run_beta_synchronizer(const Topology& topology,
                                    const SyncAppFactory& factory,
                                    std::uint64_t rounds,
                                    const DelayModelPtr& delay,
                                    std::uint64_t seed = 1,
                                    SimTime deadline = 1e9,
                                    const BetaEnvironment& environment = {});

// The β environment as a runtime-agnostic RuntimeConfig.
RuntimeConfig beta_runtime_config(const Topology& topology,
                                  const DelayModelPtr& delay,
                                  std::uint64_t seed, SimTime deadline,
                                  const BetaEnvironment& environment);

// The β-synchronized app as an AlgorithmDriver (runtime/runtime.h): tree
// wiring derived from config.topology in configure(), done once every node
// finished its `rounds` rounds (terminated flags — race-free on both
// runtimes), full BetaRunResult into `*sink`. One driver per trial.
std::unique_ptr<AlgorithmDriver> make_beta_sync_driver(
    const SyncAppFactory& factory, std::uint64_t rounds,
    BetaRunResult* sink);

}  // namespace abe
