#include "syncr/alpha.h"

#include <sstream>
#include <utility>

#include "util/check.h"

namespace abe {

AlphaSyncNode::AlphaSyncNode(std::unique_ptr<SyncApp> app,
                             std::uint64_t max_rounds)
    : app_(std::move(app)), max_rounds_(max_rounds) {
  ABE_CHECK(static_cast<bool>(app_));
  ABE_CHECK_GT(max_rounds, 0u);
}

void AlphaSyncNode::on_start(Context& ctx) {
  app_ctx_ = SyncAppContext{static_cast<std::size_t>(ctx.self().value()),
                            ctx.out_degree(), ctx.in_degree(),
                            ctx.network_size(), &ctx.rng()};
  emit_round(ctx, 1, app_->on_init(app_ctx_));
  // Degenerate shapes (no in-channels) never receive; advance on the spot.
  try_advance(ctx);
}

void AlphaSyncNode::emit_round(Context& ctx, std::uint64_t round,
                               std::vector<SyncOutgoing> app_msgs) {
  // At most one app message per out-channel per round (synchronous model).
  std::vector<PayloadPtr> per_channel(ctx.out_degree());
  for (auto& msg : app_msgs) {
    ABE_CHECK_LT(msg.out_index, per_channel.size());
    ABE_CHECK(!per_channel[msg.out_index])
        << "app sent two messages on one channel in one round";
    ABE_CHECK(static_cast<bool>(msg.payload));
    per_channel[msg.out_index] = std::move(msg.payload);
  }
  for (std::size_t c = 0; c < per_channel.size(); ++c) {
    if (per_channel[c]) {
      ctx.send(c, std::make_unique<SyncEnvelope>(
                      round, std::move(per_channel[c])));
    } else {
      ctx.send(c, std::make_unique<SyncEnvelope>(round));  // null marker
    }
  }
}

void AlphaSyncNode::on_message(Context& ctx, std::size_t in_index,
                               const Payload& payload) {
  if (finished_) return;
  const auto& env = payload_as<SyncEnvelope>(payload);
  ABE_CHECK_GE(env.round(), current_round_)
      << "round already closed; α requires exactly one envelope per channel "
         "per round";
  auto& slots = pending_[env.round()];
  if (slots.empty()) slots.resize(ctx.in_degree());
  ABE_CHECK_LT(in_index, slots.size());
  ABE_CHECK(!slots[in_index]) << "duplicate envelope for round "
                              << env.round();
  slots[in_index] = std::shared_ptr<const SyncEnvelope>(
      static_cast<const SyncEnvelope*>(env.clone().release()));
  ++pending_count_[env.round()];
  try_advance(ctx);
}

void AlphaSyncNode::try_advance(Context& ctx) {
  while (!finished_) {
    if (ctx.in_degree() > 0 &&
        pending_count_[current_round_] < ctx.in_degree()) {
      return;  // round incomplete; wait
    }
    std::vector<SyncIncoming> inbox;
    auto it = pending_.find(current_round_);
    if (it != pending_.end()) {
      for (std::size_t k = 0; k < it->second.size(); ++k) {
        const auto& env = it->second[k];
        if (env && env->has_app()) {
          inbox.push_back(SyncIncoming{k, env->app()});
        }
      }
      pending_.erase(it);
    }
    pending_count_.erase(current_round_);

    auto next_msgs = app_->on_round(app_ctx_, current_round_, inbox);
    ++rounds_completed_;
    if (rounds_completed_ >= max_rounds_) {
      finished_ = true;
      return;
    }
    ++current_round_;
    emit_round(ctx, current_round_, std::move(next_msgs));
  }
}

std::string AlphaSyncNode::state_string() const {
  std::ostringstream os;
  os << "alpha r=" << current_round_ << (finished_ ? " done" : "");
  return os.str();
}

AlphaRunResult run_alpha_synchronizer(const Topology& topology,
                                      const SyncAppFactory& factory,
                                      std::uint64_t rounds,
                                      const DelayModelPtr& delay,
                                      std::uint64_t seed, SimTime deadline) {
  NetworkConfig config;
  config.topology = topology;
  config.delay = delay;
  config.ordering = ChannelOrdering::kArbitrary;
  config.seed = seed;

  Network net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    return std::make_unique<AlphaSyncNode>(factory(i), rounds);
  });
  net.start();

  auto all_done = [&] {
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (!net.node(i).is_terminated()) return false;
    }
    return true;
  };
  const bool completed = net.run_until(all_done, deadline);

  AlphaRunResult result;
  result.completed = completed;
  result.rounds = rounds;
  result.messages_total = net.metrics().messages_sent;
  result.messages_per_round =
      static_cast<double>(result.messages_total) /
      static_cast<double>(rounds);
  result.completion_time = net.now();
  result.outputs.resize(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    result.outputs[i] =
        static_cast<const AlphaSyncNode&>(net.node(i)).app().output();
  }
  return result;
}

}  // namespace abe
