// Synchronous-algorithm interface shared by all synchronizers.
//
// A SyncApp is a round-based algorithm written for an ideal synchronous
// network: in every round each node sends at most one message per out-channel
// and receives everything its in-neighbours sent that round. The same app
// object can run on
//   * SyncRunner        — the ideal lock-step executor (ground truth),
//   * AlphaSynchronizer — Awerbuch's α on an asynchronous/ABE network,
//   * AbdSynchronizer   — the timeout-based synchronizer that is only sound
//                         when a sure delay bound exists (ABD networks).
// Comparing per-node outputs across executors is how the tests certify a
// synchronizer, and how bench E6 demonstrates where the ABD one breaks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/rng.h"

namespace abe {

// What a SyncApp sees of its node: local shape plus a private random stream.
struct SyncAppContext {
  std::size_t node_index = 0;
  std::size_t out_degree = 0;
  std::size_t in_degree = 0;
  std::size_t network_size = 0;
  Rng* rng = nullptr;
};

struct SyncOutgoing {
  std::size_t out_index = 0;
  PayloadPtr payload;
};

struct SyncIncoming {
  std::size_t in_index = 0;
  std::shared_ptr<const Payload> payload;
};

class SyncApp {
 public:
  virtual ~SyncApp() = default;

  // Messages for round 1 (sent before anything is received).
  virtual std::vector<SyncOutgoing> on_init(SyncAppContext& ctx) = 0;

  // Handles the complete round-`round` inbox; returns messages for
  // round + 1. Called once per round in increasing round order.
  virtual std::vector<SyncOutgoing> on_round(
      SyncAppContext& ctx, std::uint64_t round,
      const std::vector<SyncIncoming>& inbox) = 0;

  // Scalar result of the computation (e.g. BFS distance); compared across
  // executors by tests/benches.
  virtual std::int64_t output() const = 0;

  virtual std::string state_string() const { return ""; }
};

using SyncAppFactory =
    std::function<std::unique_ptr<SyncApp>(std::size_t node_index)>;

// Wire format used by the network-based synchronizers: an app payload (or an
// explicit "nothing this round" marker) tagged with its round number.
class SyncEnvelope final : public Payload {
 public:
  // Marker envelope (no app payload) for `round`.
  explicit SyncEnvelope(std::uint64_t round) : round_(round) {}
  // Envelope carrying an app payload for `round`.
  SyncEnvelope(std::uint64_t round, PayloadPtr app);

  std::uint64_t round() const { return round_; }
  bool has_app() const { return app_ != nullptr; }
  // Shared because the receiving synchronizer buffers envelopes per round.
  std::shared_ptr<const Payload> app() const { return app_; }

  std::unique_ptr<Payload> clone() const override;
  std::string describe() const override;

 private:
  std::uint64_t round_;
  std::shared_ptr<const Payload> app_;
};

}  // namespace abe
