// Synchronous demo applications run under the synchronizers.
//
// All three are deterministic and inbox-order-insensitive, so their per-node
// outputs are directly comparable across SyncRunner / α / ABD executions —
// any divergence indicts the synchronizer (that is exactly what bench E6
// measures for the ABD synchronizer on ABE delays).
#pragma once

#include <cstdint>
#include <vector>

#include "syncr/sync_app.h"

namespace abe {

// Flooding broadcast from a root: round-r wavefront. Output: the round in
// which the node first heard the token (0 for the root, -1 if never).
// On bidirectional topologies this computes BFS depth.
class SyncBroadcastApp final : public SyncApp {
 public:
  explicit SyncBroadcastApp(bool is_root) : informed_(is_root) {}

  std::vector<SyncOutgoing> on_init(SyncAppContext& ctx) override;
  std::vector<SyncOutgoing> on_round(
      SyncAppContext& ctx, std::uint64_t round,
      const std::vector<SyncIncoming>& inbox) override;
  std::int64_t output() const override {
    return informed_ ? informed_round_ : -1;
  }
  std::string state_string() const override;

 private:
  bool informed_;
  std::int64_t informed_round_ = 0;
  bool announced_ = false;
};

// Max consensus: every node starts with a value and floods the maximum it
// has seen every round; after diameter-many rounds all outputs equal the
// global maximum.
class SyncMaxApp final : public SyncApp {
 public:
  explicit SyncMaxApp(std::int64_t initial) : value_(initial) {}

  std::vector<SyncOutgoing> on_init(SyncAppContext& ctx) override;
  std::vector<SyncOutgoing> on_round(
      SyncAppContext& ctx, std::uint64_t round,
      const std::vector<SyncIncoming>& inbox) override;
  std::int64_t output() const override { return value_; }

 private:
  std::vector<SyncOutgoing> broadcast(SyncAppContext& ctx) const;
  std::int64_t value_;
  std::int64_t last_sent_ = INT64_MIN;
};

// Sends nothing, ever; output = number of rounds executed. Under the ABD
// synchronizer this runs with ZERO messages — the contrast to Theorem 1's
// n-messages-per-round floor for ABE/asynchronous networks.
class SyncCounterApp final : public SyncApp {
 public:
  std::vector<SyncOutgoing> on_init(SyncAppContext&) override { return {}; }
  std::vector<SyncOutgoing> on_round(
      SyncAppContext&, std::uint64_t,
      const std::vector<SyncIncoming>&) override {
    ++rounds_;
    return {};
  }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(rounds_);
  }

 private:
  std::uint64_t rounds_ = 0;
};

// Factory helpers binding per-node construction.
SyncAppFactory broadcast_app_factory(std::size_t root);
// Initial value of node i is `values[i]`.
SyncAppFactory max_app_factory(std::vector<std::int64_t> values);
SyncAppFactory counter_app_factory();

}  // namespace abe
