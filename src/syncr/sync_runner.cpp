#include "syncr/sync_runner.h"

#include <utility>

#include "util/check.h"

namespace abe {

SyncRunResult run_synchronous(const Topology& topology,
                              const SyncAppFactory& factory,
                              std::uint64_t rounds, std::uint64_t seed) {
  validate_topology(topology);
  const std::size_t n = topology.n;
  const auto out_adj = out_adjacency(topology);
  const auto in_adj = in_adjacency(topology);

  // Receiver-side in-index of each edge.
  std::vector<std::size_t> in_index_of_edge(topology.edges.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < in_adj[v].size(); ++k) {
      in_index_of_edge[in_adj[v][k]] = k;
    }
  }

  Rng root(seed);
  std::vector<Rng> rngs;
  std::vector<std::unique_ptr<SyncApp>> apps;
  std::vector<SyncAppContext> contexts(n);
  rngs.reserve(n);
  apps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rngs.push_back(root.substream("sync-app", i));
    apps.push_back(factory(i));
    ABE_CHECK(static_cast<bool>(apps.back()));
    contexts[i] = SyncAppContext{i, out_adj[i].size(), in_adj[i].size(), n,
                                 nullptr};
  }
  for (std::size_t i = 0; i < n; ++i) contexts[i].rng = &rngs[i];

  SyncRunResult result;
  // inboxes[v] collects round-r messages for node v.
  std::vector<std::vector<SyncIncoming>> inboxes(n);

  auto dispatch = [&](std::size_t from, std::vector<SyncOutgoing> out) {
    for (auto& msg : out) {
      ABE_CHECK_LT(msg.out_index, out_adj[from].size());
      ABE_CHECK(static_cast<bool>(msg.payload));
      const std::size_t edge = out_adj[from][msg.out_index];
      const std::size_t to = topology.edges[edge].to;
      inboxes[to].push_back(SyncIncoming{
          in_index_of_edge[edge],
          std::shared_ptr<const Payload>(msg.payload.release())});
      ++result.messages_sent;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    dispatch(i, apps[i]->on_init(contexts[i]));
  }

  for (std::uint64_t r = 1; r <= rounds; ++r) {
    std::vector<std::vector<SyncIncoming>> current(n);
    current.swap(inboxes);
    for (std::size_t i = 0; i < n; ++i) {
      dispatch(i, apps[i]->on_round(contexts[i], r, current[i]));
    }
    ++result.rounds_executed;
  }

  result.outputs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.outputs[i] = apps[i]->output();
  }
  return result;
}

}  // namespace abe
