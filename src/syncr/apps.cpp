#include "syncr/apps.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/message.h"
#include "util/check.h"

namespace abe {

namespace {

// Builds one IntPayload message per out-channel.
std::vector<SyncOutgoing> flood(std::size_t out_degree, std::int64_t value) {
  std::vector<SyncOutgoing> out;
  out.reserve(out_degree);
  for (std::size_t c = 0; c < out_degree; ++c) {
    out.push_back(SyncOutgoing{c, std::make_unique<IntPayload>(value)});
  }
  return out;
}

}  // namespace

std::vector<SyncOutgoing> SyncBroadcastApp::on_init(SyncAppContext& ctx) {
  if (informed_ && !announced_) {
    announced_ = true;
    return flood(ctx.out_degree, 0);
  }
  return {};
}

std::vector<SyncOutgoing> SyncBroadcastApp::on_round(
    SyncAppContext& ctx, std::uint64_t round,
    const std::vector<SyncIncoming>& inbox) {
  if (!informed_ && !inbox.empty()) {
    informed_ = true;
    informed_round_ = static_cast<std::int64_t>(round);
  }
  if (informed_ && !announced_) {
    announced_ = true;
    return flood(ctx.out_degree, 0);
  }
  return {};
}

std::string SyncBroadcastApp::state_string() const {
  std::ostringstream os;
  os << (informed_ ? "informed@" : "waiting");
  if (informed_) os << informed_round_;
  return os.str();
}

std::vector<SyncOutgoing> SyncMaxApp::broadcast(SyncAppContext& ctx) const {
  return flood(ctx.out_degree, value_);
}

std::vector<SyncOutgoing> SyncMaxApp::on_init(SyncAppContext& ctx) {
  last_sent_ = value_;
  return broadcast(ctx);
}

std::vector<SyncOutgoing> SyncMaxApp::on_round(
    SyncAppContext& ctx, std::uint64_t /*round*/,
    const std::vector<SyncIncoming>& inbox) {
  for (const auto& msg : inbox) {
    const auto& payload = payload_as<IntPayload>(*msg.payload);
    value_ = std::max(value_, payload.value());
  }
  // Re-flood only on improvement; keeps message counts meaningful.
  if (value_ != last_sent_) {
    last_sent_ = value_;
    return broadcast(ctx);
  }
  return {};
}

SyncAppFactory broadcast_app_factory(std::size_t root) {
  return [root](std::size_t node) -> std::unique_ptr<SyncApp> {
    return std::make_unique<SyncBroadcastApp>(node == root);
  };
}

SyncAppFactory max_app_factory(std::vector<std::int64_t> values) {
  auto shared = std::make_shared<std::vector<std::int64_t>>(std::move(values));
  return [shared](std::size_t node) -> std::unique_ptr<SyncApp> {
    ABE_CHECK_LT(node, shared->size());
    return std::make_unique<SyncMaxApp>((*shared)[node]);
  };
}

SyncAppFactory counter_app_factory() {
  return [](std::size_t) -> std::unique_ptr<SyncApp> {
    return std::make_unique<SyncCounterApp>();
  };
}

}  // namespace abe
