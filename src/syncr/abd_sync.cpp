#include "syncr/abd_sync.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "syncr/sync_runner.h"
#include "util/check.h"

namespace abe {

AbdSyncNode::AbdSyncNode(std::unique_ptr<SyncApp> app,
                         std::uint64_t max_rounds, double period_local)
    : app_(std::move(app)),
      max_rounds_(max_rounds),
      period_local_(period_local) {
  ABE_CHECK(static_cast<bool>(app_));
  ABE_CHECK_GT(max_rounds, 0u);
  ABE_CHECK_GT(period_local, 0.0);
}

void AbdSyncNode::on_start(Context& ctx) {
  app_ctx_ = SyncAppContext{static_cast<std::size_t>(ctx.self().value()),
                            ctx.out_degree(), ctx.in_degree(),
                            ctx.network_size(), &ctx.rng()};
  emit_round(ctx, 1, app_->on_init(app_ctx_));
  // Close round 1 at local time P.
  ctx.set_timer_local(period_local_, 1);
}

void AbdSyncNode::emit_round(Context& ctx, std::uint64_t round,
                             std::vector<SyncOutgoing> app_msgs) {
  // Only real app messages are sent — the whole point of the ABD
  // synchronizer is zero overhead (no null markers, no acks).
  for (auto& msg : app_msgs) {
    ABE_CHECK_LT(msg.out_index, ctx.out_degree());
    ABE_CHECK(static_cast<bool>(msg.payload));
    ctx.send(msg.out_index,
             std::make_unique<SyncEnvelope>(round, std::move(msg.payload)));
  }
}

void AbdSyncNode::on_message(Context& ctx, std::size_t in_index,
                             const Payload& payload) {
  const auto& env = payload_as<SyncEnvelope>(payload);
  if (!env.has_app()) return;  // defensive; ABD peers never send nulls
  if (env.round() <= closed_rounds_) {
    // The round window already ended: the delay exceeded the assumed bound.
    ++late_;
    ctx.log("late envelope r=" + std::to_string(env.round()));
    return;
  }
  inbox_[env.round()].push_back(SyncIncoming{in_index, env.app()});
}

void AbdSyncNode::on_timer(Context& ctx, TimerId /*id*/, std::uint64_t tag) {
  if (finished_) return;
  const std::uint64_t round = tag;
  ABE_CHECK_EQ(round, closed_rounds_ + 1);
  closed_rounds_ = round;

  std::vector<SyncIncoming> inbox;
  auto it = inbox_.find(round);
  if (it != inbox_.end()) {
    inbox = std::move(it->second);
    inbox_.erase(it);
  }
  auto next_msgs = app_->on_round(app_ctx_, round, inbox);
  ++rounds_completed_;
  if (rounds_completed_ >= max_rounds_) {
    finished_ = true;
    return;
  }
  emit_round(ctx, round + 1, std::move(next_msgs));
  ctx.set_timer_local(period_local_, round + 1);
}

std::string AbdSyncNode::state_string() const {
  std::ostringstream os;
  os << "abd r=" << closed_rounds_ + 1 << " late=" << late_
     << (finished_ ? " done" : "");
  return os.str();
}

AbdRunResult run_abd_synchronizer(const Topology& topology,
                                  const SyncAppFactory& factory,
                                  std::uint64_t rounds,
                                  const DelayModelPtr& delay,
                                  double period_multiplier,
                                  std::uint64_t seed,
                                  ClockBounds clock_bounds,
                                  DriftModel drift) {
  ABE_CHECK_GT(period_multiplier, 0.0);
  NetworkConfig config;
  config.topology = topology;
  config.delay = delay;
  config.ordering = ChannelOrdering::kArbitrary;
  config.clock_bounds = clock_bounds;
  config.drift = drift;
  config.seed = seed;

  const double period = period_multiplier * delay->mean_delay();
  Network net(std::move(config));
  net.build_nodes([&](std::size_t i) -> NodePtr {
    return std::make_unique<AbdSyncNode>(factory(i), rounds, period);
  });
  net.start();

  auto all_done = [&] {
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (!net.node(i).is_terminated()) return false;
    }
    return true;
  };
  // Rounds are timer-driven, so completion is guaranteed; the deadline is
  // simply the sum of all round windows with slack.
  const double deadline =
      period * static_cast<double>(rounds + 2) /
          std::max(clock_bounds.s_low, 1e-9) +
      1.0;
  const bool completed = net.run_until(all_done, deadline);

  AbdRunResult result;
  result.completed = completed;
  result.rounds = rounds;
  result.messages_total = net.metrics().messages_sent;
  result.messages_per_round =
      static_cast<double>(result.messages_total) / static_cast<double>(rounds);
  result.outputs.resize(net.size());
  std::uint64_t late = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& node = static_cast<const AbdSyncNode&>(net.node(i));
    result.outputs[i] = node.app().output();
    late += node.late_messages();
  }
  result.late_messages = late;
  result.late_fraction =
      result.messages_total == 0
          ? 0.0
          : static_cast<double>(late) /
                static_cast<double>(result.messages_total);

  // Ground truth comparison: the ideal synchronous execution.
  const SyncRunResult reference =
      run_synchronous(topology, factory, rounds, seed);
  result.outputs_match_reference = reference.outputs == result.outputs;
  return result;
}

}  // namespace abe
