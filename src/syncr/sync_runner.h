// The ideal synchronous executor: ground truth for synchronizer tests.
//
// Runs a SyncApp per node in true lock-step rounds with instant, reliable
// delivery. No scheduler, no delays — this is the semantics the
// synchronizers must reproduce on top of an asynchronous network.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "syncr/sync_app.h"

namespace abe {

struct SyncRunResult {
  std::uint64_t rounds_executed = 0;
  std::uint64_t messages_sent = 0;
  std::vector<std::int64_t> outputs;  // per node, after the final round
};

// Executes `rounds` lock-step rounds of the app on `topology`.
// `seed` feeds the per-node app RNG streams (apps may be probabilistic).
SyncRunResult run_synchronous(const Topology& topology,
                              const SyncAppFactory& factory,
                              std::uint64_t rounds, std::uint64_t seed = 1);

}  // namespace abe
