// Local clocks with bounded drift — Definition 1(2) of the ABE model.
//
// Each node owns a clock whose rate r(t) stays within known bounds
// [s_low, s_high]: for any real interval [t1, t2],
//   s_low·(t2−t1) ≤ |C(t2) − C(t1)| ≤ s_high·(t2−t1).
// Two rate models are provided:
//  * Fixed: one rate for the whole run (drawn once within bounds).
//  * PiecewiseRandom: the rate is re-drawn inside the bounds at random
//    segment boundaries; this models oscillators wandering over time while
//    never leaving the bound — the adversarial shape Definition 1 permits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "util/check.h"

namespace abe {

// Known bounds on local clock speed; part of the ABE parameters.
struct ClockBounds {
  double s_low = 1.0;
  double s_high = 1.0;

  void validate() const {
    ABE_CHECK_GT(s_low, 0.0);
    ABE_CHECK_GE(s_high, s_low);
  }
  double ratio() const { return s_high / s_low; }
};

// Strategy for how a clock's instantaneous rate evolves within the bounds.
enum class DriftModel : std::uint8_t {
  kNone,             // rate exactly 1 (ideal clock)
  kFixedRandomRate,  // one uniform draw in [s_low, s_high] per node
  kPiecewiseRandom,  // rate re-drawn at random segment boundaries
};

const char* drift_model_name(DriftModel model);

// Monotone map between real simulated time and one node's local time.
// Built lazily: segments are appended as real time advances.
class LocalClock {
 public:
  // `rng` seeds the per-clock rate draws; `segment_mean` is the expected real
  // length of a constant-rate segment for kPiecewiseRandom.
  LocalClock(ClockBounds bounds, DriftModel model, Rng rng,
             double segment_mean = 10.0);

  const ClockBounds& bounds() const { return bounds_; }
  DriftModel model() const { return model_; }

  // Local reading C(t) at real time t (t >= every earlier query; clocks are
  // queried monotonically by the simulator, and earlier times are answered
  // from recorded segments).
  double local_at(SimTime real);

  // Inverse map: earliest real time at which the local reading is >= local.
  // Requires local >= local_at(0) = 0.
  SimTime real_at(double local);

  // Instantaneous rate at real time t.
  double rate_at(SimTime real);

 private:
  struct Segment {
    SimTime real_start;
    double local_start;
    double rate;
    SimTime real_end;  // +inf for the open last segment
  };

  // Ensures segments cover real time `real`.
  void extend_to(SimTime real);
  double draw_rate();

  ClockBounds bounds_;
  DriftModel model_;
  Rng rng_;
  double segment_mean_;
  std::vector<Segment> segments_;
};

}  // namespace abe
