#include "clock/local_clock.h"

#include <algorithm>

namespace abe {

const char* drift_model_name(DriftModel model) {
  switch (model) {
    case DriftModel::kNone:
      return "none";
    case DriftModel::kFixedRandomRate:
      return "fixed-random";
    case DriftModel::kPiecewiseRandom:
      return "piecewise-random";
  }
  return "?";
}

LocalClock::LocalClock(ClockBounds bounds, DriftModel model, Rng rng,
                       double segment_mean)
    : bounds_(bounds), model_(model), rng_(rng), segment_mean_(segment_mean) {
  bounds_.validate();
  ABE_CHECK_GT(segment_mean_, 0.0);
  Segment first;
  first.real_start = 0.0;
  first.local_start = 0.0;
  first.rate = draw_rate();
  first.real_end = model_ == DriftModel::kPiecewiseRandom
                       ? rng_.exponential(segment_mean_)
                       : kTimeInfinity;
  segments_.push_back(first);
}

double LocalClock::draw_rate() {
  switch (model_) {
    case DriftModel::kNone:
      return 1.0;
    case DriftModel::kFixedRandomRate:
    case DriftModel::kPiecewiseRandom:
      return rng_.uniform(bounds_.s_low, bounds_.s_high);
  }
  return 1.0;
}

void LocalClock::extend_to(SimTime real) {
  while (segments_.back().real_end < real) {
    const Segment& prev = segments_.back();
    Segment next;
    next.real_start = prev.real_end;
    next.local_start =
        prev.local_start + prev.rate * (prev.real_end - prev.real_start);
    next.rate = draw_rate();
    next.real_end = next.real_start + rng_.exponential(segment_mean_);
    segments_.push_back(next);
  }
}

double LocalClock::local_at(SimTime real) {
  ABE_CHECK_GE(real, 0.0);
  extend_to(real);
  // Binary search for the covering segment (queries are mostly at the end,
  // so check the last segment first).
  const Segment& last = segments_.back();
  if (real >= last.real_start) {
    return last.local_start + last.rate * (real - last.real_start);
  }
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), real,
      [](SimTime t, const Segment& s) { return t < s.real_start; });
  ABE_CHECK(it != segments_.begin());
  --it;
  return it->local_start + it->rate * (real - it->real_start);
}

SimTime LocalClock::real_at(double local) {
  ABE_CHECK_GE(local, 0.0);
  // Extend until the local reading at the last segment start exceeds local.
  // Rates are >= s_low > 0, so local time diverges and this terminates.
  while (true) {
    const Segment& last = segments_.back();
    if (last.real_end == kTimeInfinity) break;
    const double local_end =
        last.local_start + last.rate * (last.real_end - last.real_start);
    if (local_end >= local) break;
    extend_to(last.real_end + 1e-12);
  }
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), local,
      [](double l, const Segment& s) { return l < s.local_start; });
  ABE_CHECK(it != segments_.begin());
  --it;
  return it->real_start + (local - it->local_start) / it->rate;
}

double LocalClock::rate_at(SimTime real) {
  ABE_CHECK_GE(real, 0.0);
  extend_to(real);
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), real,
      [](SimTime t, const Segment& s) { return t < s.real_start; });
  ABE_CHECK(it != segments_.begin());
  --it;
  return it->rate;
}

}  // namespace abe
