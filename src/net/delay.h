// Message-delay models.
//
// The defining feature of the ABE model (Definition 1.1) is that only a
// bound on the *expected* delay is known. Every model here therefore exposes
// `mean_delay()` — the value an ABE algorithm is allowed to know — while the
// actual samples may be unbounded (exponential, Lomax, geometric
// retransmission). FixedDelay recovers the classic ABD model as the special
// case where the bound holds surely, and zero-variance.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace abe {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  // Draws one delay (>= 0, time units).
  virtual double sample(Rng& rng) const = 0;

  // Exact expected delay of this model; the ABE bound δ must be >= this.
  virtual double mean_delay() const = 0;

  // True when samples are bounded above (ABD-compatible models).
  virtual bool bounded() const { return false; }

  // Least upper bound on samples when bounded() is true; +inf otherwise.
  virtual double worst_case() const;

  virtual std::string name() const = 0;
};

using DelayModelPtr = std::shared_ptr<const DelayModel>;

// Deterministic delay d — the ABD special case.
DelayModelPtr fixed_delay(double d);

// Uniform in [lo, hi]; bounded, mean (lo+hi)/2.
DelayModelPtr uniform_delay(double lo, double hi);

// Exponential with the given mean; unbounded, memoryless. The canonical ABE
// delay: every positive delay has nonzero density.
DelayModelPtr exponential_delay(double mean);

// offset + Exponential(mean_extra): a minimum wire latency plus queueing.
DelayModelPtr shifted_exponential_delay(double offset, double mean_extra);

// Erlang-k with total mean `mean_total` (sum of k exponentials): models a
// route of k store-and-forward hops.
DelayModelPtr erlang_delay(unsigned k, double mean_total);

// Lossy-channel retransmission (paper Sec. 1, case iii): each attempt takes
// `slot` time and succeeds with probability p; delay = attempts * slot.
// Unbounded; mean slot/p — the k_avg = 1/p law.
DelayModelPtr geometric_retransmission_delay(double p, double slot = 1.0);

// Heavy-tailed Lomax/Pareto-II with shape alpha > 1, parameterised directly
// by its mean. Finite expectation, infinite variance when alpha <= 2: the
// harshest distribution still admissible in an ABE network.
DelayModelPtr lomax_delay(double alpha, double mean);

// Two-point mixture: `fast` with prob 1-p_slow, `slow` with prob p_slow.
// Bounded; models a network with an occasional congested path.
DelayModelPtr bimodal_delay(double fast, double slow, double p_slow);

// Weibull with shape k > 0, parameterised by its mean. k < 1 gives a
// heavier-than-exponential tail (common fit for wireless retry delays),
// k > 1 a lighter one.
DelayModelPtr weibull_delay(double shape, double mean);

// Log-normal parameterised by its mean and the sigma of the underlying
// normal; the classic fit for internet RTTs.
DelayModelPtr lognormal_delay(double mean, double sigma);

// Hyperexponential H2: exponential(mean_fast) w.p. 1-p_slow, else
// exponential(mean_slow). High-variance mixture of two service regimes.
DelayModelPtr hyperexponential_delay(double mean_fast, double mean_slow,
                                     double p_slow);

// Factory by name, normalised so mean_delay() == mean:
//   fixed | uniform | exponential | shifted | erlang | georetx | lomax |
//   bimodal
// Unknown names abort. Used by example CLIs and bench sweeps.
DelayModelPtr make_delay_model(const std::string& name, double mean);

// Names accepted by make_delay_model, for iteration in sweeps.
const std::vector<std::string>& standard_delay_model_names();

// An adversary choosing per-message delays, subject to the ABE contract:
// the empirical mean delay of every channel must stay <= bound(). Unlike
// DelayModel (an i.i.d. distribution sampled per message), a policy is
// stateful and edge-aware — it may bank delay budget on a channel by
// delivering fast, then spend it in one targeted stall — which is exactly
// the worst case the ABE model admits (Definition 1 bounds only the
// EXPECTED delay, not any individual delay).
//
// Implementations live in src/adversary/delay_policy.h and MUST be built
// through make_bounded_adversary there, which wraps every schedule in the
// per-channel accounting that enforces the bound at runtime (abe_lint's
// adversary-delay rule rejects direct DelayModel construction in
// src/adversary/). next_delay is called concurrently from node threads on
// the thread runtime, so implementations guard their state (AnnotatedMutex
// + GUARDED_BY).
class AdversarialDelayPolicy {
 public:
  virtual ~AdversarialDelayPolicy() = default;

  // The delay (>= 0) for the next message on channel from -> to. Stateful:
  // each call advances the per-channel schedule.
  virtual double next_delay(std::size_t from, std::size_t to) = 0;

  // The ABE expected-delay bound the policy promises to respect.
  virtual double bound() const = 0;

  virtual std::string name() const = 0;
};

using AdversaryPolicyPtr = std::shared_ptr<AdversarialDelayPolicy>;

}  // namespace abe
