#include "net/delay.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"

namespace abe {

double DelayModel::worst_case() const {
  return bounded() ? mean_delay() : std::numeric_limits<double>::infinity();
}

namespace {

class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(double d) : d_(d) { ABE_CHECK_GE(d, 0.0); }
  double sample(Rng&) const override { return d_; }
  double mean_delay() const override { return d_; }
  bool bounded() const override { return true; }
  double worst_case() const override { return d_; }
  std::string name() const override { return "fixed"; }

 private:
  double d_;
};

class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double lo, double hi) : lo_(lo), hi_(hi) {
    ABE_CHECK_GE(lo, 0.0);
    ABE_CHECK_GE(hi, lo);
  }
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean_delay() const override { return (lo_ + hi_) / 2.0; }
  bool bounded() const override { return true; }
  double worst_case() const override { return hi_; }
  std::string name() const override { return "uniform"; }

 private:
  double lo_, hi_;
};

class ExponentialDelay final : public DelayModel {
 public:
  explicit ExponentialDelay(double mean) : mean_(mean) {
    ABE_CHECK_GT(mean, 0.0);
  }
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean_delay() const override { return mean_; }
  std::string name() const override { return "exponential"; }

 private:
  double mean_;
};

class ShiftedExponentialDelay final : public DelayModel {
 public:
  ShiftedExponentialDelay(double offset, double mean_extra)
      : offset_(offset), mean_extra_(mean_extra) {
    ABE_CHECK_GE(offset, 0.0);
    ABE_CHECK_GT(mean_extra, 0.0);
  }
  double sample(Rng& rng) const override {
    return offset_ + rng.exponential(mean_extra_);
  }
  double mean_delay() const override { return offset_ + mean_extra_; }
  std::string name() const override { return "shifted"; }

 private:
  double offset_, mean_extra_;
};

class ErlangDelay final : public DelayModel {
 public:
  ErlangDelay(unsigned k, double mean_total) : k_(k), mean_total_(mean_total) {
    ABE_CHECK_GT(k, 0u);
    ABE_CHECK_GT(mean_total, 0.0);
  }
  double sample(Rng& rng) const override {
    return rng.erlang(k_, mean_total_ / k_);
  }
  double mean_delay() const override { return mean_total_; }
  std::string name() const override { return "erlang"; }

 private:
  unsigned k_;
  double mean_total_;
};

class GeometricRetransmissionDelay final : public DelayModel {
 public:
  GeometricRetransmissionDelay(double p, double slot) : p_(p), slot_(slot) {
    ABE_CHECK_GT(p, 0.0);
    ABE_CHECK_LE(p, 1.0);
    ABE_CHECK_GT(slot, 0.0);
  }
  double sample(Rng& rng) const override {
    // attempts = failures + 1; each attempt occupies one slot.
    const double attempts =
        static_cast<double>(rng.geometric_failures(p_) + 1);
    return attempts * slot_;
  }
  double mean_delay() const override { return slot_ / p_; }
  std::string name() const override { return "georetx"; }

 private:
  double p_, slot_;
};

class LomaxDelay final : public DelayModel {
 public:
  LomaxDelay(double alpha, double mean) : alpha_(alpha), mean_(mean) {
    ABE_CHECK_GT(alpha, 1.0);
    ABE_CHECK_GT(mean, 0.0);
    lambda_ = mean * (alpha - 1.0);
  }
  double sample(Rng& rng) const override { return rng.lomax(alpha_, lambda_); }
  double mean_delay() const override { return mean_; }
  std::string name() const override { return "lomax"; }

 private:
  double alpha_, mean_, lambda_;
};

class BimodalDelay final : public DelayModel {
 public:
  BimodalDelay(double fast, double slow, double p_slow)
      : fast_(fast), slow_(slow), p_slow_(p_slow) {
    ABE_CHECK_GE(fast, 0.0);
    ABE_CHECK_GE(slow, fast);
    ABE_CHECK_GE(p_slow, 0.0);
    ABE_CHECK_LE(p_slow, 1.0);
  }
  double sample(Rng& rng) const override {
    return rng.bernoulli(p_slow_) ? slow_ : fast_;
  }
  double mean_delay() const override {
    return fast_ * (1.0 - p_slow_) + slow_ * p_slow_;
  }
  bool bounded() const override { return true; }
  double worst_case() const override { return slow_; }
  std::string name() const override { return "bimodal"; }

 private:
  double fast_, slow_, p_slow_;
};

class WeibullDelay final : public DelayModel {
 public:
  WeibullDelay(double shape, double mean) : shape_(shape), mean_(mean) {
    ABE_CHECK_GT(shape, 0.0);
    ABE_CHECK_GT(mean, 0.0);
    // mean = lambda * Gamma(1 + 1/k)  =>  lambda = mean / Gamma(1 + 1/k).
    lambda_ = mean / std::tgamma(1.0 + 1.0 / shape);
  }
  double sample(Rng& rng) const override {
    // Inverse transform: lambda * (-ln(1-u))^(1/k).
    double u = rng.uniform01();
    return lambda_ * std::pow(-std::log1p(-u), 1.0 / shape_);
  }
  double mean_delay() const override { return mean_; }
  std::string name() const override { return "weibull"; }

 private:
  double shape_, mean_, lambda_;
};

class LognormalDelay final : public DelayModel {
 public:
  LognormalDelay(double mean, double sigma) : mean_(mean), sigma_(sigma) {
    ABE_CHECK_GT(mean, 0.0);
    ABE_CHECK_GT(sigma, 0.0);
    // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    mu_ = std::log(mean) - sigma * sigma / 2.0;
  }
  double sample(Rng& rng) const override {
    return std::exp(rng.normal(mu_, sigma_));
  }
  double mean_delay() const override { return mean_; }
  std::string name() const override { return "lognormal"; }

 private:
  double mean_, sigma_, mu_;
};

class HyperexponentialDelay final : public DelayModel {
 public:
  HyperexponentialDelay(double mean_fast, double mean_slow, double p_slow)
      : mean_fast_(mean_fast), mean_slow_(mean_slow), p_slow_(p_slow) {
    ABE_CHECK_GT(mean_fast, 0.0);
    ABE_CHECK_GE(mean_slow, mean_fast);
    ABE_CHECK_GE(p_slow, 0.0);
    ABE_CHECK_LE(p_slow, 1.0);
  }
  double sample(Rng& rng) const override {
    return rng.exponential(rng.bernoulli(p_slow_) ? mean_slow_ : mean_fast_);
  }
  double mean_delay() const override {
    return (1.0 - p_slow_) * mean_fast_ + p_slow_ * mean_slow_;
  }
  std::string name() const override { return "hyperexp"; }

 private:
  double mean_fast_, mean_slow_, p_slow_;
};

}  // namespace

DelayModelPtr fixed_delay(double d) {
  return std::make_shared<FixedDelay>(d);
}
DelayModelPtr uniform_delay(double lo, double hi) {
  return std::make_shared<UniformDelay>(lo, hi);
}
DelayModelPtr exponential_delay(double mean) {
  return std::make_shared<ExponentialDelay>(mean);
}
DelayModelPtr shifted_exponential_delay(double offset, double mean_extra) {
  return std::make_shared<ShiftedExponentialDelay>(offset, mean_extra);
}
DelayModelPtr erlang_delay(unsigned k, double mean_total) {
  return std::make_shared<ErlangDelay>(k, mean_total);
}
DelayModelPtr geometric_retransmission_delay(double p, double slot) {
  return std::make_shared<GeometricRetransmissionDelay>(p, slot);
}
DelayModelPtr lomax_delay(double alpha, double mean) {
  return std::make_shared<LomaxDelay>(alpha, mean);
}
DelayModelPtr bimodal_delay(double fast, double slow, double p_slow) {
  return std::make_shared<BimodalDelay>(fast, slow, p_slow);
}
DelayModelPtr weibull_delay(double shape, double mean) {
  return std::make_shared<WeibullDelay>(shape, mean);
}
DelayModelPtr lognormal_delay(double mean, double sigma) {
  return std::make_shared<LognormalDelay>(mean, sigma);
}
DelayModelPtr hyperexponential_delay(double mean_fast, double mean_slow,
                                     double p_slow) {
  return std::make_shared<HyperexponentialDelay>(mean_fast, mean_slow,
                                                 p_slow);
}

DelayModelPtr make_delay_model(const std::string& name, double mean) {
  ABE_CHECK_GT(mean, 0.0);
  if (name == "fixed") return fixed_delay(mean);
  if (name == "uniform") return uniform_delay(0.0, 2.0 * mean);
  if (name == "exponential") return exponential_delay(mean);
  if (name == "shifted") {
    return shifted_exponential_delay(mean / 2.0, mean / 2.0);
  }
  if (name == "erlang") return erlang_delay(4, mean);
  if (name == "georetx") {
    // Success probability 0.5 per slot; slot sized so the mean comes out.
    return geometric_retransmission_delay(0.5, mean * 0.5);
  }
  if (name == "lomax") return lomax_delay(2.5, mean);
  if (name == "bimodal") {
    // 10% of messages take 10x the fast path: fast + p*slow == mean.
    const double fast = mean / 1.9;
    return bimodal_delay(fast, 10.0 * fast, 0.1);
  }
  if (name == "weibull") return weibull_delay(0.7, mean);  // heavy-ish tail
  if (name == "lognormal") return lognormal_delay(mean, 1.0);
  if (name == "hyperexp") {
    // 10% of messages hit a path ~7x slower: 0.9*f + 0.1*7f = 1.6f = mean.
    const double fast = mean / 1.6;
    return hyperexponential_delay(fast, 7.0 * fast, 0.1);
  }
  ABE_CHECK(false) << "unknown delay model '" << name << "'";
  return nullptr;
}

const std::vector<std::string>& standard_delay_model_names() {
  static const std::vector<std::string> kNames = {
      "fixed",  "uniform", "exponential", "shifted",    "erlang",
      "georetx", "lomax",  "bimodal",     "weibull",    "lognormal",
      "hyperexp"};
  return kNames;
}

}  // namespace abe
