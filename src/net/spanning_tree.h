// BFS spanning trees — substrate for the β-synchronizer.
//
// The β-synchronizer coordinates rounds by convergecast/broadcast along a
// spanning tree of the communication graph. The tree is computed offline
// from the topology (synchronizers are infrastructure, not anonymous
// algorithms, so global structure is fair game); the runtime protocol then
// only uses local channel indices derived from it.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.h"

namespace abe {

struct SpanningTree {
  std::size_t root = 0;
  // parent[i] = parent node of i (root points at itself).
  std::vector<std::size_t> parent;
  // children[i] = child nodes of i.
  std::vector<std::vector<std::size_t>> children;
  // depth[i] = hops from the root.
  std::vector<std::size_t> depth;

  std::size_t height() const;
  std::size_t edge_count() const { return parent.empty() ? 0 : parent.size() - 1; }
};

// Builds a BFS tree over the topology's directed edges, requiring that the
// reverse edge exists for every tree edge (the β protocol talks both ways).
// Aborts when the graph is not strongly connected or a needed reverse edge
// is missing.
SpanningTree bfs_spanning_tree(const Topology& topology, std::size_t root);

// For each node, the out-channel index (into out_adjacency order) leading
// to a given neighbour; SIZE_MAX when there is no such channel. Helper for
// wiring tree/ack routes.
std::vector<std::vector<std::size_t>> out_channel_to_neighbor(
    const Topology& topology);

}  // namespace abe
