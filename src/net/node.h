// Node and Context: the runtime-agnostic algorithm interface.
//
// Algorithms (the ABE election, baselines, synchronizers) implement Node and
// interact with the world only through Context. Two runtimes provide
// Context: the discrete-event simulator (net/network.h) and the real-thread
// runtime (runtime/thread_net.h), so the same algorithm object runs on both.
// The `Runtime` contract (runtime/runtime.h) unifies the two behind one
// lifecycle — algorithms packaged as AlgorithmDrivers execute on either
// substrate, and the scenario engine sweeps them across both.
//
// Anonymity: a node never learns a global identifier through this interface —
// it sees only its local in/out channel indices — matching the anonymous-ring
// setting of the paper. (Context::self() exists for instrumentation and
// tracing; algorithm code in src/core and src/algo must not branch on it.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/message.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "util/ids.h"

namespace abe {

class Context {
 public:
  virtual ~Context() = default;

  // --- identity & shape -----------------------------------------------
  // Instrumentation-only identity (see header comment).
  virtual NodeId self() const = 0;
  // Number of outgoing / incoming channels of this node.
  virtual std::size_t out_degree() const = 0;
  virtual std::size_t in_degree() const = 0;
  // Network size n; the paper's election assumes n is known to all nodes.
  virtual std::size_t network_size() const = 0;

  // --- communication ----------------------------------------------------
  // Sends `payload` on the out-channel with local index `out_index`.
  virtual void send(std::size_t out_index, PayloadPtr payload) = 0;

  // --- time ---------------------------------------------------------------
  // Reading of this node's local (drifting) clock.
  virtual double local_now() = 0;
  // Global simulated/wall time. For metrics and traces only; algorithm logic
  // must not read it (real distributed nodes have no global clock).
  virtual SimTime real_now() const = 0;

  // One-shot timer after `local_delay` on this node's local clock; fires
  // Node::on_timer with `tag`. Returns a cancellable handle.
  virtual TimerId set_timer_local(double local_delay, std::uint64_t tag) = 0;
  virtual bool cancel_timer(TimerId id) = 0;

  // --- randomness & observability ------------------------------------
  // This node's private random stream.
  virtual Rng& rng() = 0;
  // Appends a custom trace event attributed to this node.
  virtual void log(const std::string& detail) = 0;
};

class Node {
 public:
  virtual ~Node() = default;

  // Called once at time 0 before any message/tick.
  virtual void on_start(Context&) {}

  // A payload arrived on in-channel `in_index`.
  virtual void on_message(Context& ctx, std::size_t in_index,
                          const Payload& payload) = 0;

  // Local-clock tick number `tick` (ticks are enabled per-network; the ABE
  // election acts on these).
  virtual void on_tick(Context&, std::uint64_t /*tick*/) {}

  // A timer set via Context::set_timer_local fired.
  virtual void on_timer(Context&, TimerId, std::uint64_t /*tag*/) {}

  // Diagnostic name of the node's current state ("idle", "leader", …).
  virtual std::string state_string() const { return ""; }

  // True when this node has reached a terminal state; runtimes may use this
  // to stop tick generation for the node.
  virtual bool is_terminated() const { return false; }

  // The algorithm node answering result-extraction queries. Decorators that
  // wrap an algorithm node (adversary/faulty_node.h) forward this to the
  // wrapped node, so drivers can downcast rt.node(i).algorithm_node() to the
  // concrete algorithm type without knowing whether a fault profile is
  // interposed. Plain algorithm nodes are their own algorithm_node.
  virtual Node& algorithm_node() { return *this; }
  virtual const Node& algorithm_node() const { return *this; }
};

using NodePtr = std::unique_ptr<Node>;

}  // namespace abe
