// Stop-and-wait ARQ over a lossy link — the substrate behind the paper's
// case (iii) motivation.
//
// The paper argues that a physical channel with per-attempt success
// probability p forces retransmission, making the delay unbounded while its
// expectation stays 1/p transmissions. This module builds that mechanism
// explicitly: a sender retransmits on a timeout until the (lossy) channel
// delivers, the receiver acks, and both sides count attempts. Benches
// compare the measured attempt count and latency against the closed forms
// in core/analysis.h.
//
// Topology contract: node 0 (ArqSender) and node 1 (ArqReceiver) on a
// bidirectional 2-node line; the data direction may drop, the ack direction
// is configured by the caller (typically lossless).
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "obs/metrics.h"
#include "stats/summary.h"

namespace abe {

// Payload carrying a sequence number; used for both DATA and ACK.
class ArqPayload final : public Payload {
 public:
  enum class Kind : std::uint8_t { kData, kAck };
  ArqPayload(Kind kind, std::uint64_t seq) : kind_(kind), seq_(seq) {}
  Kind kind() const { return kind_; }
  std::uint64_t seq() const { return seq_; }
  std::unique_ptr<Payload> clone() const override {
    return std::make_unique<ArqPayload>(kind_, seq_);
  }
  std::string describe() const override;

 private:
  Kind kind_;
  std::uint64_t seq_;
};

// Sends `total_packets` packets with stop-and-wait: transmit, arm a timeout,
// retransmit until the matching ack arrives.
class ArqSender final : public Node {
 public:
  // `timeout_local` is the retransmission timeout in local-clock units.
  ArqSender(std::uint64_t total_packets, double timeout_local);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;
  void on_timer(Context& ctx, TimerId id, std::uint64_t tag) override;

  std::string state_string() const override;
  bool is_terminated() const override { return done_; }

  // --- measurements -----------------------------------------------------
  // Transmission attempts per acknowledged packet.
  const Summary& attempts_per_packet() const { return attempts_; }
  // Real time from first transmission to ack, per packet.
  const Summary& latency_per_packet() const { return latency_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  // Timeout-driven retransmissions (attempts beyond the first per packet).
  std::uint64_t retransmissions() const { return retransmissions_; }
  // ACK payloads that reached the sender, stale ones included.
  std::uint64_t acks_received() const { return acks_received_; }

  // Optional obs wiring: registers an "arq.rtt" histogram (first-send →
  // ack round trip, geometric buckets around `slot`) in `registry` and
  // records into it on every acknowledged packet. Call before start().
  void bind_metrics(MetricsRegistry& registry, double slot);

 private:
  void transmit(Context& ctx);

  std::uint64_t total_packets_;
  double timeout_local_;
  std::uint64_t seq_ = 0;
  std::uint64_t attempts_current_ = 0;
  double first_send_time_ = 0.0;
  TimerId pending_timer_{};
  bool waiting_ = false;
  bool done_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_received_ = 0;
  FixedHistogram* rtt_hist_ = nullptr;  // null unless bind_metrics() ran
  Summary attempts_;
  Summary latency_;
};

// Acks every DATA packet; counts duplicates (retransmissions of packets whose
// ack was lost or late).
class ArqReceiver final : public Node {
 public:
  void on_message(Context& ctx, std::size_t in_index,
                  const Payload& payload) override;
  std::string state_string() const override { return "receiver"; }

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  std::uint64_t next_expected_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
};

// Result of one ARQ experiment run (see run_arq_experiment).
struct ArqResult {
  double mean_attempts = 0.0;      // measured k_avg
  double mean_latency = 0.0;       // measured per-packet delay
  std::uint64_t packets = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t retransmits = 0;
  double predicted_attempts = 0.0;  // closed form 1/p
  // arq.retransmits / arq.acks / arq.duplicates / arq.delivered counters
  // plus the arq.rtt round-trip histogram (obs/metrics.h).
  MetricsSnapshot metrics;
};

// Convenience harness: drives `packets` packets over a link that drops DATA
// with probability (1 - p_success); acks are lossless. `slot` is both the
// fixed one-way link delay and the retransmission timeout granularity.
ArqResult run_arq_experiment(double p_success, std::uint64_t packets,
                             double slot, std::uint64_t seed);

}  // namespace abe
