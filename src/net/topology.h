// Topology builders and graph helpers.
//
// The paper's election runs on unidirectional rings; synchronizers and the
// broader substrate run on arbitrary strongly-connected digraphs. Edges are
// directed; bidirectional topologies emit both directions explicitly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace abe {

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
};

struct Topology {
  std::size_t n = 0;
  std::vector<Edge> edges;  // directed
  std::string name;

  std::size_t edge_count() const { return edges.size(); }
};

// n >= 1 nodes; node i sends to (i+1) mod n. The paper's setting.
Topology unidirectional_ring(std::size_t n);

// Both directions of each ring edge.
Topology bidirectional_ring(std::size_t n);

// Path 0–1–…–(n−1), both directions per hop.
Topology line(std::size_t n);

// Node 0 is the hub; spokes in both directions.
Topology star(std::size_t n);

// Every ordered pair (i, j), i != j.
Topology complete(std::size_t n);

// rows×cols grid, 4-neighbourhood, both directions.
Topology grid(std::size_t rows, std::size_t cols);

// rows×cols torus (grid with wraparound), both directions.
Topology torus(std::size_t rows, std::size_t cols);

// 2^dim nodes; edge per differing bit, both directions.
Topology hypercube(std::size_t dim);

// Erdős–Rényi G(n, p) on undirected pairs (kept in both directions),
// resampled until strongly connected. Tiny-n clamping: for n <= 2 every
// possible edge is required for connectivity, so p is clamped to 1 before
// sampling; for larger n each failed attempt escalates p (×1.25 + 0.01) so
// sparse requests still terminate. The returned graph is always strongly
// connected (asserted) and deterministic given `rng` — our own xoshiro Rng,
// so identical across platforms and standard libraries.
Topology random_connected(std::size_t n, double p, Rng& rng);

// Random geometric graph: n nodes at uniform positions in the unit square,
// connected (both directions) when within `radius` — the standard model of
// the ad-hoc/sensor networks the paper motivates ABE with. The radius is
// grown (×1.2 per attempt, from a starting value clamped into (0, √2]) until
// the graph is connected, so the returned topology is always strongly
// connected (asserted) — i.e. the *effective* radio range may exceed the
// request; √2 covers the whole unit square, where connectivity is immediate
// for every n (including the edgeless n = 1). Deterministic given `rng`
// across platforms. Node positions are returned via `positions` when
// non-null (x0,y0,x1,y1,… layout).
Topology random_geometric(std::size_t n, double radius, Rng& rng,
                          std::vector<double>* positions = nullptr);

// Out-channel lists: for each node, the indices into topology.edges of its
// outgoing edges, in edge order. in_adjacency is the analogue for incoming.
std::vector<std::vector<std::size_t>> out_adjacency(const Topology& t);
std::vector<std::vector<std::size_t>> in_adjacency(const Topology& t);

// Kosaraju-style check that every node reaches every other.
bool is_strongly_connected(const Topology& t);

// Longest shortest path (directed, unit weights). Requires strong
// connectivity.
std::size_t diameter(const Topology& t);

// Validates node indices and rejects self-loops; aborts on violation.
void validate_topology(const Topology& t);

}  // namespace abe
