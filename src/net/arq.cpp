#include "net/arq.h"

#include <sstream>

#include "net/network.h"
#include "net/topology.h"
#include "util/check.h"

namespace abe {

std::string ArqPayload::describe() const {
  std::ostringstream os;
  os << (kind_ == Kind::kData ? "DATA" : "ACK") << "(" << seq_ << ")";
  return os.str();
}

ArqSender::ArqSender(std::uint64_t total_packets, double timeout_local)
    : total_packets_(total_packets), timeout_local_(timeout_local) {
  ABE_CHECK_GT(total_packets, 0u);
  ABE_CHECK_GT(timeout_local, 0.0);
}

void ArqSender::on_start(Context& ctx) { transmit(ctx); }

void ArqSender::bind_metrics(MetricsRegistry& registry, double slot) {
  ABE_CHECK_GT(slot, 0.0);
  rtt_hist_ = &registry.histogram(
      "arq.rtt", FixedHistogram::log2_bounds(slot, /*below=*/2, /*above=*/6));
}

void ArqSender::transmit(Context& ctx) {
  if (attempts_current_ == 0) {
    first_send_time_ = ctx.real_now();
  } else {
    ++retransmissions_;
  }
  ++attempts_current_;
  ctx.send(0, std::make_unique<ArqPayload>(ArqPayload::Kind::kData, seq_));
  pending_timer_ = ctx.set_timer_local(timeout_local_, seq_);
  waiting_ = true;
}

void ArqSender::on_message(Context& ctx, std::size_t /*in_index*/,
                           const Payload& payload) {
  const auto& ack = payload_as<ArqPayload>(payload);
  ABE_CHECK(ack.kind() == ArqPayload::Kind::kAck);
  ++acks_received_;
  if (!waiting_ || ack.seq() != seq_) {
    return;  // stale ack of an earlier (retransmitted) packet
  }
  waiting_ = false;
  ctx.cancel_timer(pending_timer_);
  attempts_.add(static_cast<double>(attempts_current_));
  const double rtt = ctx.real_now() - first_send_time_;
  latency_.add(rtt);
  if (rtt_hist_ != nullptr) rtt_hist_->record(rtt);
  ++delivered_;
  attempts_current_ = 0;
  ++seq_;
  if (seq_ >= total_packets_) {
    done_ = true;
  } else {
    transmit(ctx);
  }
}

void ArqSender::on_timer(Context& ctx, TimerId /*id*/, std::uint64_t tag) {
  if (done_ || !waiting_ || tag != seq_) {
    return;  // timer raced with the ack that completed this packet
  }
  transmit(ctx);
}

std::string ArqSender::state_string() const {
  std::ostringstream os;
  os << "sender seq=" << seq_ << "/" << total_packets_
     << (done_ ? " done" : waiting_ ? " waiting" : "");
  return os.str();
}

void ArqReceiver::on_message(Context& ctx, std::size_t /*in_index*/,
                             const Payload& payload) {
  const auto& data = payload_as<ArqPayload>(payload);
  ABE_CHECK(data.kind() == ArqPayload::Kind::kData);
  if (data.seq() == next_expected_) {
    ++received_;
    ++next_expected_;
  } else {
    ++duplicates_;
  }
  // Ack unconditionally: the previous ack may have been delayed past the
  // sender's timeout.
  ctx.send(0,
           std::make_unique<ArqPayload>(ArqPayload::Kind::kAck, data.seq()));
}

ArqResult run_arq_experiment(double p_success, std::uint64_t packets,
                             double slot, std::uint64_t seed) {
  ABE_CHECK_GT(p_success, 0.0);
  ABE_CHECK_LE(p_success, 1.0);
  NetworkConfig config;
  config.topology = line(2);  // edges: 0->1 (data), 1->0 (ack)
  config.delay = fixed_delay(slot / 2.0);  // one-way; round trip = slot
  config.ordering = ChannelOrdering::kFifo;
  config.seed = seed;
  Network net(std::move(config));
  // DATA direction drops with probability 1 - p; ACK direction is clean.
  // line(2) emits edges in order {0->1, 1->0}.
  net.set_channel_loss(0, 1.0 - p_success >= 1.0 ? 0.999999 : 1.0 - p_success);

  // Timeout slightly above the round trip so a lone loss retransmits after
  // exactly one wasted slot — matching the slotted model of the paper.
  auto* sender = new ArqSender(packets, slot * 1.05);
  auto* receiver = new ArqReceiver();
  MetricsRegistry registry;
  sender->bind_metrics(registry, slot);
  net.add_node(NodePtr(sender));
  net.add_node(NodePtr(receiver));
  net.start();
  const bool finished = net.run_until(
      [&] { return sender->is_terminated(); },
      /*deadline=*/1e9);
  ABE_CHECK(finished) << "ARQ run did not complete (p=" << p_success << ")";

  ArqResult result;
  result.mean_attempts = sender->attempts_per_packet().mean();
  result.mean_latency = sender->latency_per_packet().mean();
  result.packets = sender->packets_delivered();
  result.duplicates = receiver->duplicates();
  result.retransmits = sender->retransmissions();
  result.predicted_attempts = 1.0 / p_success;
  result.metrics = registry.snapshot();
  result.metrics.add_counter("arq.retransmits",
                             static_cast<double>(sender->retransmissions()));
  result.metrics.add_counter("arq.acks",
                             static_cast<double>(sender->acks_received()));
  result.metrics.add_counter("arq.duplicates",
                             static_cast<double>(receiver->duplicates()));
  result.metrics.add_counter("arq.delivered",
                             static_cast<double>(sender->packets_delivered()));
  return result;
}

}  // namespace abe
