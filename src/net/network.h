// The discrete-event network runtime implementing the ABE model.
//
// A Network instance owns the scheduler, per-node drifting clocks, channels
// with stochastic delay, the per-event processing-delay model, and metrics.
// It implements Definition 1 of the paper directly:
//   (1) channel delays come from a DelayModel whose mean is known (δ);
//   (2) each node's clock rate stays within [s_low, s_high];
//   (3) handling a delivered message occupies the node for a random
//       processing time with known expected bound (γ).
// Setting a FixedDelay model, ideal clocks, and zero processing recovers the
// classic ABD model; an exponential/Lomax delay gives a genuine ABE network
// where no worst-case delay bound exists.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "clock/local_clock.h"
#include "net/delay.h"
#include "net/node.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/equeue/backend.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace abe {

// Delivery order within one channel.
enum class ChannelOrdering : std::uint8_t {
  kFifo,       // messages arrive in send order
  kArbitrary,  // independent delays; messages may overtake (paper's setting)
};

const char* channel_ordering_name(ChannelOrdering o);

// Initial phase of each node's tick train (see NetworkConfig::tick_phase).
enum class TickPhase : std::uint8_t {
  kRandomPerNode,  // phase ~ U[0, tick_local_period) per node (asynchronous)
  kAligned,        // phase 0 everywhere (lockstep when clocks are ideal)
};

const char* tick_phase_name(TickPhase p);

// Definition 1(3): time a node is busy handling one delivered message.
struct ProcessingModel {
  enum class Kind : std::uint8_t { kZero, kFixed, kExponential };
  Kind kind = Kind::kZero;
  double mean = 0.0;

  double sample(Rng& rng) const;

  static ProcessingModel zero() { return {Kind::kZero, 0.0}; }
  static ProcessingModel fixed(double t) { return {Kind::kFixed, t}; }
  static ProcessingModel exponential(double mean) {
    return {Kind::kExponential, mean};
  }
};

struct NetworkConfig {
  Topology topology;
  // Delay model applied to every channel (per-channel overrides below).
  DelayModelPtr delay;
  // When set, every message's delay is chosen by the adversary instead of
  // sampled from `delay` (net/delay.h; build via make_bounded_adversary so
  // the ABE per-channel mean bound is enforced). nullptr keeps the honest
  // sampling path untouched — no extra RNG draws, bit-identical runs.
  AdversaryPolicyPtr adversary_delay;
  ChannelOrdering ordering = ChannelOrdering::kArbitrary;
  // Clock model (Definition 1(2)).
  ClockBounds clock_bounds{};
  DriftModel drift = DriftModel::kNone;
  double clock_segment_mean = 10.0;
  // Processing model (Definition 1(3)).
  ProcessingModel processing = ProcessingModel::zero();
  // Tick generation: when enabled, Node::on_tick fires once per
  // `tick_local_period` of the node's local clock, at local times
  // phase + k·tick_local_period.
  bool enable_ticks = false;
  double tick_local_period = 1.0;
  // Nodes in an asynchronous network share no time origin, so by default
  // every node draws its tick phase uniformly in [0, tick_local_period).
  // kAligned pins all phases to 0: with ideal clocks every node then ticks
  // at the very same instants — a degenerate lockstep regime the ABE model
  // never promises. Under a fixed (ABD) delay that regime makes symmetric
  // election rounds self-repeat (simultaneous activations knock each other
  // out over and over), which is why kRandomPerNode is the default; keep
  // kAligned only for tests that pin exact tick times.
  TickPhase tick_phase = TickPhase::kRandomPerNode;
  // Per-attempt silent drop probability (for the lossy-link/ARQ substrate;
  // plain ABE networks keep this at 0 — the model requires delivery).
  double loss_probability = 0.0;
  // Root seed; all stochastic behaviour derives from it.
  std::uint64_t seed = 1;
  // Event-queue backend for the scheduler (sim/equeue/backend.h). A pure
  // performance knob: every backend pops in the identical order, so seeded
  // runs are bit-identical across backends. ABE_EQUEUE overrides.
  EqueueBackend equeue = EqueueBackend::kAuto;
  // Extended observability (obs/metrics.h): per-channel deliver/drop
  // vectors and a sampled channel-delay histogram, harvested by
  // metrics_snapshot(). Off by default; recording consumes no randomness
  // and reorders nothing, so enabling it cannot change any aggregate.
  bool metrics = false;
  // Causal-history mode: widen the flight-recorder ring to full capacity
  // WITHOUT enabling detail strings, so cause chains (obs/causal.h) reach
  // back to their roots while records stay allocation-free. Like `metrics`,
  // this draws no randomness and reorders nothing.
  bool causal_history = false;
  // Time-series telemetry (obs/timeseries.h): sample load gauges every this
  // many units of SIM time during run_until(). 0 disables (the default).
  double timeseries_interval = 0.0;
};

struct NetworkMetrics {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t ticks_fired = 0;
  std::uint64_t timers_fired = 0;
  double total_channel_delay = 0.0;  // summed over delivered messages
  double max_channel_delay = 0.0;
  std::vector<std::uint64_t> sent_by_node;
  std::vector<std::uint64_t> sent_by_channel;

  std::uint64_t in_flight() const {
    return messages_sent - messages_delivered - messages_dropped;
  }
  double mean_channel_delay() const {
    return messages_delivered == 0
               ? 0.0
               : total_channel_delay / static_cast<double>(messages_delivered);
  }
};

class Network {
 public:
  explicit Network(NetworkConfig config);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- construction ---------------------------------------------------
  // Installs one node per topology slot, in index order.
  void add_node(NodePtr node);
  // Convenience: builds all n nodes from a factory.
  void build_nodes(const std::function<NodePtr(std::size_t)>& factory);
  // Overrides the delay model / loss probability of a single channel
  // (edge index into topology().edges). Must precede start().
  void set_channel_delay(std::size_t edge_index, DelayModelPtr delay);
  void set_channel_loss(std::size_t edge_index, double loss_probability);

  // Schedules on_start for every node (and first ticks). Requires exactly
  // topology.n nodes installed. Must be called exactly once.
  void start();

  // --- running ----------------------------------------------------------
  Scheduler& scheduler() { return scheduler_; }
  SimTime now() const { return scheduler_.now(); }

  // Runs until `pred()` holds (checked after every event), the scheduler
  // idles, or `deadline` passes. Returns true iff pred() held at exit.
  bool run_until(const std::function<bool()>& pred,
                 SimTime deadline = kTimeInfinity);

  // Runs until no events remain or `deadline` passes. With ticks enabled the
  // queue never drains, so a finite deadline is required then.
  void run_until_quiescent(SimTime deadline = kTimeInfinity);

  // --- introspection ----------------------------------------------------
  std::size_t size() const { return config_.topology.n; }
  Node& node(std::size_t i);
  const Node& node(std::size_t i) const;
  const Topology& topology() const { return config_.topology; }
  const NetworkConfig& config() const { return config_; }
  const NetworkMetrics& metrics() const { return metrics_; }
  LocalClock& clock(std::size_t i);
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  // Sampled load gauges (config.timeseries_interval > 0; empty otherwise).
  const TimeSeries& timeseries() const { return timeseries_; }

  // Extended observability, populated when config.metrics is on: delivered
  // and dropped counts per channel (edge index into topology().edges; empty
  // vectors when disabled). The seed-pinned lossy-ring regression in
  // tests/test_obs.cpp reads these directly.
  const std::vector<std::uint64_t>& delivered_by_channel() const {
    return delivered_by_channel_;
  }
  const std::vector<std::uint64_t>& dropped_by_channel() const {
    return dropped_by_channel_;
  }

  // Deterministic harvest of scheduler + network instruments, sorted by
  // metric name (obs/metrics.h). Always includes the always-on scalar
  // counters; the delay histogram and per-channel rollups appear only when
  // config.metrics is on.
  MetricsSnapshot metrics_snapshot() const;

  // The effective ABE parameter δ of this network: the max channel mean.
  double expected_delay_bound() const;

 private:
  class ContextImpl;
  struct ChannelState {
    DelayModelPtr delay;
    double loss_probability = 0.0;
    SimTime last_arrival = 0.0;  // FIFO floor
  };
  struct NodeSlot {
    NodePtr node;
    std::unique_ptr<ContextImpl> context;
    std::unique_ptr<LocalClock> clock;
    Rng rng;
    SimTime busy_until = 0.0;
    std::uint64_t ticks = 0;
    double tick_phase = 0.0;  // local-time offset of the tick train
    bool ticking = false;
  };

  void send_from(std::size_t node_index, std::size_t out_index,
                 PayloadPtr payload);
  void deliver(std::size_t edge_index, std::shared_ptr<const Payload> payload,
               SimTime sent_at, std::int64_t send_id);
  void schedule_next_tick(std::size_t node_index);
  void sample_timeseries();
  TimerId set_timer(std::size_t node_index, double local_delay,
                    std::uint64_t tag);
  bool cancel_timer_impl(TimerId id);

  NetworkConfig config_;
  Scheduler scheduler_;
  Rng root_rng_;
  Rng channel_rng_;
  Trace trace_;
  NetworkMetrics metrics_;
  // Extended observability state (config_.metrics only). The histogram
  // lives in the registry; the hot paths cache one raw pointer and pay a
  // single null test when metrics are off (the obs cost contract).
  MetricsRegistry registry_;
  FixedHistogram* delay_hist_ = nullptr;
  std::vector<std::uint64_t> delivered_by_channel_;
  std::vector<std::uint64_t> dropped_by_channel_;
  std::vector<NodeSlot> slots_;
  std::vector<ChannelState> channels_;
  std::vector<std::vector<std::size_t>> out_channels_;  // node -> edge indices
  std::vector<std::vector<std::size_t>> in_channels_;
  std::vector<std::size_t> in_index_of_edge_;  // edge -> receiver's in-index
  // Causality: the trace id of the event whose handler is currently running
  // (-1 between handlers / inside on_start). Every record made from inside a
  // handler — sends, drops, scheduled timer/tick fires — links back to it.
  std::int64_t current_cause_ = -1;
  // Time-series sampling state: next sim-time grid point to sample.
  TimeSeries timeseries_;
  SimTime next_sample_ = 0.0;
  bool started_ = false;
};

}  // namespace abe
