#include "net/topology.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/check.h"

namespace abe {

Topology unidirectional_ring(std::size_t n) {
  ABE_CHECK_GE(n, 1u);
  Topology t;
  t.n = n;
  t.name = "ring-uni";
  if (n == 1) return t;  // a single node has no channel to itself
  for (std::size_t i = 0; i < n; ++i) {
    t.edges.push_back(Edge{i, (i + 1) % n});
  }
  return t;
}

Topology bidirectional_ring(std::size_t n) {
  ABE_CHECK_GE(n, 1u);
  Topology t;
  t.n = n;
  t.name = "ring-bi";
  if (n == 1) return t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    t.edges.push_back(Edge{i, j});
    t.edges.push_back(Edge{j, i});
  }
  return t;
}

Topology line(std::size_t n) {
  ABE_CHECK_GE(n, 1u);
  Topology t;
  t.n = n;
  t.name = "line";
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.edges.push_back(Edge{i, i + 1});
    t.edges.push_back(Edge{i + 1, i});
  }
  return t;
}

Topology star(std::size_t n) {
  ABE_CHECK_GE(n, 1u);
  Topology t;
  t.n = n;
  t.name = "star";
  for (std::size_t i = 1; i < n; ++i) {
    t.edges.push_back(Edge{0, i});
    t.edges.push_back(Edge{i, 0});
  }
  return t;
}

Topology complete(std::size_t n) {
  ABE_CHECK_GE(n, 1u);
  Topology t;
  t.n = n;
  t.name = "complete";
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) t.edges.push_back(Edge{i, j});
    }
  }
  return t;
}

Topology grid(std::size_t rows, std::size_t cols) {
  ABE_CHECK_GE(rows, 1u);
  ABE_CHECK_GE(cols, 1u);
  Topology t;
  t.n = rows * cols;
  t.name = "grid";
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        t.edges.push_back(Edge{id(r, c), id(r, c + 1)});
        t.edges.push_back(Edge{id(r, c + 1), id(r, c)});
      }
      if (r + 1 < rows) {
        t.edges.push_back(Edge{id(r, c), id(r + 1, c)});
        t.edges.push_back(Edge{id(r + 1, c), id(r, c)});
      }
    }
  }
  return t;
}

Topology torus(std::size_t rows, std::size_t cols) {
  ABE_CHECK_GE(rows, 2u);
  ABE_CHECK_GE(cols, 2u);
  Topology t;
  t.n = rows * cols;
  t.name = "torus";
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  std::set<std::pair<std::size_t, std::size_t>> seen;
  auto add = [&](std::size_t a, std::size_t b) {
    if (a == b) return;  // 2x2 torus wraps onto the same neighbour
    if (seen.insert({a, b}).second) t.edges.push_back(Edge{a, b});
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      add(id(r, c), id(r, (c + 1) % cols));
      add(id(r, (c + 1) % cols), id(r, c));
      add(id(r, c), id((r + 1) % rows, c));
      add(id((r + 1) % rows, c), id(r, c));
    }
  }
  return t;
}

Topology hypercube(std::size_t dim) {
  ABE_CHECK_LE(dim, 20u);
  Topology t;
  t.n = std::size_t{1} << dim;
  t.name = "hypercube";
  for (std::size_t i = 0; i < t.n; ++i) {
    for (std::size_t b = 0; b < dim; ++b) {
      t.edges.push_back(Edge{i, i ^ (std::size_t{1} << b)});
    }
  }
  return t;
}

Topology random_connected(std::size_t n, double p, Rng& rng) {
  ABE_CHECK_GE(n, 1u);
  ABE_CHECK_GE(p, 0.0);
  ABE_CHECK_LE(p, 1.0);
  // Tiny-n clamp (see header): with n <= 2 the single possible undirected
  // edge is mandatory, so any p < 1 only burns resample attempts.
  if (n <= 2) p = 1.0;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Topology t;
    t.n = n;
    t.name = "gnp";
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(p)) {
          t.edges.push_back(Edge{i, j});
          t.edges.push_back(Edge{j, i});
        }
      }
    }
    if (is_strongly_connected(t)) return t;
    // Raise the density gradually so sparse requests still terminate.
    p = std::min(1.0, p * 1.25 + 0.01);
  }
  ABE_CHECK(false) << "could not draw a connected G(n,p) after many attempts";
  return Topology{};
}

Topology random_geometric(std::size_t n, double radius, Rng& rng,
                          std::vector<double>* positions) {
  ABE_CHECK_GE(n, 1u);
  ABE_CHECK_GT(radius, 0.0);
  // Clamp into (0, √2]: no two points in the unit square are further apart,
  // so larger requests are equivalent and the growth loop below reaches
  // full coverage (guaranteed connectivity, any n) within a few attempts
  // from any starting radius.
  const double kSqrt2 = 1.4142135623730951;
  radius = std::min(radius, kSqrt2);
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform01();
    ys[i] = rng.uniform01();
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    Topology t;
    t.n = n;
    t.name = "geometric";
    const double r2 = radius * radius;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = xs[i] - xs[j];
        const double dy = ys[i] - ys[j];
        if (dx * dx + dy * dy <= r2) {
          t.edges.push_back(Edge{i, j});
          t.edges.push_back(Edge{j, i});
        }
      }
    }
    if (is_strongly_connected(t)) {
      if (positions != nullptr) {
        positions->clear();
        for (std::size_t i = 0; i < n; ++i) {
          positions->push_back(xs[i]);
          positions->push_back(ys[i]);
        }
      }
      return t;
    }
    radius *= 1.2;  // grow the radio range until the field is connected
  }
  ABE_CHECK(false) << "could not connect geometric graph";
  return Topology{};
}

std::vector<std::vector<std::size_t>> out_adjacency(const Topology& t) {
  std::vector<std::vector<std::size_t>> adj(t.n);
  for (std::size_t e = 0; e < t.edges.size(); ++e) {
    adj[t.edges[e].from].push_back(e);
  }
  return adj;
}

std::vector<std::vector<std::size_t>> in_adjacency(const Topology& t) {
  std::vector<std::vector<std::size_t>> adj(t.n);
  for (std::size_t e = 0; e < t.edges.size(); ++e) {
    adj[t.edges[e].to].push_back(e);
  }
  return adj;
}

namespace {

// BFS reachability over directed edges (forward or reversed).
std::size_t reachable_count(const Topology& t, bool reversed) {
  if (t.n == 0) return 0;
  std::vector<std::vector<std::size_t>> nbr(t.n);
  for (const Edge& e : t.edges) {
    if (reversed) {
      nbr[e.to].push_back(e.from);
    } else {
      nbr[e.from].push_back(e.to);
    }
  }
  std::vector<char> seen(t.n, 0);
  std::deque<std::size_t> queue{0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t v : nbr[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count;
}

}  // namespace

bool is_strongly_connected(const Topology& t) {
  if (t.n <= 1) return true;
  return reachable_count(t, false) == t.n && reachable_count(t, true) == t.n;
}

std::size_t diameter(const Topology& t) {
  ABE_CHECK(is_strongly_connected(t));
  if (t.n <= 1) return 0;
  std::vector<std::vector<std::size_t>> nbr(t.n);
  for (const Edge& e : t.edges) nbr[e.from].push_back(e.to);
  std::size_t best = 0;
  for (std::size_t s = 0; s < t.n; ++s) {
    std::vector<std::size_t> dist(t.n, t.n + 1);
    std::deque<std::size_t> queue{s};
    dist[s] = 0;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (std::size_t v : nbr[u]) {
        if (dist[v] > dist[u] + 1) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    best = std::max(best, *std::max_element(dist.begin(), dist.end()));
  }
  return best;
}

void validate_topology(const Topology& t) {
  ABE_CHECK_GE(t.n, 1u);
  for (const Edge& e : t.edges) {
    ABE_CHECK_LT(e.from, t.n);
    ABE_CHECK_LT(e.to, t.n);
    ABE_CHECK_NE(e.from, e.to) << "self-loops are not supported";
  }
}

}  // namespace abe
