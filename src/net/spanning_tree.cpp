#include "net/spanning_tree.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"

namespace abe {

std::size_t SpanningTree::height() const {
  std::size_t h = 0;
  for (std::size_t d : depth) h = std::max(h, d);
  return h;
}

SpanningTree bfs_spanning_tree(const Topology& topology, std::size_t root) {
  validate_topology(topology);
  ABE_CHECK_LT(root, topology.n);
  ABE_CHECK(is_strongly_connected(topology))
      << "spanning tree needs a strongly connected graph";

  // Forward adjacency plus a reverse-edge existence set.
  std::vector<std::vector<std::size_t>> nbr(topology.n);
  std::vector<std::vector<char>> has_edge;  // dense for small n
  has_edge.assign(topology.n, std::vector<char>(topology.n, 0));
  for (const Edge& e : topology.edges) {
    nbr[e.from].push_back(e.to);
    has_edge[e.from][e.to] = 1;
  }

  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(topology.n, std::numeric_limits<std::size_t>::max());
  tree.children.assign(topology.n, {});
  tree.depth.assign(topology.n, 0);
  tree.parent[root] = root;

  std::deque<std::size_t> queue{root};
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (std::size_t v : nbr[u]) {
      if (tree.parent[v] != std::numeric_limits<std::size_t>::max()) {
        continue;
      }
      ABE_CHECK(has_edge[v][u])
          << "tree edge " << u << "->" << v
          << " lacks the reverse channel the β protocol needs";
      tree.parent[v] = u;
      tree.children[u].push_back(v);
      tree.depth[v] = tree.depth[u] + 1;
      queue.push_back(v);
    }
  }
  for (std::size_t v = 0; v < topology.n; ++v) {
    ABE_CHECK(tree.parent[v] != std::numeric_limits<std::size_t>::max())
        << "node " << v << " unreachable from root";
  }
  return tree;
}

std::vector<std::vector<std::size_t>> out_channel_to_neighbor(
    const Topology& topology) {
  const auto out = out_adjacency(topology);
  std::vector<std::vector<std::size_t>> map(
      topology.n,
      std::vector<std::size_t>(topology.n,
                               std::numeric_limits<std::size_t>::max()));
  for (std::size_t u = 0; u < topology.n; ++u) {
    for (std::size_t k = 0; k < out[u].size(); ++k) {
      map[u][topology.edges[out[u][k]].to] = k;
    }
  }
  return map;
}

}  // namespace abe
