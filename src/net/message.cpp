#include "net/message.h"

#include <sstream>

namespace abe {

std::unique_ptr<Payload> IntPayload::clone() const {
  return std::make_unique<IntPayload>(value_);
}

std::string IntPayload::describe() const {
  std::ostringstream os;
  os << "Int(" << value_ << ")";
  return os.str();
}

std::unique_ptr<Payload> TextPayload::clone() const {
  return std::make_unique<TextPayload>(text_);
}

std::string TextPayload::describe() const { return "Text(" + text_ + ")"; }

}  // namespace abe
