// Message payloads.
//
// The network layer is payload-agnostic: algorithms define their own payload
// structs derived from Payload and downcast on receipt with payload_cast /
// payload_as. A small virtual hierarchy (instead of templates) keeps the
// network non-generic and the layering strict.
#pragma once

#include <memory>
#include <string>

#include "util/check.h"

namespace abe {

class Payload {
 public:
  virtual ~Payload() = default;

  // Deep copy; channels clone when a payload must be duplicated (e.g. ARQ
  // retransmission keeps the original).
  virtual std::unique_ptr<Payload> clone() const = 0;

  // Human-readable form for traces and debugging.
  virtual std::string describe() const = 0;
};

using PayloadPtr = std::unique_ptr<const Payload>;

// Checked downcast: returns nullptr when the payload is a different type.
template <typename T>
const T* payload_cast(const Payload& p) {
  return dynamic_cast<const T*>(&p);
}

// Asserting downcast: aborts with the payload description on type mismatch.
template <typename T>
const T& payload_as(const Payload& p) {
  const T* typed = payload_cast<T>(p);
  ABE_CHECK(typed != nullptr)
      << "payload type mismatch; got " << p.describe();
  return *typed;
}

// Generic payload carrying one integer; handy for tests and simple apps.
class IntPayload final : public Payload {
 public:
  explicit IntPayload(std::int64_t value) : value_(value) {}
  std::int64_t value() const { return value_; }
  std::unique_ptr<Payload> clone() const override;
  std::string describe() const override;

 private:
  std::int64_t value_;
};

// Generic payload carrying a string tag; handy for tests.
class TextPayload final : public Payload {
 public:
  explicit TextPayload(std::string text) : text_(std::move(text)) {}
  const std::string& text() const { return text_; }
  std::unique_ptr<Payload> clone() const override;
  std::string describe() const override;

 private:
  std::string text_;
};

}  // namespace abe
