#include "net/network.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace abe {

const char* channel_ordering_name(ChannelOrdering o) {
  switch (o) {
    case ChannelOrdering::kFifo:
      return "fifo";
    case ChannelOrdering::kArbitrary:
      return "arbitrary";
  }
  return "?";
}

const char* tick_phase_name(TickPhase p) {
  switch (p) {
    case TickPhase::kRandomPerNode:
      return "random";
    case TickPhase::kAligned:
      return "aligned";
  }
  return "?";
}

double ProcessingModel::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kZero:
      return 0.0;
    case Kind::kFixed:
      return mean;
    case Kind::kExponential:
      return mean > 0.0 ? rng.exponential(mean) : 0.0;
  }
  return 0.0;
}

// Per-node Context implementation; a thin forwarding shim into the Network.
class Network::ContextImpl final : public Context {
 public:
  ContextImpl(Network* net, std::size_t index) : net_(net), index_(index) {}

  NodeId self() const override {
    return NodeId{static_cast<std::int64_t>(index_)};
  }
  std::size_t out_degree() const override {
    return net_->out_channels_[index_].size();
  }
  std::size_t in_degree() const override {
    return net_->in_channels_[index_].size();
  }
  std::size_t network_size() const override { return net_->size(); }

  void send(std::size_t out_index, PayloadPtr payload) override {
    net_->send_from(index_, out_index, std::move(payload));
  }

  double local_now() override {
    return net_->slots_[index_].clock->local_at(net_->now());
  }
  SimTime real_now() const override { return net_->now(); }

  TimerId set_timer_local(double local_delay, std::uint64_t tag) override {
    return net_->set_timer(index_, local_delay, tag);
  }
  bool cancel_timer(TimerId id) override {
    return net_->cancel_timer_impl(id);
  }

  Rng& rng() override { return net_->slots_[index_].rng; }

  void log(const std::string& detail) override {
    net_->trace_.record(net_->now(), TraceKind::kCustom, self(), detail,
                        /*arg=*/-1, net_->current_cause_);
  }

 private:
  Network* net_;
  std::size_t index_;
};

Network::Network(NetworkConfig config)
    : config_(std::move(config)),
      scheduler_(config_.equeue),
      root_rng_(config_.seed),
      channel_rng_(root_rng_.substream("channels")) {
  validate_topology(config_.topology);
  config_.clock_bounds.validate();
  if (!config_.delay) {
    config_.delay = exponential_delay(1.0);
  }
  ABE_CHECK_GE(config_.loss_probability, 0.0);
  ABE_CHECK_LT(config_.loss_probability, 1.0)
      << "loss probability 1 would never deliver";
  ABE_CHECK_GT(config_.tick_local_period, 0.0);
  ABE_CHECK_GE(config_.timeseries_interval, 0.0);
  if (config_.causal_history) {
    // Capacity and full mode are independent knobs: this keeps records lite
    // (numeric, allocation-free) but retains enough of them for causal
    // chains to reach their roots.
    trace_.set_capacity(Trace::kFullCapacity);
  }
  timeseries_.interval = config_.timeseries_interval;
  next_sample_ = config_.timeseries_interval;

  const std::size_t n = config_.topology.n;
  out_channels_ = out_adjacency(config_.topology);
  in_channels_ = in_adjacency(config_.topology);
  in_index_of_edge_.assign(config_.topology.edges.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < in_channels_[v].size(); ++k) {
      in_index_of_edge_[in_channels_[v][k]] = k;
    }
  }
  channels_.resize(config_.topology.edges.size());
  for (auto& ch : channels_) {
    ch.delay = config_.delay;
    ch.loss_probability = config_.loss_probability;
  }
  metrics_.sent_by_node.assign(n, 0);
  metrics_.sent_by_channel.assign(channels_.size(), 0);
  if (config_.metrics) {
    delivered_by_channel_.assign(channels_.size(), 0);
    dropped_by_channel_.assign(channels_.size(), 0);
    // Geometric buckets around the configured mean delay δ — the scale the
    // ABE contract promises — with a deep 2^6 tail (the part "bounded
    // EXPECTED delay" leaves unbounded).
    const double mean = config_.delay->mean_delay();
    delay_hist_ = &registry_.histogram(
        "net.delay", FixedHistogram::log2_bounds(mean > 0.0 ? mean : 1.0,
                                                 /*below=*/3, /*above=*/6));
  }
  slots_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].rng = root_rng_.substream("node", i);
    slots_[i].clock = std::make_unique<LocalClock>(
        config_.clock_bounds, config_.drift, root_rng_.substream("clock", i),
        config_.clock_segment_mean);
    slots_[i].context = std::make_unique<ContextImpl>(this, i);
    if (config_.tick_phase == TickPhase::kRandomPerNode) {
      slots_[i].tick_phase = root_rng_.substream("tick-phase", i).uniform01() *
                             config_.tick_local_period;
    }
  }
}

Network::~Network() = default;

void Network::add_node(NodePtr node) {
  ABE_CHECK(!started_) << "nodes must be added before start()";
  ABE_CHECK(static_cast<bool>(node));
  for (auto& slot : slots_) {
    if (!slot.node) {
      slot.node = std::move(node);
      return;
    }
  }
  ABE_CHECK(false) << "more nodes than topology slots (" << size() << ")";
}

void Network::build_nodes(const std::function<NodePtr(std::size_t)>& factory) {
  for (std::size_t i = 0; i < size(); ++i) {
    add_node(factory(i));
  }
}

void Network::set_channel_delay(std::size_t edge_index, DelayModelPtr delay) {
  ABE_CHECK(!started_);
  ABE_CHECK_LT(edge_index, channels_.size());
  ABE_CHECK(static_cast<bool>(delay));
  channels_[edge_index].delay = std::move(delay);
}

void Network::set_channel_loss(std::size_t edge_index,
                               double loss_probability) {
  ABE_CHECK(!started_);
  ABE_CHECK_LT(edge_index, channels_.size());
  ABE_CHECK_GE(loss_probability, 0.0);
  ABE_CHECK_LT(loss_probability, 1.0);
  channels_[edge_index].loss_probability = loss_probability;
}

void Network::start() {
  ABE_CHECK(!started_) << "start() called twice";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ABE_CHECK(static_cast<bool>(slots_[i].node))
        << "node " << i << " missing before start()";
  }
  started_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    scheduler_.schedule_at(0.0, [this, i] {
      current_cause_ = -1;  // on_start is a causal root: no trace record
      slots_[i].node->on_start(*slots_[i].context);
    });
    if (config_.enable_ticks) {
      slots_[i].ticking = true;
      schedule_next_tick(i);
    }
  }
}

void Network::schedule_next_tick(std::size_t node_index) {
  NodeSlot& slot = slots_[node_index];
  const double next_local =
      slot.tick_phase +
      static_cast<double>(slot.ticks + 1) * config_.tick_local_period;
  const SimTime fire = slot.clock->real_at(next_local);
  // The causing event: the tick (or start()) that scheduled this fire.
  const std::int64_t cause = current_cause_;
  scheduler_.schedule_at(fire, [this, node_index, cause] {
    NodeSlot& s = slots_[node_index];
    ++s.ticks;
    ++metrics_.ticks_fired;
    current_cause_ = trace_.record(now(), TraceKind::kTick,
                                   NodeId{static_cast<std::int64_t>(node_index)},
                                   static_cast<std::int64_t>(s.ticks),
                                   cause);
    s.node->on_tick(*s.context, s.ticks);
    if (s.node->is_terminated()) {
      s.ticking = false;  // terminal nodes stop consuming tick events
    } else {
      schedule_next_tick(node_index);
    }
  });
}

TimerId Network::set_timer(std::size_t node_index, double local_delay,
                           std::uint64_t tag) {
  ABE_CHECK_GE(local_delay, 0.0);
  NodeSlot& slot = slots_[node_index];
  const double local_now = slot.clock->local_at(now());
  const SimTime fire = slot.clock->real_at(local_now + local_delay);
  // A timer handle IS its scheduler event handle: generation-counted ids
  // make cancel-after-fire safe without any timer bookkeeping of our own.
  const TimerId timer_id{scheduler_.peek_next_id().value()};
  // The causing event: the handler that armed the timer.
  const std::int64_t cause = current_cause_;
  scheduler_.schedule_at(
      std::max(fire, now()), [this, node_index, tag, timer_id, cause] {
        NodeSlot& s = slots_[node_index];
        ++metrics_.timers_fired;
        current_cause_ =
            trace_.record(now(), TraceKind::kTimer,
                          NodeId{static_cast<std::int64_t>(node_index)},
                          static_cast<std::int64_t>(tag), cause);
        s.node->on_timer(*s.context, timer_id, tag);
      });
  return timer_id;
}

bool Network::cancel_timer_impl(TimerId id) {
  return scheduler_.cancel(EventId{id.value()});
}

void Network::send_from(std::size_t node_index, std::size_t out_index,
                        PayloadPtr payload) {
  ABE_CHECK(started_) << "send before start()";
  ABE_CHECK(static_cast<bool>(payload));
  ABE_CHECK_LT(out_index, out_channels_[node_index].size());
  const std::size_t edge_index = out_channels_[node_index][out_index];
  ChannelState& ch = channels_[edge_index];

  ++metrics_.messages_sent;
  ++metrics_.sent_by_node[node_index];
  ++metrics_.sent_by_channel[edge_index];
  // Flight recorder: the lite record (numeric edge arg) is always on; the
  // payload string is formatted only in full trace mode. The send's cause is
  // the handler that issued it.
  std::int64_t send_id;
  if (trace_.enabled()) {
    send_id = trace_.record(now(), TraceKind::kSend,
                            NodeId{static_cast<std::int64_t>(node_index)},
                            "edge=" + std::to_string(edge_index) + " " +
                                payload->describe(),
                            static_cast<std::int64_t>(edge_index),
                            current_cause_);
  } else {
    send_id = trace_.record(now(), TraceKind::kSend,
                            NodeId{static_cast<std::int64_t>(node_index)},
                            static_cast<std::int64_t>(edge_index),
                            current_cause_);
  }

  std::shared_ptr<const Payload> shared{payload.release()};

  // Silent loss (ARQ substrate): the message vanishes in transit.
  if (ch.loss_probability > 0.0 &&
      channel_rng_.bernoulli(ch.loss_probability)) {
    ++metrics_.messages_dropped;
    if (!dropped_by_channel_.empty()) ++dropped_by_channel_[edge_index];
    if (trace_.enabled()) {
      trace_.record(now(), TraceKind::kDrop,
                    NodeId{static_cast<std::int64_t>(
                        config_.topology.edges[edge_index].to)},
                    "edge=" + std::to_string(edge_index) + " " +
                        shared->describe(),
                    static_cast<std::int64_t>(edge_index), send_id);
    } else {
      trace_.record(now(), TraceKind::kDrop,
                    NodeId{static_cast<std::int64_t>(
                        config_.topology.edges[edge_index].to)},
                    static_cast<std::int64_t>(edge_index), send_id);
    }
    return;
  }

  const double delay =
      config_.adversary_delay != nullptr
          ? config_.adversary_delay->next_delay(
                node_index, config_.topology.edges[edge_index].to)
          : ch.delay->sample(channel_rng_);
  ABE_CHECK_GE(delay, 0.0);
  SimTime arrival = now() + delay;
  if (config_.ordering == ChannelOrdering::kFifo) {
    arrival = std::max(arrival, ch.last_arrival);
    ch.last_arrival = arrival;
  }
  const SimTime sent_at = now();
  // Captures total 48 bytes: the InlineAction budget of the hot path.
  scheduler_.schedule_at(arrival, [this, edge_index, shared, sent_at,
                                   send_id] {
    deliver(edge_index, shared, sent_at, send_id);
  });
}

void Network::deliver(std::size_t edge_index,
                      std::shared_ptr<const Payload> payload, SimTime sent_at,
                      std::int64_t send_id) {
  const std::size_t to = config_.topology.edges[edge_index].to;
  NodeSlot& slot = slots_[to];

  const double channel_delay = now() - sent_at;
  auto finish_delivery = [this, edge_index, payload, channel_delay, to,
                          send_id](double work) {
    NodeSlot& s = slots_[to];
    ++metrics_.messages_delivered;
    metrics_.total_channel_delay += channel_delay;
    metrics_.max_channel_delay =
        std::max(metrics_.max_channel_delay, channel_delay);
    if (delay_hist_ != nullptr) {
      delay_hist_->record(channel_delay);
      ++delivered_by_channel_[edge_index];
    }
    // The deliver's cause is its send; the delay/work fields attribute the
    // send->deliver gap for the critical-path profiler (obs/causal.h).
    if (trace_.enabled()) {
      current_cause_ = trace_.record(now(), TraceKind::kDeliver,
                                     NodeId{static_cast<std::int64_t>(to)},
                                     "edge=" + std::to_string(edge_index) +
                                         " " + payload->describe(),
                                     static_cast<std::int64_t>(edge_index),
                                     send_id, channel_delay, work);
    } else {
      current_cause_ = trace_.record(now(), TraceKind::kDeliver,
                                     NodeId{static_cast<std::int64_t>(to)},
                                     static_cast<std::int64_t>(edge_index),
                                     send_id, channel_delay, work);
    }
    s.node->on_message(*s.context, in_index_of_edge_[edge_index], *payload);
  };

  if (config_.processing.kind == ProcessingModel::Kind::kZero) {
    finish_delivery(0.0);
    return;
  }
  // Definition 1(3): handling occupies the node; queue behind earlier work.
  const SimTime start = std::max(now(), slot.busy_until);
  const double ptime = config_.processing.sample(slot.rng);
  const SimTime finish = start + ptime;
  slot.busy_until = finish;
  if (finish <= now()) {
    finish_delivery(ptime);
  } else {
    scheduler_.schedule_at(finish, [finish_delivery, ptime] {
      finish_delivery(ptime);
    });
  }
}

void Network::sample_timeseries() {
  // Sim-time-driven sampling: after each processed event, emit one sample
  // per grid point the clock has crossed, labelled with the grid time. Pure
  // observation — no events scheduled, no randomness consumed — so enabling
  // it cannot change any aggregate.
  while (next_sample_ <= now() &&
         timeseries_.samples.size() < TimeSeries::kMaxSamples) {
    TimeSeriesSample sample;
    sample.t = next_sample_;
    sample.pending = static_cast<double>(scheduler_.pending());
    sample.in_flight = static_cast<double>(metrics_.in_flight());
    std::uint64_t live = 0;
    for (const NodeSlot& slot : slots_) {
      if (slot.node != nullptr && !slot.node->is_terminated()) ++live;
    }
    sample.live = static_cast<double>(live);
    timeseries_.samples.push_back(sample);
    next_sample_ += timeseries_.interval;
  }
}

bool Network::run_until(const std::function<bool()>& pred, SimTime deadline) {
  ABE_CHECK(started_) << "run before start()";
  while (!pred()) {
    // Peek so no event beyond the deadline is ever executed.
    const SimTime next = scheduler_.next_event_time();
    if (next == kTimeInfinity || next > deadline) return false;
    scheduler_.run_steps(1);
    if (timeseries_.interval > 0.0) sample_timeseries();
  }
  return true;
}

void Network::run_until_quiescent(SimTime deadline) {
  ABE_CHECK(started_);
  if (deadline == kTimeInfinity) {
    ABE_CHECK(!config_.enable_ticks)
        << "tick generation never quiesces; pass a finite deadline";
    scheduler_.run();
  } else {
    scheduler_.run_until(deadline);
  }
}

Node& Network::node(std::size_t i) {
  ABE_CHECK_LT(i, slots_.size());
  return *slots_[i].node;
}

const Node& Network::node(std::size_t i) const {
  ABE_CHECK_LT(i, slots_.size());
  return *slots_[i].node;
}

LocalClock& Network::clock(std::size_t i) {
  ABE_CHECK_LT(i, slots_.size());
  return *slots_[i].clock;
}

double Network::expected_delay_bound() const {
  double bound = 0.0;
  for (const auto& ch : channels_) {
    bound = std::max(bound, ch.delay->mean_delay());
  }
  return bound;
}

MetricsSnapshot Network::metrics_snapshot() const {
  // Registry instruments first (the delay histogram, when enabled) …
  MetricsSnapshot snap = registry_.snapshot();
  // … then the always-on pull-model counters: the scheduler and the
  // NetworkMetrics aggregate keep plain fields on their hot paths (cheaper
  // than even a relaxed atomic in the single-threaded simulator) and the
  // snapshot harvests them here, at collection time.
  snap.add_counter("net.sent",
                   static_cast<double>(metrics_.messages_sent));
  snap.add_counter("net.delivered",
                   static_cast<double>(metrics_.messages_delivered));
  snap.add_counter("net.dropped",
                   static_cast<double>(metrics_.messages_dropped));
  snap.add_counter("net.ticks", static_cast<double>(metrics_.ticks_fired));
  snap.add_counter("net.timers", static_cast<double>(metrics_.timers_fired));
  snap.add_counter("net.delay.sum", metrics_.total_channel_delay);
  snap.add_gauge("net.delay.max", metrics_.max_channel_delay);
  snap.add_counter("sched.scheduled",
                   static_cast<double>(scheduler_.scheduled_count()));
  snap.add_counter("sched.cancelled",
                   static_cast<double>(scheduler_.cancelled_count()));
  snap.add_counter("sched.popped",
                   static_cast<double>(scheduler_.processed_count()));
  snap.add_gauge("sched.queue_high_water",
                 static_cast<double>(scheduler_.queue_high_water()));
  snap.add_counter("trace.recorded",
                   static_cast<double>(trace_.total_recorded()));
  if (config_.metrics) {
    // Scalar rollups of the per-channel vectors (the vectors themselves are
    // exposed via delivered_by_channel()/dropped_by_channel(); at n = 10^4
    // they would dwarf the rest of the sweep JSON).
    std::uint64_t lossy = 0;
    std::uint64_t worst = 0;
    for (const std::uint64_t d : dropped_by_channel_) {
      if (d > 0) ++lossy;
      worst = std::max(worst, d);
    }
    snap.add_counter("net.channels.lossy", static_cast<double>(lossy));
    snap.add_gauge("net.channels.max_dropped", static_cast<double>(worst));
  }
  return snap;
}

}  // namespace abe
