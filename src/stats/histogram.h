// Value histogram with quantile queries.
//
// Used by the delay-tail experiments (E10) and by tests validating that
// sampled delay distributions match their closed-form quantiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace abe {

class Histogram {
 public:
  // Keeps raw samples (simulations here are small enough that exact
  // quantiles are affordable and more trustworthy than sketches).
  Histogram() = default;

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::uint64_t count() const { return samples_.size(); }
  double mean() const;

  // Exact q-quantile with linear interpolation; q in [0, 1].
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  // Fraction of samples strictly greater than x (empirical tail P(X > x)).
  double tail_fraction(double x) const;

  // Renders an ASCII bar chart with `bins` equal-width bins over the sample
  // range; `width` is the maximum bar width in characters.
  std::string ascii(int bins = 20, int width = 50) const;

 private:
  // Sorts lazily; `sorted_` tracks validity.
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace abe
