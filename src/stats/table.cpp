#include "stats/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace abe {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ABE_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ABE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(std::int64_t v) { return std::to_string(v); }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) {
    os << "== " << title << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  std::size_t total = 1;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 3;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace abe
